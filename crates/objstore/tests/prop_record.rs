//! Randomized model tests: record encoding round-trips arbitrary
//! schemas and values. Deterministically seeded.

use tq_objstore::{record, AttrType, ClassId, ObjectHeader, Rid, Schema, SetValue, Value};
use tq_pagestore::{FileId, PageId};
use tq_simrng::SimRng;

/// An arbitrary attribute type (references point at class 0).
fn random_attr_type(rng: &mut SimRng) -> AttrType {
    match rng.below(5) {
        0 => AttrType::Int,
        1 => AttrType::Char,
        2 => AttrType::Str,
        3 => AttrType::Ref(ClassId(0)),
        _ => AttrType::SetRef(ClassId(0)),
    }
}

fn random_rid(rng: &mut SimRng) -> Rid {
    Rid::new(
        PageId {
            file: FileId(rng.range_u32(0, 999)),
            page_no: rng.range_u32(0, 99_999),
        },
        rng.range_u32(0, 199) as u16,
    )
}

/// A printable-ASCII string of length 0..60 (the original regex
/// strategy was `[ -~]{0,60}`).
fn random_str(rng: &mut SimRng) -> String {
    let len = rng.index(60);
    (0..len)
        .map(|_| (b' ' + (rng.below(95) as u8)) as char)
        .collect()
}

/// A value matching an attribute type.
fn random_value_for(rng: &mut SimRng, ty: AttrType) -> Value {
    match ty {
        AttrType::Int => Value::Int(rng.next_u32() as i32),
        AttrType::Char => Value::Char(rng.next_u32() as u8),
        AttrType::Str => Value::Str(random_str(rng)),
        AttrType::Ref(_) => {
            if rng.bool() {
                Value::Ref(random_rid(rng))
            } else {
                Value::Ref(Rid::nil())
            }
        }
        AttrType::SetRef(_) => {
            if rng.bool() {
                let n = rng.index(12);
                Value::Set(SetValue::Inline((0..n).map(|_| random_rid(rng)).collect()))
            } else {
                Value::Set(SetValue::Overflow {
                    file: FileId(rng.range_u32(0, 999)),
                    first_page: rng.range_u32(0, 99_999),
                    count: rng.range_u32(0, 4999),
                })
            }
        }
    }
}

#[test]
fn encode_decode_round_trips() {
    for case in 0..192u64 {
        let mut rng = SimRng::seed_from_u64(0x2EC0_2D00 + case);
        let types: Vec<AttrType> = (0..rng.index(10))
            .map(|_| random_attr_type(&mut rng))
            .collect();
        let headroom = rng.bool();
        let index_ids: Vec<u16> = (0..rng.index(8))
            .map(|_| rng.range_u32(0, 99) as u16)
            .collect();

        // Build the schema and a matching value vector.
        let mut schema = Schema::new();
        let class = schema.add_class(
            "T",
            types
                .iter()
                .enumerate()
                .map(|(i, &ty)| (Box::leak(format!("a{i}").into_boxed_str()) as &str, ty))
                .collect(),
        );
        let values: Vec<Value> = types
            .iter()
            .map(|&ty| random_value_for(&mut rng, ty))
            .collect();
        let mut header = ObjectHeader::new(class, headroom);
        if headroom {
            for id in &index_ids {
                header.add_index(*id);
            }
        }
        let bytes = record::encode(schema.class(class), &header, &values);
        let decoded = record::decode(schema.class(class), &bytes).expect("round trip");
        assert_eq!(&decoded.values, &values);
        assert_eq!(decoded.header.class, class);
        if headroom {
            // Duplicates collapse; order is preserved.
            let mut expect = Vec::new();
            for id in &index_ids {
                if !expect.contains(id) {
                    expect.push(*id);
                }
            }
            assert_eq!(&decoded.header.index_ids, &expect);
        } else {
            assert!(decoded.header.index_ids.is_empty());
        }
        // Class peeking agrees without a full decode.
        assert_eq!(record::peek_class(&bytes).unwrap(), class);
        // Truncations never panic: they error or (for prefixes that
        // happen to align) decode to something structurally valid.
        for cut in 0..bytes.len() {
            let _ = record::decode(schema.class(class), &bytes[..cut]);
        }
    }
}
