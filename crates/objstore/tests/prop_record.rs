//! Property tests: record encoding round-trips arbitrary schemas and
//! values.

use proptest::prelude::*;
use tq_objstore::{record, AttrType, ClassId, ObjectHeader, Rid, Schema, SetValue, Value};
use tq_pagestore::{FileId, PageId};

/// An arbitrary attribute type (references point at class 0).
fn attr_type() -> impl Strategy<Value = AttrType> {
    prop_oneof![
        Just(AttrType::Int),
        Just(AttrType::Char),
        Just(AttrType::Str),
        Just(AttrType::Ref(ClassId(0))),
        Just(AttrType::SetRef(ClassId(0))),
    ]
}

fn arb_rid() -> impl Strategy<Value = Rid> {
    (0u32..1000, 0u32..100_000, 0u16..200).prop_map(|(f, p, s)| {
        Rid::new(
            PageId {
                file: FileId(f),
                page_no: p,
            },
            s,
        )
    })
}

/// A value matching an attribute type.
fn value_for(ty: AttrType) -> BoxedStrategy<Value> {
    match ty {
        AttrType::Int => any::<i32>().prop_map(Value::Int).boxed(),
        AttrType::Char => any::<u8>().prop_map(Value::Char).boxed(),
        AttrType::Str => "[ -~]{0,60}".prop_map(Value::Str).boxed(),
        AttrType::Ref(_) => {
            prop_oneof![arb_rid().prop_map(Value::Ref), Just(Value::Ref(Rid::nil())),].boxed()
        }
        AttrType::SetRef(_) => prop_oneof![
            proptest::collection::vec(arb_rid(), 0..12)
                .prop_map(|v| Value::Set(SetValue::Inline(v))),
            (0u32..1000, 0u32..100_000, 0u32..5000).prop_map(|(f, p, c)| Value::Set(
                SetValue::Overflow {
                    file: FileId(f),
                    first_page: p,
                    count: c,
                }
            )),
        ]
        .boxed(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn encode_decode_round_trips(
        types in proptest::collection::vec(attr_type(), 0..10),
        headroom in any::<bool>(),
        index_ids in proptest::collection::vec(0u16..100, 0..8),
        seed in any::<u64>(),
    ) {
        // Build the schema and a matching value vector.
        let mut schema = Schema::new();
        let class = schema.add_class(
            "T",
            types
                .iter()
                .enumerate()
                .map(|(i, &ty)| (Box::leak(format!("a{i}").into_boxed_str()) as &str, ty))
                .collect(),
        );
        let mut runner = proptest::test_runner::TestRunner::deterministic();
        let _ = seed;
        let values: Vec<Value> = types
            .iter()
            .map(|&ty| {
                value_for(ty)
                    .new_tree(&mut runner)
                    .expect("value strategy")
                    .current()
            })
            .collect();
        let mut header = ObjectHeader::new(class, headroom);
        if headroom {
            for id in &index_ids {
                header.add_index(*id);
            }
        }
        let bytes = record::encode(schema.class(class), &header, &values);
        let decoded = record::decode(schema.class(class), &bytes).expect("round trip");
        prop_assert_eq!(&decoded.values, &values);
        prop_assert_eq!(decoded.header.class, class);
        if headroom {
            // Duplicates collapse; order is preserved.
            let mut expect = Vec::new();
            for id in &index_ids {
                if !expect.contains(id) {
                    expect.push(*id);
                }
            }
            prop_assert_eq!(&decoded.header.index_ids, &expect);
        } else {
            prop_assert!(decoded.header.index_ids.is_empty());
        }
        // Class peeking agrees without a full decode.
        prop_assert_eq!(record::peek_class(&bytes).unwrap(), class);
        // Truncations never panic: they error or (for prefixes that
        // happen to align) decode to something structurally valid.
        for cut in 0..bytes.len() {
            let _ = record::decode(schema.class(class), &bytes[..cut]);
        }
    }
}
