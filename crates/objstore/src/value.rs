//! Runtime attribute values.

use crate::rid::Rid;
use tq_pagestore::FileId;

/// A set-of-references attribute value.
///
/// The paper (§2): "collections whose size is over 4K (the size of a
/// page) are always stored in a separate file". Small sets are inlined
/// in the owning record; large ones live as a run of rid-list pages in
/// an overflow file and the record stores only a descriptor.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SetValue {
    /// Members stored inside the owning record.
    Inline(Vec<Rid>),
    /// Members stored as `count` rids packed into pages
    /// `first_page ..` of `file`.
    Overflow {
        /// Overflow rid-list file.
        file: FileId,
        /// First page of the contiguous run.
        first_page: u32,
        /// Number of member rids.
        count: u32,
    },
}

impl SetValue {
    /// Number of members.
    pub fn len(&self) -> usize {
        match self {
            SetValue::Inline(v) => v.len(),
            SetValue::Overflow { count, .. } => *count as usize,
        }
    }

    /// True when the set has no members.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// An attribute value. Variants correspond 1:1 to
/// [`AttrType`](crate::schema::AttrType).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Value {
    /// 32-bit integer.
    Int(i32),
    /// Single character.
    Char(u8),
    /// String (a separate literal record in O2 — reading it costs a
    /// literal handle).
    Str(String),
    /// Object reference; [`Rid::nil`] encodes the ODMG `nil`.
    Ref(Rid),
    /// Set of references.
    Set(SetValue),
}

impl Value {
    /// Integer payload, if this is an `Int`.
    pub fn as_int(&self) -> Option<i32> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// String payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Reference payload, if this is a `Ref`.
    pub fn as_ref_rid(&self) -> Option<Rid> {
        match self {
            Value::Ref(r) => Some(*r),
            _ => None,
        }
    }

    /// Set payload, if this is a `Set`.
    pub fn as_set(&self) -> Option<&SetValue> {
        match self {
            Value::Set(s) => Some(s),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Str("x".into()).as_int(), None);
        assert_eq!(Value::Str("x".into()).as_str(), Some("x"));
        let r = Rid::nil();
        assert_eq!(Value::Ref(r).as_ref_rid(), Some(r));
        let s = SetValue::Inline(vec![]);
        assert!(Value::Set(s.clone()).as_set().unwrap().is_empty());
        assert_eq!(s.len(), 0);
        let big = SetValue::Overflow {
            file: FileId(1),
            first_page: 0,
            count: 1000,
        };
        assert_eq!(big.len(), 1000);
    }
}
