//! # tq-objstore — an O2-like object store
//!
//! The object-database substrate of the `treequery` reproduction of
//! *Benchmarking Queries over Trees* (SIGMOD 2000). It implements the
//! mechanisms whose costs the paper measures:
//!
//! * physical object identifiers ([`Rid`]) — page + slot addresses;
//! * schema-driven record encoding with **index membership lists in
//!   object headers** ([`record`]), including the 8-slot headroom rule
//!   whose absence causes the §3.2 relocation storm;
//! * in-memory **Handles** with pin counts and delayed free
//!   ([`handle`]) — the §4 hard truth about associative-access CPU
//!   cost;
//! * named collections and large-set overflow files as packed rid runs
//!   ([`ridlist`]);
//! * the [`ObjectStore`] façade: insert / fetch / update with
//!   relocation + forwarding, index registration, collection cursors,
//!   and cost charging into the shared simulated clock.
//!
//! Physical organization (class / random / composition clustering,
//! paper Figure 2) is chosen by *creation order and file assignment*,
//! which the `tq-workload` crate drives.

pub mod handle;
pub mod record;
pub mod rid;
pub mod ridlist;
pub mod schema;
pub mod store;
pub mod value;

pub use handle::{GetOutcome, HandleStats, HandleTable, HANDLE_BYTES};
pub use record::{DecodeError, Object, ObjectHeader, INDEX_HEADROOM};
pub use rid::{Rid, RID_BYTES};
pub use ridlist::{RidRun, RidRunCursor, RIDS_PER_PAGE};
pub use schema::{Attr, AttrId, AttrType, ClassDef, ClassId, Schema};
pub use store::{
    CollectionInfo, Fetched, ObjBatch, ObjGuard, ObjectStore, SetCursor, WideningReport,
    DEFAULT_FILL_LIMIT,
};
pub use value::{SetValue, Value};

#[cfg(test)]
mod thread_safety {
    use super::*;

    /// Compile-time proof that a store clone can run on a worker
    /// thread (per-cell figure measurements).
    #[test]
    fn object_store_is_send_and_sync() {
        fn assert_send<T: Send>() {}
        fn assert_sync<T: Sync>() {}
        assert_send::<ObjectStore>();
        assert_sync::<ObjectStore>();
        assert_send::<HandleTable>();
        assert_send::<Schema>();
    }
}
