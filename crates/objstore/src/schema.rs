//! Class schemas.
//!
//! A deliberately small slice of the ODMG model — enough to express the
//! paper's Derby-derived schema (Figure 1): classes with integer,
//! character, string, reference and set-of-reference attributes, plus
//! named collections ("Names: Providers set(Provider), Patients
//! set(Patient)").

use std::fmt;

/// Index of a class within its [`Schema`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClassId(pub u16);

impl fmt::Debug for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "class#{}", self.0)
    }
}

/// Index of an attribute within its class.
pub type AttrId = usize;

/// Attribute types.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AttrType {
    /// 32-bit signed integer (the paper's "4 bytes per integer").
    Int,
    /// Single character.
    Char,
    /// Variable-length string. In O2, strings are separate records with
    /// their own handles — which is why reading one charges a *literal
    /// handle* (paper §4.4).
    Str,
    /// Reference to an object of the given class (8 bytes on disk).
    Ref(ClassId),
    /// Set of references to objects of the given class. Small sets are
    /// stored inline; sets larger than a page spill to an overflow file
    /// (paper §2: "collections whose size is over 4K ... are always
    /// stored in a separate file").
    SetRef(ClassId),
}

impl AttrType {
    /// True for types O2 represents as separate literal records
    /// (handle-bearing values).
    pub fn is_literal_record(&self) -> bool {
        matches!(self, AttrType::Str)
    }
}

/// One attribute: a name and a type.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Attr {
    /// Attribute name, e.g. `"mrn"`.
    pub name: String,
    /// Attribute type.
    pub ty: AttrType,
}

/// A class: a name and an ordered attribute list.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClassDef {
    /// Class name, e.g. `"Patient"`.
    pub name: String,
    /// Attributes in storage order.
    pub attrs: Vec<Attr>,
}

impl ClassDef {
    /// Finds an attribute by name.
    pub fn attr_id(&self, name: &str) -> Option<AttrId> {
        self.attrs.iter().position(|a| a.name == name)
    }
}

/// A database schema: an ordered set of classes.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Schema {
    classes: Vec<ClassDef>,
}

impl Schema {
    /// An empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a class, returning its id. Names must be unique.
    pub fn add_class(&mut self, name: impl Into<String>, attrs: Vec<(&str, AttrType)>) -> ClassId {
        let name = name.into();
        assert!(
            self.class_by_name(&name).is_none(),
            "duplicate class {name:?}"
        );
        let id = ClassId(self.classes.len() as u16);
        self.classes.push(ClassDef {
            name,
            attrs: attrs
                .into_iter()
                .map(|(n, ty)| Attr {
                    name: n.to_string(),
                    ty,
                })
                .collect(),
        });
        id
    }

    /// The class definition for `id`.
    pub fn class(&self, id: ClassId) -> &ClassDef {
        &self.classes[id.0 as usize]
    }

    /// Finds a class by name.
    pub fn class_by_name(&self, name: &str) -> Option<ClassId> {
        self.classes
            .iter()
            .position(|c| c.name == name)
            .map(|i| ClassId(i as u16))
    }

    /// Number of classes.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// True when no classes are defined.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Iterates `(id, def)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ClassId, &ClassDef)> {
        self.classes
            .iter()
            .enumerate()
            .map(|(i, c)| (ClassId(i as u16), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Schema, ClassId, ClassId) {
        let mut s = Schema::new();
        let provider = s.add_class("Provider", vec![("name", AttrType::Str)]);
        let patient = s.add_class(
            "Patient",
            vec![
                ("name", AttrType::Str),
                ("mrn", AttrType::Int),
                ("sex", AttrType::Char),
                ("primary_care_provider", AttrType::Ref(provider)),
            ],
        );
        (s, provider, patient)
    }

    #[test]
    fn lookup_by_name_and_id() {
        let (s, provider, patient) = sample();
        assert_eq!(s.class_by_name("Provider"), Some(provider));
        assert_eq!(s.class_by_name("Patient"), Some(patient));
        assert_eq!(s.class_by_name("Nurse"), None);
        assert_eq!(s.class(patient).name, "Patient");
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn attr_lookup() {
        let (s, _, patient) = sample();
        let c = s.class(patient);
        assert_eq!(c.attr_id("mrn"), Some(1));
        assert_eq!(c.attr_id("ssn"), None);
        assert_eq!(c.attrs[3].ty, AttrType::Ref(ClassId(0)));
    }

    #[test]
    fn literal_record_classification() {
        assert!(AttrType::Str.is_literal_record());
        assert!(!AttrType::Int.is_literal_record());
        assert!(!AttrType::Ref(ClassId(0)).is_literal_record());
    }

    #[test]
    #[should_panic(expected = "duplicate class")]
    fn duplicate_class_panics() {
        let mut s = Schema::new();
        s.add_class("X", vec![]);
        s.add_class("X", vec![]);
    }
}
