//! On-disk record encoding.
//!
//! Every persistent object is one record:
//!
//! ```text
//! ┌───────┬─────────┬──────────┬─────────┬───────────────┬────────────┐
//! │ flags │ class   │ idx cap  │ idx cnt │ cap × idx id  │ attributes │
//! │  u8   │ u16     │ u8       │ u8      │ u16 each      │ ...        │
//! └───────┴─────────┴──────────┴─────────┴───────────────┴────────────┘
//! ```
//!
//! The header carries the *index membership list* the paper describes
//! (§3.2, §4.4): "the O2 system records, for each object, the indexes
//! it belongs to ... stored on disk in the object header. When an
//! object becomes persistent, if it is part of some indexed collection
//! the system creates a header allowing to store information about 8
//! indexes". An object created while its collection is unindexed gets
//! `idx cap = 0` — a 5-byte header. Creating the first index later
//! forces every record to be rewritten with `idx cap = 8` (16 more
//! bytes), which overflows pages and relocates objects: the
//! twelve-hour-load hard truth.
//!
//! With `idx cap = 8` the header is 21 bytes, which lands the paper's
//! object sizes: a Patient encodes to ~64 bytes ("about 60 bytes"), a
//! Provider with 3 inline clients to ~122 bytes ("about 120 bytes").
//!
//! A record whose `FORWARDER` flag is set is not an object but an
//! 8-byte forwarding address left behind by relocation; readers must
//! chase it (an extra page access — relocation hurts twice).

use crate::rid::{Rid, RID_BYTES};
use crate::schema::{AttrType, ClassDef, ClassId};
use crate::value::{SetValue, Value};
use tq_pagestore::FileId;

/// Flag bits in the first header byte.
pub mod flags {
    /// Object is persistent (reachable from a root).
    pub const PERSISTENT: u8 = 0x01;
    /// Object participates in at least one index.
    pub const INDEXED: u8 = 0x02;
    /// Object is logically deleted.
    pub const DELETED: u8 = 0x04;
    /// Record is a forwarding address, not an object.
    pub const FORWARDER: u8 = 0x80;
}

/// Default index headroom reserved when an object is created into an
/// already-indexed collection (the paper's "8 indexes").
pub const INDEX_HEADROOM: u8 = 8;

/// Decoded record header.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ObjectHeader {
    /// Flag bits (see [`flags`]).
    pub flags: u8,
    /// The object's exact class.
    pub class: ClassId,
    /// Allocated index-id slots (0 or [`INDEX_HEADROOM`], may grow).
    pub index_capacity: u8,
    /// Index ids this object belongs to (`len() <= index_capacity`).
    pub index_ids: Vec<u16>,
}

impl ObjectHeader {
    /// A fresh persistent header for `class`; `with_index_headroom`
    /// reserves the 8-slot index area at creation time (what O2 does
    /// when the collection is already indexed).
    pub fn new(class: ClassId, with_index_headroom: bool) -> Self {
        Self {
            flags: flags::PERSISTENT,
            class,
            index_capacity: if with_index_headroom {
                INDEX_HEADROOM
            } else {
                0
            },
            index_ids: Vec::new(),
        }
    }

    /// Header byte length on disk.
    pub fn encoded_len(&self) -> usize {
        5 + 2 * self.index_capacity as usize
    }

    /// Registers membership in `index_id`.
    ///
    /// Returns `false` when the header has no free slot (capacity 0 or
    /// full): the record must be rewritten with a wider header — the
    /// §3.2 relocation storm.
    pub fn add_index(&mut self, index_id: u16) -> bool {
        if self.index_ids.contains(&index_id) {
            return true;
        }
        if self.index_ids.len() >= self.index_capacity as usize {
            return false;
        }
        self.index_ids.push(index_id);
        self.flags |= flags::INDEXED;
        true
    }

    /// Widens the index area to at least [`INDEX_HEADROOM`] slots.
    pub fn widen_index_area(&mut self) {
        self.index_capacity = self.index_capacity.max(INDEX_HEADROOM);
    }

    /// True when the object is logically deleted.
    pub fn is_deleted(&self) -> bool {
        self.flags & flags::DELETED != 0
    }

    /// Marks the object logically deleted. The record stays in place
    /// (physical rids may be referenced elsewhere); scans skip it and a
    /// later reorganization reclaims the space.
    pub fn mark_deleted(&mut self) {
        self.flags |= flags::DELETED;
    }
}

/// A decoded object: header plus attribute values in schema order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Object {
    /// Record header.
    pub header: ObjectHeader,
    /// Attribute values, one per schema attribute, in order.
    pub values: Vec<Value>,
}

impl Object {
    /// Value of attribute `i`.
    pub fn attr(&self, i: usize) -> &Value {
        &self.values[i]
    }
}

/// Errors raised by [`decode`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The record is a forwarder; follow the contained rid.
    Forwarded(Rid),
    /// The bytes are structurally invalid for the claimed class.
    Corrupt(&'static str),
}

fn put_rid(out: &mut Vec<u8>, rid: Rid) {
    out.extend_from_slice(&rid.encode());
}

/// Serializes an object per its class definition.
///
/// Panics if `values` does not match the class's attribute list — a
/// programming error, not a data error.
pub fn encode(class_def: &ClassDef, header: &ObjectHeader, values: &[Value]) -> Vec<u8> {
    let mut out = Vec::with_capacity(header.encoded_len() + 64);
    encode_into(class_def, header, values, &mut out);
    out
}

/// [`encode`] into a caller-supplied buffer, which is cleared first.
/// Insert/update loops that recycle one scratch buffer stay off the
/// allocator entirely.
pub fn encode_into(
    class_def: &ClassDef,
    header: &ObjectHeader,
    values: &[Value],
    out: &mut Vec<u8>,
) {
    assert_eq!(
        values.len(),
        class_def.attrs.len(),
        "value count must match schema for class {:?}",
        class_def.name
    );
    out.clear();
    out.push(header.flags);
    out.extend_from_slice(&header.class.0.to_le_bytes());
    out.push(header.index_capacity);
    assert!(header.index_ids.len() <= header.index_capacity as usize);
    out.push(header.index_ids.len() as u8);
    for i in 0..header.index_capacity {
        let id = header.index_ids.get(i as usize).copied().unwrap_or(0);
        out.extend_from_slice(&id.to_le_bytes());
    }
    for (attr, value) in class_def.attrs.iter().zip(values) {
        match (&attr.ty, value) {
            (AttrType::Int, Value::Int(i)) => out.extend_from_slice(&i.to_le_bytes()),
            (AttrType::Char, Value::Char(c)) => out.push(*c),
            (AttrType::Str, Value::Str(s)) => {
                let bytes = s.as_bytes();
                assert!(bytes.len() <= u16::MAX as usize, "string too long");
                out.extend_from_slice(&(bytes.len() as u16).to_le_bytes());
                out.extend_from_slice(bytes);
            }
            (AttrType::Ref(_), Value::Ref(r)) => put_rid(out, *r),
            (AttrType::SetRef(_), Value::Set(SetValue::Inline(rids))) => {
                out.push(0); // inline tag
                assert!(rids.len() <= u16::MAX as usize, "inline set too large");
                out.extend_from_slice(&(rids.len() as u16).to_le_bytes());
                for r in rids {
                    put_rid(out, *r);
                }
            }
            (
                AttrType::SetRef(_),
                Value::Set(SetValue::Overflow {
                    file,
                    first_page,
                    count,
                }),
            ) => {
                out.push(1); // overflow tag
                let f: u16 = file.0.try_into().expect("file id exceeds u16");
                out.extend_from_slice(&f.to_le_bytes());
                out.extend_from_slice(&first_page.to_le_bytes());
                out.extend_from_slice(&count.to_le_bytes());
            }
            (ty, v) => panic!(
                "attribute {:?} of class {:?} expects {:?}, got {:?}",
                attr.name, class_def.name, ty, v
            ),
        }
    }
}

/// Builds the 9-byte forwarding record left at a relocated object's old
/// address.
pub fn encode_forwarder(new_location: Rid) -> Vec<u8> {
    let mut out = Vec::with_capacity(1 + RID_BYTES);
    out.push(flags::FORWARDER);
    put_rid(&mut out, new_location);
    out
}

/// True if the raw record bytes are a forwarder.
pub fn is_forwarder(bytes: &[u8]) -> bool {
    !bytes.is_empty() && bytes[0] & flags::FORWARDER != 0
}

struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.at + n > self.bytes.len() {
            return Err(DecodeError::Corrupt("record truncated"));
        }
        let s = &self.bytes[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, DecodeError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn i32(&mut self) -> Result<i32, DecodeError> {
        let b = self.take(4)?;
        Ok(i32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn rid(&mut self) -> Result<Rid, DecodeError> {
        Ok(Rid::decode(self.take(RID_BYTES)?))
    }
}

/// Deserializes a record. Returns [`DecodeError::Forwarded`] when the
/// record is a forwarding address.
pub fn decode(class_def: &ClassDef, bytes: &[u8]) -> Result<Object, DecodeError> {
    let mut out = Object {
        header: ObjectHeader::new(ClassId(0), false),
        values: Vec::new(),
    };
    decode_into(class_def, bytes, &mut out)?;
    Ok(out)
}

fn set_slot(values: &mut Vec<Value>, i: usize, v: Value) {
    match values.get_mut(i) {
        Some(slot) => *slot = v,
        None => values.push(v),
    }
}

/// Deserializes a record into `out`, reusing its allocations: the
/// value and index-id vectors, and — when the slot already holds the
/// same variant — string and inline-set buffers. A scan loop that
/// recycles one `Object` per record settles into zero heap traffic,
/// which is what keeps paper-scale fetch loops off the allocator.
///
/// On any error (including [`DecodeError::Forwarded`]) `out` is left
/// in an unspecified but valid state.
pub fn decode_into(
    class_def: &ClassDef,
    bytes: &[u8],
    out: &mut Object,
) -> Result<(), DecodeError> {
    let mut r = Reader { bytes, at: 0 };
    let fl = r.u8()?;
    if fl & flags::FORWARDER != 0 {
        return Err(DecodeError::Forwarded(r.rid()?));
    }
    let class = ClassId(r.u16()?);
    let capacity = r.u8()?;
    let count = r.u8()?;
    if count > capacity {
        return Err(DecodeError::Corrupt("index count exceeds capacity"));
    }
    out.header.flags = fl;
    out.header.class = class;
    out.header.index_capacity = capacity;
    out.header.index_ids.clear();
    for i in 0..capacity {
        let id = r.u16()?;
        if i < count {
            out.header.index_ids.push(id);
        }
    }
    for (i, attr) in class_def.attrs.iter().enumerate() {
        match attr.ty {
            AttrType::Int => set_slot(&mut out.values, i, Value::Int(r.i32()?)),
            AttrType::Char => set_slot(&mut out.values, i, Value::Char(r.u8()?)),
            AttrType::Str => {
                let len = r.u16()? as usize;
                let s = std::str::from_utf8(r.take(len)?)
                    .map_err(|_| DecodeError::Corrupt("invalid utf8"))?;
                match out.values.get_mut(i) {
                    Some(Value::Str(old)) => {
                        old.clear();
                        old.push_str(s);
                    }
                    slot => {
                        let v = Value::Str(s.to_string());
                        match slot {
                            Some(slot) => *slot = v,
                            None => out.values.push(v),
                        }
                    }
                }
            }
            AttrType::Ref(_) => set_slot(&mut out.values, i, Value::Ref(r.rid()?)),
            AttrType::SetRef(_) => match r.u8()? {
                0 => {
                    let n = r.u16()? as usize;
                    match out.values.get_mut(i) {
                        Some(Value::Set(SetValue::Inline(rids))) => {
                            rids.clear();
                            for _ in 0..n {
                                rids.push(r.rid()?);
                            }
                        }
                        slot => {
                            let mut rids = Vec::with_capacity(n);
                            for _ in 0..n {
                                rids.push(r.rid()?);
                            }
                            let v = Value::Set(SetValue::Inline(rids));
                            match slot {
                                Some(slot) => *slot = v,
                                None => out.values.push(v),
                            }
                        }
                    }
                }
                1 => {
                    let file = FileId(r.u16()? as u32);
                    let first_page = r.u32()?;
                    let count = r.u32()?;
                    set_slot(
                        &mut out.values,
                        i,
                        Value::Set(SetValue::Overflow {
                            file,
                            first_page,
                            count,
                        }),
                    );
                }
                _ => return Err(DecodeError::Corrupt("bad set tag")),
            },
        }
    }
    out.values.truncate(class_def.attrs.len());
    Ok(())
}

/// Decodes only the record header — no attribute values, no
/// allocation beyond the index-id vector. Update paths that rewrite a
/// record from fresh values need the header (flags, class, index
/// membership) but not the old attributes; skipping the value decode
/// keeps the 4M-object wiring pass off the allocator.
///
/// Returns [`DecodeError::Forwarded`] when the record is a forwarding
/// address.
pub fn decode_header(bytes: &[u8]) -> Result<ObjectHeader, DecodeError> {
    let mut r = Reader { bytes, at: 0 };
    let fl = r.u8()?;
    if fl & flags::FORWARDER != 0 {
        return Err(DecodeError::Forwarded(r.rid()?));
    }
    let class = ClassId(r.u16()?);
    let capacity = r.u8()?;
    let count = r.u8()?;
    if count > capacity {
        return Err(DecodeError::Corrupt("index count exceeds capacity"));
    }
    let mut index_ids = Vec::with_capacity(count as usize);
    for i in 0..capacity {
        let id = r.u16()?;
        if i < count {
            index_ids.push(id);
        }
    }
    Ok(ObjectHeader {
        flags: fl,
        class,
        index_capacity: capacity,
        index_ids,
    })
}

/// Decodes only the header-resident class id — cheap class filtering
/// for extent scans over mixed files.
pub fn peek_class(bytes: &[u8]) -> Result<ClassId, DecodeError> {
    if is_forwarder(bytes) {
        let mut r = Reader { bytes, at: 1 };
        return Err(DecodeError::Forwarded(r.rid()?));
    }
    if bytes.len() < 3 {
        return Err(DecodeError::Corrupt("record truncated"));
    }
    Ok(ClassId(u16::from_le_bytes([bytes[1], bytes[2]])))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use tq_pagestore::PageId;

    fn derby() -> (Schema, ClassId, ClassId) {
        let mut s = Schema::new();
        // Provider's clients set references Patient, which gets id 1.
        let provider = s.add_class(
            "Provider",
            vec![
                ("name", AttrType::Str),
                ("upin", AttrType::Int),
                ("address", AttrType::Str),
                ("specialty", AttrType::Str),
                ("office", AttrType::Str),
                ("clients", AttrType::SetRef(ClassId(1))),
            ],
        );
        let patient = s.add_class(
            "Patient",
            vec![
                ("name", AttrType::Str),
                ("mrn", AttrType::Int),
                ("age", AttrType::Int),
                ("sex", AttrType::Char),
                ("random_integer", AttrType::Int),
                ("num", AttrType::Int),
                ("primary_care_provider", AttrType::Ref(provider)),
            ],
        );
        (s, provider, patient)
    }

    fn rid(file: u32, page: u32, slot: u16) -> Rid {
        Rid::new(
            PageId {
                file: FileId(file),
                page_no: page,
            },
            slot,
        )
    }

    fn sample_patient(_s: &Schema, patient: ClassId, headroom: bool) -> (ObjectHeader, Vec<Value>) {
        let header = ObjectHeader::new(patient, headroom);
        let values = vec![
            Value::Str("Obelix Menhir Co".into()),
            Value::Int(42),
            Value::Int(30),
            Value::Char(b'M'),
            Value::Int(777_777),
            Value::Int(123_456),
            Value::Ref(rid(0, 17, 3)),
        ];
        (header, values)
    }

    #[test]
    fn patient_round_trip_and_size() {
        let (s, _, patient) = derby();
        let (header, values) = sample_patient(&s, patient, true);
        let bytes = encode(s.class(patient), &header, &values);
        // ~64 bytes: the paper's "about 60 bytes" per Patient.
        assert!(
            (55..=70).contains(&bytes.len()),
            "patient record is {} bytes",
            bytes.len()
        );
        let obj = decode(s.class(patient), &bytes).unwrap();
        assert_eq!(obj.header, header);
        assert_eq!(obj.values, values);
    }

    #[test]
    fn provider_round_trip_inline_set_and_size() {
        let (s, provider, _) = derby();
        let header = ObjectHeader::new(provider, true);
        let values = vec![
            Value::Str("Donald Duck MD..".into()),
            Value::Int(7),
            Value::Str("13 rue du Port..".into()),
            Value::Str("pediatrics......".into()),
            Value::Str("office 12.......".into()),
            Value::Set(SetValue::Inline(vec![
                rid(1, 5, 0),
                rid(1, 9, 4),
                rid(1, 2, 2),
            ])),
        ];
        let bytes = encode(s.class(provider), &header, &values);
        // ~122 bytes: the paper's "about 120 bytes" per Provider.
        assert!(
            (110..=135).contains(&bytes.len()),
            "provider record is {} bytes",
            bytes.len()
        );
        let obj = decode(s.class(provider), &bytes).unwrap();
        assert_eq!(obj.values, values);
    }

    #[test]
    fn overflow_set_round_trip() {
        let (s, provider, _) = derby();
        let header = ObjectHeader::new(provider, true);
        let values = vec![
            Value::Str("A".into()),
            Value::Int(1),
            Value::Str("B".into()),
            Value::Str("C".into()),
            Value::Str("D".into()),
            Value::Set(SetValue::Overflow {
                file: FileId(4),
                first_page: 120,
                count: 1000,
            }),
        ];
        let bytes = encode(s.class(provider), &header, &values);
        let obj = decode(s.class(provider), &bytes).unwrap();
        assert_eq!(obj.values[5], values[5]);
    }

    #[test]
    fn headroom_changes_size_by_sixteen_bytes() {
        let (s, _, patient) = derby();
        let (h1, values) = sample_patient(&s, patient, true);
        let (h0, _) = sample_patient(&s, patient, false);
        let with = encode(s.class(patient), &h1, &values).len();
        let without = encode(s.class(patient), &h0, &values).len();
        assert_eq!(with - without, 2 * INDEX_HEADROOM as usize);
    }

    #[test]
    fn index_membership_capacity_rules() {
        let mut h = ObjectHeader::new(ClassId(0), false);
        assert!(!h.add_index(3), "no headroom: needs widening");
        h.widen_index_area();
        assert!(h.add_index(3));
        assert!(h.add_index(3), "idempotent re-add");
        assert_eq!(h.index_ids, vec![3]);
        for i in 0..7u16 {
            assert!(h.add_index(10 + i));
        }
        assert!(!h.add_index(99), "nine indexes exceed headroom of 8");
        assert!(h.flags & flags::INDEXED != 0);
    }

    #[test]
    fn index_ids_survive_round_trip() {
        let (s, _, patient) = derby();
        let (mut header, values) = sample_patient(&s, patient, true);
        header.add_index(5);
        header.add_index(9);
        let bytes = encode(s.class(patient), &header, &values);
        let obj = decode(s.class(patient), &bytes).unwrap();
        assert_eq!(obj.header.index_ids, vec![5, 9]);
        assert_eq!(obj.header.index_capacity, INDEX_HEADROOM);
    }

    #[test]
    fn forwarder_round_trip() {
        let target = rid(2, 99, 1);
        let bytes = encode_forwarder(target);
        assert!(is_forwarder(&bytes));
        let (s, _, patient) = derby();
        match decode(s.class(patient), &bytes) {
            Err(DecodeError::Forwarded(r)) => assert_eq!(r, target),
            other => panic!("expected forwarder, got {other:?}"),
        }
        match peek_class(&bytes) {
            Err(DecodeError::Forwarded(r)) => assert_eq!(r, target),
            other => panic!("expected forwarder, got {other:?}"),
        }
    }

    #[test]
    fn peek_class_reads_only_header() {
        let (s, _, patient) = derby();
        let (header, values) = sample_patient(&s, patient, false);
        let bytes = encode(s.class(patient), &header, &values);
        assert_eq!(peek_class(&bytes).unwrap(), patient);
    }

    #[test]
    fn truncated_record_is_corrupt_not_panic() {
        let (s, _, patient) = derby();
        let (header, values) = sample_patient(&s, patient, true);
        let bytes = encode(s.class(patient), &header, &values);
        for cut in [0, 1, 4, 10, bytes.len() - 1] {
            match decode(s.class(patient), &bytes[..cut]) {
                Err(DecodeError::Corrupt(_)) => {}
                other => panic!("cut at {cut}: expected corrupt, got {other:?}"),
            }
        }
    }
}
