//! Packed rid lists: the storage form of collections.
//!
//! O2 collections are sets of object identifiers. The named roots of
//! the paper's schema (`Providers`, `Patients`) and the overflow form
//! of large `clients` sets (§2: sets over 4 KB go to a separate file)
//! are both stored as a *run*: a contiguous range of pages, each
//! holding one packed array of 8-byte rids. Scanning a collection is
//! then a sequential read of `ceil(count / 500)` pages followed by
//! per-object fetches — which is why, in the paper, scanning an extent
//! in the class-clustered organization is sequential while the
//! randomized organization pays for interleaving.

use crate::rid::{Rid, RID_BYTES};
use tq_pagestore::{FileId, PageId, StorageStack, PAGE_SIZE};

/// Rids per run page (500 × 8 B = 4000 B, fits a slotted page).
pub const RIDS_PER_PAGE: usize = 500;

/// A stored rid run: `count` rids packed into pages
/// `first_page .. first_page + page_count` of `file`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RidRun {
    /// The containing file.
    pub file: FileId,
    /// First page of the run.
    pub first_page: u32,
    /// Number of pages in the run.
    pub page_count: u32,
    /// Number of rids stored.
    pub count: u64,
}

impl RidRun {
    /// An empty run in `file` (no pages).
    pub fn empty(file: FileId) -> Self {
        Self {
            file,
            first_page: 0,
            page_count: 0,
            count: 0,
        }
    }
}

/// Writes `rids` as a fresh run at the end of `file`.
///
/// Pages are allocated and filled sequentially; the caller must not
/// interleave other allocations into the same file while writing (runs
/// must stay contiguous).
pub fn write_run(stack: &mut StorageStack, file: FileId, rids: &[Rid]) -> RidRun {
    if rids.is_empty() {
        return RidRun::empty(file);
    }
    let mut first_page = None;
    let mut page_count = 0u32;
    for chunk in rids.chunks(RIDS_PER_PAGE) {
        let pid = stack.allocate_page(file);
        if first_page.is_none() {
            first_page = Some(pid.page_no);
        }
        page_count += 1;
        let mut bytes = Vec::with_capacity(chunk.len() * RID_BYTES);
        for r in chunk {
            bytes.extend_from_slice(&r.encode());
        }
        stack.write_page(pid, |p| {
            p.insert(&bytes, PAGE_SIZE)
                .expect("a rid chunk always fits an empty page");
        });
    }
    RidRun {
        file,
        first_page: first_page.unwrap(),
        page_count,
        count: rids.len() as u64,
    }
}

/// Streaming reader over a [`RidRun`].
///
/// Holds no borrow of the stack: each call to [`RidRunCursor::next`]
/// re-enters the cache hierarchy (hits are free; page-boundary crossing
/// costs one read, sequential after the first).
#[derive(Clone, Debug)]
pub struct RidRunCursor {
    run: RidRun,
    next_index: u64,
}

impl RidRunCursor {
    /// A cursor positioned at the first rid.
    pub fn new(run: RidRun) -> Self {
        Self { run, next_index: 0 }
    }

    /// Rids not yet returned.
    pub fn remaining(&self) -> u64 {
        self.run.count - self.next_index
    }

    /// Reads the next rid, or `None` at end of run.
    pub fn next(&mut self, stack: &mut StorageStack) -> Option<Rid> {
        if self.next_index >= self.run.count {
            return None;
        }
        let page_off = (self.next_index / RIDS_PER_PAGE as u64) as u32;
        let within = (self.next_index % RIDS_PER_PAGE as u64) as usize;
        let pid = PageId {
            file: self.run.file,
            page_no: self.run.first_page + page_off,
        };
        let page = stack.read_page(pid);
        let record = page.read(0).expect("run page holds one record");
        let at = within * RID_BYTES;
        let rid = Rid::decode(&record[at..at + RID_BYTES]);
        self.next_index += 1;
        Some(rid)
    }

    /// Drains up to `max` rids into `out`, never crossing a run-page
    /// boundary. Each rid still goes through [`RidRunCursor::next`], so
    /// per-call cache counters (hits included) and read counts are
    /// unchanged; what changes is recency *order* — the chunk's run-page
    /// touches happen back-to-back instead of interleaved with whatever
    /// the caller does per rid. Batched executors therefore only chunk
    /// streams whose per-rid work touches no pages before the drain
    /// completes (or none at all, like inline sets); pipelines that
    /// fetch objects between run-page reads keep the one-at-a-time
    /// loop so cache eviction order is preserved exactly. Appends
    /// nothing at end of run.
    pub fn next_chunk(&mut self, stack: &mut StorageStack, max: usize, out: &mut Vec<Rid>) {
        if max == 0 || self.next_index >= self.run.count {
            return;
        }
        let page = self.next_index / RIDS_PER_PAGE as u64;
        let mut taken = 0;
        while taken < max
            && self.next_index < self.run.count
            && self.next_index / RIDS_PER_PAGE as u64 == page
        {
            let rid = self.next(stack).expect("index checked in bounds");
            out.push(rid);
            taken += 1;
        }
    }

    /// Collects every remaining rid (convenience for small runs/tests).
    pub fn collect_all(mut self, stack: &mut StorageStack) -> Vec<Rid> {
        let mut out = Vec::with_capacity(self.remaining() as usize);
        while let Some(r) = self.next(stack) {
            out.push(r);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tq_pagestore::{CacheConfig, CostModel};

    fn rid(n: u32) -> Rid {
        Rid::new(
            PageId {
                file: FileId(9),
                page_no: n,
            },
            (n % 7) as u16,
        )
    }

    fn stack() -> StorageStack {
        StorageStack::new(CostModel::sparc20(), CacheConfig::default())
    }

    #[test]
    fn write_and_read_small_run() {
        let mut s = stack();
        let f = s.create_file("coll");
        let rids: Vec<Rid> = (0..10).map(rid).collect();
        let run = write_run(&mut s, f, &rids);
        assert_eq!(run.page_count, 1);
        assert_eq!(run.count, 10);
        assert_eq!(RidRunCursor::new(run).collect_all(&mut s), rids);
    }

    #[test]
    fn multi_page_run_round_trips() {
        let mut s = stack();
        let f = s.create_file("coll");
        let n = RIDS_PER_PAGE * 3 + 37;
        let rids: Vec<Rid> = (0..n as u32).map(rid).collect();
        let run = write_run(&mut s, f, &rids);
        assert_eq!(run.page_count, 4);
        assert_eq!(RidRunCursor::new(run).collect_all(&mut s), rids);
    }

    #[test]
    fn empty_run() {
        let mut s = stack();
        let f = s.create_file("coll");
        let run = write_run(&mut s, f, &[]);
        assert_eq!(run.count, 0);
        assert_eq!(run.page_count, 0);
        let mut c = RidRunCursor::new(run);
        assert_eq!(c.next(&mut s), None);
    }

    #[test]
    fn two_runs_in_one_file_stay_disjoint() {
        let mut s = stack();
        let f = s.create_file("coll");
        let a: Vec<Rid> = (0..700).map(rid).collect();
        let b: Vec<Rid> = (1000..1600).map(rid).collect();
        let ra = write_run(&mut s, f, &a);
        let rb = write_run(&mut s, f, &b);
        assert_eq!(ra.first_page + ra.page_count, rb.first_page);
        assert_eq!(RidRunCursor::new(ra).collect_all(&mut s), a);
        assert_eq!(RidRunCursor::new(rb).collect_all(&mut s), b);
    }

    #[test]
    fn cold_scan_reads_each_page_once_sequentially() {
        let mut s = stack();
        let f = s.create_file("coll");
        let rids: Vec<Rid> = (0..(RIDS_PER_PAGE * 2) as u32).map(rid).collect();
        let run = write_run(&mut s, f, &rids);
        s.cold_restart();
        s.reset_metrics();
        let _ = RidRunCursor::new(run).collect_all(&mut s);
        let st = s.stats();
        assert_eq!(st.d2sc_read_pages, 2, "one physical read per run page");
        // First read random, second sequential.
        assert_eq!(
            s.clock().io_time(),
            s.model().read_page_random + s.model().read_page_sequential
        );
    }
}
