//! In-memory object representatives ("Handles").
//!
//! The paper's §4 diagnosis: every object touched in client memory gets
//! a ~60-byte *Handle* — flags, class-info pointer, index-list pointer,
//! pin count, version pointer, schema-history info — that must be
//! "allocated, updated and freed whenever necessary", and this CPU cost
//! dominates cold associative scans. O2 mitigates repeat access by
//! *delaying* handle destruction "as much as possible".
//!
//! [`HandleTable`] models exactly that: a pin-counted live map plus a
//! bounded delayed-free (zombie) pool. It reports *what happened* on
//! each operation ([`GetOutcome`], free counts) so the
//! [`ObjectStore`](crate::store::ObjectStore) can charge the matching
//! [`CpuEvent`](tq_pagestore::CpuEvent)s:
//!
//! * first get of an object → `HandleAlloc`
//! * get while live or zombied → `HandleTouch`
//! * unref → `HandleUnref` (pin drop only)
//! * zombie-pool eviction → `HandleFree` (the deferred teardown)
//!
//! so a one-pass scan pays alloc + unref + free per object
//! (the paper's ~0.125 ms), while repeated navigation to a hot parent
//! pays only touches.

use crate::rid::Rid;
use tq_fasthash::FxHashMap;
use tq_pagestore::LruCache;

/// Simulated size of one full object handle (paper §4.4: "the structure
/// takes 60 Bytes of memory").
pub const HANDLE_BYTES: u64 = 60;

/// Default capacity of the delayed-free pool.
pub const DEFAULT_ZOMBIE_CAPACITY: usize = 4096;

/// What a [`HandleTable::get`] did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GetOutcome {
    /// A fresh handle was allocated.
    Allocated,
    /// The handle was live (pinned); its pin count was bumped.
    Touched,
    /// The handle sat in the delayed-free pool and was revived.
    Revived,
}

/// Cumulative handle-traffic statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HandleStats {
    /// Fresh allocations.
    pub allocations: u64,
    /// Re-pins of live handles.
    pub touches: u64,
    /// Revivals from the delayed-free pool.
    pub revivals: u64,
    /// Pin drops.
    pub unrefs: u64,
    /// Actual teardowns (delayed-free evictions + explicit drain).
    pub frees: u64,
    /// High-water mark of simultaneously existing handles
    /// (live + zombie).
    pub peak_handles: u64,
}

impl HandleStats {
    /// Simulated peak memory the handles occupied.
    pub fn peak_bytes(&self) -> u64 {
        self.peak_handles * HANDLE_BYTES
    }
}

/// The handle table: pin-counted live handles plus a delayed-free pool.
#[derive(Clone)]
pub struct HandleTable {
    /// Pin counts by rid. Touched on every object access — FxHash, the
    /// same reasoning as the LRU key maps.
    live: FxHashMap<Rid, u32>,
    zombies: LruCache<Rid>,
    stats: HandleStats,
}

impl Default for HandleTable {
    fn default() -> Self {
        Self::new(DEFAULT_ZOMBIE_CAPACITY)
    }
}

impl HandleTable {
    /// Creates a table whose delayed-free pool holds up to
    /// `zombie_capacity` unpinned handles before real frees happen.
    pub fn new(zombie_capacity: usize) -> Self {
        Self {
            live: FxHashMap::default(),
            zombies: LruCache::new(zombie_capacity),
            stats: HandleStats::default(),
        }
    }

    fn note_peak(&mut self) {
        let now = (self.live.len() + self.zombies.len()) as u64;
        if now > self.stats.peak_handles {
            self.stats.peak_handles = now;
        }
    }

    /// Pins `rid`, reporting how the handle was obtained.
    pub fn get(&mut self, rid: Rid) -> GetOutcome {
        if let Some(pins) = self.live.get_mut(&rid) {
            *pins += 1;
            self.stats.touches += 1;
            return GetOutcome::Touched;
        }
        if self.zombies.remove(&rid) {
            self.live.insert(rid, 1);
            self.stats.revivals += 1;
            return GetOutcome::Revived;
        }
        self.live.insert(rid, 1);
        self.stats.allocations += 1;
        self.note_peak();
        GetOutcome::Allocated
    }

    /// Drops one pin. When the pin count reaches zero the handle moves
    /// to the delayed-free pool; returns the number of handles whose
    /// teardown this triggered (0 or 1 — a pool eviction).
    ///
    /// Panics on unref of a handle that was never pinned: that is a
    /// query-operator bug, not a data condition.
    pub fn unref(&mut self, rid: Rid) -> u64 {
        self.stats.unrefs += 1;
        let pins = self
            .live
            .get_mut(&rid)
            .unwrap_or_else(|| panic!("unref of unpinned handle {rid:?}"));
        *pins -= 1;
        if *pins > 0 {
            return 0;
        }
        self.live.remove(&rid);
        if self.zombies.capacity() == 0 {
            self.stats.frees += 1;
            return 1;
        }
        match self.zombies.insert(rid) {
            Some(_evicted) => {
                self.stats.frees += 1;
                self.note_peak();
                1
            }
            None => {
                self.note_peak();
                0
            }
        }
    }

    /// Tears down every unpinned handle (end of query / transaction).
    /// Returns the number of frees performed.
    pub fn drain_zombies(&mut self) -> u64 {
        let n = self.zombies.len() as u64;
        self.zombies.clear();
        self.stats.frees += n;
        n
    }

    /// Currently pinned handles.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// Handles parked in the delayed-free pool.
    pub fn zombie_count(&self) -> usize {
        self.zombies.len()
    }

    /// True if `rid` currently has a pinned handle.
    pub fn is_pinned(&self, rid: Rid) -> bool {
        self.live.contains_key(&rid)
    }

    /// Statistics so far.
    pub fn stats(&self) -> HandleStats {
        self.stats
    }

    /// Simulated bytes of handle memory right now.
    pub fn current_bytes(&self) -> u64 {
        (self.live.len() + self.zombies.len()) as u64 * HANDLE_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tq_pagestore::{FileId, PageId};

    fn rid(n: u32) -> Rid {
        Rid::new(
            PageId {
                file: FileId(0),
                page_no: n,
            },
            0,
        )
    }

    #[test]
    fn scan_pattern_alloc_unref_then_pool() {
        let mut t = HandleTable::new(2);
        assert_eq!(t.get(rid(1)), GetOutcome::Allocated);
        assert_eq!(t.unref(rid(1)), 0, "goes to pool, no teardown yet");
        assert_eq!(t.live_count(), 0);
        assert_eq!(t.zombie_count(), 1);
        // Two more distinct objects overflow the 2-slot pool.
        t.get(rid(2));
        assert_eq!(t.unref(rid(2)), 0);
        t.get(rid(3));
        assert_eq!(t.unref(rid(3)), 1, "pool eviction frees rid 1");
        assert_eq!(t.stats().frees, 1);
    }

    #[test]
    fn navigation_pattern_touches_hot_handle() {
        let mut t = HandleTable::new(8);
        assert_eq!(t.get(rid(9)), GetOutcome::Allocated);
        for _ in 0..100 {
            assert_eq!(t.get(rid(9)), GetOutcome::Touched);
            t.unref(rid(9));
        }
        t.unref(rid(9));
        assert_eq!(t.get(rid(9)), GetOutcome::Revived);
        let s = t.stats();
        assert_eq!(s.allocations, 1);
        assert_eq!(s.touches, 100);
        assert_eq!(s.revivals, 1);
    }

    #[test]
    fn pin_counting_keeps_handle_live() {
        let mut t = HandleTable::new(4);
        t.get(rid(5));
        t.get(rid(5));
        t.unref(rid(5));
        assert!(t.is_pinned(rid(5)), "one pin remains");
        t.unref(rid(5));
        assert!(!t.is_pinned(rid(5)));
    }

    #[test]
    #[should_panic(expected = "unref of unpinned handle")]
    fn unref_without_get_panics() {
        let mut t = HandleTable::new(4);
        t.unref(rid(1));
    }

    #[test]
    fn zero_capacity_pool_frees_immediately() {
        let mut t = HandleTable::new(0);
        t.get(rid(1));
        assert_eq!(t.unref(rid(1)), 1);
        assert_eq!(t.stats().frees, 1);
        assert_eq!(t.get(rid(1)), GetOutcome::Allocated, "nothing to revive");
    }

    #[test]
    fn drain_and_memory_accounting() {
        let mut t = HandleTable::new(16);
        for i in 0..10 {
            t.get(rid(i));
        }
        assert_eq!(t.current_bytes(), 10 * HANDLE_BYTES);
        for i in 0..10 {
            t.unref(rid(i));
        }
        assert_eq!(t.zombie_count(), 10);
        assert_eq!(t.drain_zombies(), 10);
        assert_eq!(t.current_bytes(), 0);
        assert_eq!(t.stats().peak_handles, 10);
        assert_eq!(t.stats().peak_bytes(), 600);
    }
}
