//! Physical record identifiers.
//!
//! The paper's O2 uses *Rids* — "physical addresses on disks" (§4.1) —
//! as object identifiers, and §5 deliberately studies pointer-based
//! algorithms over *physical* identifiers (in contrast to the logical
//! OIDs of Braumandl et al.). A [`Rid`] is therefore exactly a page
//! address plus a slot: following one is a page access, comparing two
//! tells you whether two objects share a page, and sorting a batch of
//! them sequentializes disk access (the Figure 7 trick).
//!
//! Encoded size is 8 bytes, matching the paper's "8 per address or
//! object identifier" (§2): file `u16`, page `u32`, slot `u16`.

use std::fmt;
use tq_pagestore::{FileId, PageId, SlotId};

/// A physical object identifier: file, page, slot.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Rid {
    /// Containing page.
    pub page: PageId,
    /// Slot within the page.
    pub slot: SlotId,
}

/// Number of bytes a [`Rid`] occupies on disk.
pub const RID_BYTES: usize = 8;

impl Rid {
    /// Builds a rid.
    pub fn new(page: PageId, slot: SlotId) -> Self {
        Self { page, slot }
    }

    /// Serializes into 8 bytes. Panics if the file id exceeds `u16`
    /// (a database has a handful of files).
    pub fn encode(&self) -> [u8; RID_BYTES] {
        let file: u16 = self
            .page
            .file
            .0
            .try_into()
            .expect("more than 65535 files are not supported");
        let mut out = [0u8; RID_BYTES];
        out[0..2].copy_from_slice(&file.to_le_bytes());
        out[2..6].copy_from_slice(&self.page.page_no.to_le_bytes());
        out[6..8].copy_from_slice(&self.slot.to_le_bytes());
        out
    }

    /// Deserializes 8 bytes produced by [`Rid::encode`].
    pub fn decode(bytes: &[u8]) -> Self {
        let file = u16::from_le_bytes([bytes[0], bytes[1]]);
        let page_no = u32::from_le_bytes([bytes[2], bytes[3], bytes[4], bytes[5]]);
        let slot = u16::from_le_bytes([bytes[6], bytes[7]]);
        Self {
            page: PageId {
                file: FileId(file as u32),
                page_no,
            },
            slot,
        }
    }

    /// The reserved "nil reference" bit pattern (all ones).
    pub fn nil() -> Self {
        Self {
            page: PageId {
                file: FileId(u16::MAX as u32),
                page_no: u32::MAX,
            },
            slot: u16::MAX,
        }
    }

    /// True for the nil sentinel.
    pub fn is_nil(&self) -> bool {
        *self == Self::nil()
    }
}

impl fmt::Debug for Rid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_nil() {
            write!(f, "@nil")
        } else {
            write!(
                f,
                "@{}:{}:{}",
                self.page.file.0, self.page.page_no, self.slot
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rid(file: u32, page: u32, slot: u16) -> Rid {
        Rid::new(
            PageId {
                file: FileId(file),
                page_no: page,
            },
            slot,
        )
    }

    #[test]
    fn encode_decode_round_trip() {
        for r in [
            rid(0, 0, 0),
            rid(3, 123_456, 77),
            rid(65_534, u32::MAX - 1, u16::MAX - 1),
        ] {
            assert_eq!(Rid::decode(&r.encode()), r);
        }
    }

    #[test]
    fn nil_round_trips_and_is_recognized() {
        let n = Rid::nil();
        assert!(n.is_nil());
        assert!(Rid::decode(&n.encode()).is_nil());
        assert!(!rid(0, 0, 0).is_nil());
    }

    #[test]
    fn ordering_follows_physical_position() {
        // Sorting rids sequentializes access: file, then page, then slot.
        let mut v = vec![rid(1, 0, 0), rid(0, 5, 3), rid(0, 5, 1), rid(0, 2, 9)];
        v.sort();
        assert_eq!(
            v,
            vec![rid(0, 2, 9), rid(0, 5, 1), rid(0, 5, 3), rid(1, 0, 0)]
        );
    }

    #[test]
    #[should_panic(expected = "files")]
    fn oversized_file_id_panics() {
        rid(70_000, 0, 0).encode();
    }
}
