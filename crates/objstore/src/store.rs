//! The object store: O2's engine surface, as the paper describes it.
//!
//! An [`ObjectStore`] combines the storage stack (pages + two cache
//! tiers + simulated clock), a [`Schema`], the [`HandleTable`] and a
//! catalog of named collections. It implements the behaviours the
//! paper's hard truths hinge on:
//!
//! * **Physical rids** — an object lives where it was created; pages
//!   are filled in creation order with a fill-factor slack for growth.
//! * **Forwarding** — an update that no longer fits relocates the
//!   record to the end of its file, leaving a forwarder; every later
//!   access pays an extra hop. ("This destroys the physical
//!   organization that you managed to impose", §3.2.)
//! * **Index membership in object headers** — adding the first index to
//!   a loaded collection widens every object header by 16 bytes,
//!   triggering a relocation storm
//!   ([`ObjectStore::register_index_on_collection`]).
//! * **Handle charging** — every object access allocates/touches an
//!   in-memory handle whose CPU cost is charged to the simulated clock.

use crate::handle::{GetOutcome, HandleStats, HandleTable};
use crate::record::{self, DecodeError, Object, ObjectHeader};
use crate::rid::Rid;
use crate::ridlist::{self, RidRun, RidRunCursor, RIDS_PER_PAGE};
#[cfg(test)]
use crate::schema::AttrType;
use crate::schema::{AttrId, ClassId, Schema};
use crate::value::{SetValue, Value};
use tq_fasthash::FxHashMap;
use tq_pagestore::{CpuEvent, FileId, IoStats, PageId, SimClock, StorageStack, PAGE_SIZE};

/// Default fill factor for data pages: the paper notes O2 "always
/// leaves some extra space to deal with growing strings or collections".
pub const DEFAULT_FILL_LIMIT: usize = PAGE_SIZE * 9 / 10;

/// A named collection: the class of its members and the rid run storing
/// them.
#[derive(Clone, Copy, Debug)]
pub struct CollectionInfo {
    /// Member class.
    pub class: ClassId,
    /// Backing rid run.
    pub run: RidRun,
    /// Distinct data pages holding the members at creation time — what
    /// a full scan of *this* collection touches. Under shared-file
    /// organizations (composition, randomized) this is smaller than the
    /// file's page count, which also holds the other class's objects.
    pub data_pages: u64,
}

/// Outcome of [`ObjectStore::register_index_on_collection`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WideningReport {
    /// Objects visited.
    pub objects: u64,
    /// Objects whose header had to be widened (rewritten).
    pub widened: u64,
    /// Objects that no longer fit their page and were relocated.
    pub relocated: u64,
}

/// A fetched object together with its *canonical* rid (post-forwarding).
#[derive(Clone, Debug)]
pub struct Fetched {
    /// Where the object actually lives now.
    pub rid: Rid,
    /// The decoded object.
    pub object: Object,
}

/// An RAII fetch: a pinned handle that *must* go back through
/// [`ObjectStore::release_guard`].
///
/// [`ObjectStore::fetch`]/[`ObjectStore::release`] rely on every call
/// site remembering the release — including the easy-to-miss
/// deleted-object `continue` paths. A guard makes the forgotten release
/// impossible to ship: dropping one that was never released panics in
/// debug builds (tests), so any leaked pin fails loudly instead of
/// silently skewing the handle counters the paper's analysis rests on.
/// Release builds let the drop pass (the handle leaks until
/// `end_of_query`, exactly as a forgotten `release()` would have).
#[derive(Debug)]
pub struct ObjGuard {
    rid: Rid,
    /// `Some` while the pin is armed; taken by
    /// [`ObjectStore::release_guard`].
    object: Option<Object>,
}

impl ObjGuard {
    /// The canonical rid (post-forwarding).
    pub fn rid(&self) -> Rid {
        self.rid
    }

    /// The decoded object.
    pub fn object(&self) -> &Object {
        self.object.as_ref().expect("guard already released")
    }

    /// Whether the object carries the logical-delete flag.
    pub fn is_deleted(&self) -> bool {
        self.object().header.is_deleted()
    }
}

impl Drop for ObjGuard {
    fn drop(&mut self) {
        if self.object.is_some() && cfg!(debug_assertions) && !std::thread::panicking() {
            panic!(
                "ObjGuard for {:?} dropped without ObjectStore::release_guard: leaked handle pin",
                self.rid
            );
        }
    }
}

/// A reusable arena of decoded objects for [`ObjectStore::fetch_batch`].
///
/// Holds one recycled [`Object`] shell per slot; shells persist across
/// batches (and across queries, when the caller keeps the arena), so a
/// warm batch loop never allocates. Between a `fetch_batch` and its
/// `release_batch` the arena is *armed*: `len()` objects are pinned and
/// readable through [`ObjBatch::get`].
#[derive(Debug, Default)]
pub struct ObjBatch {
    /// Canonical (post-forwarding) rids of the armed entries.
    rids: Vec<Rid>,
    /// Shell pool; the first `rids.len()` hold armed objects, the rest
    /// are spares from earlier, larger batches.
    shells: Vec<Object>,
}

impl ObjBatch {
    /// Armed entries.
    pub fn len(&self) -> usize {
        self.rids.len()
    }

    /// True when nothing is armed.
    pub fn is_empty(&self) -> bool {
        self.rids.is_empty()
    }

    /// Canonical rid of entry `i`.
    pub fn rid(&self, i: usize) -> Rid {
        self.rids[i]
    }

    /// Decoded object of entry `i`.
    pub fn object(&self, i: usize) -> &Object {
        &self.shells[i]
    }

    /// `(canonical rid, object)` of entry `i`.
    pub fn get(&self, i: usize) -> (Rid, &Object) {
        (self.rids[i], &self.shells[i])
    }
}

/// The object store.
///
/// `Clone` duplicates the entire simulated client/server/disk state;
/// clones evolve independently (used for per-cell measurements on
/// worker threads).
#[derive(Clone)]
pub struct ObjectStore {
    stack: StorageStack,
    schema: Schema,
    handles: HandleTable,
    collections: FxHashMap<String, CollectionInfo>,
    /// Current append target per file.
    tails: FxHashMap<FileId, u32>,
    fill_limit: usize,
    /// Recycled [`Object`] shells for [`ObjectStore::fetch`] —
    /// returning one via [`ObjectStore::release`] lets the next fetch
    /// of a same-shaped object decode without heap allocation.
    spare: Vec<Object>,
    /// Reusable encode buffer for [`ObjectStore::insert`] and
    /// [`ObjectStore::update`] — bulk loads encode millions of records
    /// through one allocation.
    scratch: Vec<u8>,
}

/// Recycled objects kept per store; scan loops hold at most a couple
/// of fetches at a time.
const OBJECT_POOL_CAP: usize = 16;

impl ObjectStore {
    /// Builds a store over `stack` with the given schema.
    pub fn new(schema: Schema, stack: StorageStack) -> Self {
        Self {
            stack,
            schema,
            handles: HandleTable::default(),
            collections: FxHashMap::default(),
            tails: FxHashMap::default(),
            fill_limit: DEFAULT_FILL_LIMIT,
            spare: Vec::new(),
            scratch: Vec::new(),
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The underlying storage stack (index structures and operators
    /// read pages through it so everything shares one clock).
    pub fn stack(&self) -> &StorageStack {
        &self.stack
    }

    /// Mutable access to the storage stack.
    pub fn stack_mut(&mut self) -> &mut StorageStack {
        &mut self.stack
    }

    /// Overrides the data-page fill factor (bytes of record space used
    /// per page before a new page is opened).
    pub fn set_fill_limit(&mut self, bytes: usize) {
        assert!(bytes > 64 && bytes <= PAGE_SIZE);
        self.fill_limit = bytes;
    }

    /// Creates a data or overflow file.
    pub fn create_file(&mut self, name: impl Into<String>) -> FileId {
        self.stack.create_file(name)
    }

    // ------------------------------------------------------------------
    // Object creation and access
    // ------------------------------------------------------------------

    /// Inserts a new object of `class` at the end of `file`.
    ///
    /// `with_index_headroom` reserves the 8-slot index area (what O2
    /// does when the target collection is already indexed; creating
    /// objects *without* headroom and indexing later triggers the §3.2
    /// relocation storm).
    pub fn insert(
        &mut self,
        file: FileId,
        class: ClassId,
        values: &[Value],
        with_index_headroom: bool,
    ) -> Rid {
        let header = ObjectHeader::new(class, with_index_headroom);
        let mut bytes = std::mem::take(&mut self.scratch);
        record::encode_into(self.schema.class(class), &header, values, &mut bytes);
        let rid = self.append_record(file, &bytes);
        self.scratch = bytes;
        rid
    }

    /// Appends raw record bytes to `file`, opening a new page when the
    /// tail page is full (respecting the fill factor).
    fn append_record(&mut self, file: FileId, bytes: &[u8]) -> Rid {
        let fill = self.fill_limit;
        if let Some(&tail) = self.tails.get(&file) {
            let pid = PageId {
                file,
                page_no: tail,
            };
            if let Some(slot) = self.stack.write_page(pid, |p| p.insert(bytes, fill)) {
                return Rid::new(pid, slot);
            }
        }
        let pid = self.stack.allocate_page(file);
        self.tails.insert(file, pid.page_no);
        let slot = self
            .stack
            .write_page(pid, |p| p.insert(bytes, fill))
            .expect("record must fit an empty page");
        Rid::new(pid, slot)
    }

    /// Resolves forwarders: returns the canonical rid and raw record
    /// bytes. Each hop is a (charged) page access.
    fn resolve(&mut self, mut rid: Rid) -> (Rid, Vec<u8>) {
        loop {
            let page = self.stack.read_page(rid.page);
            let bytes = page
                .read(rid.slot)
                .unwrap_or_else(|| panic!("dangling rid {rid:?}"))
                .to_vec();
            if record::is_forwarder(&bytes) {
                rid = match record::decode(self.schema.class(ClassId(0)), &bytes) {
                    Err(DecodeError::Forwarded(next)) => next,
                    _ => unreachable!("is_forwarder guaranteed a forwarder"),
                };
                continue;
            }
            return (rid, bytes);
        }
    }

    /// Fetches an object, pinning its handle and charging the access.
    ///
    /// Decodes straight from the page image into a recycled [`Object`]
    /// (see [`ObjectStore::release`]) — no intermediate byte copy, and
    /// no allocation at all once the pool is warm.
    pub fn fetch(&mut self, mut rid: Rid) -> Fetched {
        let mut object = self.spare.pop().unwrap_or_else(|| Object {
            header: ObjectHeader::new(ClassId(0), false),
            values: Vec::new(),
        });
        let canonical = loop {
            // `page` borrows `self.stack`; the schema and the decode
            // target are disjoint, so no bytes leave the page.
            let page = self.stack.read_page(rid.page);
            let bytes = page
                .read(rid.slot)
                .unwrap_or_else(|| panic!("dangling rid {rid:?}"));
            if record::is_forwarder(bytes) {
                rid = match record::decode(self.schema.class(ClassId(0)), bytes) {
                    Err(DecodeError::Forwarded(next)) => next,
                    _ => unreachable!("is_forwarder guaranteed a forwarder"),
                };
                continue;
            }
            let class = record::peek_class(bytes).expect("resolved record is an object");
            record::decode_into(self.schema.class(class), bytes, &mut object)
                .unwrap_or_else(|e| panic!("corrupt record at {rid:?}: {e:?}"));
            break rid;
        };
        match self.handles.get(canonical) {
            GetOutcome::Allocated => self.stack.charge(CpuEvent::HandleAlloc, 1),
            GetOutcome::Touched | GetOutcome::Revived => {
                self.stack.charge(CpuEvent::HandleTouch, 1)
            }
        }
        Fetched {
            rid: canonical,
            object,
        }
    }

    /// Unpins the handle and recycles the object's allocations for the
    /// next [`ObjectStore::fetch`]. Semantically identical to
    /// `unref(f.rid)` followed by dropping `f` — scan and join loops
    /// use this so a paper-scale pass stays off the allocator.
    pub fn release(&mut self, f: Fetched) {
        self.unref(f.rid);
        if self.spare.len() < OBJECT_POOL_CAP {
            self.spare.push(f.object);
        }
    }

    /// Like [`ObjectStore::fetch`], but the pin comes back as an RAII
    /// [`ObjGuard`]: forgetting [`ObjectStore::release_guard`] panics in
    /// debug builds. Query operators fetch exclusively through this.
    pub fn fetch_guard(&mut self, rid: Rid) -> ObjGuard {
        let f = self.fetch(rid);
        ObjGuard {
            rid: f.rid,
            object: Some(f.object),
        }
    }

    /// Consumes a guard: unpins the handle and recycles the object
    /// shell, exactly like [`ObjectStore::release`].
    pub fn release_guard(&mut self, mut guard: ObjGuard) {
        let object = guard.object.take().expect("guard already released");
        let rid = guard.rid;
        self.release(Fetched { rid, object });
    }

    /// Fetches `rid`, runs `f` with the guarded object, and releases —
    /// the pairing lives in one place, so early returns (deleted
    /// objects) cannot leak the pin.
    pub fn with_fetched<R>(&mut self, rid: Rid, f: impl FnOnce(&mut Self, &ObjGuard) -> R) -> R {
        let guard = self.fetch_guard(rid);
        let out = f(self, &guard);
        self.release_guard(guard);
        out
    }

    /// Fetches a batch of **distinct** objects into `out`, decoding
    /// each off its page exactly as [`ObjectStore::fetch`] would:
    /// per-rid page reads (forwarder hops included), then the handle
    /// get and its charge, in input order. Input order is preserved
    /// deliberately — LRU recency is order-sensitive, and batching is
    /// an execution detail that must not move a single counter.
    ///
    /// The rids (after forwarding) must be pairwise distinct: a
    /// duplicate would find its own still-pinned handle (`Touched`
    /// where a fetch/release loop sees `Revived`) and skew the handle
    /// counters. Every batched executor stream satisfies this by
    /// construction; debug builds verify it.
    pub fn fetch_batch(&mut self, rids: &[Rid], out: &mut ObjBatch) {
        debug_assert!(out.is_empty(), "fetch_batch into an armed ObjBatch");
        out.rids.clear();
        for (i, &rid) in rids.iter().enumerate() {
            if out.shells.len() <= i {
                out.shells.push(self.spare.pop().unwrap_or_else(|| Object {
                    header: ObjectHeader::new(ClassId(0), false),
                    values: Vec::new(),
                }));
            }
            let canonical = {
                let mut rid = rid;
                loop {
                    let page = self.stack.read_page(rid.page);
                    let bytes = page
                        .read(rid.slot)
                        .unwrap_or_else(|| panic!("dangling rid {rid:?}"));
                    if record::is_forwarder(bytes) {
                        rid = match record::decode(self.schema.class(ClassId(0)), bytes) {
                            Err(DecodeError::Forwarded(next)) => next,
                            _ => unreachable!("is_forwarder guaranteed a forwarder"),
                        };
                        continue;
                    }
                    let class = record::peek_class(bytes).expect("resolved record is an object");
                    record::decode_into(self.schema.class(class), bytes, &mut out.shells[i])
                        .unwrap_or_else(|e| panic!("corrupt record at {rid:?}: {e:?}"));
                    break rid;
                }
            };
            match self.handles.get(canonical) {
                GetOutcome::Allocated => self.stack.charge(CpuEvent::HandleAlloc, 1),
                GetOutcome::Touched | GetOutcome::Revived => {
                    self.stack.charge(CpuEvent::HandleTouch, 1)
                }
            }
            out.rids.push(canonical);
        }
        #[cfg(debug_assertions)]
        {
            let mut seen: std::collections::HashSet<Rid> = std::collections::HashSet::new();
            for &r in &out.rids {
                assert!(
                    seen.insert(r),
                    "fetch_batch requires distinct rids, got {r:?} twice"
                );
            }
        }
    }

    /// Unpins every entry of an armed batch, in fetch order — the same
    /// unref sequence (and the same `HandleUnref`/`HandleFree` charges)
    /// a fetch/release loop produces, just deferred to the end of the
    /// batch. With distinct rids the zombie pool sees the identical
    /// push order, so later revivals and evictions are unchanged. The
    /// shells stay in the arena for the next batch.
    pub fn release_batch(&mut self, batch: &mut ObjBatch) {
        for i in 0..batch.rids.len() {
            let rid = batch.rids[i];
            self.unref(rid);
        }
        batch.rids.clear();
    }

    /// Unpins a handle previously pinned by [`ObjectStore::fetch`].
    pub fn unref(&mut self, rid: Rid) {
        let frees = self.handles.unref(rid);
        self.stack.charge(CpuEvent::HandleUnref, 1);
        if frees > 0 {
            self.stack.charge(CpuEvent::HandleFree, frees);
        }
    }

    /// Charges the CPU cost of reading one attribute of a pinned
    /// object: an attribute fetch, plus a literal-handle get when the
    /// attribute is a separate literal record (strings, §4.4).
    pub fn charge_attr_access(&mut self, class: ClassId, attr: AttrId) {
        self.stack.charge(CpuEvent::AttrGet, 1);
        if self.schema.class(class).attrs[attr].ty.is_literal_record() {
            self.stack.charge(CpuEvent::HandleGetLiteral, 1);
        }
    }

    /// Ends a query: tears down the delayed-free handle pool and
    /// charges the deferred frees.
    pub fn end_of_query(&mut self) {
        let frees = self.handles.drain_zombies();
        if frees > 0 {
            self.stack.charge(CpuEvent::HandleFree, frees);
        }
    }

    // ------------------------------------------------------------------
    // Updates, relocation, index membership
    // ------------------------------------------------------------------

    /// Rewrites the attribute values of the object at `rid`, keeping
    /// its header. Returns the object's (possibly new) rid: when the
    /// record no longer fits its page it is relocated to the end of its
    /// file and a forwarder is left behind.
    pub fn update(&mut self, rid: Rid, values: &[Value]) -> Rid {
        let (canonical, header) = self.resolve_header(rid);
        let mut bytes = std::mem::take(&mut self.scratch);
        record::encode_into(self.schema.class(header.class), &header, values, &mut bytes);
        let final_rid = self.rewrite(canonical, &bytes);
        self.scratch = bytes;
        final_rid
    }

    /// Follows forwarders to the canonical record and decodes only its
    /// header — no byte copy, no attribute decode. The update path
    /// replaces every value anyway, so the old attributes are dead
    /// weight.
    fn resolve_header(&mut self, mut rid: Rid) -> (Rid, ObjectHeader) {
        loop {
            let page = self.stack.read_page(rid.page);
            let bytes = page
                .read(rid.slot)
                .unwrap_or_else(|| panic!("dangling rid {rid:?}"));
            match record::decode_header(bytes) {
                Ok(header) => return (rid, header),
                Err(DecodeError::Forwarded(next)) => rid = next,
                Err(e) => panic!("corrupt record at {rid:?}: {e:?}"),
            }
        }
    }

    /// Writes `new_bytes` at `rid`, relocating on overflow. Returns the
    /// final rid.
    fn rewrite(&mut self, rid: Rid, new_bytes: &[u8]) -> Rid {
        let updated = self
            .stack
            .write_page(rid.page, |p| p.update(rid.slot, new_bytes));
        if updated {
            return rid;
        }
        // Relocate: append, then leave a forwarder (always fits in
        // place of the old record, which was larger).
        let new_rid = self.append_record(rid.page.file, new_bytes);
        let fwd = record::encode_forwarder(new_rid);
        let ok = self
            .stack
            .write_page(rid.page, |p| p.update(rid.slot, &fwd));
        assert!(ok, "forwarder must fit in place of the old record");
        new_rid
    }

    /// Logically deletes the object at `rid`: its header gains the
    /// `DELETED` flag in place (same record size). Physical rids keep
    /// resolving — O2 cannot reclaim a slot other objects may
    /// reference — and every scan skips flagged objects. Returns the
    /// canonical rid.
    pub fn mark_deleted(&mut self, rid: Rid) -> Rid {
        let (canonical, bytes) = self.resolve(rid);
        let class = record::peek_class(&bytes).expect("resolved record is an object");
        let mut object = record::decode(self.schema.class(class), &bytes)
            .unwrap_or_else(|e| panic!("corrupt record at {canonical:?}: {e:?}"));
        object.header.mark_deleted();
        let new_bytes = record::encode(self.schema.class(class), &object.header, &object.values);
        let final_rid = self.rewrite(canonical, &new_bytes);
        debug_assert_eq!(final_rid, canonical, "flagging never grows the record");
        final_rid
    }

    /// Records that the object at `rid` now belongs to `index_id`,
    /// widening (and possibly relocating) the record if its header has
    /// no free index slot. Returns the final rid and whether the record
    /// was relocated.
    pub fn add_index_membership(&mut self, rid: Rid, index_id: u16) -> (Rid, bool, bool) {
        let (canonical, bytes) = self.resolve(rid);
        let class = record::peek_class(&bytes).expect("resolved record is an object");
        let mut object = record::decode(self.schema.class(class), &bytes)
            .unwrap_or_else(|e| panic!("corrupt record at {canonical:?}: {e:?}"));
        if object.header.add_index(index_id) {
            // Fits the existing headroom: rewrite in place (same size).
            let new_bytes =
                record::encode(self.schema.class(class), &object.header, &object.values);
            let final_rid = self.rewrite(canonical, &new_bytes);
            debug_assert_eq!(final_rid, canonical);
            return (final_rid, false, false);
        }
        object.header.widen_index_area();
        assert!(object.header.add_index(index_id), "widened header has room");
        let new_bytes = record::encode(self.schema.class(class), &object.header, &object.values);
        let final_rid = self.rewrite(canonical, &new_bytes);
        (final_rid, true, final_rid != canonical)
    }

    /// Registers `index_id` on every member of the named collection —
    /// the paper's "index after load" operation. When members were
    /// created without index headroom this rewrites (and partly
    /// relocates) the whole collection; the report says how bad it was.
    pub fn register_index_on_collection(&mut self, name: &str, index_id: u16) -> WideningReport {
        let info = self.collection(name);
        let mut cursor = RidRunCursor::new(info.run);
        let mut report = WideningReport::default();
        while let Some(rid) = cursor.next(&mut self.stack) {
            let (_final, widened, relocated) = self.add_index_membership(rid, index_id);
            report.objects += 1;
            report.widened += u64::from(widened);
            report.relocated += u64::from(relocated);
        }
        report
    }

    // ------------------------------------------------------------------
    // Collections
    // ------------------------------------------------------------------

    /// Materializes a named collection (e.g. the `Providers` root) as a
    /// rid run in its own file.
    pub fn create_collection(&mut self, name: &str, class: ClassId, rids: &[Rid]) {
        assert!(
            !self.collections.contains_key(name),
            "duplicate collection {name:?}"
        );
        let file = self.stack.create_file(format!("{name}.coll"));
        let run = ridlist::write_run(&mut self.stack, file, rids);
        let data_pages = {
            let mut pages: Vec<PageId> = rids.iter().map(|r| r.page).collect();
            pages.sort_unstable();
            pages.dedup();
            pages.len() as u64
        };
        self.collections.insert(
            name.to_string(),
            CollectionInfo {
                class,
                run,
                data_pages,
            },
        );
    }

    /// Looks a collection up; panics with the name when absent (see
    /// [`ObjectStore::try_collection`] for the non-panicking form).
    pub fn collection(&self, name: &str) -> CollectionInfo {
        self.try_collection(name)
            .unwrap_or_else(|| panic!("no collection named {name:?}"))
    }

    /// Looks a collection up.
    pub fn try_collection(&self, name: &str) -> Option<CollectionInfo> {
        self.collections.get(name).copied()
    }

    /// Names of all collections (sorted, for deterministic output).
    pub fn collection_names(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self.collections.keys().map(String::as_str).collect();
        v.sort_unstable();
        v
    }

    /// A cursor over a named collection's members.
    pub fn collection_cursor(&self, name: &str) -> RidRunCursor {
        RidRunCursor::new(self.collection(name).run)
    }

    /// A cursor over a set attribute's members. Inline sets iterate in
    /// memory (the owning record is already pinned); overflow sets read
    /// their rid-run pages through the cache.
    pub fn set_cursor<'a>(&self, set: &'a SetValue) -> SetCursor<'a> {
        match set {
            SetValue::Inline(rids) => SetCursor::Inline { rids, at: 0 },
            SetValue::Overflow {
                file,
                first_page,
                count,
            } => SetCursor::Overflow(RidRunCursor::new(RidRun {
                file: *file,
                first_page: *first_page,
                page_count: (*count as u64).div_ceil(RIDS_PER_PAGE as u64) as u32,
                count: *count as u64,
            })),
        }
    }

    /// Writes a large set's members to the overflow file, returning the
    /// [`SetValue::Overflow`] descriptor to store in the owning record.
    pub fn write_overflow_set(&mut self, overflow_file: FileId, rids: &[Rid]) -> SetValue {
        let run = ridlist::write_run(&mut self.stack, overflow_file, rids);
        SetValue::Overflow {
            file: overflow_file,
            first_page: run.first_page,
            count: rids.len() as u32,
        }
    }

    // ------------------------------------------------------------------
    // Metrics passthrough
    // ------------------------------------------------------------------

    /// Flushes dirty pages (charging writes, and log writes when
    /// logging is enabled).
    /// Adopts one file wholesale from `src` — pages (shared, see
    /// [`StorageStack::adopt_file_from`]) plus this store's
    /// file-level bookkeeping: the append tail. The MVCC merge path
    /// uses this to splice a committed transaction's files into a
    /// newer epoch; collection-level catalog entries are positional
    /// (rid lists don't move on adoption) and need no fixup.
    pub fn adopt_file_from(&mut self, src: &ObjectStore, file: FileId) {
        self.stack.adopt_file_from(&src.stack, file);
        match src.tails.get(&file) {
            Some(&tail) => {
                self.tails.insert(file, tail);
            }
            None => {
                self.tails.remove(&file);
            }
        }
    }

    pub fn commit(&mut self) {
        self.stack.commit();
    }

    /// Cold restart: commit, drop both caches (the paper's
    /// between-queries server shutdown).
    pub fn cold_restart(&mut self) {
        self.stack.cold_restart();
    }

    /// Zeroes clock and I/O counters.
    pub fn reset_metrics(&mut self) {
        self.stack.reset_metrics();
    }

    /// I/O counters.
    pub fn stats(&self) -> IoStats {
        self.stack.stats()
    }

    /// The simulated clock.
    pub fn clock(&self) -> &SimClock {
        self.stack.clock()
    }

    /// Charges CPU events (query operators use this for their own
    /// work: hashing, sorting, result construction).
    pub fn charge(&mut self, event: CpuEvent, count: u64) {
        self.stack.charge(event, count);
    }

    /// Handle-traffic statistics.
    pub fn handle_stats(&self) -> HandleStats {
        self.handles.stats()
    }

    /// Handles currently pinned (live, not in the delayed-free pool).
    /// Zero between queries unless an operator leaked a guard.
    pub fn live_handles(&self) -> usize {
        self.handles.live_count()
    }

    /// Size of one encoded object of `class` with the given values —
    /// used by workload builders to compute placement.
    pub fn encoded_len(
        &self,
        class: ClassId,
        values: &[Value],
        with_index_headroom: bool,
    ) -> usize {
        let header = ObjectHeader::new(class, with_index_headroom);
        record::encode(self.schema.class(class), &header, values).len()
    }
}

/// Cursor over a set attribute's members.
#[derive(Clone, Debug)]
pub enum SetCursor<'a> {
    /// Inline set: members borrowed from the decoded object (no copy).
    Inline {
        /// The member rids.
        rids: &'a [Rid],
        /// Next index to return.
        at: usize,
    },
    /// Overflow set: members streamed from rid-run pages.
    Overflow(RidRunCursor),
}

impl SetCursor<'_> {
    /// Next member rid.
    pub fn next(&mut self, stack: &mut StorageStack) -> Option<Rid> {
        match self {
            SetCursor::Inline { rids, at } => {
                let r = rids.get(*at).copied();
                *at += 1;
                r
            }
            SetCursor::Overflow(c) => c.next(stack),
        }
    }

    /// Number of members not yet returned.
    pub fn remaining(&self) -> u64 {
        match self {
            SetCursor::Inline { rids, at } => (rids.len() - at) as u64,
            SetCursor::Overflow(c) => c.remaining(),
        }
    }

    /// True for inline sets — the members live in the decoded owning
    /// record, so draining them touches no pages. A batched caller can
    /// chunk an inline set's fan-out freely: the page-access sequence
    /// is the member fetches alone, identical to a one-at-a-time loop.
    /// Overflow sets interleave rid-run page reads with the member
    /// fetches; reordering those would perturb cache recency.
    pub fn is_inline(&self) -> bool {
        matches!(self, SetCursor::Inline { .. })
    }

    /// Drains up to `max` member rids into `out`. Inline sets drain
    /// from memory (no I/O, any chunk size); overflow sets delegate to
    /// [`RidRunCursor::next_chunk`], which stops at rid-run page
    /// boundaries so a batched caller keeps the scalar page-access
    /// interleave. Appends nothing when the set is exhausted.
    pub fn next_chunk(&mut self, stack: &mut StorageStack, max: usize, out: &mut Vec<Rid>) {
        match self {
            SetCursor::Inline { rids, at } => {
                let end = (*at + max).min(rids.len());
                out.extend_from_slice(&rids[*at..end]);
                *at = end;
            }
            SetCursor::Overflow(c) => c.next_chunk(stack, max, out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tq_pagestore::{CacheConfig, CostModel};

    /// A tiny one-class schema: Item { key: Int, label: Str }.
    fn item_store() -> (ObjectStore, ClassId, FileId) {
        let mut schema = Schema::new();
        let item = schema.add_class(
            "Item",
            vec![("key", AttrType::Int), ("label", AttrType::Str)],
        );
        let stack = StorageStack::new(CostModel::sparc20(), CacheConfig::default());
        let mut store = ObjectStore::new(schema, stack);
        let file = store.create_file("items");
        (store, item, file)
    }

    fn item_values(key: i32, label: &str) -> Vec<Value> {
        vec![Value::Int(key), Value::Str(label.to_string())]
    }

    #[test]
    fn insert_fetch_round_trip() {
        let (mut store, item, file) = item_store();
        let rid = store.insert(file, item, &item_values(7, "seven"), true);
        let fetched = store.fetch(rid);
        assert_eq!(fetched.rid, rid);
        assert_eq!(fetched.object.values, item_values(7, "seven"));
        assert_eq!(fetched.object.header.class, item);
        store.unref(rid);
    }

    #[test]
    fn guarded_fetch_round_trip_matches_fetch() {
        let (mut store, item, file) = item_store();
        let rid = store.insert(file, item, &item_values(7, "seven"), true);
        store.cold_restart();
        store.reset_metrics();
        let g = store.fetch_guard(rid);
        assert_eq!(g.rid(), rid);
        assert!(!g.is_deleted());
        assert_eq!(g.object().values, item_values(7, "seven"));
        store.release_guard(g);
        // Same charges as a fetch/unref pair.
        let m = store.stack().model().clone();
        assert_eq!(store.clock().cpu_time(), m.handle_alloc + m.handle_unref);
        let h = store.handle_stats();
        assert_eq!(h.allocations, 1);
        assert_eq!(h.unrefs, 1);
    }

    #[test]
    fn with_fetched_releases_on_early_return() {
        let (mut store, item, file) = item_store();
        let rid = store.insert(file, item, &item_values(1, "victim"), true);
        store.mark_deleted(rid);
        store.cold_restart();
        store.reset_metrics();
        let skipped = store.with_fetched(rid, |_store, g| {
            if g.is_deleted() {
                return true; // the easy-to-leak continue path
            }
            false
        });
        assert!(skipped);
        let h = store.handle_stats();
        assert_eq!(h.unrefs, 1, "early return still unpins");
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "leaked handle pin")]
    fn dropping_an_armed_guard_panics_in_debug() {
        let (mut store, item, file) = item_store();
        let rid = store.insert(file, item, &item_values(1, "a"), true);
        let guard = store.fetch_guard(rid);
        drop(guard); // never released: the leak check must fire
    }

    #[test]
    fn objects_fill_pages_in_creation_order() {
        let (mut store, item, file) = item_store();
        let rids: Vec<Rid> = (0..200)
            .map(|i| store.insert(file, item, &item_values(i, "xxxxxxxxxxxxxxxx"), true))
            .collect();
        // Rid order equals creation order.
        let mut sorted = rids.clone();
        sorted.sort();
        assert_eq!(sorted, rids);
        // Several records share pages.
        assert!(store.stack().disk().file_len(file) < 200);
    }

    #[test]
    fn fill_factor_leaves_slack() {
        let (mut store, item, file) = item_store();
        store.set_fill_limit(PAGE_SIZE / 2);
        for i in 0..100 {
            store.insert(file, item, &item_values(i, "0123456789abcdef"), true);
        }
        let pages = store.stack().disk().file_len(file);
        // ~47 bytes per record incl. slot; half-page fill → ~43/page.
        assert!(pages >= 2, "fill limit forces extra pages, got {pages}");
    }

    #[test]
    fn update_in_place_keeps_rid() {
        let (mut store, item, file) = item_store();
        let rid = store.insert(file, item, &item_values(1, "abcdefgh"), true);
        let new_rid = store.update(rid, &item_values(2, "abcd"));
        assert_eq!(new_rid, rid);
        let f = store.fetch(rid);
        assert_eq!(f.object.values, item_values(2, "abcd"));
        store.unref(rid);
    }

    #[test]
    fn growing_update_relocates_and_forwards() {
        let (mut store, item, file) = item_store();
        // Fill the first page almost completely.
        let first = store.insert(file, item, &item_values(0, "tiny"), true);
        for i in 1..90 {
            store.insert(
                file,
                item,
                &item_values(i, "0123456789abcdefghij0123456789abcdef"),
                true,
            );
        }
        // Grow `first` beyond what page slack allows.
        let big = "x".repeat(3000);
        let new_rid = store.update(first, &item_values(0, &big));
        assert_ne!(new_rid, first, "record must relocate");
        // Fetch through the *old* rid follows the forwarder.
        let f = store.fetch(first);
        assert_eq!(f.rid, new_rid);
        assert_eq!(f.object.values[1], Value::Str(big));
        store.unref(f.rid);
    }

    #[test]
    fn forwarder_chase_costs_an_extra_page_access() {
        let (mut store, item, file) = item_store();
        let first = store.insert(file, item, &item_values(0, "tiny"), true);
        for i in 1..90 {
            store.insert(
                file,
                item,
                &item_values(i, "0123456789abcdefghij0123456789abcdef"),
                true,
            );
        }
        let moved = store.update(first, &item_values(0, &"x".repeat(3000)));
        store.cold_restart();
        store.reset_metrics();
        let f = store.fetch(first);
        store.unref(f.rid);
        let via_old = store.stats().client_misses;
        store.cold_restart();
        store.reset_metrics();
        let f = store.fetch(moved);
        store.unref(f.rid);
        let direct = store.stats().client_misses;
        assert!(
            via_old > direct,
            "forwarded access ({via_old} faults) must cost more than direct ({direct})"
        );
    }

    #[test]
    fn handle_charges_hit_the_clock() {
        let (mut store, item, file) = item_store();
        let rid = store.insert(file, item, &item_values(1, "a"), true);
        store.cold_restart();
        store.reset_metrics();
        let f = store.fetch(rid);
        store.unref(f.rid);
        let cpu = store.clock().cpu_time();
        let m = store.stack().model().clone();
        assert_eq!(cpu, m.handle_alloc + m.handle_unref);
        // Second fetch revives the zombied handle: a touch, not an alloc.
        let before = store.clock().cpu_time();
        let f = store.fetch(rid);
        store.unref(f.rid);
        assert_eq!(
            store.clock().cpu_time() - before,
            m.handle_touch + m.handle_unref
        );
    }

    #[test]
    fn attr_access_charges_literal_handles_for_strings() {
        let (mut store, item, _) = item_store();
        store.reset_metrics();
        store.charge_attr_access(item, 0); // Int
        let int_cost = store.clock().cpu_time();
        store.charge_attr_access(item, 1); // Str
        let str_cost = store.clock().cpu_time() - int_cost;
        let m = store.stack().model();
        assert_eq!(int_cost, m.attr_get);
        assert_eq!(str_cost, m.attr_get + m.handle_literal);
    }

    #[test]
    fn collections_round_trip() {
        let (mut store, item, file) = item_store();
        let rids: Vec<Rid> = (0..700)
            .map(|i| store.insert(file, item, &item_values(i, "l"), true))
            .collect();
        store.create_collection("Items", item, &rids);
        let info = store.collection("Items");
        assert_eq!(info.class, item);
        assert_eq!(info.run.count, 700);
        let mut cursor = store.collection_cursor("Items");
        let mut seen = Vec::new();
        while let Some(r) = cursor.next(store.stack_mut()) {
            seen.push(r);
        }
        assert_eq!(seen, rids);
        assert!(store.try_collection("Nope").is_none());
        assert_eq!(store.collection_names(), vec!["Items"]);
    }

    #[test]
    fn overflow_sets_round_trip() {
        let (mut store, item, file) = item_store();
        let members: Vec<Rid> = (0..1000)
            .map(|i| store.insert(file, item, &item_values(i, "m"), true))
            .collect();
        let ovf = store.create_file("overflow");
        let set = store.write_overflow_set(ovf, &members);
        assert_eq!(set.len(), 1000);
        let mut cursor = store.set_cursor(&set);
        assert_eq!(cursor.remaining(), 1000);
        let mut seen = Vec::new();
        while let Some(r) = cursor.next(store.stack_mut()) {
            seen.push(r);
        }
        assert_eq!(seen, members);
    }

    #[test]
    fn inline_set_cursor_needs_no_io() {
        let (mut store, item, file) = item_store();
        let a = store.insert(file, item, &item_values(1, "a"), true);
        let b = store.insert(file, item, &item_values(2, "b"), true);
        let set = SetValue::Inline(vec![a, b]);
        store.cold_restart();
        store.reset_metrics();
        let mut cursor = store.set_cursor(&set);
        let mut seen = Vec::new();
        while let Some(r) = cursor.next(store.stack_mut()) {
            seen.push(r);
        }
        assert_eq!(seen, vec![a, b]);
        assert_eq!(store.stats().client_misses, 0);
    }

    #[test]
    fn mark_deleted_flags_in_place() {
        let (mut store, item, file) = item_store();
        let rid = store.insert(file, item, &item_values(1, "victim"), true);
        let other = store.insert(file, item, &item_values(2, "bystander"), true);
        let final_rid = store.mark_deleted(rid);
        assert_eq!(final_rid, rid, "flagging must not relocate");
        let f = store.fetch(rid);
        assert!(f.object.header.is_deleted());
        assert_eq!(f.object.values, item_values(1, "victim"), "values survive");
        store.unref(f.rid);
        let f = store.fetch(other);
        assert!(!f.object.header.is_deleted());
        store.unref(f.rid);
        // Deleting through a forwarder flags the relocated record.
        let moved = store.update(other, &item_values(2, &"z".repeat(3000)));
        if moved != other {
            store.mark_deleted(other); // via the old rid
            let f = store.fetch(moved);
            assert!(f.object.header.is_deleted());
            store.unref(f.rid);
        }
    }

    #[test]
    fn index_membership_with_headroom_stays_in_place() {
        let (mut store, item, file) = item_store();
        let rid = store.insert(file, item, &item_values(1, "a"), true);
        let (final_rid, widened, relocated) = store.add_index_membership(rid, 5);
        assert_eq!(final_rid, rid);
        assert!(!widened);
        assert!(!relocated);
        let f = store.fetch(rid);
        assert_eq!(f.object.header.index_ids, vec![5]);
        store.unref(rid);
    }

    #[test]
    fn first_index_without_headroom_widens_every_object() {
        let (mut store, item, file) = item_store();
        // Pack objects with NO index headroom at 100% fill: widening
        // must relocate many of them.
        store.set_fill_limit(PAGE_SIZE);
        let rids: Vec<Rid> = (0..300)
            .map(|i| store.insert(file, item, &item_values(i, "0123456789abcdef"), false))
            .collect();
        store.create_collection("Items", item, &rids);
        let pages_before = store.stack().disk().file_len(file);
        let report = store.register_index_on_collection("Items", 1);
        assert_eq!(report.objects, 300);
        assert_eq!(report.widened, 300, "every header must widen");
        assert!(
            report.relocated > 100,
            "full pages cannot absorb 16 extra bytes each; {} relocated",
            report.relocated
        );
        assert!(store.stack().disk().file_len(file) > pages_before);
        // Objects remain reachable through forwarders and carry the
        // index id.
        let f = store.fetch(rids[0]);
        assert_eq!(f.object.header.index_ids, vec![1]);
        store.unref(f.rid);
    }

    #[test]
    fn index_with_headroom_avoids_relocation_entirely() {
        let (mut store, item, file) = item_store();
        let rids: Vec<Rid> = (0..300)
            .map(|i| store.insert(file, item, &item_values(i, "0123456789abcdef"), true))
            .collect();
        store.create_collection("Items", item, &rids);
        let report = store.register_index_on_collection("Items", 1);
        assert_eq!(report.widened, 0);
        assert_eq!(report.relocated, 0);
    }

    #[test]
    fn fetch_batch_charges_exactly_like_a_fetch_loop() {
        // Two identical stores, same rid stream: a fetch/unref loop on
        // one, fetch_batch/release_batch on the other. Every observable
        // counter must match — batching is an execution detail.
        let build = || {
            let (mut store, item, file) = item_store();
            let rids: Vec<Rid> = (0..250)
                .map(|i| store.insert(file, item, &item_values(i, "payload"), true))
                .collect();
            store.cold_restart();
            store.reset_metrics();
            (store, rids)
        };
        let (mut a, rids_a) = build();
        for &rid in &rids_a {
            // Immediate release — the strictest comparison: the batch
            // defers releases to the chunk end, and for a duplicate-free
            // stream that deferral must be counter-invisible.
            let f = a.fetch(rid);
            assert!(!f.object.header.is_deleted());
            a.unref(rid);
        }
        let (mut b, rids_b) = build();
        assert_eq!(rids_a, rids_b);
        let mut batch = ObjBatch::default();
        for chunk in rids_b.chunks(64) {
            b.fetch_batch(chunk, &mut batch);
            assert_eq!(batch.len(), chunk.len());
            for (i, &want) in chunk.iter().enumerate() {
                let (rid, obj) = batch.get(i);
                assert_eq!(rid, want);
                assert!(!obj.header.is_deleted());
            }
            b.release_batch(&mut batch);
            assert!(batch.is_empty());
        }
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.handle_stats(), b.handle_stats());
        assert_eq!(a.clock().io_time(), b.clock().io_time());
        assert_eq!(a.clock().cpu_time(), b.clock().cpu_time());
    }

    #[test]
    fn fetch_batch_follows_forwarders_to_canonical_rids() {
        let (mut store, item, file) = item_store();
        store.set_fill_limit(PAGE_SIZE);
        let rids: Vec<Rid> = (0..300)
            .map(|i| store.insert(file, item, &item_values(i, "0123456789abcdef"), false))
            .collect();
        store.create_collection("Items", item, &rids);
        // Widening without headroom relocates objects behind forwarders.
        let report = store.register_index_on_collection("Items", 1);
        assert!(report.relocated > 0, "need forwarded objects to test");
        store.end_of_query();
        let mut batch = ObjBatch::default();
        store.fetch_batch(&rids[..50], &mut batch);
        for (i, &orig) in rids[..50].iter().enumerate() {
            let (canonical, obj) = batch.get(i);
            let scalar = store.fetch(orig);
            assert_eq!(canonical, scalar.rid, "same canonical rid as fetch");
            assert_eq!(obj.values, scalar.object.values);
            store.unref(scalar.rid);
        }
        store.release_batch(&mut batch);
    }
}
