//! Merging per-shard replies into the single response a client sees.
//!
//! The `Stat`-level arithmetic is `tq_statsdb::merge_stats`; this
//! module lifts it to the response vocabulary and fixes the outcome
//! precedence a gather obeys:
//!
//! 1. **unavailability** — any unreachable shard fails the whole
//!    request (`ShardUnavailable`); a partial answer is never returned;
//! 2. **error** — any shard-side `Error` propagates, prefixed with the
//!    shard index;
//! 3. **overload** — any shard-level shed makes the request shed; the
//!    shard's `SHARD_SELF` marker is rewritten to its index so clients
//!    can distinguish shard-level from router-level sheds;
//! 4. **deadline** — any fired deadline reports the largest elapsed
//!    simulated time;
//! 5. **success** — results sum, stats merge.

use tq_server::proto::{PartialStat, Response, ShardAbort, SHARD_SELF};
use tq_statsdb::merge_stats;

/// One gather: per shard (in shard order), either a decoded reply or
/// the transport-level reason the shard could not answer.
pub(crate) type Gathered = Vec<Result<Response, String>>;

/// The precedence-ordered failure outcomes shared by every request
/// shape: unavailability, then error, then overload. `None` means all
/// shards produced an admissible reply.
pub(crate) fn failures(parts: &Gathered) -> Option<Response> {
    for (i, p) in parts.iter().enumerate() {
        if let Err(detail) = p {
            return Some(Response::ShardUnavailable {
                shard: i as u32,
                detail: detail.clone(),
            });
        }
    }
    for (i, p) in parts.iter().enumerate() {
        if let Ok(Response::Error { msg }) = p {
            return Some(Response::Error {
                msg: format!("shard {i}: {msg}"),
            });
        }
    }
    for (i, p) in parts.iter().enumerate() {
        if let Ok(Response::Overloaded { queue_depth, shard }) = p {
            // A shard reports its own admission edge as SHARD_SELF;
            // seen from the router that edge has a name.
            let shard = if *shard == SHARD_SELF {
                i as u32
            } else {
                *shard
            };
            return Some(Response::Overloaded {
                queue_depth: *queue_depth,
                shard,
            });
        }
    }
    None
}

/// A shard answered with a response shape the request cannot produce.
pub(crate) fn out_of_protocol(shard: usize, got: &Response) -> Response {
    let tag = match got {
        Response::SessionOpened { .. } => "SessionOpened",
        Response::QueryOk { .. } => "QueryOk",
        Response::Overloaded { .. } => "Overloaded",
        Response::DeadlineExceeded { .. } => "DeadlineExceeded",
        Response::SessionClosed { .. } => "SessionClosed",
        Response::Error { .. } => "Error",
        Response::UpdateOk { .. } => "UpdateOk",
        Response::Committed { .. } => "Committed",
        Response::Aborted { .. } => "Aborted",
        Response::RolledBack { .. } => "RolledBack",
        Response::ScatterOk { .. } => "ScatterOk",
        Response::ShardUnavailable { .. } => "ShardUnavailable",
        Response::ShardsAborted { .. } => "ShardsAborted",
    };
    Response::Error {
        msg: format!("shard {shard} answered out of protocol: {tag}"),
    }
}

/// Any fired deadline wins over success; the client sees the largest
/// simulated time any shard had consumed when its deadline fired.
fn deadline(parts: &Gathered) -> Option<Response> {
    let mut worst = None;
    for p in parts {
        if let Ok(Response::DeadlineExceeded { elapsed_nanos }) = p {
            let cur = worst.unwrap_or(0);
            worst = Some(cur.max(*elapsed_nanos));
        }
    }
    worst.map(|elapsed_nanos| Response::DeadlineExceeded { elapsed_nanos })
}

/// Merges a gathered query (or chain) into one `QueryOk` — or, for a
/// scattered request, a `ScatterOk` that keeps the per-shard partials
/// as the audit trail.
pub(crate) fn merge_query(parts: &Gathered, scatter: bool) -> Response {
    if let Some(fail) = failures(parts) {
        return fail;
    }
    if let Some(resp) = deadline(parts) {
        return resp;
    }
    let mut oks = Vec::with_capacity(parts.len());
    for (i, p) in parts.iter().enumerate() {
        match p {
            Ok(Response::QueryOk { results, stat }) => oks.push(PartialStat {
                shard: i as u32,
                results: *results,
                stat: (**stat).clone(),
            }),
            Ok(other) => return out_of_protocol(i, other),
            Err(_) => unreachable!("unavailability already handled"),
        }
    }
    let results = oks.iter().map(|p| p.results).sum();
    let stat = merge_stats(oks.iter().map(|p| &p.stat)).expect("gather is never empty");
    if scatter {
        Response::ScatterOk {
            results,
            stat: Box::new(stat),
            partials: oks,
        }
    } else {
        Response::QueryOk {
            results,
            stat: Box::new(stat),
        }
    }
}

/// Merges a gathered update: rewritten rows sum, stats merge.
pub(crate) fn merge_update(parts: &Gathered) -> Response {
    if let Some(fail) = failures(parts) {
        return fail;
    }
    if let Some(resp) = deadline(parts) {
        return resp;
    }
    let mut updated = 0;
    let mut stats = Vec::with_capacity(parts.len());
    for (i, p) in parts.iter().enumerate() {
        match p {
            Ok(Response::UpdateOk { updated: u, stat }) => {
                updated += *u;
                stats.push((**stat).clone());
            }
            Ok(other) => return out_of_protocol(i, other),
            Err(_) => unreachable!("unavailability already handled"),
        }
    }
    Response::UpdateOk {
        updated,
        stat: Box::new(merge_stats(stats.iter()).expect("gather is never empty")),
    }
}

/// Merges a gathered commit. All shards committed → one `Committed`
/// with the highest published epoch and the summed page count. Any
/// first-committer-wins loss → `ShardsAborted` naming the shards that
/// did publish and, per losing shard, the conflict that beat it.
pub(crate) fn merge_commit(parts: &Gathered) -> Response {
    if let Some(fail) = failures(parts) {
        return fail;
    }
    let mut committed = Vec::new();
    let mut aborts = Vec::new();
    let (mut epoch, mut pages) = (0u64, 0u64);
    for (i, p) in parts.iter().enumerate() {
        match p {
            Ok(Response::Committed { epoch: e, pages: n }) => {
                committed.push(i as u32);
                epoch = epoch.max(*e);
                pages += *n;
            }
            Ok(Response::Aborted {
                conflict_file,
                conflict_epoch,
            }) => aborts.push(ShardAbort {
                shard: i as u32,
                conflict_file: conflict_file.clone(),
                conflict_epoch: *conflict_epoch,
            }),
            Ok(other) => return out_of_protocol(i, other),
            Err(_) => unreachable!("unavailability already handled"),
        }
    }
    if aborts.is_empty() {
        Response::Committed { epoch, pages }
    } else {
        Response::ShardsAborted { committed, aborts }
    }
}

/// Merges a gathered rollback: discarded pages sum.
pub(crate) fn merge_abort(parts: &Gathered) -> Response {
    if let Some(fail) = failures(parts) {
        return fail;
    }
    let mut discarded_pages = 0;
    for (i, p) in parts.iter().enumerate() {
        match p {
            Ok(Response::RolledBack {
                discarded_pages: n, ..
            }) => discarded_pages += *n,
            Ok(other) => return out_of_protocol(i, other),
            Err(_) => unreachable!("unavailability already handled"),
        }
    }
    Response::RolledBack { discarded_pages }
}

/// Merges a gathered close: the teardown counters sum.
pub(crate) fn merge_close(parts: &Gathered) -> Response {
    if let Some(fail) = failures(parts) {
        return fail;
    }
    let (mut drained, mut leaked, mut uncommitted) = (0u64, 0u64, 0u64);
    for (i, p) in parts.iter().enumerate() {
        match p {
            Ok(Response::SessionClosed {
                drained_handles,
                leaked_handles,
                uncommitted_pages,
            }) => {
                drained += *drained_handles;
                leaked += *leaked_handles;
                uncommitted += *uncommitted_pages;
            }
            Ok(other) => return out_of_protocol(i, other),
            Err(_) => unreachable!("unavailability already handled"),
        }
    }
    Response::SessionClosed {
        drained_handles: drained,
        leaked_handles: leaked,
        uncommitted_pages: uncommitted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tq_statsdb::{QueryDesc, Stat, SystemDesc};

    fn tiny_stat(faults: u64) -> Stat {
        Stat {
            numtest: 1,
            query: QueryDesc {
                cold: true,
                projection_type: "select".into(),
                selectivities: vec![],
                text: "q".into(),
            },
            database: vec![],
            cluster: "class".into(),
            algo: "chj".into(),
            system: SystemDesc {
                server_cache_kb: 1,
                client_cache_kb: 1,
                same_workstation: true,
            },
            cc_pagefaults: faults,
            cc_lookups: faults * 2,
            elapsed_time: 1.0,
            rpcs_number: 0,
            rpcs_total_mb: 0.0,
            d2sc_read_pages: 0,
            sc2cc_read_pages: 0,
            cc_miss_rate: 50.0,
            sc_miss_rate: 0.0,
            operators: vec![],
        }
    }

    fn ok(results: u64) -> Result<Response, String> {
        Ok(Response::QueryOk {
            results,
            stat: Box::new(tiny_stat(10)),
        })
    }

    #[test]
    fn precedence_unavailable_beats_error_beats_overload_beats_deadline() {
        let unavailable = Err("gone".to_string());
        let error = Ok(Response::Error { msg: "bad".into() });
        let overloaded = Ok(Response::Overloaded {
            queue_depth: 3,
            shard: SHARD_SELF,
        });
        let deadline = Ok(Response::DeadlineExceeded { elapsed_nanos: 9 });

        let parts = vec![
            ok(1),
            deadline.clone(),
            overloaded.clone(),
            error.clone(),
            unavailable,
        ];
        assert!(matches!(
            merge_query(&parts, false),
            Response::ShardUnavailable { shard: 4, .. }
        ));
        let parts = vec![ok(1), deadline.clone(), overloaded.clone(), error];
        assert!(matches!(merge_query(&parts, false), Response::Error { .. }));
        // A shard's SHARD_SELF marker is rewritten to its index.
        let parts = vec![ok(1), deadline.clone(), overloaded];
        assert_eq!(
            merge_query(&parts, false),
            Response::Overloaded {
                queue_depth: 3,
                shard: 2
            }
        );
        let parts = vec![ok(1), deadline];
        assert_eq!(
            merge_query(&parts, false),
            Response::DeadlineExceeded { elapsed_nanos: 9 }
        );
    }

    #[test]
    fn query_merge_sums_results_and_merges_stats() {
        let parts = vec![ok(2), ok(3)];
        match merge_query(&parts, false) {
            Response::QueryOk { results, stat } => {
                assert_eq!(results, 5);
                assert_eq!(stat.cc_pagefaults, 20);
                assert_eq!(stat.cc_lookups, 40);
                assert_eq!(stat.cc_miss_rate, 50.0);
            }
            other => panic!("unexpected {other:?}"),
        }
        match merge_query(&parts, true) {
            Response::ScatterOk {
                results, partials, ..
            } => {
                assert_eq!(results, 5);
                assert_eq!(partials.len(), 2);
                assert_eq!(partials[0].shard, 0);
                assert_eq!(partials[1].shard, 1);
                assert_eq!(partials[1].results, 3);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn commit_merge_distinguishes_clean_and_aborted_gathers() {
        let committed = |epoch, pages| Ok(Response::Committed { epoch, pages });
        let aborted = Ok(Response::Aborted {
            conflict_file: "Patients.dat".into(),
            conflict_epoch: 7,
        });
        assert_eq!(
            merge_commit(&vec![committed(2, 5), committed(4, 1)]),
            Response::Committed { epoch: 4, pages: 6 }
        );
        match merge_commit(&vec![committed(2, 5), aborted]) {
            Response::ShardsAborted { committed, aborts } => {
                assert_eq!(committed, vec![0]);
                assert_eq!(aborts.len(), 1);
                assert_eq!(aborts[0].shard, 1);
                assert_eq!(aborts[0].conflict_file, "Patients.dat");
                assert_eq!(aborts[0].conflict_epoch, 7);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn out_of_protocol_replies_become_typed_errors() {
        let parts = vec![Ok(Response::SessionOpened { session: 3 })];
        assert!(matches!(merge_query(&parts, false), Response::Error { .. }));
        assert!(matches!(merge_commit(&parts), Response::Error { .. }));
    }
}
