//! # tq-router — scatter-gather serving over engine shards
//!
//! The serving layer's scale-out axis. A [`Router`] fronts N engine
//! shards — each a full `tq-server` instance with its own `Database`,
//! session table, worker pool, and MVCC epoch chain — holding the
//! provider trees whose base-build rids hash to it (see
//! `tq_workload::partition_database`). The router speaks the existing
//! length-prefixed wire protocol on **both** sides: clients cannot
//! tell a router from a single server, and shards cannot tell a
//! router from an ordinary client.
//!
//! Per client request the router fans out to every shard (Rid-hash
//! placement plus range predicates mean any query or update can touch
//! any shard), then gathers the replies in shard order and merges
//! them:
//!
//! * query/chain results add up; per-operator `Stat` records merge by
//!   exact field-wise integer summation (`tq_statsdb::merge_stats`,
//!   the oracle the differential tests pin);
//! * commits validate per shard — all-committed merges to one
//!   `Committed { epoch: max, pages: sum }`, any first-committer-wins
//!   loss becomes a typed `ShardsAborted` naming winners and losers;
//! * a shard that cannot be reached (or dies mid-reply) degrades the
//!   link and fails the request with a typed `ShardUnavailable` — the
//!   router never returns a partial answer and never hangs, because
//!   the gather phase drains every outstanding reply even after a
//!   failure (each link stays in request/response lockstep).
//!
//! Admission control exists at both layers: each shard sheds at its
//! own queue (`Overloaded { shard: i }` after the router rewrites the
//! shard's `SHARD_SELF`), and the router sheds at its own edge
//! (`Overloaded { shard: SHARD_SELF }`) when `max_inflight` gated
//! requests are already running — the load generator tells the two
//! apart in its CSV.

mod merge;
mod router;

pub use router::{Router, RouterConfig, RouterStatsSnapshot, ShardEndpoint};
