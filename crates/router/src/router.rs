//! The router proper: shard endpoints, per-connection scatter-gather,
//! session fan-out, and the router-edge admission gate.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use tq_server::proto::{read_frame, write_frame, Request, Response, SHARD_SELF};
use tq_server::{DuplexStream, Server, ServerConfig};
use tq_workload::{partition_database, Database};

use crate::merge;

/// Where one engine shard lives.
pub enum ShardEndpoint {
    /// A shard in this process, reached over deterministic in-process
    /// duplex streams (the default; the load generator uses this).
    Local(Arc<Server>),
    /// A shard reachable over TCP. The failure tests use this: killing
    /// the remote end exercises the `ShardUnavailable` path.
    Tcp(SocketAddr),
}

/// Router sizing.
#[derive(Clone, Copy, Debug)]
pub struct RouterConfig {
    /// Worker threads per shard (when the router starts the shards
    /// itself). A fair comparison against an unsharded server with J
    /// workers uses `max(1, J / shards)` here.
    pub workers_per_shard: usize,
    /// Per-shard admission-queue depth.
    pub queue_depth: usize,
    /// Router-edge admission: at most this many gated requests
    /// (queries, chains, scatters, updates) run at once; the next one
    /// is shed with `Overloaded { shard: SHARD_SELF }` before any
    /// shard sees it.
    pub max_inflight: usize,
    /// Morsel-parallel degree forwarded to every shard server
    /// (`TQ_PARALLEL`): intra-query parallelism composes with the
    /// inter-shard kind — each shard's slice of a scattered query
    /// fans out to this many morsel workers.
    pub parallel: usize,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            workers_per_shard: 4,
            queue_depth: 16,
            max_inflight: 64,
            parallel: 1,
        }
    }
}

#[derive(Default)]
struct RouterStats {
    routed: AtomicU64,
    shed_router: AtomicU64,
    shard_unavailable: AtomicU64,
}

/// A point-in-time copy of the router counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RouterStatsSnapshot {
    /// Gated requests admitted and fanned out.
    pub routed: u64,
    /// Requests shed at the router's own admission edge (never reached
    /// a shard).
    pub shed_router: u64,
    /// Requests failed because a shard was unreachable.
    pub shard_unavailable: u64,
}

struct RouterInner {
    endpoints: Vec<ShardEndpoint>,
    /// Router session → per-shard sessions, in shard order. Global
    /// across connections, like the shard servers' own session tables.
    sessions: Mutex<HashMap<u64, Vec<u64>>>,
    next_session: AtomicU64,
    inflight: AtomicUsize,
    max_inflight: usize,
    stats: RouterStats,
}

/// The scatter-gather front end. Speaks the `tq-server` wire protocol
/// to clients; holds one connection per shard per client connection.
pub struct Router {
    inner: Arc<RouterInner>,
    shards: Vec<Arc<Server>>,
    conn_threads: Mutex<Vec<JoinHandle<()>>>,
}

impl Router {
    /// Starts one in-process engine shard per database and a router in
    /// front of them. The caller chooses the partitioning (usually
    /// `tq_workload::partition_database`).
    pub fn start(shard_bases: Vec<Database>, config: RouterConfig) -> Self {
        assert!(!shard_bases.is_empty(), "a router needs at least one shard");
        let shards: Vec<Arc<Server>> = shard_bases
            .into_iter()
            .map(|base| {
                Arc::new(Server::start(
                    base,
                    ServerConfig {
                        workers: config.workers_per_shard.max(1),
                        queue_depth: config.queue_depth,
                        parallel: config.parallel.max(1),
                    },
                ))
            })
            .collect();
        let endpoints = shards
            .iter()
            .map(|s| ShardEndpoint::Local(Arc::clone(s)))
            .collect();
        let mut router = Self::start_with_endpoints(endpoints, config);
        router.shards = shards;
        router
    }

    /// Partitions `base` by Rid hash and starts a `shards`-way router
    /// over the pieces.
    pub fn start_partitioned(base: &Database, shards: u32, config: RouterConfig) -> Self {
        Self::start(partition_database(base, shards), config)
    }

    /// Starts a router over externally managed shards (local handles
    /// or TCP addresses). Unreachable TCP shards degrade to
    /// `ShardUnavailable` per request rather than failing startup.
    pub fn start_with_endpoints(endpoints: Vec<ShardEndpoint>, config: RouterConfig) -> Self {
        assert!(!endpoints.is_empty(), "a router needs at least one shard");
        Self {
            inner: Arc::new(RouterInner {
                endpoints,
                sessions: Mutex::new(HashMap::new()),
                next_session: AtomicU64::new(1),
                inflight: AtomicUsize::new(0),
                max_inflight: config.max_inflight.max(1),
                stats: RouterStats::default(),
            }),
            shards: Vec::new(),
            conn_threads: Mutex::new(Vec::new()),
        }
    }

    /// Opens an in-process client connection, exactly like
    /// [`Server::connect_in_proc`] — clients cannot tell the two
    /// apart.
    pub fn connect_in_proc(&self) -> DuplexStream {
        let (client, router_end) = tq_server::duplex_pair();
        let inner = Arc::clone(&self.inner);
        let handle = std::thread::Builder::new()
            .name("tq-route".into())
            .spawn(move || route_conn(&inner, router_end))
            .expect("spawn router connection handler");
        self.conn_threads.lock().unwrap().push(handle);
        client
    }

    /// Serves the wire protocol on a bound TCP listener, one handler
    /// thread per accepted connection.
    pub fn listen(&self, listener: TcpListener) {
        let inner = Arc::clone(&self.inner);
        std::thread::Builder::new()
            .name("tq-route-accept".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    let Ok(stream) = stream else { return };
                    let inner = Arc::clone(&inner);
                    let _ = std::thread::Builder::new()
                        .name("tq-route-tcp".into())
                        .spawn(move || route_conn(&inner, stream));
                }
            })
            .expect("spawn router acceptor");
    }

    /// The in-process engine shards (empty when the router was started
    /// over external endpoints).
    pub fn shards(&self) -> &[Arc<Server>] {
        &self.shards
    }

    /// Router counters.
    pub fn stats(&self) -> RouterStatsSnapshot {
        let s = &self.inner.stats;
        RouterStatsSnapshot {
            routed: s.routed.load(Ordering::Relaxed),
            shed_router: s.shed_router.load(Ordering::Relaxed),
            shard_unavailable: s.shard_unavailable.load(Ordering::Relaxed),
        }
    }

    /// Joins the connection handlers, then shuts the in-process shards
    /// down. Callers must drop their client streams first.
    pub fn shutdown(self) {
        let mut threads = self.conn_threads.lock().unwrap();
        for handle in threads.drain(..) {
            let _ = handle.join();
        }
        drop(threads);
        // The handlers held the only other references to the inner
        // state (and through it, the Local endpoints): once they are
        // joined, the shard servers can be unwrapped and drained.
        drop(self.inner);
        for shard in self.shards {
            if let Ok(server) = Arc::try_unwrap(shard) {
                server.shutdown();
            }
        }
    }
}

/// One shard connection within one client connection. `Down` is
/// sticky: once a link fails, every later request on this client
/// connection reports that shard unavailable rather than guessing at
/// the peer's framing state.
enum Link {
    Up(Box<dyn Channel>),
    Down(String),
}

trait Channel: Read + Write + Send {}
impl<T: Read + Write + Send> Channel for T {}

fn open_link(endpoint: &ShardEndpoint) -> Link {
    match endpoint {
        ShardEndpoint::Local(server) => Link::Up(Box::new(server.connect_in_proc())),
        ShardEndpoint::Tcp(addr) => match TcpStream::connect(addr) {
            Ok(stream) => Link::Up(Box::new(stream)),
            Err(e) => Link::Down(format!("connect failed: {e}")),
        },
    }
}

/// One client connection: the same strict request→response loop as a
/// shard's `serve_conn`, with fan-out in the middle.
fn route_conn<S: Read + Write>(inner: &Arc<RouterInner>, mut client: S) {
    let mut links: Vec<Link> = inner.endpoints.iter().map(open_link).collect();
    loop {
        let payload = match read_frame(&mut client) {
            Ok(p) => p,
            Err(_) => return,
        };
        let resp = match Request::decode(&payload) {
            Ok(req) => handle_request(inner, &mut links, req),
            Err(e) => Response::Error {
                msg: format!("bad request: {e}"),
            },
        };
        if matches!(resp, Response::ShardUnavailable { .. }) {
            inner
                .stats
                .shard_unavailable
                .fetch_add(1, Ordering::Relaxed);
        }
        if write_frame(&mut client, &resp.encode()).is_err() {
            return;
        }
    }
}

/// Writes the per-shard requests to every live link, then reads the
/// replies back in shard order. The two phases are what makes this a
/// scatter-gather rather than N sequential round trips: every shard
/// is working while the router waits on the first reply. A failed
/// link is marked `Down` and reported — but the gather keeps draining
/// the other links so each one stays in request/response lockstep.
fn fan_out(links: &mut [Link], reqs: &[Request]) -> merge::Gathered {
    debug_assert_eq!(links.len(), reqs.len());
    let mut wrote = vec![false; links.len()];
    for i in 0..links.len() {
        if let Link::Up(conn) = &mut links[i] {
            match write_frame(conn, &reqs[i].encode()) {
                Ok(()) => wrote[i] = true,
                Err(e) => links[i] = Link::Down(format!("write failed: {e}")),
            }
        }
    }
    let mut out = Vec::with_capacity(links.len());
    for i in 0..links.len() {
        if !wrote[i] {
            let detail = match &links[i] {
                Link::Down(d) => d.clone(),
                Link::Up(_) => unreachable!("every live link was written"),
            };
            out.push(Err(detail));
            continue;
        }
        let Link::Up(conn) = &mut links[i] else {
            unreachable!("wrote[i] implies the link was up");
        };
        let reply = read_frame(conn)
            .map_err(|e| format!("read failed: {e}"))
            .and_then(|payload| {
                Response::decode(&payload).map_err(|e| format!("bad shard payload: {e}"))
            });
        match reply {
            Ok(resp) => out.push(Ok(resp)),
            Err(detail) => {
                links[i] = Link::Down(detail.clone());
                out.push(Err(detail));
            }
        }
    }
    out
}

/// RAII slot in the router-edge admission gate.
struct Gate<'a> {
    inflight: &'a AtomicUsize,
}

impl<'a> Gate<'a> {
    fn try_enter(inner: &'a RouterInner) -> Option<Self> {
        if inner.inflight.fetch_add(1, Ordering::SeqCst) >= inner.max_inflight {
            inner.inflight.fetch_sub(1, Ordering::SeqCst);
            None
        } else {
            Some(Gate {
                inflight: &inner.inflight,
            })
        }
    }
}

impl Drop for Gate<'_> {
    fn drop(&mut self) {
        self.inflight.fetch_sub(1, Ordering::SeqCst);
    }
}

fn shard_sessions(inner: &RouterInner, session: u64) -> Option<Vec<u64>> {
    inner.sessions.lock().unwrap().get(&session).cloned()
}

fn unknown_session(session: u64) -> Response {
    Response::Error {
        msg: format!("unknown session {session}"),
    }
}

fn handle_request(inner: &RouterInner, links: &mut [Link], req: Request) -> Response {
    match req {
        Request::Hello { mode } => {
            let reqs = vec![Request::Hello { mode }; links.len()];
            let parts = fan_out(links, &reqs);
            if let Some(fail) = merge::failures(&parts) {
                return fail;
            }
            let mut per_shard = Vec::with_capacity(parts.len());
            for (i, p) in parts.iter().enumerate() {
                match p {
                    Ok(Response::SessionOpened { session }) => per_shard.push(*session),
                    Ok(other) => return merge::out_of_protocol(i, other),
                    Err(_) => unreachable!("unavailability already handled"),
                }
            }
            let session = inner.next_session.fetch_add(1, Ordering::Relaxed);
            inner.sessions.lock().unwrap().insert(session, per_shard);
            Response::SessionOpened { session }
        }
        Request::Query(spec) => gathered_query(inner, links, spec, false),
        // A router never forwards Scatter itself (a shard would answer
        // with a nested single-partial ScatterOk): it fans out plain
        // queries and builds the partial list from the gather.
        Request::Scatter(spec) => gathered_query(inner, links, spec, true),
        Request::Chain(spec) => {
            let Some(sessions) = shard_sessions(inner, spec.session) else {
                return unknown_session(spec.session);
            };
            let Some(_gate) = admit(inner) else {
                return router_shed(inner);
            };
            let reqs: Vec<Request> = sessions
                .iter()
                .map(|&s| {
                    let mut q = spec;
                    q.session = s;
                    Request::Chain(q)
                })
                .collect();
            merge::merge_query(&fan_out(links, &reqs), false)
        }
        Request::Update {
            session,
            target,
            sel_pct,
            delta,
            deadline_nanos,
        } => {
            let Some(sessions) = shard_sessions(inner, session) else {
                return unknown_session(session);
            };
            let Some(_gate) = admit(inner) else {
                return router_shed(inner);
            };
            let reqs: Vec<Request> = sessions
                .iter()
                .map(|&s| Request::Update {
                    session: s,
                    target,
                    sel_pct,
                    delta,
                    deadline_nanos,
                })
                .collect();
            merge::merge_update(&fan_out(links, &reqs))
        }
        Request::Commit { session } => {
            let Some(sessions) = shard_sessions(inner, session) else {
                return unknown_session(session);
            };
            let reqs: Vec<Request> = sessions
                .iter()
                .map(|&s| Request::Commit { session: s })
                .collect();
            merge::merge_commit(&fan_out(links, &reqs))
        }
        Request::Abort { session } => {
            let Some(sessions) = shard_sessions(inner, session) else {
                return unknown_session(session);
            };
            let reqs: Vec<Request> = sessions
                .iter()
                .map(|&s| Request::Abort { session: s })
                .collect();
            merge::merge_abort(&fan_out(links, &reqs))
        }
        Request::Close { session } => {
            let Some(sessions) = shard_sessions(inner, session) else {
                return unknown_session(session);
            };
            let reqs: Vec<Request> = sessions
                .iter()
                .map(|&s| Request::Close { session: s })
                .collect();
            let resp = merge::merge_close(&fan_out(links, &reqs));
            // The mapping is gone either way: a half-closed session is
            // unusable, and keeping it would leak map entries.
            inner.sessions.lock().unwrap().remove(&session);
            resp
        }
    }
}

fn gathered_query(
    inner: &RouterInner,
    links: &mut [Link],
    spec: tq_server::QuerySpec,
    scatter: bool,
) -> Response {
    let Some(sessions) = shard_sessions(inner, spec.session) else {
        return unknown_session(spec.session);
    };
    let Some(_gate) = admit(inner) else {
        return router_shed(inner);
    };
    let reqs: Vec<Request> = sessions
        .iter()
        .map(|&s| {
            let mut q = spec;
            q.session = s;
            Request::Query(q)
        })
        .collect();
    merge::merge_query(&fan_out(links, &reqs), scatter)
}

fn admit(inner: &RouterInner) -> Option<Gate<'_>> {
    let gate = Gate::try_enter(inner);
    if gate.is_some() {
        inner.stats.routed.fetch_add(1, Ordering::Relaxed);
    }
    gate
}

fn router_shed(inner: &RouterInner) -> Response {
    inner.stats.shed_router.fetch_add(1, Ordering::Relaxed);
    Response::Overloaded {
        queue_depth: inner.max_inflight as u32,
        shard: SHARD_SELF,
    }
}
