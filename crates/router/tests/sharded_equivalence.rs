//! Differential tests: the sharded service against the unsharded
//! engine, and the router's merge against the per-shard truth.
//!
//! What must be byte-identical, and why:
//!
//! * **Result counts** — every join algorithm × clustering × shard
//!   count. Rid-hash co-partitioning keeps every matching pair on one
//!   shard, so the partial counts sum to the single-node answer
//!   exactly.
//! * **The merged `Stat` at one shard** — a 1-way partition is a
//!   byte-identical rebuild, so the whole record (every counter, every
//!   operator row) must equal the unsharded engine's.
//! * **Logical work at any shard count** — extent descriptors, the
//!   query description, per-operator `handle_gets` (records touched),
//!   and the `Emit` rows (result production) partition exactly and
//!   sum back to the single-node numbers field for field.
//! * **The merge itself** — the router's merged record is *defined*
//!   as `merge_stats` over the partials, and the partials must be
//!   exactly what each shard, measured alone, reports (the
//!   serial-shard oracle below).
//!
//! Cache-sensitive counters (`cc_pagefaults`, I/O nanoseconds,
//! eviction-driven `handle_frees`) are **not** topology-invariant at
//! N > 1 and are deliberately not pinned across shard counts: N shards
//! own N private caches, and the resulting locality change is real
//! simulated physics — it is precisely the effect the sharded-scaling
//! experiment measures. The attribution invariant still holds inside
//! the merged record: rows sum to the query-level totals, proving the
//! merge lost nothing.

use tq_query::{JoinAlgo, PlannerPolicy};
use tq_router::{Router, RouterConfig};
use tq_server::{
    CacheMode, ChainQuerySpec, Client, DuplexStream, QuerySpec, Response, Server, ServerConfig,
};
use tq_statsdb::{merge_stats, Stat};
use tq_workload::{build, partition_database, BuildConfig, Database, DbShape, Organization};

const SHARD_COUNTS: [u32; 3] = [1, 2, 4];
const ALGOS: [JoinAlgo; 4] = [JoinAlgo::Nl, JoinAlgo::Nojoin, JoinAlgo::Phj, JoinAlgo::Chj];
const ORGS: [Organization; 3] = [
    Organization::ClassClustered,
    Organization::Randomized,
    Organization::Composition,
];

fn base_db(org: Organization) -> Database {
    build(&BuildConfig::scaled(DbShape::Db2, org, 500))
}

fn router_config() -> RouterConfig {
    RouterConfig {
        workers_per_shard: 1,
        queue_depth: 16,
        max_inflight: 16,
        parallel: 1,
    }
}

fn open(conn: DuplexStream) -> (Client<DuplexStream>, u64) {
    let mut client = Client::new(conn);
    let session = client.open_session(CacheMode::Cold).expect("open session");
    (client, session)
}

fn query_spec(session: u64, algo: JoinAlgo) -> QuerySpec {
    QuerySpec {
        session,
        algo,
        pat_pct: 10,
        prov_pct: 90,
        deadline_nanos: 0,
    }
}

fn run_query(client: &mut Client<DuplexStream>, session: u64, algo: JoinAlgo) -> (u64, Stat) {
    match client.query(query_spec(session, algo)).expect("query") {
        Response::QueryOk { results, stat } => (results, *stat),
        other => panic!("query answered {other:?}"),
    }
}

fn run_chain(
    client: &mut Client<DuplexStream>,
    session: u64,
    depth: u32,
    policy: PlannerPolicy,
) -> (u64, Stat) {
    let spec = ChainQuerySpec {
        session,
        depth,
        pat_pct: 10,
        prov_pct: 90,
        policy,
        deadline_nanos: 0,
    };
    match client.chain(spec).expect("chain") {
        Response::QueryOk { results, stat } => (results, *stat),
        other => panic!("chain answered {other:?}"),
    }
}

/// One measured cell: the query's display name, its result count, and
/// its merged `Stat`.
type Cell = (String, u64, Stat);

/// Everything one topology answers for one organization: per-algo join
/// queries plus the chain depths, in a fixed order.
fn measure_topology(conn: DuplexStream) -> Vec<Cell> {
    let (mut client, session) = open(conn);
    let mut out = Vec::new();
    for algo in ALGOS {
        let (results, stat) = run_query(&mut client, session, algo);
        out.push((format!("join:{}", algo.label()), results, stat));
    }
    // Syntactic ordering is topology-invariant (the plan is fixed by
    // the query text), so these cells carry the strict per-row checks.
    for depth in [2u32, 3, 4] {
        let (results, stat) = run_chain(&mut client, session, depth, PlannerPolicy::Syntactic);
        out.push((format!("chain:{depth}"), results, stat));
    }
    // The estimating planner orders joins from each shard's *local*
    // statistics — per-shard plans may legitimately differ, so this
    // cell is pinned on results (and merge exactness) only.
    for depth in [3u32, 4] {
        let (results, stat) = run_chain(&mut client, session, depth, PlannerPolicy::Estimate);
        out.push((format!("chain:{depth}:estimate"), results, stat));
    }
    client.close_session(session).expect("close session");
    out
}

/// The tentpole acceptance gate: sharded results byte-identical to
/// the unsharded engine for every algorithm × clustering × shard
/// count in {1, 2, 4}; the merged `Stat` fully byte-identical at one
/// shard and byte-identical in every topology-invariant field beyond
/// that (see the module docs for which fields those are and why).
#[test]
fn sharded_matches_unsharded_engine() {
    for org in ORGS {
        let base = base_db(org);
        let mut sharded: Vec<(u32, Vec<Cell>)> = Vec::new();
        for shards in SHARD_COUNTS {
            let router = Router::start_partitioned(&base, shards, router_config());
            sharded.push((shards, measure_topology(router.connect_in_proc())));
            router.shutdown();
        }
        let server = Server::start(base, ServerConfig::default());
        let oracle = measure_topology(server.connect_in_proc());
        server.shutdown();

        for (shards, measured) in sharded {
            assert_eq!(measured.len(), oracle.len());
            for ((name, results, stat), (oname, oresults, ostat)) in
                measured.iter().zip(oracle.iter())
            {
                let ctx = format!("{org:?} {name} at {shards} shards");
                assert_eq!(name, oname);
                assert_eq!(results, oresults, "{ctx}: result count diverged");
                if shards == 1 {
                    // One shard is a byte-identical rebuild of the
                    // whole database: the entire record must match.
                    assert_eq!(stat, ostat, "{ctx}: merged Stat diverged");
                    continue;
                }
                // Topology-invariant descriptive fields.
                assert_eq!(stat.query, ostat.query, "{ctx}: query desc diverged");
                let per_shard_planning = name.ends_with(":estimate");
                assert_eq!(stat.database, ostat.database, "{ctx}: extents diverged");
                assert_eq!(stat.cluster, ostat.cluster, "{ctx}");
                assert_eq!(stat.algo, ostat.algo, "{ctx}");
                assert_eq!(stat.system, ostat.system, "{ctx}");
                // Logical record work partitions exactly: every oracle
                // operator row reappears with the same handle_gets, and
                // result production (`Emit`) is byte-identical. Not
                // meaningful when each shard planned its own join
                // order (the :estimate cells).
                for orow in ostat.operators.iter().filter(|_| !per_shard_planning) {
                    let row = stat
                        .operators
                        .iter()
                        .find(|r| r.op == orow.op && r.label == orow.label && r.depth == orow.depth)
                        .unwrap_or_else(|| {
                            panic!("{ctx}: merged record lost row {}/{}", orow.op, orow.label)
                        });
                    assert_eq!(
                        row.handle_gets, orow.handle_gets,
                        "{ctx}: handle_gets diverged in {}/{}",
                        orow.op, orow.label
                    );
                    if orow.op == "Emit" {
                        assert_eq!(row, orow, "{ctx}: Emit row diverged");
                    }
                }
                // The attribution invariant commutes with the merge:
                // rows still sum to the query-level totals.
                let sum = |f: fn(&tq_statsdb::OperatorStat) -> u64| -> u64 {
                    stat.operators.iter().map(f).sum()
                };
                assert_eq!(sum(|r| r.client_misses), stat.cc_pagefaults, "{ctx}");
                assert_eq!(sum(|r| r.d2sc_read_pages), stat.d2sc_read_pages, "{ctx}");
                assert_eq!(sum(|r| r.sc2cc_read_pages), stat.sc2cc_read_pages, "{ctx}");
            }
        }
    }
}

/// The serial-shard oracle: the partials inside a `ScatterOk` are
/// exactly what each shard, served alone, reports for the same query —
/// and their `merge_stats` fold is exactly the merged record the
/// router returned.
#[test]
fn scatter_partials_match_per_shard_truth() {
    let base = base_db(Organization::ClassClustered);
    for shards in [2u32, 4] {
        let shard_bases = partition_database(&base, shards);

        // Measure every shard alone, one single-server instance each.
        let mut solo: Vec<Vec<(u64, Stat)>> = Vec::new();
        for shard_base in shard_bases {
            let server = Server::start(shard_base, ServerConfig::default());
            let (mut client, session) = open(server.connect_in_proc());
            let cells = ALGOS
                .iter()
                .map(|&algo| run_query(&mut client, session, algo))
                .collect();
            client.close_session(session).expect("close session");
            drop(client); // the conn handler joins at hang-up
            server.shutdown();
            solo.push(cells);
        }

        // Scatter through the router and compare partial by partial.
        let router = Router::start_partitioned(&base, shards, router_config());
        let (mut client, session) = open(router.connect_in_proc());
        for (ai, &algo) in ALGOS.iter().enumerate() {
            let resp = client.scatter(query_spec(session, algo)).expect("scatter");
            let Response::ScatterOk {
                results,
                stat,
                partials,
            } = resp
            else {
                panic!("scatter answered {resp:?}");
            };
            assert_eq!(partials.len(), shards as usize);
            let mut summed = 0;
            for (i, part) in partials.iter().enumerate() {
                assert_eq!(part.shard, i as u32, "partials arrive in shard order");
                let (solo_results, solo_stat) = &solo[i][ai];
                assert_eq!(
                    part.results,
                    *solo_results,
                    "{} shard {i}/{shards}: partial results diverged from solo run",
                    algo.label()
                );
                assert_eq!(
                    &part.stat,
                    solo_stat,
                    "{} shard {i}/{shards}: partial Stat diverged from solo run",
                    algo.label()
                );
                summed += part.results;
            }
            assert_eq!(results, summed, "merged results are the partial sum");
            let merged = merge_stats(partials.iter().map(|p| &p.stat)).expect("non-empty");
            assert_eq!(*stat, merged, "router merge is exactly merge_stats");
        }
        client.close_session(session).expect("close session");
        drop(client);
        router.shutdown();
    }
}

/// Prints the sharded-scaling table EXPERIMENTS.md quotes: per query,
/// the unsharded simulated time against the sharded *critical path*
/// (the slowest shard's partial — what a fleet with one host per
/// shard would wait for) and the aggregate machine work (the partial
/// sum). Run with:
///
/// ```sh
/// cargo test -p tq-router --test sharded_equivalence -- \
///     --ignored --nocapture critical_path
/// ```
#[test]
#[ignore = "measurement probe, not a gate; run with --ignored --nocapture"]
fn critical_path_scaling_table() {
    let base = base_db(Organization::ClassClustered);
    let solo: Vec<(JoinAlgo, f64)> = {
        let server = Server::start(
            partition_database(&base, 1).pop().unwrap(),
            ServerConfig::default(),
        );
        let (mut client, session) = open(server.connect_in_proc());
        let rows = ALGOS
            .iter()
            .map(|&algo| (algo, run_query(&mut client, session, algo).1.elapsed_time))
            .collect();
        client.close_session(session).expect("close session");
        drop(client);
        server.shutdown();
        rows
    };
    println!("algo    shards  unsharded_s  critical_path_s  machine_work_s");
    for shards in [2u32, 4] {
        let router = Router::start_partitioned(&base, shards, router_config());
        let (mut client, session) = open(router.connect_in_proc());
        for &(algo, unsharded) in &solo {
            let resp = client.scatter(query_spec(session, algo)).expect("scatter");
            let Response::ScatterOk { partials, stat, .. } = resp else {
                panic!("scatter answered {resp:?}");
            };
            let critical = partials
                .iter()
                .map(|p| p.stat.elapsed_time)
                .fold(0.0f64, f64::max);
            println!(
                "{:<7} {:<7} {:<12.3} {:<16.3} {:.3}",
                algo.label(),
                shards,
                unsharded,
                critical,
                stat.elapsed_time
            );
        }
        client.close_session(session).expect("close session");
        drop(client);
        router.shutdown();
    }
}

/// A plain server answers `Scatter` too: one partial, `SHARD_SELF`,
/// byte-identical to its own `Query` answer.
#[test]
fn scatter_against_single_server_is_one_partial() {
    let base = base_db(Organization::ClassClustered);
    let server = Server::start(base, ServerConfig::default());
    let (mut client, session) = open(server.connect_in_proc());
    let (q_results, q_stat) = run_query(&mut client, session, JoinAlgo::Chj);
    let resp = client
        .scatter(query_spec(session, JoinAlgo::Chj))
        .expect("scatter");
    let Response::ScatterOk {
        results,
        stat,
        partials,
    } = resp
    else {
        panic!("scatter answered {resp:?}");
    };
    assert_eq!(results, q_results);
    assert_eq!(*stat, q_stat);
    assert_eq!(partials.len(), 1);
    assert_eq!(partials[0].shard, tq_server::SHARD_SELF);
    assert_eq!(partials[0].results, q_results);
    assert_eq!(partials[0].stat, q_stat);
    client.close_session(session).expect("close session");
    drop(client);
    server.shutdown();
}
