//! Router behavior under the ugly cases: unreachable shards, shards
//! dying mid-conversation, first-committer-wins losses spanning
//! shards, and the router's own admission edge.

use std::net::TcpListener;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use tq_query::JoinAlgo;
use tq_router::{Router, RouterConfig, ShardEndpoint};
use tq_server::proto::{read_frame, write_frame, Request, Response};
use tq_server::{
    CacheMode, Client, ClientError, QuerySpec, Server, ServerConfig, UpdateTarget, SHARD_SELF,
};
use tq_workload::{build, partition_database, BuildConfig, Database, DbShape, Organization};

fn base_db() -> Database {
    build(&BuildConfig::scaled(
        DbShape::Db2,
        Organization::ClassClustered,
        500,
    ))
}

fn spec(session: u64) -> QuerySpec {
    QuerySpec {
        session,
        algo: JoinAlgo::Chj,
        pat_pct: 10,
        prov_pct: 90,
        deadline_nanos: 0,
    }
}

/// A shard that was never reachable: every request that needs the
/// fleet fails typed, immediately, with the dead shard's index — the
/// router refuses partial answers rather than degrading silently.
#[test]
fn unreachable_shard_is_typed_not_hung() {
    let bases = partition_database(&base_db(), 2);
    let mut bases = bases.into_iter();
    let live = Arc::new(Server::start(
        bases.next().unwrap(),
        ServerConfig::default(),
    ));
    // Bind-then-drop reserves an address nobody is listening on.
    let dead_addr = {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap()
    };
    let router = Router::start_with_endpoints(
        vec![
            ShardEndpoint::Local(Arc::clone(&live)),
            ShardEndpoint::Tcp(dead_addr),
        ],
        RouterConfig::default(),
    );

    // Raw frames: the typed failure must surface on the wire exactly.
    let mut conn = router.connect_in_proc();
    write_frame(
        &mut conn,
        &Request::Hello {
            mode: CacheMode::Cold,
        }
        .encode(),
    )
    .unwrap();
    let resp = Response::decode(&read_frame(&mut conn).unwrap()).unwrap();
    let Response::ShardUnavailable { shard, detail } = resp else {
        panic!("dead shard answered {resp:?}");
    };
    assert_eq!(shard, 1, "the failure names the dead shard");
    assert!(detail.contains("connect failed"), "detail: {detail:?}");

    // Still typed — and still shard 1 — on every later attempt.
    write_frame(
        &mut conn,
        &Request::Hello {
            mode: CacheMode::Cold,
        }
        .encode(),
    )
    .unwrap();
    let resp = Response::decode(&read_frame(&mut conn).unwrap()).unwrap();
    assert!(
        matches!(resp, Response::ShardUnavailable { shard: 1, .. }),
        "second attempt answered {resp:?}"
    );

    assert_eq!(router.stats().shard_unavailable, 2);
    drop(conn);
    router.shutdown();
    Arc::try_unwrap(live).ok().expect("sole owner").shutdown();
}

/// A shard that dies mid-conversation: the session opened fine, then
/// the shard hangs up before answering a query. The router reports the
/// shard, keeps the link down (sticky), and never returns a partial
/// result — and the healthy shard's link stays in lockstep throughout.
#[test]
fn shard_death_mid_conversation_degrades_sticky() {
    let bases = partition_database(&base_db(), 2);
    let mut bases = bases.into_iter();
    let live = Arc::new(Server::start(
        bases.next().unwrap(),
        ServerConfig::default(),
    ));

    // A fake shard: speaks the protocol for exactly one Hello, then
    // hangs up on whatever arrives next.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let fake = std::thread::spawn(move || {
        let (mut conn, _) = listener.accept().unwrap();
        let hello = read_frame(&mut conn).unwrap();
        assert!(matches!(
            Request::decode(&hello).unwrap(),
            Request::Hello { .. }
        ));
        write_frame(&mut conn, &Response::SessionOpened { session: 7 }.encode()).unwrap();
        // Swallow the next request and die without replying.
        let _ = read_frame(&mut conn);
    });

    let router = Router::start_with_endpoints(
        vec![
            ShardEndpoint::Local(Arc::clone(&live)),
            ShardEndpoint::Tcp(addr),
        ],
        RouterConfig::default(),
    );
    let mut client = Client::new(router.connect_in_proc());
    let session = client
        .open_session(CacheMode::Cold)
        .expect("both shards up");

    let resp = client.query(spec(session)).expect("typed, not a hang");
    let Response::ShardUnavailable { shard, detail } = resp else {
        panic!("dying shard answered {resp:?}");
    };
    assert_eq!(shard, 1);
    assert!(detail.contains("read failed"), "detail: {detail:?}");

    // Sticky: the shard never comes back on this connection, and the
    // router keeps refusing rather than answering from one shard.
    let resp = client.query(spec(session)).expect("still typed");
    assert!(matches!(resp, Response::ShardUnavailable { shard: 1, .. }));

    fake.join().unwrap();
    drop(client);
    router.shutdown();
    Arc::try_unwrap(live).ok().expect("sole owner").shutdown();
}

/// First-committer-wins across the fleet: two sessions write the same
/// pages everywhere; the loser's commit comes back as a typed
/// multi-shard abort naming every losing shard, and the session is
/// rolled back and usable afterwards.
#[test]
fn losing_commit_is_a_typed_multi_shard_abort() {
    let base = base_db();
    let shards = 2u32;
    let router = Router::start_partitioned(&base, shards, RouterConfig::default());

    let mut winner = Client::new(router.connect_in_proc());
    let mut loser = Client::new(router.connect_in_proc());
    let ws = winner.open_session(CacheMode::Warm).unwrap();
    let ls = loser.open_session(CacheMode::Warm).unwrap();

    // Both sessions update the same patient selection on every shard.
    for (client, session) in [(&mut winner, ws), (&mut loser, ls)] {
        let resp = client
            .update(session, UpdateTarget::Patients, 10, 1, 0)
            .expect("update");
        assert!(matches!(resp, Response::UpdateOk { .. }), "got {resp:?}");
    }

    // The winner commits everywhere: one merged Committed.
    let resp = winner.commit(ws).expect("commit");
    let Response::Committed { epoch, pages } = resp else {
        panic!("winner got {resp:?}");
    };
    assert!(epoch >= 1);
    assert!(pages > 0, "a write commit publishes pages");

    // The loser validated against the pre-commit epoch on every shard.
    let resp = loser.commit(ls).expect("commit");
    let Response::ShardsAborted { committed, aborts } = resp else {
        panic!("loser got {resp:?}");
    };
    assert_eq!(
        committed.len() + aborts.len(),
        shards as usize,
        "every shard is accounted for"
    );
    assert!(!aborts.is_empty(), "the loser lost somewhere");
    for abort in &aborts {
        assert!(abort.shard < shards);
        assert!(!abort.conflict_file.is_empty());
        assert!(abort.conflict_epoch >= 1);
    }

    // The losing session was rolled back, not poisoned: it still reads.
    let resp = loser.query(spec(ls)).expect("query after abort");
    assert!(matches!(resp, Response::QueryOk { .. }), "got {resp:?}");

    for (mut client, session) in [(winner, ws), (loser, ls)] {
        client.close_session(session).expect("close");
    }
    router.shutdown();
}

/// The router's own admission edge: with one in-flight slot and
/// concurrent closed-loop clients, overflow is shed at the router
/// (`shard == SHARD_SELF`) before any shard sees it, and the router's
/// counters agree exactly with what the clients observed.
#[test]
fn router_edge_sheds_before_the_shards() {
    let base = base_db();
    let router = Arc::new(Router::start_partitioned(
        &base,
        2,
        RouterConfig {
            workers_per_shard: 1,
            // Deep shard queues: any shed in this test is the router's.
            queue_depth: 64,
            max_inflight: 1,
            parallel: 1,
        },
    ));

    let ok = Arc::new(AtomicU64::new(0));
    let shed = Arc::new(AtomicU64::new(0));
    let threads: Vec<_> = (0..4)
        .map(|_| {
            let conn = router.connect_in_proc();
            let (ok, shed) = (Arc::clone(&ok), Arc::clone(&shed));
            std::thread::spawn(move || {
                let mut client = Client::new(conn);
                let session = client.open_session(CacheMode::Warm).unwrap();
                for _ in 0..30 {
                    match client.query(spec(session)).expect("query") {
                        Response::QueryOk { .. } => {
                            ok.fetch_add(1, Ordering::Relaxed);
                        }
                        Response::Overloaded { shard, queue_depth } => {
                            assert_eq!(shard, SHARD_SELF, "sheds happen at the router edge");
                            assert_eq!(queue_depth, 1, "reports the router's gate size");
                            shed.fetch_add(1, Ordering::Relaxed);
                        }
                        other => panic!("query answered {other:?}"),
                    }
                }
                client.close_session(session).expect("close");
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }

    let stats = router.stats();
    let (ok, shed) = (ok.load(Ordering::Relaxed), shed.load(Ordering::Relaxed));
    assert_eq!(ok + shed, 4 * 30, "every query was answered one way");
    assert!(
        shed > 0,
        "concurrent clients against one slot never overlapped"
    );
    assert_eq!(stats.shed_router, shed, "router counted what clients saw");
    assert_eq!(
        stats.routed, ok,
        "admitted = completed (queries are the only gated traffic)"
    );
    assert_eq!(stats.shard_unavailable, 0);
    // No shard ever shed: the deep shard queues swallowed everything
    // the router admitted.
    for shard in router.shards() {
        assert_eq!(shard.stats().queries_shed, 0);
    }
    Arc::try_unwrap(router)
        .ok()
        .expect("threads joined")
        .shutdown();
}

/// Sessions are validated at the router before anything is fanned out.
#[test]
fn unknown_session_is_a_typed_error() {
    let base = base_db();
    let router = Router::start_partitioned(&base, 2, RouterConfig::default());
    let mut client = Client::new(router.connect_in_proc());
    match client.query(spec(999)) {
        Err(ClientError::Server(msg)) => {
            assert!(msg.contains("unknown session"), "msg: {msg:?}")
        }
        other => panic!("got {other:?}"),
    }
    drop(client);
    router.shutdown();
}
