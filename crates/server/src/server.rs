//! The query service: connection handling, request dispatch, and the
//! worker-side query execution path.
//!
//! Layering (see DESIGN.md): connections speak the `proto` frame
//! vocabulary; requests that run queries go through the `sched`
//! admission queue to a worker; the worker checks the session's
//! database out of the `session` table, runs the `measure` protocol on
//! it (the *same* code path as the figure harness), and returns the
//! full per-operator [`Stat`]. A fired deadline unwinds out of the
//! engine with a [`Cancelled`] payload; the worker catches it, discards
//! the now-undefined database clone, refills the session with a fresh
//! snapshot, and reports `DeadlineExceeded` instead of hanging.

use std::io::{Read, Write};
use std::net::TcpListener;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, Once};
use std::thread::JoinHandle;

use tq_query::join::JoinOptions;
use tq_query::{CancelToken, Cancelled};
use tq_workload::Database;

use crate::measure::{
    chain_stat_record, compile_chain_spec, measure_chain_current, measure_current_parallel,
    measure_update_current, run_join_cell_parallel, stat_record, update_stat_record,
};
use crate::proto::{
    read_frame, write_frame, CacheMode, ChainQuerySpec, FrameError, PartialStat, QuerySpec,
    Request, Response, UpdateTarget, SHARD_SELF,
};
use crate::sched::Scheduler;
use crate::session::{CommitOutcome, SessionManager};
use crate::transport::{duplex_pair, DuplexStream};

/// Service sizing.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Worker threads executing queries.
    pub workers: usize,
    /// Admission-queue depth; a query arriving at a full queue is shed.
    pub queue_depth: usize,
    /// Morsel-parallel degree for each served join query (`TQ_PARALLEL`).
    /// At 1 (the default) queries run the exact serial path. Above 1,
    /// each in-flight query occupies up to `parallel` OS threads, so
    /// [`Server::start`] budgets the worker pool down to keep
    /// `workers × parallel` within the host's cores (floor one worker).
    pub parallel: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            queue_depth: 16,
            parallel: 1,
        }
    }
}

#[derive(Default)]
struct ServerStats {
    sessions_opened: AtomicU64,
    sessions_closed: AtomicU64,
    queries_ok: AtomicU64,
    queries_shed: AtomicU64,
    queries_deadline_exceeded: AtomicU64,
    queries_failed: AtomicU64,
    updates_ok: AtomicU64,
    commits: AtomicU64,
    commit_aborts: AtomicU64,
    rollbacks: AtomicU64,
}

/// A point-in-time copy of the service counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStatsSnapshot {
    /// Sessions opened.
    pub sessions_opened: u64,
    /// Sessions closed.
    pub sessions_closed: u64,
    /// Queries completed.
    pub queries_ok: u64,
    /// Queries shed by admission control.
    pub queries_shed: u64,
    /// Queries cancelled by their deadline.
    pub queries_deadline_exceeded: u64,
    /// Queries answered with an error (unknown/busy session, …).
    pub queries_failed: u64,
    /// Update statements completed.
    pub updates_ok: u64,
    /// Commits validated and published (including read-only re-pins).
    pub commits: u64,
    /// Commits aborted by first-committer-wins validation.
    pub commit_aborts: u64,
    /// Explicit aborts (client-requested rollbacks).
    pub rollbacks: u64,
}

struct Inner {
    sessions: SessionManager,
    sched: Scheduler,
    stats: ServerStats,
    /// Morsel-parallel degree applied to every served join query.
    parallel: usize,
}

/// The query service. Owns the base snapshot, the session table, and
/// the worker pool; hands out connections over TCP or in-process
/// duplex streams (same protocol, same handler).
pub struct Server {
    inner: Arc<Inner>,
    conn_threads: Mutex<Vec<JoinHandle<()>>>,
}

impl Server {
    /// Starts the service over a base database snapshot.
    ///
    /// With `config.parallel > 1` the worker pool is budgeted so that
    /// `workers × parallel` does not oversubscribe the host's cores
    /// (each in-flight query fans out to `parallel` morsel threads),
    /// with a floor of one worker. At `parallel == 1` the pool is
    /// sized by `config.workers` alone — serial queries spend their
    /// time in the simulated engine, not on distinct cores.
    pub fn start(base: Database, config: ServerConfig) -> Self {
        install_quiet_cancel_hook();
        let parallel = config.parallel.max(1);
        let workers = if parallel > 1 {
            let cores = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            config.workers.min((cores / parallel).max(1))
        } else {
            config.workers
        };
        Self {
            inner: Arc::new(Inner {
                sessions: SessionManager::new(base),
                sched: Scheduler::new(workers, config.queue_depth),
                stats: ServerStats::default(),
                parallel,
            }),
            conn_threads: Mutex::new(Vec::new()),
        }
    }

    /// Opens an in-process connection: returns the client end of a
    /// duplex pair whose server end is handled by a dedicated thread.
    /// Deterministic and socket-free — the transport tests and the
    /// load generator use this.
    pub fn connect_in_proc(&self) -> DuplexStream {
        let (client, server_end) = duplex_pair();
        let inner = Arc::clone(&self.inner);
        let handle = std::thread::Builder::new()
            .name("tq-conn".into())
            .spawn(move || serve_conn(&inner, server_end))
            .expect("spawn connection handler");
        self.conn_threads.lock().unwrap().push(handle);
        client
    }

    /// Serves the wire protocol on a bound TCP listener. The accept
    /// loop runs on a detached thread for the life of the process;
    /// each accepted connection gets its own handler thread.
    pub fn listen(&self, listener: TcpListener) {
        let inner = Arc::clone(&self.inner);
        std::thread::Builder::new()
            .name("tq-accept".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    let Ok(stream) = stream else { return };
                    let inner = Arc::clone(&inner);
                    let _ = std::thread::Builder::new()
                        .name("tq-conn-tcp".into())
                        .spawn(move || serve_conn(&inner, stream));
                }
            })
            .expect("spawn acceptor");
    }

    /// Service counters.
    pub fn stats(&self) -> ServerStatsSnapshot {
        let s = &self.inner.stats;
        ServerStatsSnapshot {
            sessions_opened: s.sessions_opened.load(Ordering::Relaxed),
            sessions_closed: s.sessions_closed.load(Ordering::Relaxed),
            queries_ok: s.queries_ok.load(Ordering::Relaxed),
            queries_shed: s.queries_shed.load(Ordering::Relaxed),
            queries_deadline_exceeded: s.queries_deadline_exceeded.load(Ordering::Relaxed),
            queries_failed: s.queries_failed.load(Ordering::Relaxed),
            updates_ok: s.updates_ok.load(Ordering::Relaxed),
            commits: s.commits.load(Ordering::Relaxed),
            commit_aborts: s.commit_aborts.load(Ordering::Relaxed),
            rollbacks: s.rollbacks.load(Ordering::Relaxed),
        }
    }

    /// The newest published epoch's number (0 until the first commit).
    pub fn current_epoch(&self) -> u64 {
        self.inner.sessions.current_epoch()
    }

    /// Currently open sessions.
    pub fn open_sessions(&self) -> usize {
        self.inner.sessions.open_count()
    }

    /// Drains the worker pool and joins the in-process connection
    /// handlers. Callers must drop their client streams first — a
    /// handler blocks until its peer hangs up.
    pub fn shutdown(self) {
        self.inner.sched.shutdown();
        let mut threads = self.conn_threads.lock().unwrap();
        for handle in threads.drain(..) {
            let _ = handle.join();
        }
    }
}

/// One connection: a strict request→response loop over frames. Any
/// framing error (including clean hang-up) ends the connection; a
/// decodable-but-invalid request gets a `Response::Error` and the
/// conversation continues.
fn serve_conn<S: Read + Write>(inner: &Arc<Inner>, mut conn: S) {
    loop {
        let payload = match read_frame(&mut conn) {
            Ok(p) => p,
            Err(FrameError::Closed) => return,
            Err(_) => return,
        };
        let resp = match Request::decode(&payload) {
            Ok(req) => handle_request(inner, req),
            Err(e) => Response::Error {
                msg: format!("bad request: {e}"),
            },
        };
        if write_frame(&mut conn, &resp.encode()).is_err() {
            return;
        }
    }
}

fn handle_request(inner: &Arc<Inner>, req: Request) -> Response {
    match req {
        Request::Hello { mode } => {
            let session = inner.sessions.create(mode);
            inner.stats.sessions_opened.fetch_add(1, Ordering::Relaxed);
            Response::SessionOpened { session }
        }
        Request::Query(spec) => dispatch_query(inner, spec),
        Request::Chain(spec) => dispatch_chain(inner, spec),
        // A plain engine shard *is* the whole database from its own
        // point of view: a scattered query runs the ordinary query path
        // and reports itself as the single partial. A router overrides
        // this by fanning out before any shard sees the request.
        Request::Scatter(spec) => match dispatch_query(inner, spec) {
            Response::QueryOk { results, stat } => Response::ScatterOk {
                results,
                partials: vec![PartialStat {
                    shard: SHARD_SELF,
                    results,
                    stat: (*stat).clone(),
                }],
                stat,
            },
            other => other,
        },
        Request::Close { session } => match inner.sessions.close(session) {
            Ok(report) => {
                inner.stats.sessions_closed.fetch_add(1, Ordering::Relaxed);
                Response::SessionClosed {
                    drained_handles: report.drained_handles,
                    leaked_handles: report.leaked_handles,
                    uncommitted_pages: report.uncommitted_pages,
                }
            }
            Err(e) => {
                inner.stats.queries_failed.fetch_add(1, Ordering::Relaxed);
                Response::Error { msg: e.to_string() }
            }
        },
        Request::Update {
            session,
            target,
            sel_pct,
            delta,
            deadline_nanos,
        } => dispatch_update(inner, session, target, sel_pct, delta, deadline_nanos),
        // Commit and Abort are bookkeeping (a page-pointer diff and an
        // Arc swap), not engine work: they run inline on the connection
        // thread rather than competing with queries for workers.
        Request::Commit { session } => match inner.sessions.commit(session) {
            Ok(CommitOutcome::Committed { epoch, pages }) => {
                inner.stats.commits.fetch_add(1, Ordering::Relaxed);
                Response::Committed { epoch, pages }
            }
            Ok(CommitOutcome::Aborted { conflict }) => {
                inner.stats.commit_aborts.fetch_add(1, Ordering::Relaxed);
                Response::Aborted {
                    conflict_file: conflict.file,
                    conflict_epoch: conflict.epoch,
                }
            }
            Err(e) => {
                inner.stats.queries_failed.fetch_add(1, Ordering::Relaxed);
                Response::Error { msg: e.to_string() }
            }
        },
        Request::Abort { session } => match inner.sessions.abort(session) {
            Ok(discarded_pages) => {
                inner.stats.rollbacks.fetch_add(1, Ordering::Relaxed);
                Response::RolledBack { discarded_pages }
            }
            Err(e) => {
                inner.stats.queries_failed.fetch_add(1, Ordering::Relaxed);
                Response::Error { msg: e.to_string() }
            }
        },
    }
}

/// Admits the query to the worker pool and waits for its response.
fn dispatch_query(inner: &Arc<Inner>, spec: QuerySpec) -> Response {
    let (tx, rx) = mpsc::channel();
    let job_inner = Arc::clone(inner);
    let submitted = inner.sched.submit(Box::new(move || {
        let resp = execute_query(&job_inner, spec);
        let _ = tx.send(resp);
    }));
    if let Err(overloaded) = submitted {
        inner.stats.queries_shed.fetch_add(1, Ordering::Relaxed);
        return Response::Overloaded {
            queue_depth: overloaded.queue_depth,
            shard: SHARD_SELF,
        };
    }
    rx.recv().unwrap_or_else(|_| Response::Error {
        msg: "worker dropped the query".into(),
    })
}

/// Admits an N-way chain query to the worker pool and waits for its
/// response. Chains share the join queries' admission queue, workers,
/// and shed path.
fn dispatch_chain(inner: &Arc<Inner>, spec: ChainQuerySpec) -> Response {
    let (tx, rx) = mpsc::channel();
    let job_inner = Arc::clone(inner);
    let submitted = inner.sched.submit(Box::new(move || {
        let resp = execute_chain(&job_inner, spec);
        let _ = tx.send(resp);
    }));
    if let Err(overloaded) = submitted {
        inner.stats.queries_shed.fetch_add(1, Ordering::Relaxed);
        return Response::Overloaded {
            queue_depth: overloaded.queue_depth,
            shard: SHARD_SELF,
        };
    }
    rx.recv().unwrap_or_else(|_| Response::Error {
        msg: "worker dropped the query".into(),
    })
}

/// Admits an update statement to the worker pool and waits for its
/// response. Updates compete with queries for the same admission queue:
/// overload sheds writes and reads alike.
fn dispatch_update(
    inner: &Arc<Inner>,
    session: u64,
    target: UpdateTarget,
    sel_pct: u32,
    delta: i32,
    deadline_nanos: u64,
) -> Response {
    let (tx, rx) = mpsc::channel();
    let job_inner = Arc::clone(inner);
    let submitted = inner.sched.submit(Box::new(move || {
        let resp = execute_update(&job_inner, session, target, sel_pct, delta, deadline_nanos);
        let _ = tx.send(resp);
    }));
    if let Err(overloaded) = submitted {
        inner.stats.queries_shed.fetch_add(1, Ordering::Relaxed);
        return Response::Overloaded {
            queue_depth: overloaded.queue_depth,
            shard: SHARD_SELF,
        };
    }
    rx.recv().unwrap_or_else(|_| Response::Error {
        msg: "worker dropped the update".into(),
    })
}

/// Worker-side update execution. The statement runs against the
/// session's private snapshot — its writes stay invisible to every
/// other session until `Commit` publishes them. A fired deadline
/// discards the half-updated clone and refills the session from its
/// *base* epoch: uncommitted statements from earlier in the
/// transaction are lost too, which is the atomicity contract.
fn execute_update(
    inner: &Inner,
    session: u64,
    target: UpdateTarget,
    sel_pct: u32,
    delta: i32,
    deadline_nanos: u64,
) -> Response {
    let (mut db, mode) = match inner.sessions.take(session) {
        Ok(taken) => taken,
        Err(e) => {
            inner.stats.queries_failed.fetch_add(1, Ordering::Relaxed);
            return Response::Error { msg: e.to_string() };
        }
    };
    let cancel = (deadline_nanos > 0).then(|| CancelToken::with_deadline_nanos(deadline_nanos));
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        measure_update_current(&mut db, target, sel_pct, delta, cancel)
    }));
    match outcome {
        Ok(cell) => {
            let stat = update_stat_record(&db, &cell, sel_pct, delta, mode == CacheMode::Cold);
            let updated = cell.outcome.updated;
            inner.sessions.restore(session, db);
            inner.stats.updates_ok.fetch_add(1, Ordering::Relaxed);
            Response::UpdateOk {
                updated,
                stat: Box::new(stat),
            }
        }
        Err(payload) => match payload.downcast::<Cancelled>() {
            Ok(cancelled) => {
                drop(db);
                inner.sessions.replace_fresh(session);
                inner
                    .stats
                    .queries_deadline_exceeded
                    .fetch_add(1, Ordering::Relaxed);
                Response::DeadlineExceeded {
                    elapsed_nanos: cancelled.elapsed_nanos,
                }
            }
            Err(other) => resume_unwind(other),
        },
    }
}

/// Worker-side execution: session checkout, the measurement protocol,
/// deadline handling, session restore.
fn execute_query(inner: &Inner, spec: QuerySpec) -> Response {
    let (mut db, mode) = match inner.sessions.take(spec.session) {
        Ok(taken) => taken,
        Err(e) => {
            inner.stats.queries_failed.fetch_add(1, Ordering::Relaxed);
            return Response::Error { msg: e.to_string() };
        }
    };
    let cancel =
        (spec.deadline_nanos > 0).then(|| CancelToken::with_deadline_nanos(spec.deadline_nanos));
    let opts = JoinOptions::default();
    let degree = inner.parallel;
    let outcome = catch_unwind(AssertUnwindSafe(|| match mode {
        // Cold sessions run the paper's protocol exactly as the figure
        // harness does — one shared code path, so a served Stat is
        // byte-identical to a harness Stat for the same cell. At
        // degree 1 the parallel entry point IS the serial one.
        CacheMode::Cold => run_join_cell_parallel(
            &mut db,
            spec.algo,
            spec.pat_pct,
            spec.prov_pct,
            &opts,
            cancel,
            degree,
        ),
        // Warm sessions measure against whatever the session's earlier
        // queries left resident.
        CacheMode::Warm => measure_current_parallel(
            &mut db,
            spec.algo,
            spec.pat_pct,
            spec.prov_pct,
            &opts,
            cancel,
            degree,
        ),
    }));
    match outcome {
        Ok(Ok(cell)) => {
            let mut stat = stat_record(&db, &cell, spec.pat_pct, spec.prov_pct);
            stat.query.cold = mode == CacheMode::Cold;
            inner.sessions.restore(spec.session, db);
            inner.stats.queries_ok.fetch_add(1, Ordering::Relaxed);
            Response::QueryOk {
                results: cell.results,
                stat: Box::new(stat),
            }
        }
        Ok(Err(panic)) => {
            // A morsel worker died. Every worker was joined and its
            // store clone dropped, so nothing leaked — but the query's
            // measurement window is garbage. Discard the database like
            // a cancellation and answer with the typed error.
            drop(db);
            inner.sessions.replace_fresh(spec.session);
            inner.stats.queries_failed.fetch_add(1, Ordering::Relaxed);
            Response::Error {
                msg: panic.to_string(),
            }
        }
        Err(payload) => match payload.downcast::<Cancelled>() {
            Ok(cancelled) => {
                // The unwound database has half-built operator state in
                // its caches and handle table: discard it and refill
                // the session from the base snapshot.
                drop(db);
                inner.sessions.replace_fresh(spec.session);
                inner
                    .stats
                    .queries_deadline_exceeded
                    .fetch_add(1, Ordering::Relaxed);
                Response::DeadlineExceeded {
                    elapsed_nanos: cancelled.elapsed_nanos,
                }
            }
            Err(other) => resume_unwind(other),
        },
    }
}

/// Worker-side chain execution: the [`execute_query`] shape with
/// compile-time validation up front — a bad depth restores the session
/// untouched and answers with a typed `Error`.
fn execute_chain(inner: &Inner, spec: ChainQuerySpec) -> Response {
    let (mut db, mode) = match inner.sessions.take(spec.session) {
        Ok(taken) => taken,
        Err(e) => {
            inner.stats.queries_failed.fetch_add(1, Ordering::Relaxed);
            return Response::Error { msg: e.to_string() };
        }
    };
    let chain = match compile_chain_spec(&db, spec.depth, spec.pat_pct, spec.prov_pct) {
        Ok(chain) => chain,
        Err(msg) => {
            inner.sessions.restore(spec.session, db);
            inner.stats.queries_failed.fetch_add(1, Ordering::Relaxed);
            return Response::Error { msg };
        }
    };
    let cancel =
        (spec.deadline_nanos > 0).then(|| CancelToken::with_deadline_nanos(spec.deadline_nanos));
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        if mode == CacheMode::Cold {
            db.store.cold_restart();
        }
        measure_chain_current(&mut db, &chain, spec.policy, cancel)
    }));
    match outcome {
        Ok(cell) => {
            let mut stat = chain_stat_record(&db, &cell, spec.depth, spec.pat_pct, spec.prov_pct);
            stat.query.cold = mode == CacheMode::Cold;
            inner.sessions.restore(spec.session, db);
            inner.stats.queries_ok.fetch_add(1, Ordering::Relaxed);
            Response::QueryOk {
                results: cell.results,
                stat: Box::new(stat),
            }
        }
        Err(payload) => match payload.downcast::<Cancelled>() {
            Ok(cancelled) => {
                drop(db);
                inner.sessions.replace_fresh(spec.session);
                inner
                    .stats
                    .queries_deadline_exceeded
                    .fetch_add(1, Ordering::Relaxed);
                Response::DeadlineExceeded {
                    elapsed_nanos: cancelled.elapsed_nanos,
                }
            }
            Err(other) => resume_unwind(other),
        },
    }
}

/// Keeps the default panic hook from printing a backtrace every time a
/// deadline fires: `Cancelled` unwinds are control flow here, not
/// crashes.
/// Chains to the previous hook for every other payload. Installed once
/// per process.
fn install_quiet_cancel_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<Cancelled>().is_none() {
                previous(info);
            }
        }));
    });
}
