//! The wire protocol: length-prefixed frames carrying a small
//! request/response vocabulary.
//!
//! A frame is a little-endian `u32` payload length followed by the
//! payload; payloads above [`MAX_FRAME`] are rejected *before* any
//! allocation (a hostile or corrupt length cannot balloon memory).
//! Payloads are tag-prefixed structs encoded with fixed-width
//! little-endian integers and length-prefixed UTF-8 strings; floats
//! travel as IEEE-754 bit patterns, so a decoded [`Stat`] is
//! bit-for-bit the one that was encoded (the concurrency-equivalence
//! test compares them with `==`).
//!
//! Decoding is total: any truncated, oversized, or malformed input
//! returns a typed error, never a panic — pinned by the property tests
//! in `crates/server/tests/proto_roundtrip.rs`.

use std::io::{Read, Write};
use tq_query::{JoinAlgo, PlannerPolicy};
use tq_statsdb::{ExtentDesc, OperatorStat, QueryDesc, Stat, SystemDesc};

/// Hard ceiling on one frame's payload (16 MiB). Far above any real
/// message (a full per-operator `Stat` is a few KB), far below a
/// memory-exhaustion vector.
pub const MAX_FRAME: usize = 16 << 20;

/// Shard index meaning "the admission edge of the process you are
/// talking to" in [`Response::Overloaded`]. A plain engine shard
/// always answers with this; only a router, relaying a downstream
/// shard's rejection, fills in a real shard index.
pub const SHARD_SELF: u32 = u32::MAX;

/// Why a frame could not be read or written.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the connection cleanly between frames.
    Closed,
    /// The stream ended inside a header or payload.
    Truncated,
    /// The header announced a payload larger than [`MAX_FRAME`].
    TooLarge(u64),
    /// Transport error.
    Io(std::io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Truncated => write!(f, "truncated frame"),
            FrameError::TooLarge(n) => write!(f, "frame of {n} bytes exceeds {MAX_FRAME}"),
            FrameError::Io(e) => write!(f, "frame i/o error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Writes one frame (length prefix + payload).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), FrameError> {
    if payload.len() > MAX_FRAME {
        return Err(FrameError::TooLarge(payload.len() as u64));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())
        .and_then(|()| w.write_all(payload))
        .and_then(|()| w.flush())
        .map_err(FrameError::Io)
}

/// Reads one frame's payload. [`FrameError::Closed`] means the peer
/// hung up *between* frames (the clean end of a conversation);
/// [`FrameError::Truncated`] means it hung up mid-frame.
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, FrameError> {
    let mut header = [0u8; 4];
    match read_exact_or_eof(r, &mut header)? {
        ReadOutcome::Eof => return Err(FrameError::Closed),
        ReadOutcome::Partial => return Err(FrameError::Truncated),
        ReadOutcome::Full => {}
    }
    let len = u32::from_le_bytes(header) as usize;
    if len > MAX_FRAME {
        return Err(FrameError::TooLarge(len as u64));
    }
    let mut payload = vec![0u8; len];
    match read_exact_or_eof(r, &mut payload)? {
        ReadOutcome::Full => Ok(payload),
        ReadOutcome::Eof | ReadOutcome::Partial => Err(FrameError::Truncated),
    }
}

enum ReadOutcome {
    Full,
    Eof,
    Partial,
}

/// `read_exact` that distinguishes "no bytes at all" (clean EOF) from
/// "some but not enough" (truncation).
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> Result<ReadOutcome, FrameError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Ok(if filled == 0 {
                    ReadOutcome::Eof
                } else {
                    ReadOutcome::Partial
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(ReadOutcome::Full)
}

/// Why a payload could not be decoded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The payload ended before a field did.
    Truncated,
    /// Unknown message tag.
    BadTag(u8),
    /// An enum discriminant out of range.
    BadEnum(u8),
    /// A string field was not UTF-8.
    BadUtf8,
    /// Bytes left over after a complete message.
    TrailingBytes,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "truncated payload"),
            DecodeError::BadTag(t) => write!(f, "unknown message tag {t}"),
            DecodeError::BadEnum(v) => write!(f, "enum discriminant {v} out of range"),
            DecodeError::BadUtf8 => write!(f, "string field is not UTF-8"),
            DecodeError::TrailingBytes => write!(f, "trailing bytes after message"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Per-session cache discipline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheMode {
    /// Every query runs the paper's cold protocol (server shutdown
    /// before each run): results are position-independent and
    /// byte-identical to the figure harness.
    Cold,
    /// Caches persist across the session's queries (a warm working
    /// set, the production regime).
    Warm,
}

/// Which collection an update statement targets. The vocabulary is
/// closed (like the figure grid's algorithm set) so the server never
/// parses collection names off the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UpdateTarget {
    /// `update Patients set num = num + Δ where mrn < K` — dirties the
    /// Patients file and the num index.
    Patients,
    /// `update Providers set upin = upin + Δ where upin < K` — with
    /// Δ = 0 a pure touch-update that dirties only the Providers file.
    Providers,
}

/// One query request: the figure-grid vocabulary (algorithm ×
/// selectivities), plus an optional deadline in simulated nanoseconds
/// (`0` = none).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QuerySpec {
    /// Session to run in.
    pub session: u64,
    /// Join algorithm.
    pub algo: JoinAlgo,
    /// Patient-side selectivity (percent).
    pub pat_pct: u32,
    /// Provider-side selectivity (percent).
    pub prov_pct: u32,
    /// Simulated-time budget in nanoseconds; `0` means unlimited.
    pub deadline_nanos: u64,
}

/// One N-way chain-query request: a depth from the closed chain
/// vocabulary (the server never parses OQL off the wire), the grid
/// selectivities, and the planner policy to order the joins with.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChainQuerySpec {
    /// Session to run in.
    pub session: u64,
    /// Binding count: 2 (reference chain), 3, or 4. Validated at
    /// dispatch, not decode — other depths get a typed `Error`.
    pub depth: u32,
    /// Patient-side selectivity (percent).
    pub pat_pct: u32,
    /// Provider-side selectivity (percent).
    pub prov_pct: u32,
    /// Join-ordering policy.
    pub policy: PlannerPolicy,
    /// Simulated-time budget in nanoseconds; `0` means unlimited.
    pub deadline_nanos: u64,
}

/// Client → server messages.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Open a session (a snapshot-isolated view of the database).
    Hello {
        /// Cache discipline for the session.
        mode: CacheMode,
    },
    /// Run one join query.
    Query(QuerySpec),
    /// Close a session, draining its handles.
    Close {
        /// Session to close.
        session: u64,
    },
    /// Run one update statement against the session's private snapshot.
    /// The writes stay session-local until [`Request::Commit`].
    Update {
        /// Session to run in.
        session: u64,
        /// Collection (and statement shape) to update.
        target: UpdateTarget,
        /// Fraction of the collection to touch (percent of keys).
        sel_pct: u32,
        /// Additive delta (0 = touch-update, no re-keying).
        delta: i32,
        /// Simulated-time budget in nanoseconds; `0` means unlimited.
        deadline_nanos: u64,
    },
    /// Publish the session's uncommitted writes as a new base epoch
    /// (first-committer-wins validation against epochs published since
    /// the session's base).
    Commit {
        /// Session whose writes to publish.
        session: u64,
    },
    /// Discard the session's uncommitted writes and re-pin it to the
    /// newest published epoch.
    Abort {
        /// Session whose writes to discard.
        session: u64,
    },
    /// Run one N-way binding-chain query. Answered with the same
    /// [`Response::QueryOk`] shape as a 2-way join.
    Chain(ChainQuerySpec),
    /// Run one join query *and* report the per-shard partials behind
    /// the merged answer. A plain engine shard answers with a
    /// single-partial [`Response::ScatterOk`] (its own cell, shard
    /// [`SHARD_SELF`]); a router fans the query to every shard and
    /// returns one partial per shard plus the merged totals.
    Scatter(QuerySpec),
}

/// One shard's contribution to a scattered query: the cell the shard
/// measured locally, exactly as its own figure harness would have.
#[derive(Clone, Debug, PartialEq)]
pub struct PartialStat {
    /// Shard index (or [`SHARD_SELF`] when a plain server answers).
    pub shard: u32,
    /// Result tuples this shard produced.
    pub results: u64,
    /// The shard-local measurement.
    pub stat: Stat,
}

/// One shard's first-committer-wins rejection inside a multi-shard
/// commit.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardAbort {
    /// Shard whose validation failed.
    pub shard: u32,
    /// A file both write-sets touched on that shard.
    pub conflict_file: String,
    /// The epoch whose publication won the race there.
    pub conflict_epoch: u64,
}

/// Server → client messages.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Session opened.
    SessionOpened {
        /// Its id (unique per server).
        session: u64,
    },
    /// Query finished: result cardinality plus the full Figure 3
    /// record with the per-operator breakdown.
    QueryOk {
        /// Result tuples.
        results: u64,
        /// The measurement, exactly as the figure harness would have
        /// recorded it.
        stat: Box<Stat>,
    },
    /// Admission control shed the query: the queue was at its
    /// configured depth. The typed `Overloaded` rejection.
    Overloaded {
        /// The depth the queue was at.
        queue_depth: u32,
        /// Where the shed happened: [`SHARD_SELF`] at the edge of the
        /// answering process itself; a real index when a router is
        /// relaying a downstream engine shard's rejection.
        shard: u32,
    },
    /// The query's simulated-time deadline fired; the query was
    /// cancelled at an operator boundary and its working state
    /// discarded.
    DeadlineExceeded {
        /// Simulated nanoseconds consumed when cancelled.
        elapsed_nanos: u64,
    },
    /// Session closed.
    SessionClosed {
        /// Handles drained from the delayed-free pool at teardown.
        drained_handles: u64,
        /// Handles still pinned at teardown (0 unless an operator
        /// leaked — the debug leak check would have caught it first).
        leaked_handles: u64,
        /// Dirty pages the session abandoned by closing without
        /// committing (0 for read-only or cleanly committed sessions).
        uncommitted_pages: u64,
    },
    /// Anything else (unknown session, busy session, engine error).
    Error {
        /// Human-readable cause.
        msg: String,
    },
    /// Update finished: rows rewritten plus the full per-operator
    /// measurement, same shape as a query's.
    UpdateOk {
        /// Objects rewritten.
        updated: u64,
        /// The measurement, exactly as the figure harness records one.
        stat: Box<Stat>,
    },
    /// Commit validated and published (or was a read-only no-op).
    Committed {
        /// The epoch number now visible to newly pinned sessions.
        epoch: u64,
        /// Pages the commit published (0 for a read-only commit).
        pages: u64,
    },
    /// Commit validation failed: another session published an
    /// overlapping write-set first. The session's writes are discarded
    /// and it is re-pinned to the newest epoch.
    Aborted {
        /// A file both write-sets touched.
        conflict_file: String,
        /// The epoch whose publication won the race.
        conflict_epoch: u64,
    },
    /// Abort completed: writes discarded, session re-pinned.
    RolledBack {
        /// Dirty pages that were thrown away.
        discarded_pages: u64,
    },
    /// A scattered query finished: the merged answer plus the
    /// per-shard partials it was merged from. `results` and `stat`
    /// are exactly what [`Response::QueryOk`] would carry; the
    /// partials are the audit trail (`stat` must equal
    /// `merge_stats(partials)` — the differential tests pin it).
    ScatterOk {
        /// Merged result tuples (sum of the partials').
        results: u64,
        /// The merged measurement.
        stat: Box<Stat>,
        /// One entry per shard that answered, in shard order.
        partials: Vec<PartialStat>,
    },
    /// A shard could not be reached (or died mid-reply). The router
    /// refuses to return a partial answer: the whole request fails
    /// with this typed error instead of a silent undercount.
    ShardUnavailable {
        /// The unreachable shard.
        shard: u32,
        /// Transport-level cause, human-readable.
        detail: String,
    },
    /// A multi-shard commit did not validate everywhere: at least one
    /// shard's first-committer-wins check failed. Shards that had
    /// already validated published their epochs (listed in
    /// `committed`); the losing shards' writes are discarded and their
    /// sessions re-pinned, like a single-shard [`Response::Aborted`].
    ShardsAborted {
        /// Shards whose local validation succeeded and published.
        committed: Vec<u32>,
        /// One entry per shard whose validation failed.
        aborts: Vec<ShardAbort>,
    },
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(v as u8);
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn algo_code(algo: JoinAlgo) -> u8 {
    match algo {
        JoinAlgo::Nl => 0,
        JoinAlgo::Nojoin => 1,
        JoinAlgo::Phj => 2,
        JoinAlgo::Chj => 3,
    }
}

fn algo_from(code: u8) -> Result<JoinAlgo, DecodeError> {
    Ok(match code {
        0 => JoinAlgo::Nl,
        1 => JoinAlgo::Nojoin,
        2 => JoinAlgo::Phj,
        3 => JoinAlgo::Chj,
        other => return Err(DecodeError::BadEnum(other)),
    })
}

fn policy_code(policy: PlannerPolicy) -> u8 {
    match policy {
        PlannerPolicy::Estimate => 0,
        PlannerPolicy::Simpli => 1,
        PlannerPolicy::Syntactic => 2,
    }
}

fn policy_from(code: u8) -> Result<PlannerPolicy, DecodeError> {
    Ok(match code {
        0 => PlannerPolicy::Estimate,
        1 => PlannerPolicy::Simpli,
        2 => PlannerPolicy::Syntactic,
        other => return Err(DecodeError::BadEnum(other)),
    })
}

fn put_operator(out: &mut Vec<u8>, op: &OperatorStat) {
    put_str(out, &op.op);
    put_str(out, &op.label);
    put_u32(out, op.depth);
    put_u64(out, op.d2sc_read_pages);
    put_u64(out, op.sc2cc_read_pages);
    put_u64(out, op.client_misses);
    put_u64(out, op.handle_gets);
    put_u64(out, op.handle_frees);
    put_u64(out, op.cpu_events);
    put_u64(out, op.io_nanos);
    put_u64(out, op.rpc_nanos);
    put_u64(out, op.cpu_nanos);
    put_u64(out, op.swap_nanos);
}

fn put_stat(out: &mut Vec<u8>, s: &Stat) {
    put_u64(out, s.numtest);
    put_bool(out, s.query.cold);
    put_str(out, &s.query.projection_type);
    put_u32(out, s.query.selectivities.len() as u32);
    for (extent, pct) in &s.query.selectivities {
        put_str(out, extent);
        put_u32(out, *pct);
    }
    put_str(out, &s.query.text);
    put_u32(out, s.database.len() as u32);
    for e in &s.database {
        put_str(out, &e.classname);
        put_u64(out, e.size);
        put_u32(out, e.associations.len() as u32);
        for (class, ratio) in &e.associations {
            put_str(out, class);
            put_u32(out, *ratio);
        }
    }
    put_str(out, &s.cluster);
    put_str(out, &s.algo);
    put_u64(out, s.system.server_cache_kb);
    put_u64(out, s.system.client_cache_kb);
    put_bool(out, s.system.same_workstation);
    put_u64(out, s.cc_pagefaults);
    put_u64(out, s.cc_lookups);
    put_f64(out, s.elapsed_time);
    put_u64(out, s.rpcs_number);
    put_f64(out, s.rpcs_total_mb);
    put_u64(out, s.d2sc_read_pages);
    put_u64(out, s.sc2cc_read_pages);
    put_f64(out, s.cc_miss_rate);
    put_f64(out, s.sc_miss_rate);
    put_u32(out, s.operators.len() as u32);
    for op in &s.operators {
        put_operator(out, op);
    }
}

impl Request {
    /// Encodes to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Hello { mode } => {
                out.push(1);
                out.push(match mode {
                    CacheMode::Cold => 0,
                    CacheMode::Warm => 1,
                });
            }
            Request::Query(q) => {
                out.push(2);
                put_u64(&mut out, q.session);
                out.push(algo_code(q.algo));
                put_u32(&mut out, q.pat_pct);
                put_u32(&mut out, q.prov_pct);
                put_u64(&mut out, q.deadline_nanos);
            }
            Request::Close { session } => {
                out.push(3);
                put_u64(&mut out, *session);
            }
            Request::Update {
                session,
                target,
                sel_pct,
                delta,
                deadline_nanos,
            } => {
                out.push(4);
                put_u64(&mut out, *session);
                out.push(match target {
                    UpdateTarget::Patients => 0,
                    UpdateTarget::Providers => 1,
                });
                put_u32(&mut out, *sel_pct);
                put_u32(&mut out, *delta as u32);
                put_u64(&mut out, *deadline_nanos);
            }
            Request::Commit { session } => {
                out.push(5);
                put_u64(&mut out, *session);
            }
            Request::Abort { session } => {
                out.push(6);
                put_u64(&mut out, *session);
            }
            Request::Chain(q) => {
                out.push(7);
                put_u64(&mut out, q.session);
                put_u32(&mut out, q.depth);
                put_u32(&mut out, q.pat_pct);
                put_u32(&mut out, q.prov_pct);
                out.push(policy_code(q.policy));
                put_u64(&mut out, q.deadline_nanos);
            }
            Request::Scatter(q) => {
                out.push(8);
                put_u64(&mut out, q.session);
                out.push(algo_code(q.algo));
                put_u32(&mut out, q.pat_pct);
                put_u32(&mut out, q.prov_pct);
                put_u64(&mut out, q.deadline_nanos);
            }
        }
        out
    }

    /// Decodes a frame payload.
    pub fn decode(payload: &[u8]) -> Result<Self, DecodeError> {
        let mut c = Cursor::new(payload);
        let req = match c.u8()? {
            1 => Request::Hello {
                mode: match c.u8()? {
                    0 => CacheMode::Cold,
                    1 => CacheMode::Warm,
                    other => return Err(DecodeError::BadEnum(other)),
                },
            },
            2 => Request::Query(QuerySpec {
                session: c.u64()?,
                algo: algo_from(c.u8()?)?,
                pat_pct: c.u32()?,
                prov_pct: c.u32()?,
                deadline_nanos: c.u64()?,
            }),
            3 => Request::Close { session: c.u64()? },
            4 => Request::Update {
                session: c.u64()?,
                target: match c.u8()? {
                    0 => UpdateTarget::Patients,
                    1 => UpdateTarget::Providers,
                    other => return Err(DecodeError::BadEnum(other)),
                },
                sel_pct: c.u32()?,
                delta: c.u32()? as i32,
                deadline_nanos: c.u64()?,
            },
            5 => Request::Commit { session: c.u64()? },
            6 => Request::Abort { session: c.u64()? },
            7 => Request::Chain(ChainQuerySpec {
                session: c.u64()?,
                depth: c.u32()?,
                pat_pct: c.u32()?,
                prov_pct: c.u32()?,
                policy: policy_from(c.u8()?)?,
                deadline_nanos: c.u64()?,
            }),
            8 => Request::Scatter(QuerySpec {
                session: c.u64()?,
                algo: algo_from(c.u8()?)?,
                pat_pct: c.u32()?,
                prov_pct: c.u32()?,
                deadline_nanos: c.u64()?,
            }),
            other => return Err(DecodeError::BadTag(other)),
        };
        c.finish()?;
        Ok(req)
    }
}

impl Response {
    /// Encodes to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::SessionOpened { session } => {
                out.push(128);
                put_u64(&mut out, *session);
            }
            Response::QueryOk { results, stat } => {
                out.push(129);
                put_u64(&mut out, *results);
                put_stat(&mut out, stat);
            }
            Response::Overloaded { queue_depth, shard } => {
                out.push(130);
                put_u32(&mut out, *queue_depth);
                put_u32(&mut out, *shard);
            }
            Response::DeadlineExceeded { elapsed_nanos } => {
                out.push(131);
                put_u64(&mut out, *elapsed_nanos);
            }
            Response::SessionClosed {
                drained_handles,
                leaked_handles,
                uncommitted_pages,
            } => {
                out.push(132);
                put_u64(&mut out, *drained_handles);
                put_u64(&mut out, *leaked_handles);
                put_u64(&mut out, *uncommitted_pages);
            }
            Response::Error { msg } => {
                out.push(133);
                put_str(&mut out, msg);
            }
            Response::UpdateOk { updated, stat } => {
                out.push(134);
                put_u64(&mut out, *updated);
                put_stat(&mut out, stat);
            }
            Response::Committed { epoch, pages } => {
                out.push(135);
                put_u64(&mut out, *epoch);
                put_u64(&mut out, *pages);
            }
            Response::Aborted {
                conflict_file,
                conflict_epoch,
            } => {
                out.push(136);
                put_str(&mut out, conflict_file);
                put_u64(&mut out, *conflict_epoch);
            }
            Response::RolledBack { discarded_pages } => {
                out.push(137);
                put_u64(&mut out, *discarded_pages);
            }
            Response::ScatterOk {
                results,
                stat,
                partials,
            } => {
                out.push(138);
                put_u64(&mut out, *results);
                put_stat(&mut out, stat);
                put_u32(&mut out, partials.len() as u32);
                for p in partials {
                    put_u32(&mut out, p.shard);
                    put_u64(&mut out, p.results);
                    put_stat(&mut out, &p.stat);
                }
            }
            Response::ShardUnavailable { shard, detail } => {
                out.push(139);
                put_u32(&mut out, *shard);
                put_str(&mut out, detail);
            }
            Response::ShardsAborted { committed, aborts } => {
                out.push(140);
                put_u32(&mut out, committed.len() as u32);
                for s in committed {
                    put_u32(&mut out, *s);
                }
                put_u32(&mut out, aborts.len() as u32);
                for a in aborts {
                    put_u32(&mut out, a.shard);
                    put_str(&mut out, &a.conflict_file);
                    put_u64(&mut out, a.conflict_epoch);
                }
            }
        }
        out
    }

    /// Decodes a frame payload.
    pub fn decode(payload: &[u8]) -> Result<Self, DecodeError> {
        let mut c = Cursor::new(payload);
        let resp = match c.u8()? {
            128 => Response::SessionOpened { session: c.u64()? },
            129 => Response::QueryOk {
                results: c.u64()?,
                stat: Box::new(c.stat()?),
            },
            130 => Response::Overloaded {
                queue_depth: c.u32()?,
                shard: c.u32()?,
            },
            131 => Response::DeadlineExceeded {
                elapsed_nanos: c.u64()?,
            },
            132 => Response::SessionClosed {
                drained_handles: c.u64()?,
                leaked_handles: c.u64()?,
                uncommitted_pages: c.u64()?,
            },
            133 => Response::Error { msg: c.string()? },
            134 => Response::UpdateOk {
                updated: c.u64()?,
                stat: Box::new(c.stat()?),
            },
            135 => Response::Committed {
                epoch: c.u64()?,
                pages: c.u64()?,
            },
            136 => Response::Aborted {
                conflict_file: c.string()?,
                conflict_epoch: c.u64()?,
            },
            137 => Response::RolledBack {
                discarded_pages: c.u64()?,
            },
            138 => {
                let results = c.u64()?;
                let stat = Box::new(c.stat()?);
                // A partial is at least shard + results + a minimal
                // Stat (~126 bytes of fixed-width fields): 100 is a
                // safe floor for the forged-count guard.
                let n = c.count(100)?;
                let mut partials = Vec::new();
                for _ in 0..n {
                    partials.push(PartialStat {
                        shard: c.u32()?,
                        results: c.u64()?,
                        stat: c.stat()?,
                    });
                }
                Response::ScatterOk {
                    results,
                    stat,
                    partials,
                }
            }
            139 => Response::ShardUnavailable {
                shard: c.u32()?,
                detail: c.string()?,
            },
            140 => {
                let n_committed = c.count(4)?;
                let mut committed = Vec::new();
                for _ in 0..n_committed {
                    committed.push(c.u32()?);
                }
                let n_aborts = c.count(16)?;
                let mut aborts = Vec::new();
                for _ in 0..n_aborts {
                    aborts.push(ShardAbort {
                        shard: c.u32()?,
                        conflict_file: c.string()?,
                        conflict_epoch: c.u64()?,
                    });
                }
                Response::ShardsAborted { committed, aborts }
            }
            other => return Err(DecodeError::BadTag(other)),
        };
        c.finish()?;
        Ok(resp)
    }
}

/// Bounds-checked sequential reader over a payload.
struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self.at.checked_add(n).ok_or(DecodeError::Truncated)?;
        if end > self.bytes.len() {
            return Err(DecodeError::Truncated);
        }
        let s = &self.bytes[self.at..end];
        self.at = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn boolean(&mut self) -> Result<bool, DecodeError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(DecodeError::BadEnum(other)),
        }
    }

    fn string(&mut self) -> Result<String, DecodeError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::BadUtf8)
    }

    /// Reads an element count and rejects it up front if even
    /// `min_elem_bytes`-sized elements could not fit in the remaining
    /// payload — a forged count fails here instead of spinning through
    /// billions of per-element `Truncated` checks.
    fn count(&mut self, min_elem_bytes: usize) -> Result<usize, DecodeError> {
        let n = self.u32()? as usize;
        let remaining = self.bytes.len() - self.at;
        if n.saturating_mul(min_elem_bytes) > remaining {
            return Err(DecodeError::Truncated);
        }
        Ok(n)
    }

    fn operator(&mut self) -> Result<OperatorStat, DecodeError> {
        Ok(OperatorStat {
            op: self.string()?,
            label: self.string()?,
            depth: self.u32()?,
            d2sc_read_pages: self.u64()?,
            sc2cc_read_pages: self.u64()?,
            client_misses: self.u64()?,
            handle_gets: self.u64()?,
            handle_frees: self.u64()?,
            cpu_events: self.u64()?,
            io_nanos: self.u64()?,
            rpc_nanos: self.u64()?,
            cpu_nanos: self.u64()?,
            swap_nanos: self.u64()?,
        })
    }

    fn stat(&mut self) -> Result<Stat, DecodeError> {
        let numtest = self.u64()?;
        let cold = self.boolean()?;
        let projection_type = self.string()?;
        let n_sel = self.count(8)?;
        let mut selectivities = Vec::new();
        for _ in 0..n_sel {
            let extent = self.string()?;
            let pct = self.u32()?;
            selectivities.push((extent, pct));
        }
        let text = self.string()?;
        let n_ext = self.count(16)?;
        let mut database = Vec::new();
        for _ in 0..n_ext {
            let classname = self.string()?;
            let size = self.u64()?;
            let n_assoc = self.count(8)?;
            let mut associations = Vec::new();
            for _ in 0..n_assoc {
                let class = self.string()?;
                let ratio = self.u32()?;
                associations.push((class, ratio));
            }
            database.push(ExtentDesc {
                classname,
                size,
                associations,
            });
        }
        let cluster = self.string()?;
        let algo = self.string()?;
        let system = SystemDesc {
            server_cache_kb: self.u64()?,
            client_cache_kb: self.u64()?,
            same_workstation: self.boolean()?,
        };
        let cc_pagefaults = self.u64()?;
        let cc_lookups = self.u64()?;
        let elapsed_time = self.f64()?;
        let rpcs_number = self.u64()?;
        let rpcs_total_mb = self.f64()?;
        let d2sc_read_pages = self.u64()?;
        let sc2cc_read_pages = self.u64()?;
        let cc_miss_rate = self.f64()?;
        let sc_miss_rate = self.f64()?;
        let n_ops = self.count(92)?;
        let mut operators = Vec::new();
        for _ in 0..n_ops {
            operators.push(self.operator()?);
        }
        Ok(Stat {
            numtest,
            query: QueryDesc {
                cold,
                projection_type,
                selectivities,
                text,
            },
            database,
            cluster,
            algo,
            system,
            cc_pagefaults,
            cc_lookups,
            elapsed_time,
            rpcs_number,
            rpcs_total_mb,
            d2sc_read_pages,
            sc2cc_read_pages,
            cc_miss_rate,
            sc_miss_rate,
            operators,
        })
    }

    fn finish(&self) -> Result<(), DecodeError> {
        if self.at == self.bytes.len() {
            Ok(())
        } else {
            Err(DecodeError::TrailingBytes)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_requests_round_trip() {
        for req in [
            Request::Hello {
                mode: CacheMode::Cold,
            },
            Request::Hello {
                mode: CacheMode::Warm,
            },
            Request::Query(QuerySpec {
                session: 42,
                algo: JoinAlgo::Chj,
                pat_pct: 10,
                prov_pct: 90,
                deadline_nanos: 5_000_000_000,
            }),
            Request::Close { session: 7 },
        ] {
            assert_eq!(Request::decode(&req.encode()), Ok(req));
        }
        for policy in PlannerPolicy::all() {
            let req = Request::Chain(ChainQuerySpec {
                session: 9,
                depth: 3,
                pat_pct: 30,
                prov_pct: 60,
                policy,
                deadline_nanos: 0,
            });
            assert_eq!(Request::decode(&req.encode()), Ok(req));
        }
    }

    #[test]
    fn bad_inputs_are_typed_errors() {
        assert_eq!(Request::decode(&[]), Err(DecodeError::Truncated));
        assert_eq!(Request::decode(&[99]), Err(DecodeError::BadTag(99)));
        assert_eq!(Request::decode(&[1, 7]), Err(DecodeError::BadEnum(7)));
        let mut ok = Request::Close { session: 1 }.encode();
        ok.push(0);
        assert_eq!(Request::decode(&ok), Err(DecodeError::TrailingBytes));
        // An out-of-range planner-policy discriminant in a Chain request.
        let mut chain = Request::Chain(ChainQuerySpec {
            session: 1,
            depth: 3,
            pat_pct: 10,
            prov_pct: 10,
            policy: PlannerPolicy::Estimate,
            deadline_nanos: 0,
        })
        .encode();
        assert_eq!(chain[1 + 8 + 4 + 4 + 4], 0, "policy byte moved");
        chain[1 + 8 + 4 + 4 + 4] = 9;
        assert_eq!(Request::decode(&chain), Err(DecodeError::BadEnum(9)));
        chain[1 + 8 + 4 + 4 + 4] = 0;
        chain.truncate(chain.len() - 1);
        assert_eq!(Request::decode(&chain), Err(DecodeError::Truncated));
        // Non-UTF-8 string in an Error response.
        let mut bad = vec![133];
        bad.extend_from_slice(&2u32.to_le_bytes());
        bad.extend_from_slice(&[0xff, 0xfe]);
        assert_eq!(Response::decode(&bad), Err(DecodeError::BadUtf8));
    }

    #[test]
    fn frame_round_trip_and_limits() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap(), b"");
        assert!(matches!(read_frame(&mut r), Err(FrameError::Closed)));
        // A forged oversized header is rejected without allocating.
        let huge = (MAX_FRAME as u32 + 1).to_le_bytes();
        assert!(matches!(
            read_frame(&mut &huge[..]),
            Err(FrameError::TooLarge(_))
        ));
        // Truncation inside the header and inside the payload.
        assert!(matches!(
            read_frame(&mut &[1u8, 0][..]),
            Err(FrameError::Truncated)
        ));
        let mut partial = Vec::new();
        write_frame(&mut partial, b"abcdef").unwrap();
        partial.truncate(7);
        assert!(matches!(
            read_frame(&mut &partial[..]),
            Err(FrameError::Truncated)
        ));
    }
}
