//! In-process duplex transport.
//!
//! A [`DuplexStream`] pair behaves like the two ends of a connected
//! socket — blocking `Read`/`Write` over a pair of in-memory channels —
//! without touching the network stack. Tests and the load generator
//! run the full wire protocol over it, deterministically and
//! socket-free; the same server code serves `TcpStream`s unchanged
//! (both are just `Read + Write`).

use std::io::{Read, Write};
use std::sync::mpsc::{channel, Receiver, Sender};

/// One end of an in-process bidirectional byte stream.
pub struct DuplexStream {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
    pending: Vec<u8>,
    at: usize,
}

/// Creates a connected pair: bytes written to one end are read from
/// the other. Dropping an end reads as EOF on its peer (a hung-up
/// socket).
pub fn duplex_pair() -> (DuplexStream, DuplexStream) {
    let (a_tx, b_rx) = channel();
    let (b_tx, a_rx) = channel();
    let mk = |tx, rx| DuplexStream {
        tx,
        rx,
        pending: Vec::new(),
        at: 0,
    };
    (mk(a_tx, a_rx), mk(b_tx, b_rx))
}

impl Read for DuplexStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        while self.at == self.pending.len() {
            match self.rx.recv() {
                Ok(chunk) => {
                    self.pending = chunk;
                    self.at = 0;
                }
                // Peer dropped: clean EOF, like a closed socket.
                Err(_) => return Ok(0),
            }
        }
        let n = buf.len().min(self.pending.len() - self.at);
        buf[..n].copy_from_slice(&self.pending[self.at..self.at + n]);
        self.at += n;
        Ok(n)
    }
}

impl Write for DuplexStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.tx.send(buf.to_vec()).map_err(|_| {
            std::io::Error::new(std::io::ErrorKind::BrokenPipe, "peer disconnected")
        })?;
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_cross_and_eof_on_drop() {
        let (mut a, mut b) = duplex_pair();
        a.write_all(b"ping").unwrap();
        let mut buf = [0u8; 4];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
        b.write_all(b"pong").unwrap();
        a.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"pong");
        drop(a);
        assert_eq!(b.read(&mut buf).unwrap(), 0);
        assert!(b.write_all(b"x").is_err());
    }

    #[test]
    fn short_reads_reassemble() {
        let (mut a, mut b) = duplex_pair();
        a.write_all(b"abc").unwrap();
        a.write_all(b"defg").unwrap();
        let mut out = Vec::new();
        let mut one = [0u8; 2];
        for _ in 0..4 {
            let n = b.read(&mut one).unwrap();
            out.extend_from_slice(&one[..n]);
        }
        assert_eq!(out, b"abcdefg");
    }
}
