//! Admission-controlled scheduler: a bounded queue in front of a
//! fixed worker pool.
//!
//! The queue depth is the service's only defence against unbounded
//! latency under overload: when the queue is full, [`Scheduler::submit`]
//! *sheds* the job with a typed [`Overloaded`] instead of queueing it —
//! the client gets an immediate rejection it can retry or count, and
//! queued work keeps a bounded wait. (A query's own runtime budget is
//! separate: per-query deadlines, enforced cooperatively by
//! `ExecContext`.)
//!
//! **Depth 0** is the strictest admission policy: *shed unless a worker
//! is idle*. A job is admitted only when an already-waiting worker can
//! pick it up immediately (nothing ever waits in the queue beyond the
//! instant between `notify_one` and the worker waking); with every
//! worker busy, arrivals shed. It is neither a panic nor a silent
//! clamp to 1 — depth 1 would let one job queue behind busy workers.
//!
//! Admission decision and shed accounting happen under the same state
//! lock: a shed is counted at the moment its rejection is decided, so
//! racing submitters can neither double-count a shed nor sneak a job
//! into a queue that was full when they were rejected.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A unit of work for the pool.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// Typed admission-control rejection: the queue was at its configured
/// depth when the job arrived.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Overloaded {
    /// The configured (and occupied) queue depth.
    pub queue_depth: u32,
}

impl std::fmt::Display for Overloaded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "admission queue full at depth {}", self.queue_depth)
    }
}

impl std::error::Error for Overloaded {}

struct State {
    queue: VecDeque<Job>,
    shutdown: bool,
    /// Workers currently parked in `available.wait` (not holding a job).
    idle: usize,
    /// Jobs shed by admission control. Kept inside the state lock so a
    /// shed is counted exactly once, at the same instant its rejection
    /// is decided.
    shed: u64,
}

struct Inner {
    state: Mutex<State>,
    available: Condvar,
    depth: usize,
    executed: AtomicU64,
}

/// Bounded worker pool with admission control.
pub struct Scheduler {
    inner: Arc<Inner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Scheduler {
    /// Starts `workers` worker threads (floored at 1) behind a queue of
    /// at most `queue_depth` waiting jobs. Depth 0 means *shed unless a
    /// worker is idle* (see the module docs).
    pub fn new(workers: usize, queue_depth: usize) -> Self {
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                shutdown: false,
                idle: 0,
                shed: 0,
            }),
            available: Condvar::new(),
            depth: queue_depth,
            executed: AtomicU64::new(0),
        });
        let handles = (0..workers.max(1))
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("tq-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn worker")
            })
            .collect();
        Self {
            inner,
            workers: Mutex::new(handles),
        }
    }

    /// Admits a job, or sheds it if the queue is at depth (for depth 0:
    /// if no idle worker could take it immediately).
    pub fn submit(&self, job: Job) -> Result<(), Overloaded> {
        let mut state = self.inner.state.lock().unwrap();
        let admit = !state.shutdown
            && if self.inner.depth == 0 {
                // Idle workers not yet claimed by an already-queued job.
                state.queue.len() < state.idle
            } else {
                state.queue.len() < self.inner.depth
            };
        if !admit {
            state.shed += 1;
            return Err(Overloaded {
                queue_depth: self.inner.depth as u32,
            });
        }
        state.queue.push_back(job);
        drop(state);
        self.inner.available.notify_one();
        Ok(())
    }

    /// Jobs shed by admission control so far.
    pub fn shed_count(&self) -> u64 {
        self.inner.state.lock().unwrap().shed
    }

    /// Jobs run to completion so far.
    pub fn executed_count(&self) -> u64 {
        self.inner.executed.load(Ordering::Relaxed)
    }

    /// Workers currently parked waiting for work (test observability;
    /// exact only while no submit is in flight).
    pub fn idle_workers(&self) -> usize {
        self.inner.state.lock().unwrap().idle
    }

    /// Stops admission, lets the workers drain the queue, and joins
    /// them. Idempotent.
    pub fn shutdown(&self) {
        {
            let mut state = self.inner.state.lock().unwrap();
            state.shutdown = true;
        }
        self.inner.available.notify_all();
        let mut workers = self.workers.lock().unwrap();
        for handle in workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        let job = {
            let mut state = inner.state.lock().unwrap();
            loop {
                if let Some(job) = state.queue.pop_front() {
                    break job;
                }
                if state.shutdown {
                    return;
                }
                state.idle += 1;
                state = inner.available.wait(state).unwrap();
                state.idle -= 1;
            }
        };
        job();
        inner.executed.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel;
    use std::time::{Duration, Instant};

    fn wait_for_idle(sched: &Scheduler, n: usize) {
        let deadline = Instant::now() + Duration::from_secs(5);
        while sched.idle_workers() < n {
            assert!(Instant::now() < deadline, "workers never went idle");
            std::thread::yield_now();
        }
    }

    #[test]
    fn runs_submitted_jobs() {
        let sched = Scheduler::new(4, 64);
        let (tx, rx) = channel();
        for i in 0..32u32 {
            let tx = tx.clone();
            sched.submit(Box::new(move || tx.send(i).unwrap())).unwrap();
        }
        drop(tx);
        let mut got: Vec<u32> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, (0..32).collect::<Vec<_>>());
        sched.shutdown();
        assert_eq!(sched.executed_count(), 32);
        assert_eq!(sched.shed_count(), 0);
    }

    #[test]
    fn full_queue_sheds_with_typed_error() {
        let sched = Scheduler::new(1, 2);
        // Block the single worker so the queue can fill.
        let (gate_tx, gate_rx) = channel::<()>();
        sched
            .submit(Box::new(move || {
                let _ = gate_rx.recv();
            }))
            .unwrap();
        // Give the worker a moment to take the blocking job, freeing
        // the queue to hold exactly `depth` waiters.
        std::thread::sleep(std::time::Duration::from_millis(20));
        sched.submit(Box::new(|| {})).unwrap();
        sched.submit(Box::new(|| {})).unwrap();
        let err = sched.submit(Box::new(|| {})).unwrap_err();
        assert_eq!(err, Overloaded { queue_depth: 2 });
        assert_eq!(sched.shed_count(), 1);
        gate_tx.send(()).unwrap();
        sched.shutdown();
        assert_eq!(sched.executed_count(), 3);
    }

    #[test]
    fn shutdown_drains_queued_jobs() {
        let sched = Scheduler::new(1, 64);
        let done = Arc::new(AtomicU64::new(0));
        for _ in 0..16 {
            let done = Arc::clone(&done);
            sched
                .submit(Box::new(move || {
                    done.fetch_add(1, Ordering::Relaxed);
                }))
                .unwrap();
        }
        sched.shutdown();
        assert_eq!(done.load(Ordering::Relaxed), 16);
        // Post-shutdown submission sheds.
        assert!(sched.submit(Box::new(|| {})).is_err());
    }

    #[test]
    fn depth_zero_sheds_unless_a_worker_is_idle() {
        let sched = Scheduler::new(2, 0);
        wait_for_idle(&sched, 2);
        // Two gated jobs occupy both workers.
        let (started_tx, started_rx) = channel::<()>();
        let (gate_tx, gate_rx) = channel::<()>();
        let gate_rx = Arc::new(Mutex::new(gate_rx));
        for _ in 0..2 {
            let started = started_tx.clone();
            let gate = Arc::clone(&gate_rx);
            sched
                .submit(Box::new(move || {
                    started.send(()).unwrap();
                    let _ = gate.lock().unwrap().recv();
                }))
                .expect("idle workers must admit at depth 0");
        }
        started_rx.recv().unwrap();
        started_rx.recv().unwrap();
        // Both workers busy, nobody idle: depth 0 sheds immediately.
        let err = sched.submit(Box::new(|| {})).unwrap_err();
        assert_eq!(err, Overloaded { queue_depth: 0 });
        assert_eq!(sched.shed_count(), 1);
        // Release the workers; once one is idle again, admission resumes.
        gate_tx.send(()).unwrap();
        gate_tx.send(()).unwrap();
        wait_for_idle(&sched, 2);
        sched.submit(Box::new(|| {})).expect("idle again: admit");
        sched.shutdown();
        assert_eq!(sched.executed_count(), 3);
        assert_eq!(sched.shed_count(), 1);
    }

    #[test]
    fn racing_submits_account_sheds_exactly_once_each() {
        // One worker, blocked; queue of 1, pre-filled. Every further
        // submit must shed, and admitted + shed must exactly equal the
        // number of attempts — the check-then-count window is closed.
        let sched = Arc::new(Scheduler::new(1, 1));
        let (gate_tx, gate_rx) = channel::<()>();
        sched
            .submit(Box::new(move || {
                let _ = gate_rx.recv();
            }))
            .unwrap();
        std::thread::sleep(Duration::from_millis(20));
        let admitted = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let sched = Arc::clone(&sched);
                let admitted = Arc::clone(&admitted);
                std::thread::spawn(move || {
                    if sched.submit(Box::new(|| {})).is_ok() {
                        admitted.fetch_add(1, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let ok = admitted.load(Ordering::Relaxed);
        assert_eq!(
            ok + sched.shed_count(),
            8,
            "every racing submit is either admitted or counted shed, once"
        );
        gate_tx.send(()).unwrap();
        sched.shutdown();
        assert_eq!(sched.executed_count(), 1 + ok);
    }
}
