//! Admission-controlled scheduler: a bounded queue in front of a
//! fixed worker pool.
//!
//! The queue depth is the service's only defence against unbounded
//! latency under overload: when the queue is full, [`Scheduler::submit`]
//! *sheds* the job with a typed [`Overloaded`] instead of queueing it —
//! the client gets an immediate rejection it can retry or count, and
//! queued work keeps a bounded wait. (A query's own runtime budget is
//! separate: per-query deadlines, enforced cooperatively by
//! `ExecContext`.)

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A unit of work for the pool.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// Typed admission-control rejection: the queue was at its configured
/// depth when the job arrived.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Overloaded {
    /// The configured (and occupied) queue depth.
    pub queue_depth: u32,
}

impl std::fmt::Display for Overloaded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "admission queue full at depth {}", self.queue_depth)
    }
}

impl std::error::Error for Overloaded {}

struct State {
    queue: VecDeque<Job>,
    shutdown: bool,
}

struct Inner {
    state: Mutex<State>,
    available: Condvar,
    depth: usize,
    shed: AtomicU64,
    executed: AtomicU64,
}

/// Bounded worker pool with admission control.
pub struct Scheduler {
    inner: Arc<Inner>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Scheduler {
    /// Starts `workers` worker threads behind a queue of at most
    /// `queue_depth` waiting jobs (both floored at 1).
    pub fn new(workers: usize, queue_depth: usize) -> Self {
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            available: Condvar::new(),
            depth: queue_depth.max(1),
            shed: AtomicU64::new(0),
            executed: AtomicU64::new(0),
        });
        let handles = (0..workers.max(1))
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("tq-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn worker")
            })
            .collect();
        Self {
            inner,
            workers: Mutex::new(handles),
        }
    }

    /// Admits a job, or sheds it if the queue is at depth.
    pub fn submit(&self, job: Job) -> Result<(), Overloaded> {
        let mut state = self.inner.state.lock().unwrap();
        if state.shutdown || state.queue.len() >= self.inner.depth {
            drop(state);
            self.inner.shed.fetch_add(1, Ordering::Relaxed);
            return Err(Overloaded {
                queue_depth: self.inner.depth as u32,
            });
        }
        state.queue.push_back(job);
        drop(state);
        self.inner.available.notify_one();
        Ok(())
    }

    /// Jobs shed by admission control so far.
    pub fn shed_count(&self) -> u64 {
        self.inner.shed.load(Ordering::Relaxed)
    }

    /// Jobs run to completion so far.
    pub fn executed_count(&self) -> u64 {
        self.inner.executed.load(Ordering::Relaxed)
    }

    /// Stops admission, lets the workers drain the queue, and joins
    /// them. Idempotent.
    pub fn shutdown(&self) {
        {
            let mut state = self.inner.state.lock().unwrap();
            state.shutdown = true;
        }
        self.inner.available.notify_all();
        let mut workers = self.workers.lock().unwrap();
        for handle in workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        let job = {
            let mut state = inner.state.lock().unwrap();
            loop {
                if let Some(job) = state.queue.pop_front() {
                    break job;
                }
                if state.shutdown {
                    return;
                }
                state = inner.available.wait(state).unwrap();
            }
        };
        job();
        inner.executed.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel;

    #[test]
    fn runs_submitted_jobs() {
        let sched = Scheduler::new(4, 64);
        let (tx, rx) = channel();
        for i in 0..32u32 {
            let tx = tx.clone();
            sched.submit(Box::new(move || tx.send(i).unwrap())).unwrap();
        }
        drop(tx);
        let mut got: Vec<u32> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, (0..32).collect::<Vec<_>>());
        sched.shutdown();
        assert_eq!(sched.executed_count(), 32);
        assert_eq!(sched.shed_count(), 0);
    }

    #[test]
    fn full_queue_sheds_with_typed_error() {
        let sched = Scheduler::new(1, 2);
        // Block the single worker so the queue can fill.
        let (gate_tx, gate_rx) = channel::<()>();
        sched
            .submit(Box::new(move || {
                let _ = gate_rx.recv();
            }))
            .unwrap();
        // Give the worker a moment to take the blocking job, freeing
        // the queue to hold exactly `depth` waiters.
        std::thread::sleep(std::time::Duration::from_millis(20));
        sched.submit(Box::new(|| {})).unwrap();
        sched.submit(Box::new(|| {})).unwrap();
        let err = sched.submit(Box::new(|| {})).unwrap_err();
        assert_eq!(err, Overloaded { queue_depth: 2 });
        assert_eq!(sched.shed_count(), 1);
        gate_tx.send(()).unwrap();
        sched.shutdown();
        assert_eq!(sched.executed_count(), 3);
    }

    #[test]
    fn shutdown_drains_queued_jobs() {
        let sched = Scheduler::new(1, 64);
        let done = Arc::new(AtomicU64::new(0));
        for _ in 0..16 {
            let done = Arc::clone(&done);
            sched
                .submit(Box::new(move || {
                    done.fetch_add(1, Ordering::Relaxed);
                }))
                .unwrap();
        }
        sched.shutdown();
        assert_eq!(done.load(Ordering::Relaxed), 16);
        // Post-shutdown submission sheds.
        assert!(sched.submit(Box::new(|| {})).is_err());
    }
}
