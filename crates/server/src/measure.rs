//! The paper's measurement protocol, shared by the figure harness and
//! the query service.
//!
//! Moved here from `tq-bench::harness` so the serving layer and the
//! figure binaries execute queries through *one* code path: a served
//! query produces a [`Stat`] byte-identical to the one the figure
//! harness would record for the same run (the concurrency-equivalence
//! test in `crates/server/tests/concurrency.rs` pins this). `tq-bench`
//! re-exports everything under its old names.

use tq_index::BTreeIndex;
use tq_objstore::ClassId;
use tq_query::join::parallel::{run_join_parallel, MorselPanic, ParallelRun};
use tq_query::join::{JoinContext, JoinOptions, JoinReport};
use tq_query::maintenance::MaintainedIndex;
use tq_query::oql::{compile_str, CompiledQuery};
use tq_query::update::{run_update, UpdateOutcome, UpdateSpec};
use tq_query::{
    plan_chain, run_chain, CancelToken, ChainChoice, ChainFacts, ChainReport, ChainSpec, ExecTrace,
    JoinAlgo, OpCounters, OpKind, PlannerPolicy, ResultMode, TreeJoinSpec,
};
use tq_statsdb::{ExtentDesc, OperatorStat, QueryDesc, Stat, SystemDesc};
use tq_workload::{
    chain3_query_text, chain4_query_text, patient_attr, provider_attr, ref_chain_query_text,
    Database,
};

use crate::proto::UpdateTarget;

/// The paper's §5 join at the given selectivities.
pub fn join_spec(db: &Database, pat_pct: u32, prov_pct: u32) -> TreeJoinSpec {
    TreeJoinSpec {
        parents: "Providers".into(),
        children: "Patients".into(),
        parent_key: provider_attr::UPIN,
        parent_set: provider_attr::CLIENTS,
        child_key: patient_attr::MRN,
        child_parent: patient_attr::PCP,
        parent_project: provider_attr::NAME,
        child_project: patient_attr::AGE,
        parent_key_limit: db.provider_selectivity_key(prov_pct),
        child_key_limit: db.patient_selectivity_key(pat_pct),
        result_mode: ResultMode::Transient,
    }
}

/// One measured join run.
#[derive(Clone, Debug)]
pub struct JoinCell {
    /// The algorithm.
    pub algo: JoinAlgo,
    /// Simulated elapsed seconds (cold run).
    pub secs: f64,
    /// Result tuples.
    pub results: u64,
    /// Executor report.
    pub report: JoinReport,
    /// I/O counters for the run.
    pub io: tq_pagestore::IoStats,
}

/// Runs one cold join measurement (the paper's protocol: server
/// shutdown before every run).
pub fn run_join_cell(
    db: &mut Database,
    algo: JoinAlgo,
    pat_pct: u32,
    prov_pct: u32,
    opts: &JoinOptions,
) -> JoinCell {
    run_join_cell_with(db, algo, pat_pct, prov_pct, opts, None)
}

/// [`run_join_cell`] with cooperative cancellation. A fired token
/// unwinds out of this call with an [`exec::Cancelled`] payload
/// (`tq_query::Cancelled`); the database is then in an undefined
/// cache/handle state and must be discarded — the session layer
/// replaces it with a fresh snapshot clone.
pub fn run_join_cell_with(
    db: &mut Database,
    algo: JoinAlgo,
    pat_pct: u32,
    prov_pct: u32,
    opts: &JoinOptions,
    cancel: Option<CancelToken>,
) -> JoinCell {
    // The cold protocol, spelled out (rather than `measure_cold`) so
    // the end-of-query handle drain can be recorded on the trace: with
    // the `Teardown` row the per-operator counters cover the *whole*
    // measured window and sum exactly to the query-level `Stat`.
    db.store.cold_restart();
    measure_current(db, algo, pat_pct, prov_pct, opts, cancel)
}

/// Runs a *warm* join measurement: one cold run primes the caches
/// (discarded), then the same join is measured again without a server
/// restart. The paper measured everything cold; warm runs show how
/// much of each algorithm's cost the caches can absorb (I/O) and how
/// much they cannot (handle CPU — the §4 lesson).
pub fn run_join_cell_warm(
    db: &mut Database,
    algo: JoinAlgo,
    pat_pct: u32,
    prov_pct: u32,
    opts: &JoinOptions,
) -> JoinCell {
    // Prime.
    let _ = run_join_cell(db, algo, pat_pct, prov_pct, opts);
    // Measure warm: reset metrics only, keep residency.
    measure_current(db, algo, pat_pct, prov_pct, opts, None)
}

/// Measures one join against the database's *current* cache state:
/// metric reset, run, teardown row. Warm server sessions use this
/// directly (their caches are primed by earlier queries on the same
/// session, not by a discarded priming run).
pub fn measure_current(
    db: &mut Database,
    algo: JoinAlgo,
    pat_pct: u32,
    prov_pct: u32,
    opts: &JoinOptions,
    cancel: Option<CancelToken>,
) -> JoinCell {
    let degree = tq_query::exec::default_parallel_degree();
    match measure_current_parallel(db, algo, pat_pct, prov_pct, opts, cancel, degree) {
        Ok(cell) => cell,
        // Callers of the serial-shaped API get the panic the worker
        // raised, re-thrown as a typed payload — the session layer
        // catches it exactly where it catches `Cancelled`.
        Err(p) => std::panic::panic_any(p),
    }
}

/// [`measure_current`] at an explicit morsel-parallel degree.
///
/// At `degree <= 1` this IS the serial measurement — same code path,
/// byte-identical `JoinCell`. At higher degrees the join runs morsel-
/// parallel and the cell's window covers coordinator *and* workers:
/// `io` adds every worker's counter delta and `secs` adds their
/// simulated-clock deltas (total simulated work, the cost-model
/// analogue of CPU time — wall-clock speedup is this total divided by
/// the critical path). The trace-sums-to-cell invariant stays exact.
///
/// A worker panic surfaces as `Err(MorselPanic)` after every worker
/// joined; the database's caches are then stale but its handle table
/// is clean (worker clones died with their pins), so callers may
/// discard or keep the database — the service discards, like a
/// cancellation.
pub fn measure_current_parallel(
    db: &mut Database,
    algo: JoinAlgo,
    pat_pct: u32,
    prov_pct: u32,
    opts: &JoinOptions,
    cancel: Option<CancelToken>,
    degree: usize,
) -> Result<JoinCell, MorselPanic> {
    let spec = join_spec(db, pat_pct, prov_pct);
    let parent_index = db.idx_provider_upin.clone();
    let child_index = db.idx_patient_mrn.clone();
    db.store.reset_metrics();
    let ParallelRun {
        mut report,
        workers_io,
        workers_nanos,
        workers_teardown,
    } = {
        let mut ctx = JoinContext {
            store: &mut db.store,
            parent_index: &parent_index,
            child_index: &child_index,
        };
        run_join_parallel(algo, &mut ctx, &spec, opts, false, cancel, degree)?
    };
    record_teardown_with(db, &mut report.trace, &workers_teardown);
    let mut io = db.store.stats();
    io.accumulate(&workers_io);
    Ok(JoinCell {
        algo,
        secs: (db.store.clock().elapsed() + workers_nanos) as f64 / 1e9,
        results: report.results,
        io,
        report,
    })
}

/// [`run_join_cell_with`] at an explicit morsel-parallel degree: the
/// cold protocol (server shutdown first), then a parallel measurement.
pub fn run_join_cell_parallel(
    db: &mut Database,
    algo: JoinAlgo,
    pat_pct: u32,
    prov_pct: u32,
    opts: &JoinOptions,
    cancel: Option<CancelToken>,
    degree: usize,
) -> Result<JoinCell, MorselPanic> {
    db.store.cold_restart();
    measure_current_parallel(db, algo, pat_pct, prov_pct, opts, cancel, degree)
}

/// OQL text for a served chain depth, or `None` for a depth outside
/// the closed vocabulary (2 = reference chain, 3 and 4 = the cycle
/// chains). Depth 2 has no provider predicate, so `prov_pct` is
/// ignored there.
pub fn chain_query_text(db: &Database, depth: u32, pat_pct: u32, prov_pct: u32) -> Option<String> {
    Some(match depth {
        2 => ref_chain_query_text(db, pat_pct),
        3 => chain3_query_text(db, pat_pct, prov_pct),
        4 => chain4_query_text(db, pat_pct, prov_pct),
        _ => return None,
    })
}

/// The workload's fixed index set, by (class, attribute) — the same
/// three indexes every figure uses.
fn chain_index(db: &Database, class: ClassId, attr: usize) -> Option<&BTreeIndex> {
    if class == db.derby.provider && attr == provider_attr::UPIN {
        Some(&db.idx_provider_upin)
    } else if class == db.derby.patient && attr == patient_attr::MRN {
        Some(&db.idx_patient_mrn)
    } else if class == db.derby.patient && attr == patient_attr::NUM {
        Some(&db.idx_patient_num)
    } else {
        None
    }
}

/// One measured N-way chain run.
#[derive(Clone, Debug)]
pub struct ChainCell {
    /// The ordering policy that planned it.
    pub policy: PlannerPolicy,
    /// The plan the policy chose, with its cost estimate.
    pub choice: ChainChoice,
    /// Simulated elapsed seconds for the measured window.
    pub secs: f64,
    /// Result tuples.
    pub results: u64,
    /// Executor report.
    pub report: ChainReport,
    /// I/O counters for the run.
    pub io: tq_pagestore::IoStats,
}

/// Compiles a served chain depth to its [`ChainSpec`]. Fails on depths
/// outside the vocabulary or texts that don't compile to a chain — the
/// dispatch-time validation the wire protocol defers.
pub fn compile_chain_spec(
    db: &Database,
    depth: u32,
    pat_pct: u32,
    prov_pct: u32,
) -> Result<ChainSpec, String> {
    let text = chain_query_text(db, depth, pat_pct, prov_pct)
        .ok_or_else(|| format!("unsupported chain depth {depth} (expected 2, 3, or 4)"))?;
    match compile_str(&db.store, &text) {
        Ok(CompiledQuery::Chain(spec)) => Ok(spec),
        Ok(other) => Err(format!("`{text}` compiled to {other:?}, not a chain")),
        Err(e) => Err(format!("chain compile error: {e}")),
    }
}

/// Compiles and runs one *cold* chain measurement (the paper's
/// protocol: server shutdown before the run).
pub fn run_chain_cell(
    db: &mut Database,
    depth: u32,
    pat_pct: u32,
    prov_pct: u32,
    policy: PlannerPolicy,
    cancel: Option<CancelToken>,
) -> Result<ChainCell, String> {
    let spec = compile_chain_spec(db, depth, pat_pct, prov_pct)?;
    db.store.cold_restart();
    Ok(measure_chain_current(db, &spec, policy, cancel))
}

/// Measures one chain against the database's *current* cache state:
/// facts, plan, metric reset, run, teardown row — the chain
/// counterpart of [`measure_current`]. Cancellation unwinds with a
/// [`Cancelled`](tq_query::Cancelled) payload, after which the
/// database must be discarded (see [`run_join_cell_with`]).
pub fn measure_chain_current(
    db: &mut Database,
    spec: &ChainSpec,
    policy: PlannerPolicy,
    cancel: Option<CancelToken>,
) -> ChainCell {
    let facts = ChainFacts::derive(&db.store, spec, |class, attr| {
        chain_index(db, class, attr).map(|i| i.clustered)
    });
    let model = db.store.stack().model().clone();
    let choice = plan_chain(policy, spec, &facts, &model);
    let indexes: Vec<Option<BTreeIndex>> = spec
        .steps
        .iter()
        .map(|s| {
            let class = db.store.collection(&s.collection).class;
            s.preds
                .first()
                .and_then(|p| chain_index(db, class, p.attr))
                .cloned()
        })
        .collect();
    db.store.reset_metrics();
    let mut report = run_chain(&mut db.store, spec, &choice.plan, &indexes, false, cancel);
    record_teardown(db, &mut report.trace);
    ChainCell {
        policy,
        choice,
        secs: db.store.clock().elapsed_secs(),
        results: report.results,
        io: db.store.stats(),
        report,
    }
}

/// Converts a measured chain cell into a `Stat` record (algo
/// `"CHAIN-<POLICY>"`). Same shape as a join's record, so the StatsDb,
/// the wire protocol, and the operator-attribution invariant all apply
/// unchanged.
pub fn chain_stat_record(
    db: &Database,
    cell: &ChainCell,
    depth: u32,
    pat_pct: u32,
    prov_pct: u32,
) -> Stat {
    let text = chain_query_text(db, depth, pat_pct, prov_pct).expect("measured depth is served");
    let projection_type = match depth {
        2 => "p.upin",
        3 => "z.upin",
        _ => "w.num",
    };
    let mut selectivities = vec![("Patient".into(), pat_pct)];
    if depth >= 3 {
        selectivities.push(("Provider".into(), prov_pct));
    }
    Stat {
        numtest: 0, // assigned by the StatsDb
        query: QueryDesc {
            cold: true,
            projection_type: projection_type.into(),
            selectivities,
            text,
        },
        database: vec![
            ExtentDesc {
                classname: "Provider".into(),
                size: db.provider_count,
                associations: vec![("Patient".into(), db.config.shape.mean_fanout())],
            },
            ExtentDesc {
                classname: "Patient".into(),
                size: db.patient_count,
                associations: vec![],
            },
        ],
        cluster: db.config.organization.label().into(),
        algo: format!("CHAIN-{}", cell.policy.label().to_ascii_uppercase()),
        system: SystemDesc {
            server_cache_kb: (db.config.cache.server_pages * 4) as u64,
            client_cache_kb: (db.config.cache.client_pages * 4) as u64,
            same_workstation: true,
        },
        cc_pagefaults: cell.io.client_misses,
        cc_lookups: cell.io.client_hits + cell.io.client_misses,
        elapsed_time: cell.secs,
        rpcs_number: cell.io.sc2cc_read_pages,
        rpcs_total_mb: cell.io.rpc_total_bytes() as f64 / 1e6,
        d2sc_read_pages: cell.io.d2sc_read_pages,
        sc2cc_read_pages: cell.io.sc2cc_read_pages,
        cc_miss_rate: cell.io.client_miss_rate(),
        sc_miss_rate: cell.io.server_miss_rate(),
        operators: operator_rows(&cell.report.trace),
    }
}

/// One measured update statement.
#[derive(Clone, Debug)]
pub struct UpdateCell {
    /// The statement that ran.
    pub target: UpdateTarget,
    /// Simulated elapsed seconds for the statement window.
    pub secs: f64,
    /// What the statement did, with its per-operator trace.
    pub outcome: UpdateOutcome,
    /// I/O counters for the window.
    pub io: tq_pagestore::IoStats,
}

/// Key limit for an update target at a selectivity, through the same
/// key-space arithmetic the join grid uses.
fn update_key_limit(db: &Database, target: UpdateTarget, sel_pct: u32) -> i64 {
    match target {
        UpdateTarget::Patients => db.patient_selectivity_key(sel_pct),
        UpdateTarget::Providers => db.provider_selectivity_key(sel_pct),
    }
}

/// Measures one update statement against the database's *current*
/// cache state (the session regime: earlier statements in the session
/// leave their residency — and their uncommitted writes — in place).
///
/// The statement is `update C set a = a + Δ where key < K`: Patients
/// adds to `num` (re-keying the num index), Providers adds to `upin`
/// (re-keying the upin index; Δ = 0 is a touch-update that dirties only
/// the data file). Index descriptor updates are written back into `db`
/// so later statements scan through current roots.
///
/// Cancellation unwinds with a [`Cancelled`](tq_query::Cancelled)
/// payload mid-statement; the half-updated database must then be
/// discarded wholesale (the session layer replaces it with a fresh
/// snapshot clone — uncommitted work is lost, which is the point).
pub fn measure_update_current(
    db: &mut Database,
    target: UpdateTarget,
    sel_pct: u32,
    delta: i32,
    cancel: Option<CancelToken>,
) -> UpdateCell {
    let key_limit = update_key_limit(db, target, sel_pct);
    db.store.reset_metrics();
    let mut outcome = match target {
        UpdateTarget::Patients => {
            let scan = db.idx_patient_mrn.clone();
            let mut idx_mrn = db.idx_patient_mrn.clone();
            let mut idx_num = db.idx_patient_num.clone();
            let out = {
                let mut reg = [
                    MaintainedIndex {
                        index: &mut idx_mrn,
                        key_attr: patient_attr::MRN,
                    },
                    MaintainedIndex {
                        index: &mut idx_num,
                        key_attr: patient_attr::NUM,
                    },
                ];
                run_update(
                    &mut db.store,
                    &scan,
                    &mut reg,
                    &UpdateSpec {
                        collection: "Patients".into(),
                        key_limit,
                        set_attr: patient_attr::NUM,
                        delta,
                    },
                    cancel,
                )
            };
            db.idx_patient_mrn = idx_mrn;
            db.idx_patient_num = idx_num;
            out
        }
        UpdateTarget::Providers => {
            let scan = db.idx_provider_upin.clone();
            let mut idx_upin = db.idx_provider_upin.clone();
            let out = {
                let mut reg = [MaintainedIndex {
                    index: &mut idx_upin,
                    key_attr: provider_attr::UPIN,
                }];
                run_update(
                    &mut db.store,
                    &scan,
                    &mut reg,
                    &UpdateSpec {
                        collection: "Providers".into(),
                        key_limit,
                        set_attr: provider_attr::UPIN,
                        delta,
                    },
                    cancel,
                )
            };
            db.idx_provider_upin = idx_upin;
            out
        }
    };
    record_teardown(db, &mut outcome.trace);
    UpdateCell {
        target,
        secs: db.store.clock().elapsed_secs(),
        io: db.store.stats(),
        outcome,
    }
}

/// Converts a measured update into a `Stat` record (algo `"UPDATE"`).
/// Same shape as a query's record, so the StatsDb, the wire protocol,
/// and the operator-attribution invariant all apply unchanged.
pub fn update_stat_record(
    db: &Database,
    cell: &UpdateCell,
    sel_pct: u32,
    delta: i32,
    cold: bool,
) -> Stat {
    let key_limit = update_key_limit(db, cell.target, sel_pct);
    let (extent, text) = match cell.target {
        UpdateTarget::Patients => (
            "Patient",
            format!("update Patients set num = num + {delta} where mrn < {key_limit}"),
        ),
        UpdateTarget::Providers => (
            "Provider",
            format!("update Providers set upin = upin + {delta} where upin < {key_limit}"),
        ),
    };
    Stat {
        numtest: 0, // assigned by the StatsDb
        query: QueryDesc {
            cold,
            projection_type: "[]".into(),
            selectivities: vec![(extent.into(), sel_pct)],
            text,
        },
        database: vec![
            ExtentDesc {
                classname: "Provider".into(),
                size: db.provider_count,
                associations: vec![("Patient".into(), db.config.shape.mean_fanout())],
            },
            ExtentDesc {
                classname: "Patient".into(),
                size: db.patient_count,
                associations: vec![],
            },
        ],
        cluster: db.config.organization.label().into(),
        algo: "UPDATE".into(),
        system: SystemDesc {
            server_cache_kb: (db.config.cache.server_pages * 4) as u64,
            client_cache_kb: (db.config.cache.client_pages * 4) as u64,
            same_workstation: true,
        },
        cc_pagefaults: cell.io.client_misses,
        cc_lookups: cell.io.client_hits + cell.io.client_misses,
        elapsed_time: cell.secs,
        rpcs_number: cell.io.sc2cc_read_pages,
        rpcs_total_mb: cell.io.rpc_total_bytes() as f64 / 1e6,
        d2sc_read_pages: cell.io.d2sc_read_pages,
        sc2cc_read_pages: cell.io.sc2cc_read_pages,
        cc_miss_rate: cell.io.client_miss_rate(),
        sc_miss_rate: cell.io.server_miss_rate(),
        operators: operator_rows(&cell.outcome.trace),
    }
}

/// Runs `end_of_query` and credits its counter delta to a `Teardown`
/// root row of the trace (skipped when the drain charges nothing).
fn record_teardown(db: &mut Database, trace: &mut ExecTrace) {
    record_teardown_with(db, trace, &OpCounters::default());
}

/// [`record_teardown`] plus counters already drained elsewhere — the
/// morsel workers' own end-of-query drains, charged on their clones
/// inside their measured windows. One trailing `Teardown` row carries
/// the whole query's deferred-free cost at any parallel degree.
fn record_teardown_with(db: &mut Database, trace: &mut ExecTrace, carried: &OpCounters) {
    let before = OpCounters::snapshot(&db.store);
    db.store.end_of_query();
    let mut drain = OpCounters::snapshot(&db.store).delta_since(&before);
    drain.add(carried);
    if !drain.is_zero() {
        trace.push_root(OpKind::Teardown, "end_of_query", drain);
    }
}

/// Flattens a trace into storable [`OperatorStat`] rows.
pub fn operator_rows(trace: &ExecTrace) -> Vec<OperatorStat> {
    trace
        .ops
        .iter()
        .map(|op| OperatorStat {
            op: op.kind.label().into(),
            label: op.label.clone(),
            depth: op.depth,
            d2sc_read_pages: op.counters.io.d2sc_read_pages,
            sc2cc_read_pages: op.counters.io.sc2cc_read_pages,
            client_misses: op.counters.io.client_misses,
            handle_gets: op.counters.handle_gets(),
            handle_frees: op.counters.handle_frees,
            cpu_events: op.counters.cpu_events,
            io_nanos: op.counters.io_nanos,
            rpc_nanos: op.counters.rpc_nanos,
            cpu_nanos: op.counters.cpu_nanos,
            swap_nanos: op.counters.swap_nanos,
        })
        .collect()
}

/// Converts a measured cell into a Figure 3 `Stat` record.
pub fn stat_record(db: &Database, cell: &JoinCell, pat_pct: u32, prov_pct: u32) -> Stat {
    let spec = join_spec(db, pat_pct, prov_pct);
    Stat {
        numtest: 0, // assigned by the StatsDb
        query: QueryDesc {
            cold: true,
            projection_type: "[p.name, pa.age]".into(),
            selectivities: vec![("Patient".into(), pat_pct), ("Provider".into(), prov_pct)],
            text: format!(
                "select [p.name, pa.age] from p in Providers, pa in p.clients \
                 where pa.mrn < {} and p.upin < {}",
                spec.child_key_limit, spec.parent_key_limit
            ),
        },
        database: vec![
            ExtentDesc {
                classname: "Provider".into(),
                size: db.provider_count,
                associations: vec![("Patient".into(), db.config.shape.mean_fanout())],
            },
            ExtentDesc {
                classname: "Patient".into(),
                size: db.patient_count,
                associations: vec![],
            },
        ],
        cluster: db.config.organization.label().into(),
        algo: cell.algo.label().into(),
        system: SystemDesc {
            server_cache_kb: (db.config.cache.server_pages * 4) as u64,
            client_cache_kb: (db.config.cache.client_pages * 4) as u64,
            same_workstation: true,
        },
        cc_pagefaults: cell.io.client_misses,
        cc_lookups: cell.io.client_hits + cell.io.client_misses,
        elapsed_time: cell.secs,
        rpcs_number: cell.io.sc2cc_read_pages,
        rpcs_total_mb: cell.io.rpc_total_bytes() as f64 / 1e6,
        d2sc_read_pages: cell.io.d2sc_read_pages,
        sc2cc_read_pages: cell.io.sc2cc_read_pages,
        cc_miss_rate: cell.io.client_miss_rate(),
        sc_miss_rate: cell.io.server_miss_rate(),
        operators: operator_rows(&cell.report.trace),
    }
}
