//! Client-side protocol helper: a thin synchronous request/response
//! wrapper over any `Read + Write` connection (TCP or in-process).

use std::io::{Read, Write};

use crate::proto::{
    read_frame, write_frame, CacheMode, ChainQuerySpec, DecodeError, FrameError, QuerySpec,
    Request, Response, UpdateTarget,
};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport/framing failure.
    Frame(FrameError),
    /// The server sent bytes that do not decode.
    Decode(DecodeError),
    /// The server answered `Error { msg }`.
    Server(String),
    /// The server answered with a response that does not fit the
    /// request (protocol confusion).
    Unexpected(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Frame(e) => write!(f, "transport: {e}"),
            ClientError::Decode(e) => write!(f, "bad server payload: {e}"),
            ClientError::Server(msg) => write!(f, "server error: {msg}"),
            ClientError::Unexpected(what) => write!(f, "unexpected response to {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

impl From<DecodeError> for ClientError {
    fn from(e: DecodeError) -> Self {
        ClientError::Decode(e)
    }
}

/// One protocol conversation over one connection.
pub struct Client<S: Read + Write> {
    conn: S,
}

impl<S: Read + Write> Client<S> {
    /// Wraps a connected stream.
    pub fn new(conn: S) -> Self {
        Self { conn }
    }

    fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.conn, &req.encode())?;
        Ok(Response::decode(&read_frame(&mut self.conn)?)?)
    }

    /// Opens a session; returns its id.
    pub fn open_session(&mut self, mode: CacheMode) -> Result<u64, ClientError> {
        match self.call(&Request::Hello { mode })? {
            Response::SessionOpened { session } => Ok(session),
            Response::Error { msg } => Err(ClientError::Server(msg)),
            _ => Err(ClientError::Unexpected("Hello")),
        }
    }

    /// Runs one query. The caller matches on the response: `QueryOk`,
    /// `Overloaded`, `DeadlineExceeded`, and (behind a router)
    /// `ShardUnavailable` are all ordinary outcomes of a served query,
    /// not client errors.
    pub fn query(&mut self, spec: QuerySpec) -> Result<Response, ClientError> {
        match self.call(&Request::Query(spec))? {
            resp @ (Response::QueryOk { .. }
            | Response::Overloaded { .. }
            | Response::DeadlineExceeded { .. }
            | Response::ShardUnavailable { .. }) => Ok(resp),
            Response::Error { msg } => Err(ClientError::Server(msg)),
            _ => Err(ClientError::Unexpected("Query")),
        }
    }

    /// Runs one query with per-shard partials in the reply. A plain
    /// server answers with a single self-partial; a router answers
    /// with one partial per engine shard plus the merged totals.
    pub fn scatter(&mut self, spec: QuerySpec) -> Result<Response, ClientError> {
        match self.call(&Request::Scatter(spec))? {
            resp @ (Response::ScatterOk { .. }
            | Response::Overloaded { .. }
            | Response::DeadlineExceeded { .. }
            | Response::ShardUnavailable { .. }) => Ok(resp),
            Response::Error { msg } => Err(ClientError::Server(msg)),
            _ => Err(ClientError::Unexpected("Scatter")),
        }
    }

    /// Runs one N-way chain query. Same outcome vocabulary as
    /// [`Client::query`] — a served chain answers `QueryOk`.
    pub fn chain(&mut self, spec: ChainQuerySpec) -> Result<Response, ClientError> {
        match self.call(&Request::Chain(spec))? {
            resp @ (Response::QueryOk { .. }
            | Response::Overloaded { .. }
            | Response::DeadlineExceeded { .. }
            | Response::ShardUnavailable { .. }) => Ok(resp),
            Response::Error { msg } => Err(ClientError::Server(msg)),
            _ => Err(ClientError::Unexpected("Chain")),
        }
    }

    /// Runs one update statement. Like [`Client::query`], `UpdateOk`,
    /// `Overloaded`, and `DeadlineExceeded` are all ordinary outcomes.
    pub fn update(
        &mut self,
        session: u64,
        target: UpdateTarget,
        sel_pct: u32,
        delta: i32,
        deadline_nanos: u64,
    ) -> Result<Response, ClientError> {
        match self.call(&Request::Update {
            session,
            target,
            sel_pct,
            delta,
            deadline_nanos,
        })? {
            resp @ (Response::UpdateOk { .. }
            | Response::Overloaded { .. }
            | Response::DeadlineExceeded { .. }
            | Response::ShardUnavailable { .. }) => Ok(resp),
            Response::Error { msg } => Err(ClientError::Server(msg)),
            _ => Err(ClientError::Unexpected("Update")),
        }
    }

    /// Commits the session's writes. `Committed`, `Aborted`, and
    /// (behind a router) `ShardsAborted` are all ordinary outcomes —
    /// an abort is the validation protocol working, not a failure.
    pub fn commit(&mut self, session: u64) -> Result<Response, ClientError> {
        match self.call(&Request::Commit { session })? {
            resp @ (Response::Committed { .. }
            | Response::Aborted { .. }
            | Response::ShardsAborted { .. }
            | Response::ShardUnavailable { .. }) => Ok(resp),
            Response::Error { msg } => Err(ClientError::Server(msg)),
            _ => Err(ClientError::Unexpected("Commit")),
        }
    }

    /// Discards the session's uncommitted writes; returns the number of
    /// dirty pages thrown away.
    pub fn abort(&mut self, session: u64) -> Result<u64, ClientError> {
        match self.call(&Request::Abort { session })? {
            Response::RolledBack { discarded_pages } => Ok(discarded_pages),
            Response::Error { msg } => Err(ClientError::Server(msg)),
            _ => Err(ClientError::Unexpected("Abort")),
        }
    }

    /// Closes a session; returns `(drained_handles, leaked_handles,
    /// uncommitted_pages)`.
    pub fn close_session(&mut self, session: u64) -> Result<(u64, u64, u64), ClientError> {
        match self.call(&Request::Close { session })? {
            Response::SessionClosed {
                drained_handles,
                leaked_handles,
                uncommitted_pages,
            } => Ok((drained_handles, leaked_handles, uncommitted_pages)),
            Response::Error { msg } => Err(ClientError::Server(msg)),
            _ => Err(ClientError::Unexpected("Close")),
        }
    }
}
