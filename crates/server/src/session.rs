//! Snapshot-isolated sessions over an MVCC epoch chain.
//!
//! Each session owns a copy-on-write [`Database`] clone pinned to a
//! **base epoch** — an immutable published snapshot. Epoch 0 is the
//! database the server started with; every successful [`Commit`]
//! publishes a new epoch. Sessions never observe each other's
//! uncommitted work — not through caches (each clone carries its own),
//! not through handle tables, not through the simulated clock — which
//! is what makes K concurrent sessions produce `Stat`s byte-identical
//! to K serial runs (pinned by `tests/concurrency.rs`).
//!
//! ## The publication protocol
//!
//! A session's writes stay private in its clone until `Commit`:
//!
//! 1. The session's database is checked out (`Busy` excludes races
//!    with its own queries), quiesced (handle drain + flush), and
//!    diffed against its base epoch's disk — copy-on-write pointer
//!    identity yields the **write-set** without tracking a single page
//!    number during execution.
//! 2. An empty write-set commits trivially: the session just re-pins
//!    the newest epoch.
//! 3. Otherwise the write-set is validated under the epoch lock
//!    against every epoch published after the session's base —
//!    **first committer wins**: any overlap (at file = collection
//!    granularity; see `tq_pagestore::writeset` for why) aborts the
//!    commit with a typed conflict naming the file and the winning
//!    epoch, and the session is refilled from the newest epoch.
//! 4. A valid write-set is published: if nothing intervened, the
//!    session's own (normalized) clone becomes the new epoch's
//!    database; if disjoint epochs intervened, a clone of the newest
//!    head *adopts* the write-set's files (pages stay shared — the
//!    merge is O(touched files), not O(pages)). The head pointer
//!    swaps to the new epoch atomically under the lock.
//!
//! Warm sessions re-pin: a query checkout
//! ([`SessionManager::take`]) that finds the session clean (no
//! divergence from its base) and behind the head silently re-bases it
//! onto the newest epoch, so committed writes become visible to
//! long-lived read sessions on their next query without breaking any
//! in-progress transaction's snapshot.
//!
//! A query *takes* the session's database out of the slot and returns
//! it afterwards; a second query on the same session while the first
//! runs gets a typed [`SessionError::Busy`] instead of racing. A
//! cancelled query leaves its database in an undefined cache/handle
//! state, so it is discarded and the slot refilled with a fresh clone
//! of the session's base epoch ([`SessionManager::replace_fresh`]) —
//! which also discards any uncommitted writes the session had
//! accumulated (a deadline mid-transaction aborts the transaction).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use tq_pagestore::WriteSet;
use tq_workload::Database;

use crate::proto::CacheMode;

/// Why a session operation failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SessionError {
    /// No session with that id (never opened, or already closed).
    Unknown(u64),
    /// The session's database is out running another query.
    Busy(u64),
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::Unknown(id) => write!(f, "unknown session {id}"),
            SessionError::Busy(id) => write!(f, "session {id} is busy"),
        }
    }
}

impl std::error::Error for SessionError {}

/// What teardown found and did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CloseReport {
    /// Handles drained from the delayed-free pool.
    pub drained_handles: u64,
    /// Handles still pinned after the drain (0 unless an operator
    /// leaked a guard).
    pub leaked_handles: u64,
    /// Pages of uncommitted writes the close discarded (0 for a
    /// session that committed or never wrote).
    pub uncommitted_pages: u64,
}

/// The conflict that aborted a commit: the first overlapping file and
/// the epoch whose earlier commit wins.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommitConflict {
    /// Name of the contended file (collection or index).
    pub file: String,
    /// The already-published epoch it conflicts with.
    pub epoch: u64,
}

/// What a commit did.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CommitOutcome {
    /// The write-set was published (or was empty); the session is now
    /// pinned to `epoch`.
    Committed {
        /// The epoch the session observes after the commit. A
        /// non-empty write-set creates this epoch; an empty one
        /// re-pins the newest existing epoch.
        epoch: u64,
        /// Pages the published write-set contained (0 for read-only).
        pages: u64,
    },
    /// First-committer-wins validation failed; the session's writes
    /// were discarded and it was re-pinned to the newest epoch.
    Aborted {
        /// What it conflicted with.
        conflict: CommitConflict,
    },
}

/// One published snapshot.
pub struct Epoch {
    number: u64,
    db: Database,
    write_set: WriteSet,
}

impl Epoch {
    /// The epoch's position in the publication order (0 = the server's
    /// starting snapshot).
    pub fn number(&self) -> u64 {
        self.number
    }

    /// The immutable database this epoch published.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The write-set whose publication created this epoch (empty for
    /// epoch 0).
    pub fn write_set(&self) -> &WriteSet {
        &self.write_set
    }
}

struct Chain {
    head: Arc<Epoch>,
    /// Every published epoch with `number >= 1`, in order — the
    /// validation window for first-committer-wins. (Sessions hold
    /// `Arc`s to their base epochs, so entries stay alive as long as
    /// anyone could still validate against them; the list itself is
    /// bounded by commits served, which the closed-loop harness keeps
    /// in the thousands.)
    published: Vec<Arc<Epoch>>,
}

struct Slot {
    mode: CacheMode,
    /// `None` while a query has the database checked out.
    db: Option<Box<Database>>,
    /// The epoch this session's clone was taken from.
    base: Arc<Epoch>,
}

/// The session table: id allocation, snapshot checkout, the MVCC
/// commit/abort/re-pin protocol, teardown.
pub struct SessionManager {
    epochs: Mutex<Chain>,
    slots: Mutex<HashMap<u64, Slot>>,
    next_id: AtomicU64,
}

impl SessionManager {
    /// Wraps the starting snapshot as epoch 0.
    pub fn new(base: Database) -> Self {
        let epoch0 = Arc::new(Epoch {
            number: 0,
            db: base,
            write_set: WriteSet::default(),
        });
        Self {
            epochs: Mutex::new(Chain {
                head: epoch0,
                published: Vec::new(),
            }),
            slots: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
        }
    }

    /// The newest published epoch.
    fn head(&self) -> Arc<Epoch> {
        Arc::clone(&self.epochs.lock().unwrap().head)
    }

    /// The newest epoch number (0 until the first commit).
    pub fn current_epoch(&self) -> u64 {
        self.epochs.lock().unwrap().head.number
    }

    /// Opens a session: clones the newest epoch into a fresh slot.
    pub fn create(&self, mode: CacheMode) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let base = self.head();
        let db = Box::new(base.db.clone());
        self.slots.lock().unwrap().insert(
            id,
            Slot {
                mode,
                db: Some(db),
                base,
            },
        );
        id
    }

    /// Checks the session's database out for a query. A clean session
    /// (no uncommitted writes) pinned behind the newest epoch is
    /// transparently re-pinned to it first — committed writes become
    /// visible to warm sessions at their next query.
    pub fn take(&self, id: u64) -> Result<(Box<Database>, CacheMode), SessionError> {
        let mut slots = self.slots.lock().unwrap();
        let slot = slots.get_mut(&id).ok_or(SessionError::Unknown(id))?;
        let db = slot.db.take().ok_or(SessionError::Busy(id))?;
        let head = self.head();
        if head.number > slot.base.number
            && db
                .store
                .stack()
                .is_unchanged_since(slot.base.db.store.stack())
        {
            slot.base = Arc::clone(&head);
            let fresh = Box::new(head.db.clone());
            return Ok((fresh, slot.mode));
        }
        Ok((db, slot.mode))
    }

    /// Returns a checked-out database. If the session vanished in the
    /// meantime the database is simply dropped.
    pub fn restore(&self, id: u64, db: Box<Database>) {
        let mut slots = self.slots.lock().unwrap();
        if let Some(slot) = slots.get_mut(&id) {
            slot.db = Some(db);
        }
    }

    /// Refills a session whose checked-out database was discarded
    /// (cancelled query) with a fresh clone of its base epoch. Any
    /// uncommitted writes the discarded clone carried die with it.
    pub fn replace_fresh(&self, id: u64) {
        let mut slots = self.slots.lock().unwrap();
        if let Some(slot) = slots.get_mut(&id) {
            slot.db = Some(Box::new(slot.base.db.clone()));
        }
    }

    /// Validates and publishes the session's writes (see the module
    /// docs for the protocol). On success the session is re-pinned,
    /// cold, to the epoch it just created (or, for a read-only
    /// transaction, the newest epoch); on conflict its writes are
    /// discarded and it is re-pinned to the newest epoch.
    pub fn commit(&self, id: u64) -> Result<CommitOutcome, SessionError> {
        let (mut db, base) = {
            let mut slots = self.slots.lock().unwrap();
            let slot = slots.get_mut(&id).ok_or(SessionError::Unknown(id))?;
            let db = slot.db.take().ok_or(SessionError::Busy(id))?;
            (db, Arc::clone(&slot.base))
        };
        // Quiesce outside every lock: drain handles, flush dirty pages
        // so the copy-on-write state is the whole truth, zero the
        // metrics so the published snapshot starts clean.
        db.store.end_of_query();
        db.store.cold_restart();
        db.store.reset_metrics();
        let ws = db.store.stack().write_set_since(base.db.store.stack());
        if ws.is_empty() {
            let head = self.head();
            let number = head.number;
            self.repin(id, head);
            return Ok(CommitOutcome::Committed {
                epoch: number,
                pages: 0,
            });
        }
        let pages = ws.page_count();
        let published = {
            let mut chain = self.epochs.lock().unwrap();
            let conflict = chain
                .published
                .iter()
                .rev()
                .take_while(|e| e.number > base.number)
                .find_map(|e| {
                    ws.overlap_with(&e.write_set).map(|fw| CommitConflict {
                        file: fw.name.clone(),
                        epoch: e.number,
                    })
                })
                .or_else(|| {
                    // A write-set containing files the base never had
                    // (an operator that spills mid-transaction) can be
                    // published over its own base but not merged past
                    // other commits: the intervening epoch may have
                    // allocated the same file ids.
                    (chain.head.number > base.number && ws.has_created_files()).then(|| {
                        CommitConflict {
                            file: ws
                                .files()
                                .iter()
                                .find(|f| f.created)
                                .map(|f| f.name.clone())
                                .unwrap_or_default(),
                            epoch: chain.head.number,
                        }
                    })
                });
            if let Some(conflict) = conflict {
                drop(chain);
                drop(db);
                self.repin(id, self.head());
                return Ok(CommitOutcome::Aborted { conflict });
            }
            let number = chain.head.number + 1;
            let new_db = if chain.head.number == base.number {
                // Fast path: nothing intervened — the session's own
                // normalized clone is the new epoch's database.
                *db
            } else {
                // Disjoint merge: newest head adopts the write-set's
                // files (and their index descriptors) from the session.
                let mut merged = chain.head.db.clone();
                merged.absorb_write_set(&db, &ws);
                merged
            };
            let epoch = Arc::new(Epoch {
                number,
                db: new_db,
                write_set: ws,
            });
            chain.published.push(Arc::clone(&epoch));
            chain.head = Arc::clone(&epoch);
            epoch
        };
        let number = published.number;
        self.repin(id, published);
        Ok(CommitOutcome::Committed {
            epoch: number,
            pages,
        })
    }

    /// Discards the session's uncommitted writes and re-pins it to the
    /// newest epoch. Returns the number of discarded pages.
    pub fn abort(&self, id: u64) -> Result<u64, SessionError> {
        let (db, base) = {
            let mut slots = self.slots.lock().unwrap();
            let slot = slots.get_mut(&id).ok_or(SessionError::Unknown(id))?;
            let db = slot.db.take().ok_or(SessionError::Busy(id))?;
            (db, Arc::clone(&slot.base))
        };
        let discarded = db
            .store
            .stack()
            .write_set_since(base.db.store.stack())
            .page_count();
        drop(db);
        self.repin(id, self.head());
        Ok(discarded)
    }

    /// Refills `id` with a fresh clone of `epoch` and pins it there.
    fn repin(&self, id: u64, epoch: Arc<Epoch>) {
        let db = Box::new(epoch.db.clone());
        let mut slots = self.slots.lock().unwrap();
        if let Some(slot) = slots.get_mut(&id) {
            slot.db = Some(db);
            slot.base = epoch;
        }
    }

    /// Closes a session: drains its delayed-free handle pool and
    /// reports what teardown found — including uncommitted written
    /// pages the close is about to discard, so write leaks are visible
    /// to the load generator's accounting. Fails with
    /// [`SessionError::Busy`] if a query still has the database
    /// checked out.
    pub fn close(&self, id: u64) -> Result<CloseReport, SessionError> {
        let (mut db, base) = {
            let mut slots = self.slots.lock().unwrap();
            let slot = slots.get_mut(&id).ok_or(SessionError::Unknown(id))?;
            match slot.db.take() {
                Some(db) => {
                    let base = Arc::clone(&slot.base);
                    slots.remove(&id);
                    (db, base)
                }
                None => return Err(SessionError::Busy(id)),
            }
        };
        let frees_before = db.store.handle_stats().frees;
        db.store.end_of_query();
        Ok(CloseReport {
            drained_handles: db.store.handle_stats().frees - frees_before,
            leaked_handles: db.store.live_handles() as u64,
            uncommitted_pages: db
                .store
                .stack()
                .write_set_since(base.db.store.stack())
                .page_count(),
        })
    }

    /// Currently open sessions.
    pub fn open_count(&self) -> usize {
        self.slots.lock().unwrap().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tq_query::maintenance::MaintainedIndex;
    use tq_query::update::{run_update, UpdateSpec};
    use tq_workload::{build, patient_attr, BuildConfig, DbShape, Organization};

    fn tiny_db() -> Database {
        // Scaled DB2: 1000x smaller than the paper's.
        build(&BuildConfig::scaled(
            DbShape::Db2,
            Organization::ClassClustered,
            1000,
        ))
    }

    /// Runs `update Patients set num = num + delta where mrn < limit`
    /// on a checked-out session database.
    fn update_patients(db: &mut Database, limit: i64, delta: i32) -> u64 {
        let scan = db.idx_patient_mrn.clone();
        let mut idx_mrn = db.idx_patient_mrn.clone();
        let mut idx_num = db.idx_patient_num.clone();
        let out = {
            let mut reg = [
                MaintainedIndex {
                    index: &mut idx_mrn,
                    key_attr: patient_attr::MRN,
                },
                MaintainedIndex {
                    index: &mut idx_num,
                    key_attr: patient_attr::NUM,
                },
            ];
            run_update(
                &mut db.store,
                &scan,
                &mut reg,
                &UpdateSpec {
                    collection: "Patients".into(),
                    key_limit: limit,
                    set_attr: patient_attr::NUM,
                    delta,
                },
                None,
            )
        };
        db.idx_patient_mrn = idx_mrn;
        db.idx_patient_num = idx_num;
        db.store.end_of_query();
        out.updated
    }

    #[test]
    fn checkout_is_exclusive_and_restorable() {
        let mgr = SessionManager::new(tiny_db());
        let id = mgr.create(CacheMode::Cold);
        let (db, mode) = mgr.take(id).unwrap();
        assert_eq!(mode, CacheMode::Cold);
        assert_eq!(mgr.take(id).err(), Some(SessionError::Busy(id)));
        assert_eq!(mgr.close(id), Err(SessionError::Busy(id)));
        mgr.restore(id, db);
        let report = mgr.close(id).unwrap();
        assert_eq!(report.leaked_handles, 0);
        assert_eq!(report.uncommitted_pages, 0);
        assert_eq!(mgr.take(id).err(), Some(SessionError::Unknown(id)));
        assert_eq!(mgr.open_count(), 0);
    }

    #[test]
    fn replace_fresh_refills_a_discarded_checkout() {
        let mgr = SessionManager::new(tiny_db());
        let id = mgr.create(CacheMode::Warm);
        let (db, _) = mgr.take(id).unwrap();
        drop(db); // what the worker does after a cancellation
        mgr.replace_fresh(id);
        let (_db, mode) = mgr.take(id).unwrap();
        assert_eq!(mode, CacheMode::Warm);
    }

    #[test]
    fn sessions_are_isolated_snapshots() {
        let mgr = SessionManager::new(tiny_db());
        let a = mgr.create(CacheMode::Cold);
        let b = mgr.create(CacheMode::Cold);
        assert_ne!(a, b);
        let (mut db_a, _) = mgr.take(a).unwrap();
        let (db_b, _) = mgr.take(b).unwrap();
        // Warm up a's caches; b must not see it.
        db_a.store.cold_restart();
        mgr.restore(a, db_a);
        mgr.restore(b, db_b);
        assert_eq!(mgr.open_count(), 2);
        mgr.close(a).unwrap();
        mgr.close(b).unwrap();
    }

    /// `num` of the patient with `mrn == 0`.
    fn num_of_first_patient(db: &mut Database) -> i64 {
        let rids = db.idx_patient_mrn.lookup(db.store.stack_mut(), 0);
        assert_eq!(rids.len(), 1);
        let num = db.store.with_fetched(rids[0], |_store, g| {
            g.object().values[patient_attr::NUM]
                .as_int()
                .expect("num is Int") as i64
        });
        db.store.end_of_query();
        num
    }

    #[test]
    fn commit_publishes_and_readers_repin() {
        let mgr = SessionManager::new(tiny_db());
        let writer = mgr.create(CacheMode::Warm);
        let reader = mgr.create(CacheMode::Warm);
        // Reader takes (and returns) its snapshot before the commit.
        let (mut db_r, _) = mgr.take(reader).unwrap();
        let before = num_of_first_patient(&mut db_r);
        mgr.restore(reader, db_r);
        // Writer updates and commits.
        let (mut db_w, _) = mgr.take(writer).unwrap();
        let limit = db_w.patient_selectivity_key(10);
        assert!(update_patients(&mut db_w, limit, 7) > 0);
        mgr.restore(writer, db_w);
        match mgr.commit(writer).unwrap() {
            CommitOutcome::Committed { epoch, pages } => {
                assert_eq!(epoch, 1);
                assert!(pages > 0);
            }
            other => panic!("expected commit, got {other:?}"),
        }
        assert_eq!(mgr.current_epoch(), 1);
        // The reader's next checkout re-pins to epoch 1 and sees the
        // committed num values.
        let (mut db_r, _) = mgr.take(reader).unwrap();
        assert_eq!(num_of_first_patient(&mut db_r), before + 7);
        mgr.restore(reader, db_r);
        mgr.close(reader).unwrap();
        mgr.close(writer).unwrap();
    }

    #[test]
    fn conflicting_commit_aborts_with_winner_named() {
        let mgr = SessionManager::new(tiny_db());
        let a = mgr.create(CacheMode::Warm);
        let b = mgr.create(CacheMode::Warm);
        let (mut db_a, _) = mgr.take(a).unwrap();
        let (mut db_b, _) = mgr.take(b).unwrap();
        let limit_a = db_a.patient_selectivity_key(10);
        let limit_b = db_b.patient_selectivity_key(5);
        update_patients(&mut db_a, limit_a, 1);
        update_patients(&mut db_b, limit_b, 2);
        mgr.restore(a, db_a);
        mgr.restore(b, db_b);
        assert!(matches!(
            mgr.commit(a).unwrap(),
            CommitOutcome::Committed { epoch: 1, .. }
        ));
        match mgr.commit(b).unwrap() {
            CommitOutcome::Aborted { conflict } => {
                assert_eq!(conflict.epoch, 1);
                assert!(!conflict.file.is_empty());
            }
            other => panic!("expected abort, got {other:?}"),
        }
        // b was re-pinned to the winner's epoch; a fresh commit of a
        // new write on b succeeds against epoch 1.
        let (mut db_b, _) = mgr.take(b).unwrap();
        let limit = db_b.patient_selectivity_key(3);
        update_patients(&mut db_b, limit, 5);
        mgr.restore(b, db_b);
        assert!(matches!(
            mgr.commit(b).unwrap(),
            CommitOutcome::Committed { epoch: 2, .. }
        ));
    }

    #[test]
    fn abort_discards_writes_and_repins() {
        let mgr = SessionManager::new(tiny_db());
        let id = mgr.create(CacheMode::Warm);
        let (mut db, _) = mgr.take(id).unwrap();
        let limit = db.patient_selectivity_key(10);
        update_patients(&mut db, limit, 3);
        mgr.restore(id, db);
        let discarded = mgr.abort(id).unwrap();
        assert!(discarded > 0, "the update dirtied pages");
        // After the abort the session is clean again.
        let report = mgr.close(id).unwrap();
        assert_eq!(report.uncommitted_pages, 0);
    }

    #[test]
    fn close_reports_uncommitted_pages() {
        let mgr = SessionManager::new(tiny_db());
        let id = mgr.create(CacheMode::Warm);
        let (mut db, _) = mgr.take(id).unwrap();
        let limit = db.patient_selectivity_key(10);
        update_patients(&mut db, limit, 3);
        db.store.cold_restart(); // flush so the CoW diff sees the writes
        mgr.restore(id, db);
        let report = mgr.close(id).unwrap();
        assert!(report.uncommitted_pages > 0);
    }

    #[test]
    fn empty_commit_repins_to_newest_epoch() {
        let mgr = SessionManager::new(tiny_db());
        let reader = mgr.create(CacheMode::Warm);
        let writer = mgr.create(CacheMode::Warm);
        let (mut db_w, _) = mgr.take(writer).unwrap();
        let limit = db_w.patient_selectivity_key(10);
        update_patients(&mut db_w, limit, 1);
        mgr.restore(writer, db_w);
        mgr.commit(writer).unwrap();
        match mgr.commit(reader).unwrap() {
            CommitOutcome::Committed { epoch, pages } => {
                assert_eq!((epoch, pages), (1, 0));
            }
            other => panic!("expected trivial commit, got {other:?}"),
        }
    }
}
