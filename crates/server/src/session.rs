//! Snapshot-isolated sessions.
//!
//! Each session owns a copy-on-write [`Database`] clone taken from the
//! server's base snapshot at `Hello` time: O(files) to create, zero
//! pages copied until someone writes. Sessions therefore never observe
//! each other — not through caches (each clone carries its own), not
//! through handle tables, not through the simulated clock — which is
//! what makes K concurrent sessions produce `Stat`s byte-identical to
//! K serial runs (pinned by `tests/concurrency.rs`).
//!
//! A query *takes* the session's database out of the slot and returns
//! it afterwards; a second query on the same session while the first
//! runs gets a typed [`SessionError::Busy`] instead of racing. A
//! cancelled query leaves its database in an undefined cache/handle
//! state, so it is discarded and the slot refilled with a fresh clone
//! of the base snapshot ([`SessionManager::replace_fresh`]).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use tq_workload::Database;

use crate::proto::CacheMode;

/// Why a session operation failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SessionError {
    /// No session with that id (never opened, or already closed).
    Unknown(u64),
    /// The session's database is out running another query.
    Busy(u64),
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::Unknown(id) => write!(f, "unknown session {id}"),
            SessionError::Busy(id) => write!(f, "session {id} is busy"),
        }
    }
}

impl std::error::Error for SessionError {}

/// What teardown found and did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CloseReport {
    /// Handles drained from the delayed-free pool.
    pub drained_handles: u64,
    /// Handles still pinned after the drain (0 unless an operator
    /// leaked a guard).
    pub leaked_handles: u64,
}

struct Slot {
    mode: CacheMode,
    /// `None` while a query has the database checked out.
    db: Option<Box<Database>>,
}

/// The session table: id allocation, snapshot checkout, teardown.
pub struct SessionManager {
    base: Database,
    slots: Mutex<HashMap<u64, Slot>>,
    next_id: AtomicU64,
}

impl SessionManager {
    /// Wraps the base snapshot all sessions will clone from.
    pub fn new(base: Database) -> Self {
        Self {
            base,
            slots: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
        }
    }

    /// Opens a session: clones the base snapshot into a fresh slot.
    pub fn create(&self, mode: CacheMode) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let db = Box::new(self.base.clone());
        self.slots
            .lock()
            .unwrap()
            .insert(id, Slot { mode, db: Some(db) });
        id
    }

    /// Checks the session's database out for a query.
    pub fn take(&self, id: u64) -> Result<(Box<Database>, CacheMode), SessionError> {
        let mut slots = self.slots.lock().unwrap();
        let slot = slots.get_mut(&id).ok_or(SessionError::Unknown(id))?;
        let db = slot.db.take().ok_or(SessionError::Busy(id))?;
        Ok((db, slot.mode))
    }

    /// Returns a checked-out database. If the session vanished in the
    /// meantime the database is simply dropped.
    pub fn restore(&self, id: u64, db: Box<Database>) {
        let mut slots = self.slots.lock().unwrap();
        if let Some(slot) = slots.get_mut(&id) {
            slot.db = Some(db);
        }
    }

    /// Refills a session whose checked-out database was discarded
    /// (cancelled query) with a fresh clone of the base snapshot.
    pub fn replace_fresh(&self, id: u64) {
        let db = Box::new(self.base.clone());
        let mut slots = self.slots.lock().unwrap();
        if let Some(slot) = slots.get_mut(&id) {
            slot.db = Some(db);
        }
    }

    /// Closes a session: drains its delayed-free handle pool and
    /// reports what teardown found. Fails with [`SessionError::Busy`]
    /// if a query still has the database checked out.
    pub fn close(&self, id: u64) -> Result<CloseReport, SessionError> {
        let mut db = {
            let mut slots = self.slots.lock().unwrap();
            let slot = slots.get_mut(&id).ok_or(SessionError::Unknown(id))?;
            match slot.db.take() {
                Some(db) => {
                    slots.remove(&id);
                    db
                }
                None => return Err(SessionError::Busy(id)),
            }
        };
        let frees_before = db.store.handle_stats().frees;
        db.store.end_of_query();
        Ok(CloseReport {
            drained_handles: db.store.handle_stats().frees - frees_before,
            leaked_handles: db.store.live_handles() as u64,
        })
    }

    /// Currently open sessions.
    pub fn open_count(&self) -> usize {
        self.slots.lock().unwrap().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tq_workload::{build, BuildConfig, DbShape, Organization};

    fn tiny_db() -> Database {
        // Scaled DB2: 1000x smaller than the paper's.
        build(&BuildConfig::scaled(
            DbShape::Db2,
            Organization::ClassClustered,
            1000,
        ))
    }

    #[test]
    fn checkout_is_exclusive_and_restorable() {
        let mgr = SessionManager::new(tiny_db());
        let id = mgr.create(CacheMode::Cold);
        let (db, mode) = mgr.take(id).unwrap();
        assert_eq!(mode, CacheMode::Cold);
        assert_eq!(mgr.take(id).err(), Some(SessionError::Busy(id)));
        assert_eq!(mgr.close(id), Err(SessionError::Busy(id)));
        mgr.restore(id, db);
        let report = mgr.close(id).unwrap();
        assert_eq!(report.leaked_handles, 0);
        assert_eq!(mgr.take(id).err(), Some(SessionError::Unknown(id)));
        assert_eq!(mgr.open_count(), 0);
    }

    #[test]
    fn replace_fresh_refills_a_discarded_checkout() {
        let mgr = SessionManager::new(tiny_db());
        let id = mgr.create(CacheMode::Warm);
        let (db, _) = mgr.take(id).unwrap();
        drop(db); // what the worker does after a cancellation
        mgr.replace_fresh(id);
        let (_db, mode) = mgr.take(id).unwrap();
        assert_eq!(mode, CacheMode::Warm);
    }

    #[test]
    fn sessions_are_isolated_snapshots() {
        let mgr = SessionManager::new(tiny_db());
        let a = mgr.create(CacheMode::Cold);
        let b = mgr.create(CacheMode::Cold);
        assert_ne!(a, b);
        let (mut db_a, _) = mgr.take(a).unwrap();
        let (db_b, _) = mgr.take(b).unwrap();
        // Warm up a's caches; b must not see it.
        db_a.store.cold_restart();
        mgr.restore(a, db_a);
        mgr.restore(b, db_b);
        assert_eq!(mgr.open_count(), 2);
        mgr.close(a).unwrap();
        mgr.close(b).unwrap();
    }
}
