//! treequery's serving layer: a concurrent query service over the
//! simulated object database.
//!
//! The paper benchmarks one query at a time against a freshly
//! restarted server. This crate asks the follow-up question a real
//! deployment would: what do those same queries cost when a *service*
//! runs them concurrently for many clients? The pieces:
//!
//! * [`session`] — each client session gets a snapshot-isolated view
//!   of the database via the copy-on-write `Database::clone`, its own
//!   caches/clock/handle table, and a warm or cold cache discipline.
//! * [`sched`] — a bounded worker pool behind an admission queue;
//!   queries arriving at a full queue are shed with a typed
//!   `Overloaded` rather than queued without bound.
//! * [`proto`] / [`transport`] — a length-prefixed wire protocol
//!   carrying query descriptions (algorithm × clustering ×
//!   selectivity) and full per-operator `Stat` results, served
//!   identically over TCP and over a deterministic in-process duplex
//!   stream.
//! * [`measure`] — the paper's measurement protocol, moved here from
//!   the figure harness so served queries and figure cells run one
//!   code path (and produce byte-identical `Stat`s).
//! * Per-query deadlines in *simulated* nanoseconds, enforced
//!   cooperatively at operator boundaries: a blown deadline cancels
//!   the query and reports it — it never hangs a worker.

pub mod client;
pub mod measure;
pub mod proto;
pub mod sched;
pub mod server;
pub mod session;
pub mod transport;

pub use client::{Client, ClientError};
pub use proto::{
    read_frame, write_frame, CacheMode, ChainQuerySpec, DecodeError, FrameError, PartialStat,
    QuerySpec, Request, Response, ShardAbort, UpdateTarget, MAX_FRAME, SHARD_SELF,
};
pub use sched::{Overloaded, Scheduler};
pub use server::{Server, ServerConfig, ServerStatsSnapshot};
pub use session::{CloseReport, CommitConflict, CommitOutcome, SessionError, SessionManager};
pub use transport::{duplex_pair, DuplexStream};
