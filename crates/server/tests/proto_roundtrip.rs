//! Wire-protocol property tests: seeded-random messages round-trip
//! bit-for-bit, and every malformed framing/payload input is a typed
//! error, never a panic or a wrong decode.

use tq_query::{JoinAlgo, PlannerPolicy};
use tq_server::proto::{
    read_frame, write_frame, CacheMode, ChainQuerySpec, DecodeError, FrameError, PartialStat,
    QuerySpec, Request, Response, ShardAbort, UpdateTarget, MAX_FRAME,
};
use tq_simrng::SimRng;
use tq_statsdb::{ExtentDesc, OperatorStat, QueryDesc, Stat, SystemDesc};

fn rng_string(rng: &mut SimRng) -> String {
    // Mixed content: commas, quotes, multi-byte UTF-8, NULs.
    let alphabet: Vec<char> = "abcXYZ 019,\"\n\u{0}é√🦀".chars().collect();
    let len = rng.index(24);
    (0..len)
        .map(|_| alphabet[rng.index(alphabet.len())])
        .collect()
}

fn rng_f64(rng: &mut SimRng) -> f64 {
    // Arbitrary bit patterns, NaN included: the codec moves bits, not
    // values, so NaN payload bits must survive too.
    f64::from_bits(rng.next_u64())
}

fn rng_algo(rng: &mut SimRng) -> JoinAlgo {
    [JoinAlgo::Nl, JoinAlgo::Nojoin, JoinAlgo::Phj, JoinAlgo::Chj][rng.index(4)]
}

fn rng_operator(rng: &mut SimRng) -> OperatorStat {
    OperatorStat {
        op: rng_string(rng),
        label: rng_string(rng),
        depth: rng.next_u32(),
        d2sc_read_pages: rng.next_u64(),
        sc2cc_read_pages: rng.next_u64(),
        client_misses: rng.next_u64(),
        handle_gets: rng.next_u64(),
        handle_frees: rng.next_u64(),
        cpu_events: rng.next_u64(),
        io_nanos: rng.next_u64(),
        rpc_nanos: rng.next_u64(),
        cpu_nanos: rng.next_u64(),
        swap_nanos: rng.next_u64(),
    }
}

fn rng_stat(rng: &mut SimRng) -> Stat {
    Stat {
        numtest: rng.next_u64(),
        query: QueryDesc {
            cold: rng.bool(),
            projection_type: rng_string(rng),
            selectivities: (0..rng.index(4))
                .map(|_| (rng_string(rng), rng.next_u32()))
                .collect(),
            text: rng_string(rng),
        },
        database: (0..rng.index(4))
            .map(|_| ExtentDesc {
                classname: rng_string(rng),
                size: rng.next_u64(),
                associations: (0..rng.index(3))
                    .map(|_| (rng_string(rng), rng.next_u32()))
                    .collect(),
            })
            .collect(),
        cluster: rng_string(rng),
        algo: rng_string(rng),
        system: SystemDesc {
            server_cache_kb: rng.next_u64(),
            client_cache_kb: rng.next_u64(),
            same_workstation: rng.bool(),
        },
        cc_pagefaults: rng.next_u64(),
        cc_lookups: rng.next_u64(),
        elapsed_time: rng_f64(rng),
        rpcs_number: rng.next_u64(),
        rpcs_total_mb: rng_f64(rng),
        d2sc_read_pages: rng.next_u64(),
        sc2cc_read_pages: rng.next_u64(),
        cc_miss_rate: rng_f64(rng),
        sc_miss_rate: rng_f64(rng),
        operators: (0..rng.index(5)).map(|_| rng_operator(rng)).collect(),
    }
}

fn rng_request(rng: &mut SimRng) -> Request {
    match rng.index(8) {
        0 => Request::Hello {
            mode: if rng.bool() {
                CacheMode::Warm
            } else {
                CacheMode::Cold
            },
        },
        1 => Request::Query(QuerySpec {
            session: rng.next_u64(),
            algo: rng_algo(rng),
            pat_pct: rng.next_u32(),
            prov_pct: rng.next_u32(),
            deadline_nanos: rng.next_u64(),
        }),
        2 => Request::Update {
            session: rng.next_u64(),
            target: if rng.bool() {
                UpdateTarget::Patients
            } else {
                UpdateTarget::Providers
            },
            sel_pct: rng.next_u32(),
            delta: rng.next_u32() as i32,
            deadline_nanos: rng.next_u64(),
        },
        3 => Request::Commit {
            session: rng.next_u64(),
        },
        4 => Request::Abort {
            session: rng.next_u64(),
        },
        5 => Request::Chain(ChainQuerySpec {
            session: rng.next_u64(),
            depth: rng.next_u32(),
            pat_pct: rng.next_u32(),
            prov_pct: rng.next_u32(),
            policy: [
                PlannerPolicy::Estimate,
                PlannerPolicy::Simpli,
                PlannerPolicy::Syntactic,
            ][rng.index(3)],
            deadline_nanos: rng.next_u64(),
        }),
        6 => Request::Scatter(QuerySpec {
            session: rng.next_u64(),
            algo: rng_algo(rng),
            pat_pct: rng.next_u32(),
            prov_pct: rng.next_u32(),
            deadline_nanos: rng.next_u64(),
        }),
        _ => Request::Close {
            session: rng.next_u64(),
        },
    }
}

fn rng_response(rng: &mut SimRng) -> Response {
    match rng.index(13) {
        0 => Response::SessionOpened {
            session: rng.next_u64(),
        },
        1 => Response::QueryOk {
            results: rng.next_u64(),
            stat: Box::new(rng_stat(rng)),
        },
        2 => Response::Overloaded {
            queue_depth: rng.next_u32(),
            shard: rng.next_u32(),
        },
        3 => Response::DeadlineExceeded {
            elapsed_nanos: rng.next_u64(),
        },
        4 => Response::SessionClosed {
            drained_handles: rng.next_u64(),
            leaked_handles: rng.next_u64(),
            uncommitted_pages: rng.next_u64(),
        },
        5 => Response::UpdateOk {
            updated: rng.next_u64(),
            stat: Box::new(rng_stat(rng)),
        },
        6 => Response::Committed {
            epoch: rng.next_u64(),
            pages: rng.next_u64(),
        },
        7 => Response::Aborted {
            conflict_file: rng_string(rng),
            conflict_epoch: rng.next_u64(),
        },
        8 => Response::RolledBack {
            discarded_pages: rng.next_u64(),
        },
        9 => Response::ScatterOk {
            results: rng.next_u64(),
            stat: Box::new(rng_stat(rng)),
            partials: (0..rng.index(4))
                .map(|_| PartialStat {
                    shard: rng.next_u32(),
                    results: rng.next_u64(),
                    stat: rng_stat(rng),
                })
                .collect(),
        },
        10 => Response::ShardUnavailable {
            shard: rng.next_u32(),
            detail: rng_string(rng),
        },
        11 => Response::ShardsAborted {
            committed: (0..rng.index(5)).map(|_| rng.next_u32()).collect(),
            aborts: (0..rng.index(4))
                .map(|_| ShardAbort {
                    shard: rng.next_u32(),
                    conflict_file: rng_string(rng),
                    conflict_epoch: rng.next_u64(),
                })
                .collect(),
        },
        _ => Response::Error {
            msg: rng_string(rng),
        },
    }
}

/// Bit-for-bit equality, treating f64 fields as bit patterns (plain
/// `==` would make NaN unequal to itself).
fn stat_bits_eq(a: &Stat, b: &Stat) -> bool {
    let f = |x: f64| x.to_bits();
    a.numtest == b.numtest
        && a.query == b.query
        && a.database == b.database
        && a.cluster == b.cluster
        && a.algo == b.algo
        && a.system == b.system
        && a.cc_pagefaults == b.cc_pagefaults
        && a.cc_lookups == b.cc_lookups
        && f(a.elapsed_time) == f(b.elapsed_time)
        && a.rpcs_number == b.rpcs_number
        && f(a.rpcs_total_mb) == f(b.rpcs_total_mb)
        && a.d2sc_read_pages == b.d2sc_read_pages
        && a.sc2cc_read_pages == b.sc2cc_read_pages
        && f(a.cc_miss_rate) == f(b.cc_miss_rate)
        && f(a.sc_miss_rate) == f(b.sc_miss_rate)
        && a.operators == b.operators
}

fn response_bits_eq(a: &Response, b: &Response) -> bool {
    match (a, b) {
        (
            Response::QueryOk {
                results: ra,
                stat: sa,
            },
            Response::QueryOk {
                results: rb,
                stat: sb,
            },
        ) => ra == rb && stat_bits_eq(sa, sb),
        (
            Response::UpdateOk {
                updated: ua,
                stat: sa,
            },
            Response::UpdateOk {
                updated: ub,
                stat: sb,
            },
        ) => ua == ub && stat_bits_eq(sa, sb),
        (
            Response::ScatterOk {
                results: ra,
                stat: sa,
                partials: pa,
            },
            Response::ScatterOk {
                results: rb,
                stat: sb,
                partials: pb,
            },
        ) => {
            ra == rb
                && stat_bits_eq(sa, sb)
                && pa.len() == pb.len()
                && pa.iter().zip(pb).all(|(x, y)| {
                    x.shard == y.shard && x.results == y.results && stat_bits_eq(&x.stat, &y.stat)
                })
        }
        _ => a == b,
    }
}

#[test]
fn requests_round_trip_over_frames() {
    let mut rng = SimRng::seed_from_u64(0x7071);
    for _ in 0..500 {
        let req = rng_request(&mut rng);
        let mut wire = Vec::new();
        write_frame(&mut wire, &req.encode()).unwrap();
        let payload = read_frame(&mut &wire[..]).unwrap();
        assert_eq!(Request::decode(&payload).unwrap(), req);
    }
}

#[test]
fn responses_round_trip_over_frames() {
    let mut rng = SimRng::seed_from_u64(0x7072);
    for _ in 0..300 {
        let resp = rng_response(&mut rng);
        let mut wire = Vec::new();
        write_frame(&mut wire, &resp.encode()).unwrap();
        let payload = read_frame(&mut &wire[..]).unwrap();
        let back = Response::decode(&payload).unwrap();
        assert!(
            response_bits_eq(&back, &resp),
            "mismatch: {resp:?} vs {back:?}"
        );
    }
}

#[test]
fn every_strict_payload_prefix_fails_to_decode() {
    let mut rng = SimRng::seed_from_u64(0x7073);
    for _ in 0..40 {
        let resp = rng_response(&mut rng);
        let payload = resp.encode();
        for cut in 0..payload.len() {
            let err =
                Response::decode(&payload[..cut]).expect_err("a strict prefix must not decode");
            assert!(
                matches!(err, DecodeError::Truncated | DecodeError::BadUtf8),
                "prefix of len {cut}: unexpected {err:?}"
            );
        }
        let req = rng_request(&mut rng);
        let payload = req.encode();
        for cut in 0..payload.len() {
            Request::decode(&payload[..cut]).expect_err("a strict prefix must not decode");
        }
    }
}

#[test]
fn trailing_garbage_is_rejected() {
    let mut rng = SimRng::seed_from_u64(0x7074);
    for _ in 0..40 {
        let mut payload = rng_response(&mut rng).encode();
        payload.push(0);
        assert_eq!(Response::decode(&payload), Err(DecodeError::TrailingBytes));
    }
}

#[test]
fn truncated_frames_and_oversized_headers_are_typed_errors() {
    let mut wire = Vec::new();
    write_frame(&mut wire, b"payload-bytes").unwrap();
    // Every strict prefix of the frame is Truncated (or Closed for the
    // empty prefix).
    assert!(matches!(
        read_frame(&mut &wire[..0]),
        Err(FrameError::Closed)
    ));
    for cut in 1..wire.len() {
        assert!(
            matches!(read_frame(&mut &wire[..cut]), Err(FrameError::Truncated)),
            "cut at {cut}"
        );
    }
    // An oversized header is rejected before allocation.
    let huge = ((MAX_FRAME + 1) as u32).to_le_bytes();
    match read_frame(&mut &huge[..]) {
        Err(FrameError::TooLarge(n)) => assert_eq!(n, (MAX_FRAME + 1) as u64),
        other => panic!("expected TooLarge, got {other:?}"),
    }
    // Writing an oversized payload is refused up front.
    let big = vec![0u8; MAX_FRAME + 1];
    assert!(matches!(
        write_frame(&mut Vec::new(), &big),
        Err(FrameError::TooLarge(_))
    ));
}

#[test]
fn adversarial_length_prefixes_never_balloon_memory() {
    // A peer controls the 4-byte frame header. Whatever it claims, the
    // reader must reject anything above MAX_FRAME *before* allocating,
    // and treat in-range claims with missing bytes as truncation.
    let mut rng = SimRng::seed_from_u64(0x7076);
    for _ in 0..2000 {
        let claimed = rng.next_u32();
        let mut wire = claimed.to_le_bytes().to_vec();
        // A few real bytes, far fewer than claimed for large claims.
        let supplied = rng.index(64);
        wire.extend(std::iter::repeat_n(0xAB, supplied));
        match read_frame(&mut &wire[..]) {
            Ok(payload) => assert!(payload.len() as u32 == claimed && payload.len() <= supplied),
            Err(FrameError::TooLarge(n)) => {
                assert_eq!(n, claimed as u64);
                assert!(claimed as usize > MAX_FRAME);
            }
            Err(FrameError::Truncated) => assert!((claimed as usize) > supplied),
            other => panic!("unexpected {other:?} for claimed={claimed}"),
        }
    }
}

#[test]
fn forged_element_counts_fail_before_looping() {
    // A QueryOk whose operator count claims u32::MAX rows but carries
    // none: the decoder must reject the count against the remaining
    // payload instead of iterating four billion times.
    let ok = Response::QueryOk {
        results: 1,
        stat: Box::new(rng_stat(&mut SimRng::seed_from_u64(0x7077))),
    };
    let good = ok.encode();
    // Walk every u32-aligned position and overwrite it with a huge
    // value: whatever field it lands on (count, string length, or plain
    // integer), decoding must stay a cheap typed error or a valid
    // decode — never a hang or panic. The TrailingBytes case covers a
    // forged count *shrinking* under a value field's bytes.
    for at in (1..good.len().saturating_sub(4)).step_by(4) {
        let mut forged = good.clone();
        forged[at..at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let _ = Response::decode(&forged);
        let mut forged_small = good.clone();
        forged_small[at..at + 4].copy_from_slice(&0xFFFF_u32.to_le_bytes());
        let _ = Response::decode(&forged_small);
    }
    // The targeted case: tag + results + a Stat prefix ending in a
    // forged selectivity count.
    let mut crafted = vec![129u8];
    crafted.extend_from_slice(&1u64.to_le_bytes()); // results
    crafted.extend_from_slice(&0u64.to_le_bytes()); // numtest
    crafted.push(1); // cold
    crafted.extend_from_slice(&0u32.to_le_bytes()); // projection_type ""
    crafted.extend_from_slice(&u32::MAX.to_le_bytes()); // selectivity count
    let start = std::time::Instant::now();
    assert_eq!(Response::decode(&crafted), Err(DecodeError::Truncated));
    assert!(
        start.elapsed() < std::time::Duration::from_millis(100),
        "forged count must be rejected up front, not element by element"
    );
}

#[test]
fn random_garbage_never_panics_the_decoder() {
    let mut rng = SimRng::seed_from_u64(0x7075);
    for _ in 0..2000 {
        let mut junk = vec![0u8; rng.index(200)];
        rng.fill_bytes(&mut junk);
        let _ = Request::decode(&junk);
        let _ = Response::decode(&junk);
    }
}
