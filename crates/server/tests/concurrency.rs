//! Concurrency stress tests: served queries must be *indistinguishable*
//! from harness runs. K sessions running under contention produce
//! `Stat`s equal field-for-field to a serial oracle, deadline-cancelled
//! sessions recover to the same guarantee, and teardown leaks nothing.

use std::sync::{Arc, Barrier};
use std::thread;

use tq_query::{JoinAlgo, JoinOptions, PlannerPolicy};
use tq_server::measure::{chain_stat_record, run_chain_cell, run_join_cell, stat_record};
use tq_server::{
    CacheMode, ChainQuerySpec, Client, QuerySpec, Response, Server, ServerConfig, UpdateTarget,
};
use tq_statsdb::Stat;
use tq_workload::{build, BuildConfig, Database, DbShape, Organization};

const SCALE: u32 = 1000;

fn base_db() -> Database {
    build(&BuildConfig::scaled(
        DbShape::Db2,
        Organization::ClassClustered,
        SCALE,
    ))
}

/// The cells the stress clients run: every algorithm, two selectivity
/// points each.
fn cells() -> Vec<(JoinAlgo, u32, u32)> {
    let algos = [JoinAlgo::Nl, JoinAlgo::Nojoin, JoinAlgo::Phj, JoinAlgo::Chj];
    let mut out = Vec::new();
    for algo in algos {
        out.push((algo, 10, 90));
        out.push((algo, 100, 20));
    }
    out
}

/// What the figure harness would record for one cold cell.
fn serial_oracle(base: &Database, algo: JoinAlgo, pat_pct: u32, prov_pct: u32) -> (u64, Stat) {
    let mut db = base.clone();
    let cell = run_join_cell(&mut db, algo, pat_pct, prov_pct, &JoinOptions::default());
    (cell.results, stat_record(&db, &cell, pat_pct, prov_pct))
}

fn run_one(
    server: &Server,
    mode: CacheMode,
    algo: JoinAlgo,
    pat_pct: u32,
    prov_pct: u32,
) -> (u64, Stat, u64) {
    let mut client = Client::new(server.connect_in_proc());
    let session = client.open_session(mode).unwrap();
    let resp = client
        .query(QuerySpec {
            session,
            algo,
            pat_pct,
            prov_pct,
            deadline_nanos: 0,
        })
        .unwrap();
    let (results, stat) = match resp {
        Response::QueryOk { results, stat } => (results, *stat),
        other => panic!("expected QueryOk, got {other:?}"),
    };
    let (_drained, leaked, _uncommitted) = client.close_session(session).unwrap();
    (results, stat, leaked)
}

#[test]
fn concurrent_cold_sessions_match_serial_oracle() {
    let base = base_db();
    let cells = cells();
    let oracle: Vec<_> = cells
        .iter()
        .map(|&(algo, pat, prov)| serial_oracle(&base, algo, pat, prov))
        .collect();

    let server = Arc::new(Server::start(base, ServerConfig::default()));
    let barrier = Arc::new(Barrier::new(cells.len()));
    let handles: Vec<_> = cells
        .iter()
        .map(|&(algo, pat, prov)| {
            let server = Arc::clone(&server);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                barrier.wait();
                run_one(&server, CacheMode::Cold, algo, pat, prov)
            })
        })
        .collect();
    let served: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    for (i, ((results, stat, leaked), (want_results, want_stat))) in
        served.iter().zip(oracle.iter()).enumerate()
    {
        let (algo, pat, prov) = cells[i];
        assert_eq!(leaked, &0, "cell {algo:?} {pat}/{prov} leaked handles");
        assert_eq!(
            results, want_results,
            "cell {algo:?} {pat}/{prov} cardinality"
        );
        assert_eq!(stat, want_stat, "cell {algo:?} {pat}/{prov} Stat drifted");
    }

    assert_eq!(server.open_sessions(), 0, "sessions survived teardown");
    let stats = server.stats();
    assert_eq!(stats.queries_ok, cells.len() as u64);
    assert_eq!(stats.queries_failed, 0);
    assert_eq!(stats.sessions_opened, stats.sessions_closed);
    Arc::try_unwrap(server).ok().unwrap().shutdown();
}

#[test]
fn served_stats_are_byte_identical_across_batch_sizes() {
    use tq_query::exec::{set_default_batch_size, DEFAULT_BATCH_SIZE};
    let base = base_db();
    let cells = cells();

    // The oracle runs on the scalar path; every batched serving run
    // must reproduce its `Stat`s bit for bit. (The knob is process
    // global, but that is exactly the property under test: no thread
    // in this binary can legally observe a difference.)
    set_default_batch_size(1);
    let oracle: Vec<_> = cells
        .iter()
        .map(|&(algo, pat, prov)| serial_oracle(&base, algo, pat, prov))
        .collect();

    for batch in [7, DEFAULT_BATCH_SIZE] {
        set_default_batch_size(batch);
        let server = Arc::new(Server::start(base.clone(), ServerConfig::default()));
        let barrier = Arc::new(Barrier::new(cells.len()));
        let handles: Vec<_> = cells
            .iter()
            .map(|&(algo, pat, prov)| {
                let server = Arc::clone(&server);
                let barrier = Arc::clone(&barrier);
                thread::spawn(move || {
                    barrier.wait();
                    run_one(&server, CacheMode::Cold, algo, pat, prov)
                })
            })
            .collect();
        let served: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for (i, ((results, stat, leaked), (want_results, want_stat))) in
            served.iter().zip(oracle.iter()).enumerate()
        {
            let (algo, pat, prov) = cells[i];
            assert_eq!(leaked, &0, "TQ_BATCH={batch} {algo:?} {pat}/{prov} leaked");
            assert_eq!(
                results, want_results,
                "TQ_BATCH={batch} {algo:?} {pat}/{prov} cardinality"
            );
            assert_eq!(
                stat, want_stat,
                "TQ_BATCH={batch} {algo:?} {pat}/{prov}: served Stat \
                 must be byte-identical to the scalar oracle"
            );
        }
        Arc::try_unwrap(server).ok().unwrap().shutdown();
    }
    set_default_batch_size(DEFAULT_BATCH_SIZE);
}

#[test]
fn deadline_cancel_then_session_still_matches_oracle() {
    let base = base_db();
    let (want_results, want_stat) = serial_oracle(&base, JoinAlgo::Chj, 100, 90);

    let server = Server::start(base, ServerConfig::default());
    let mut client = Client::new(server.connect_in_proc());
    let session = client.open_session(CacheMode::Cold).unwrap();

    // 1ns of simulated time: the first operator tick fires the token.
    let resp = client
        .query(QuerySpec {
            session,
            algo: JoinAlgo::Chj,
            pat_pct: 100,
            prov_pct: 90,
            deadline_nanos: 1,
        })
        .unwrap();
    assert!(
        matches!(resp, Response::DeadlineExceeded { .. }),
        "expected DeadlineExceeded, got {resp:?}"
    );

    // The session was refilled from the base snapshot: the very next
    // query must be indistinguishable from a fresh harness run.
    let resp = client
        .query(QuerySpec {
            session,
            algo: JoinAlgo::Chj,
            pat_pct: 100,
            prov_pct: 90,
            deadline_nanos: 0,
        })
        .unwrap();
    match resp {
        Response::QueryOk { results, stat } => {
            assert_eq!(results, want_results);
            assert_eq!(*stat, want_stat, "post-cancel Stat drifted from oracle");
        }
        other => panic!("expected QueryOk after recovery, got {other:?}"),
    }

    let (_drained, leaked, _uncommitted) = client.close_session(session).unwrap();
    assert_eq!(leaked, 0, "cancelled session leaked handles");
    let stats = server.stats();
    assert_eq!(stats.queries_deadline_exceeded, 1);
    assert_eq!(stats.queries_ok, 1);
    // The handler thread exits on client hang-up; shutdown joins it.
    drop(client);
    server.shutdown();
}

#[test]
fn warm_sessions_are_isolated_from_each_other() {
    let base = base_db();
    // Warm oracle: two queries on one private snapshot, the second
    // measured against whatever the first left resident.
    let want = {
        let mut db = base.clone();
        let opts = JoinOptions::default();
        let _ = run_join_cell(&mut db, JoinAlgo::Chj, 10, 90, &opts);
        let cell = tq_server::measure::measure_current(&mut db, JoinAlgo::Chj, 10, 90, &opts, None);
        let mut stat = stat_record(&db, &cell, 10, 90);
        stat.query.cold = false;
        (cell.results, stat)
    };

    let server = Arc::new(Server::start(base, ServerConfig::default()));
    // A noisy neighbour hammers its own warm session concurrently; it
    // must not perturb the session under test.
    let noisy = {
        let server = Arc::clone(&server);
        thread::spawn(move || {
            for _ in 0..4 {
                run_one(&server, CacheMode::Warm, JoinAlgo::Nl, 100, 20);
            }
        })
    };

    let mut client = Client::new(server.connect_in_proc());
    let session = client.open_session(CacheMode::Warm).unwrap();
    let spec = QuerySpec {
        session,
        algo: JoinAlgo::Chj,
        pat_pct: 10,
        prov_pct: 90,
        deadline_nanos: 0,
    };
    // First query primes this session's caches (warm sessions skip the
    // cold restart; the very first query runs against a cold clone).
    let _ = client.query(spec).unwrap();
    let resp = client.query(spec).unwrap();
    match resp {
        Response::QueryOk { results, stat } => {
            assert_eq!(results, want.0);
            assert_eq!(*stat, want.1, "warm Stat drifted under contention");
        }
        other => panic!("expected QueryOk, got {other:?}"),
    }
    let (_drained, leaked, _uncommitted) = client.close_session(session).unwrap();
    assert_eq!(leaked, 0);

    noisy.join().unwrap();
    assert_eq!(server.open_sessions(), 0);
    drop(client);
    Arc::try_unwrap(server).ok().unwrap().shutdown();
}

#[test]
fn saturated_server_sheds_instead_of_queueing_unboundedly() {
    let base = base_db();
    let server = Arc::new(Server::start(
        base,
        ServerConfig {
            workers: 1,
            queue_depth: 1,
            parallel: 1,
        },
    ));
    let clients = 8;
    let barrier = Arc::new(Barrier::new(clients));
    let handles: Vec<_> = (0..clients)
        .map(|_| {
            let server = Arc::clone(&server);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                let mut client = Client::new(server.connect_in_proc());
                let session = client.open_session(CacheMode::Cold).unwrap();
                barrier.wait();
                let (mut ok, mut shed) = (0u64, 0u64);
                for _ in 0..40 {
                    let resp = client
                        .query(QuerySpec {
                            session,
                            algo: JoinAlgo::Chj,
                            pat_pct: 10,
                            prov_pct: 90,
                            deadline_nanos: 0,
                        })
                        .unwrap();
                    match resp {
                        Response::QueryOk { .. } => ok += 1,
                        Response::Overloaded { queue_depth, shard } => {
                            assert_eq!(queue_depth, 1);
                            assert_eq!(shard, tq_server::SHARD_SELF);
                            shed += 1;
                        }
                        other => panic!("unexpected {other:?}"),
                    }
                }
                let (_drained, leaked, _uncommitted) = client.close_session(session).unwrap();
                assert_eq!(leaked, 0);
                (ok, shed)
            })
        })
        .collect();
    let (mut ok, mut shed) = (0u64, 0u64);
    for h in handles {
        let (o, s) = h.join().unwrap();
        ok += o;
        shed += s;
    }
    assert_eq!(ok + shed, clients as u64 * 40, "every query was answered");
    assert!(ok > 0, "a saturated server must still make progress");
    assert!(
        shed > 0,
        "8 closed-loop clients against 1 worker + depth-1 queue must shed"
    );
    let stats = server.stats();
    assert_eq!(stats.queries_ok, ok);
    assert_eq!(stats.queries_shed, shed);
    assert_eq!(server.open_sessions(), 0);
    Arc::try_unwrap(server).ok().unwrap().shutdown();
}

// ---------------------------------------------------------------------
// Commit-path interleavings: the MVCC epoch protocol under real racing
// threads, over the wire protocol (the session-level unit tests in
// `src/session.rs` cover the same transitions sequentially).
// ---------------------------------------------------------------------

/// Runs `update Patients set num = num + 1 where mrn < K(sel)` on an
/// open session and asserts it succeeded.
fn update_patients(client: &mut Client<tq_server::DuplexStream>, session: u64, sel_pct: u32) {
    match client
        .update(session, UpdateTarget::Patients, sel_pct, 1, 0)
        .unwrap()
    {
        Response::UpdateOk { updated, .. } => assert!(updated > 0, "update matched no rows"),
        other => panic!("expected UpdateOk, got {other:?}"),
    }
}

#[test]
fn overlapping_commits_race_to_exactly_one_winner() {
    let base = base_db();
    // The loadgen write (`num += 1`) never touches a join key, so the
    // read workload must stay byte-identical across committed epochs.
    let (want_results, want_stat) = serial_oracle(&base, JoinAlgo::Chj, 10, 90);
    let server = Arc::new(Server::start(base, ServerConfig::default()));

    // A warm read session opened *before* any commit: it must re-pin
    // to the winning epoch on its next query without being told.
    let mut bystander = Client::new(server.connect_in_proc());
    let bystander_session = bystander.open_session(CacheMode::Warm).unwrap();

    // Two sessions buffer overlapping Patients write-sets, then race
    // their commits through the barrier.
    let barrier = Arc::new(Barrier::new(2));
    let handles: Vec<_> = (0..2)
        .map(|_| {
            let server = Arc::clone(&server);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                let mut client = Client::new(server.connect_in_proc());
                let session = client.open_session(CacheMode::Warm).unwrap();
                update_patients(&mut client, session, 10);
                barrier.wait();
                let first = client.commit(session).unwrap();
                // First-committer-wins: the loser was re-pinned onto the
                // winner's epoch, so an immediate retry must land.
                let retry = match &first {
                    Response::Aborted { .. } => {
                        update_patients(&mut client, session, 10);
                        Some(client.commit(session).unwrap())
                    }
                    _ => None,
                };
                let (_drained, leaked, uncommitted) = client.close_session(session).unwrap();
                assert_eq!(leaked, 0);
                assert_eq!(uncommitted, 0, "a committed session has nothing to discard");
                (first, retry)
            })
        })
        .collect();
    let outcomes: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    // Exactly one Committed and one typed Aborted naming the winner.
    let committed: Vec<_> = outcomes
        .iter()
        .filter_map(|(first, _)| match first {
            Response::Committed { epoch, pages } => Some((*epoch, *pages)),
            _ => None,
        })
        .collect();
    let aborted: Vec<_> = outcomes
        .iter()
        .filter_map(|(first, _)| match first {
            Response::Aborted {
                conflict_file,
                conflict_epoch,
            } => Some((conflict_file.clone(), *conflict_epoch)),
            _ => None,
        })
        .collect();
    assert_eq!(committed.len(), 1, "exactly one commit wins: {outcomes:?}");
    assert_eq!(aborted.len(), 1, "exactly one commit aborts: {outcomes:?}");
    let (win_epoch, win_pages) = committed[0];
    assert_eq!(win_epoch, 1, "the winner publishes the first epoch");
    assert!(win_pages > 0, "an update write-set has pages");
    let (conflict_file, conflict_epoch) = aborted[0].clone();
    assert!(!conflict_file.is_empty(), "the conflict names its file");
    assert_eq!(conflict_epoch, win_epoch, "the conflict names the winner");

    // The loser's retry (now based on epoch 1) published epoch 2.
    let retry = outcomes
        .iter()
        .find_map(|(_, retry)| retry.clone())
        .expect("the aborted session retried");
    match retry {
        Response::Committed { epoch, pages } => {
            assert_eq!(epoch, 2, "the retry commits on top of the winner");
            assert!(pages > 0);
        }
        other => panic!("retry must commit cleanly, got {other:?}"),
    }
    assert_eq!(server.current_epoch(), 2);
    let stats = server.stats();
    assert_eq!(stats.commits, 2);
    assert_eq!(stats.commit_aborts, 1);

    // The idle warm session re-pins on its next query; its read-only
    // commit then reports the newest epoch, proving it observes the
    // published pages.
    let resp = bystander
        .query(QuerySpec {
            session: bystander_session,
            algo: JoinAlgo::Chj,
            pat_pct: 10,
            prov_pct: 90,
            deadline_nanos: 0,
        })
        .unwrap();
    assert!(matches!(resp, Response::QueryOk { .. }));
    match bystander.commit(bystander_session).unwrap() {
        Response::Committed { epoch, pages } => {
            assert_eq!(epoch, 2, "warm session re-pinned to the newest epoch");
            assert_eq!(pages, 0, "a read-only commit publishes nothing");
        }
        other => panic!("expected read-only Committed, got {other:?}"),
    }
    bystander.close_session(bystander_session).unwrap();
    drop(bystander);

    // num is not a join key and the rewrites are fixed-width in-place:
    // a cold session over the committed state reproduces the base
    // oracle's Stat byte for byte.
    let (results, stat, leaked) = run_one(&server, CacheMode::Cold, JoinAlgo::Chj, 10, 90);
    assert_eq!(leaked, 0);
    assert_eq!(
        results, want_results,
        "committed writes changed a result set"
    );
    assert_eq!(stat, want_stat, "committed writes perturbed read Stats");

    Arc::try_unwrap(server).ok().unwrap().shutdown();
}

#[test]
fn disjoint_commits_both_publish() {
    let base = base_db();
    let server = Arc::new(Server::start(base, ServerConfig::default()));
    let barrier = Arc::new(Barrier::new(2));
    let handles: Vec<_> = [UpdateTarget::Patients, UpdateTarget::Providers]
        .into_iter()
        .map(|target| {
            let server = Arc::clone(&server);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                let mut client = Client::new(server.connect_in_proc());
                let session = client.open_session(CacheMode::Warm).unwrap();
                // Patients: num += 1 (dirties Patients + the num index).
                // Providers: upin += 0, a touch-update that dirties only
                // the Providers data file — disjoint from the other
                // session's write-set.
                let delta = match target {
                    UpdateTarget::Patients => 1,
                    UpdateTarget::Providers => 0,
                };
                match client.update(session, target, 10, delta, 0).unwrap() {
                    Response::UpdateOk { updated, .. } => assert!(updated > 0),
                    other => panic!("expected UpdateOk, got {other:?}"),
                }
                barrier.wait();
                let resp = client.commit(session).unwrap();
                let (_drained, leaked, uncommitted) = client.close_session(session).unwrap();
                assert_eq!(leaked, 0);
                assert_eq!(uncommitted, 0);
                resp
            })
        })
        .collect();
    let outcomes: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    // Disjoint write-sets never conflict: both commits land, in either
    // order, publishing epochs 1 and 2.
    let mut epochs = Vec::new();
    for resp in &outcomes {
        match resp {
            Response::Committed { epoch, pages } => {
                assert!(*pages > 0);
                epochs.push(*epoch);
            }
            other => panic!("disjoint commit must land, got {other:?}"),
        }
    }
    epochs.sort_unstable();
    assert_eq!(epochs, vec![1, 2]);
    assert_eq!(server.current_epoch(), 2);
    let stats = server.stats();
    assert_eq!(stats.commits, 2);
    assert_eq!(stats.commit_aborts, 0);
    Arc::try_unwrap(server).ok().unwrap().shutdown();
}

#[test]
fn commit_after_deadline_cancelled_update_is_read_only() {
    let server = Server::start(base_db(), ServerConfig::default());
    let mut client = Client::new(server.connect_in_proc());
    let session = client.open_session(CacheMode::Warm).unwrap();

    // 1ns of simulated time: the statement cancels mid-flight and the
    // session is refilled from its base epoch — the half-applied
    // transaction dies with the discarded clone.
    let resp = client
        .update(session, UpdateTarget::Patients, 100, 1, 1)
        .unwrap();
    assert!(
        matches!(resp, Response::DeadlineExceeded { .. }),
        "expected DeadlineExceeded, got {resp:?}"
    );

    // A commit racing in right after the cancellation finds a clean
    // session: read-only re-pin, no epoch published.
    match client.commit(session).unwrap() {
        Response::Committed { epoch, pages } => {
            assert_eq!(epoch, 0, "a cancelled transaction publishes nothing");
            assert_eq!(pages, 0);
        }
        other => panic!("expected read-only Committed, got {other:?}"),
    }
    assert_eq!(server.current_epoch(), 0);

    // The session is fully usable afterwards: the same statement,
    // un-deadlined, buffers and commits normally.
    update_patients(&mut client, session, 100);
    match client.commit(session).unwrap() {
        Response::Committed { epoch, pages } => {
            assert_eq!(epoch, 1);
            assert!(pages > 0);
        }
        other => panic!("expected Committed, got {other:?}"),
    }
    let (_drained, leaked, uncommitted) = client.close_session(session).unwrap();
    assert_eq!(leaked, 0);
    assert_eq!(uncommitted, 0);
    let stats = server.stats();
    assert_eq!(stats.queries_deadline_exceeded, 1);
    assert_eq!(stats.commits, 2);
    assert_eq!(stats.rollbacks, 0);
    drop(client);
    server.shutdown();
}

#[test]
fn close_with_uncommitted_writes_reports_the_discarded_pages() {
    let server = Server::start(base_db(), ServerConfig::default());
    let mut client = Client::new(server.connect_in_proc());

    let session = client.open_session(CacheMode::Warm).unwrap();
    update_patients(&mut client, session, 10);
    // Close without commit: the report counts the pages about to be
    // thrown away, so the load generator can see write leaks.
    let (_drained, leaked, uncommitted) = client.close_session(session).unwrap();
    assert_eq!(leaked, 0);
    assert!(uncommitted > 0, "buffered writes must be reported at close");
    assert_eq!(
        server.current_epoch(),
        0,
        "closing an uncommitted session publishes nothing"
    );

    // An explicit abort discards the same pages and closes clean.
    let session = client.open_session(CacheMode::Warm).unwrap();
    update_patients(&mut client, session, 10);
    let discarded = client.abort(session).unwrap();
    assert_eq!(
        discarded, uncommitted,
        "abort and close discard the same write-set"
    );
    let (_drained, leaked, after_abort) = client.close_session(session).unwrap();
    assert_eq!(leaked, 0);
    assert_eq!(after_abort, 0, "an aborted session has nothing left");
    assert_eq!(server.current_epoch(), 0);
    let stats = server.stats();
    assert_eq!(stats.commits, 0);
    assert_eq!(stats.rollbacks, 1);
    drop(client);
    server.shutdown();
}

#[test]
fn served_chains_match_the_serial_oracle_for_every_policy() {
    let base = base_db();
    // Serial oracles: one cold chain cell per (depth, policy) through
    // the same measure code path the server uses.
    let mut oracles = Vec::new();
    for depth in [2u32, 3, 4] {
        for policy in PlannerPolicy::all() {
            let mut db = base.clone();
            let cell = run_chain_cell(&mut db, depth, 30, 60, policy, None).unwrap();
            oracles.push((
                depth,
                policy,
                cell.results,
                chain_stat_record(&db, &cell, depth, 30, 60),
            ));
        }
    }
    let server = Server::start(base, ServerConfig::default());
    let mut client = Client::new(server.connect_in_proc());
    for (depth, policy, want_results, want_stat) in &oracles {
        let session = client.open_session(CacheMode::Cold).unwrap();
        let resp = client
            .chain(ChainQuerySpec {
                session,
                depth: *depth,
                pat_pct: 30,
                prov_pct: 60,
                policy: *policy,
                deadline_nanos: 0,
            })
            .unwrap();
        let (results, stat) = match resp {
            Response::QueryOk { results, stat } => (results, *stat),
            other => panic!("expected QueryOk, got {other:?}"),
        };
        assert_eq!(results, *want_results, "depth {depth} {policy:?}");
        assert_eq!(stat, *want_stat, "depth {depth} {policy:?}");
        let (_drained, leaked, _uncommitted) = client.close_session(session).unwrap();
        assert_eq!(leaked, 0);
    }
    // All three policies agree on the result count at each depth.
    for depth in [2u32, 3, 4] {
        let counts: Vec<u64> = oracles
            .iter()
            .filter(|(d, ..)| d == &depth)
            .map(|&(_, _, r, _)| r)
            .collect();
        assert!(
            counts.windows(2).all(|w| w[0] == w[1]),
            "depth {depth}: {counts:?}"
        );
    }
    // A depth outside the served vocabulary is a typed error, and the
    // session survives to run a valid chain afterwards.
    let session = client.open_session(CacheMode::Cold).unwrap();
    let err = client.chain(ChainQuerySpec {
        session,
        depth: 9,
        pat_pct: 30,
        prov_pct: 60,
        policy: PlannerPolicy::Estimate,
        deadline_nanos: 0,
    });
    assert!(
        matches!(err, Err(tq_server::ClientError::Server(ref msg)) if msg.contains("depth 9")),
        "{err:?}"
    );
    let ok = client
        .chain(ChainQuerySpec {
            session,
            depth: 3,
            pat_pct: 30,
            prov_pct: 60,
            policy: PlannerPolicy::Simpli,
            deadline_nanos: 0,
        })
        .unwrap();
    assert!(matches!(ok, Response::QueryOk { .. }));
    client.close_session(session).unwrap();
    drop(client);
    server.shutdown();
}
