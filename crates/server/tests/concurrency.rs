//! Concurrency stress tests: served queries must be *indistinguishable*
//! from harness runs. K sessions running under contention produce
//! `Stat`s equal field-for-field to a serial oracle, deadline-cancelled
//! sessions recover to the same guarantee, and teardown leaks nothing.

use std::sync::{Arc, Barrier};
use std::thread;

use tq_query::{JoinAlgo, JoinOptions};
use tq_server::measure::{run_join_cell, stat_record};
use tq_server::{CacheMode, Client, QuerySpec, Response, Server, ServerConfig};
use tq_statsdb::Stat;
use tq_workload::{build, BuildConfig, Database, DbShape, Organization};

const SCALE: u32 = 1000;

fn base_db() -> Database {
    build(&BuildConfig::scaled(
        DbShape::Db2,
        Organization::ClassClustered,
        SCALE,
    ))
}

/// The cells the stress clients run: every algorithm, two selectivity
/// points each.
fn cells() -> Vec<(JoinAlgo, u32, u32)> {
    let algos = [JoinAlgo::Nl, JoinAlgo::Nojoin, JoinAlgo::Phj, JoinAlgo::Chj];
    let mut out = Vec::new();
    for algo in algos {
        out.push((algo, 10, 90));
        out.push((algo, 100, 20));
    }
    out
}

/// What the figure harness would record for one cold cell.
fn serial_oracle(base: &Database, algo: JoinAlgo, pat_pct: u32, prov_pct: u32) -> (u64, Stat) {
    let mut db = base.clone();
    let cell = run_join_cell(&mut db, algo, pat_pct, prov_pct, &JoinOptions::default());
    (cell.results, stat_record(&db, &cell, pat_pct, prov_pct))
}

fn run_one(
    server: &Server,
    mode: CacheMode,
    algo: JoinAlgo,
    pat_pct: u32,
    prov_pct: u32,
) -> (u64, Stat, u64) {
    let mut client = Client::new(server.connect_in_proc());
    let session = client.open_session(mode).unwrap();
    let resp = client
        .query(QuerySpec {
            session,
            algo,
            pat_pct,
            prov_pct,
            deadline_nanos: 0,
        })
        .unwrap();
    let (results, stat) = match resp {
        Response::QueryOk { results, stat } => (results, *stat),
        other => panic!("expected QueryOk, got {other:?}"),
    };
    let (_drained, leaked) = client.close_session(session).unwrap();
    (results, stat, leaked)
}

#[test]
fn concurrent_cold_sessions_match_serial_oracle() {
    let base = base_db();
    let cells = cells();
    let oracle: Vec<_> = cells
        .iter()
        .map(|&(algo, pat, prov)| serial_oracle(&base, algo, pat, prov))
        .collect();

    let server = Arc::new(Server::start(base, ServerConfig::default()));
    let barrier = Arc::new(Barrier::new(cells.len()));
    let handles: Vec<_> = cells
        .iter()
        .map(|&(algo, pat, prov)| {
            let server = Arc::clone(&server);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                barrier.wait();
                run_one(&server, CacheMode::Cold, algo, pat, prov)
            })
        })
        .collect();
    let served: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    for (i, ((results, stat, leaked), (want_results, want_stat))) in
        served.iter().zip(oracle.iter()).enumerate()
    {
        let (algo, pat, prov) = cells[i];
        assert_eq!(leaked, &0, "cell {algo:?} {pat}/{prov} leaked handles");
        assert_eq!(
            results, want_results,
            "cell {algo:?} {pat}/{prov} cardinality"
        );
        assert_eq!(stat, want_stat, "cell {algo:?} {pat}/{prov} Stat drifted");
    }

    assert_eq!(server.open_sessions(), 0, "sessions survived teardown");
    let stats = server.stats();
    assert_eq!(stats.queries_ok, cells.len() as u64);
    assert_eq!(stats.queries_failed, 0);
    assert_eq!(stats.sessions_opened, stats.sessions_closed);
    Arc::try_unwrap(server).ok().unwrap().shutdown();
}

#[test]
fn deadline_cancel_then_session_still_matches_oracle() {
    let base = base_db();
    let (want_results, want_stat) = serial_oracle(&base, JoinAlgo::Chj, 100, 90);

    let server = Server::start(base, ServerConfig::default());
    let mut client = Client::new(server.connect_in_proc());
    let session = client.open_session(CacheMode::Cold).unwrap();

    // 1ns of simulated time: the first operator tick fires the token.
    let resp = client
        .query(QuerySpec {
            session,
            algo: JoinAlgo::Chj,
            pat_pct: 100,
            prov_pct: 90,
            deadline_nanos: 1,
        })
        .unwrap();
    assert!(
        matches!(resp, Response::DeadlineExceeded { .. }),
        "expected DeadlineExceeded, got {resp:?}"
    );

    // The session was refilled from the base snapshot: the very next
    // query must be indistinguishable from a fresh harness run.
    let resp = client
        .query(QuerySpec {
            session,
            algo: JoinAlgo::Chj,
            pat_pct: 100,
            prov_pct: 90,
            deadline_nanos: 0,
        })
        .unwrap();
    match resp {
        Response::QueryOk { results, stat } => {
            assert_eq!(results, want_results);
            assert_eq!(*stat, want_stat, "post-cancel Stat drifted from oracle");
        }
        other => panic!("expected QueryOk after recovery, got {other:?}"),
    }

    let (_drained, leaked) = client.close_session(session).unwrap();
    assert_eq!(leaked, 0, "cancelled session leaked handles");
    let stats = server.stats();
    assert_eq!(stats.queries_deadline_exceeded, 1);
    assert_eq!(stats.queries_ok, 1);
    // The handler thread exits on client hang-up; shutdown joins it.
    drop(client);
    server.shutdown();
}

#[test]
fn warm_sessions_are_isolated_from_each_other() {
    let base = base_db();
    // Warm oracle: two queries on one private snapshot, the second
    // measured against whatever the first left resident.
    let want = {
        let mut db = base.clone();
        let opts = JoinOptions::default();
        let _ = run_join_cell(&mut db, JoinAlgo::Chj, 10, 90, &opts);
        let cell = tq_server::measure::measure_current(&mut db, JoinAlgo::Chj, 10, 90, &opts, None);
        let mut stat = stat_record(&db, &cell, 10, 90);
        stat.query.cold = false;
        (cell.results, stat)
    };

    let server = Arc::new(Server::start(base, ServerConfig::default()));
    // A noisy neighbour hammers its own warm session concurrently; it
    // must not perturb the session under test.
    let noisy = {
        let server = Arc::clone(&server);
        thread::spawn(move || {
            for _ in 0..4 {
                run_one(&server, CacheMode::Warm, JoinAlgo::Nl, 100, 20);
            }
        })
    };

    let mut client = Client::new(server.connect_in_proc());
    let session = client.open_session(CacheMode::Warm).unwrap();
    let spec = QuerySpec {
        session,
        algo: JoinAlgo::Chj,
        pat_pct: 10,
        prov_pct: 90,
        deadline_nanos: 0,
    };
    // First query primes this session's caches (warm sessions skip the
    // cold restart; the very first query runs against a cold clone).
    let _ = client.query(spec).unwrap();
    let resp = client.query(spec).unwrap();
    match resp {
        Response::QueryOk { results, stat } => {
            assert_eq!(results, want.0);
            assert_eq!(*stat, want.1, "warm Stat drifted under contention");
        }
        other => panic!("expected QueryOk, got {other:?}"),
    }
    let (_drained, leaked) = client.close_session(session).unwrap();
    assert_eq!(leaked, 0);

    noisy.join().unwrap();
    assert_eq!(server.open_sessions(), 0);
    drop(client);
    Arc::try_unwrap(server).ok().unwrap().shutdown();
}

#[test]
fn saturated_server_sheds_instead_of_queueing_unboundedly() {
    let base = base_db();
    let server = Arc::new(Server::start(
        base,
        ServerConfig {
            workers: 1,
            queue_depth: 1,
        },
    ));
    let clients = 8;
    let barrier = Arc::new(Barrier::new(clients));
    let handles: Vec<_> = (0..clients)
        .map(|_| {
            let server = Arc::clone(&server);
            let barrier = Arc::clone(&barrier);
            thread::spawn(move || {
                let mut client = Client::new(server.connect_in_proc());
                let session = client.open_session(CacheMode::Cold).unwrap();
                barrier.wait();
                let (mut ok, mut shed) = (0u64, 0u64);
                for _ in 0..40 {
                    let resp = client
                        .query(QuerySpec {
                            session,
                            algo: JoinAlgo::Chj,
                            pat_pct: 10,
                            prov_pct: 90,
                            deadline_nanos: 0,
                        })
                        .unwrap();
                    match resp {
                        Response::QueryOk { .. } => ok += 1,
                        Response::Overloaded { queue_depth } => {
                            assert_eq!(queue_depth, 1);
                            shed += 1;
                        }
                        other => panic!("unexpected {other:?}"),
                    }
                }
                let (_drained, leaked) = client.close_session(session).unwrap();
                assert_eq!(leaked, 0);
                (ok, shed)
            })
        })
        .collect();
    let (mut ok, mut shed) = (0u64, 0u64);
    for h in handles {
        let (o, s) = h.join().unwrap();
        ok += o;
        shed += s;
    }
    assert_eq!(ok + shed, clients as u64 * 40, "every query was answered");
    assert!(ok > 0, "a saturated server must still make progress");
    assert!(
        shed > 0,
        "8 closed-loop clients against 1 worker + depth-1 queue must shed"
    );
    let stats = server.stats();
    assert_eq!(stats.queries_ok, ok);
    assert_eq!(stats.queries_shed, shed);
    assert_eq!(server.open_sessions(), 0);
    Arc::try_unwrap(server).ok().unwrap().shutdown();
}
