//! # tq-fasthash — a fast non-cryptographic hasher for hot maps
//!
//! The simulator's inner loop is hash-map-bound: every simulated page
//! access touches two [`LruCache`] key maps, and every object fetch
//! touches the handle table and (in the hash joins) a join table. With
//! the standard library's default SipHash-1-3 those lookups dominate
//! host CPU at paper scale (millions of objects per figure cell).
//!
//! This crate vendors the Firefox/rustc "FxHash" multiply-fold hash:
//! for the small fixed-size keys we hash (`PageId`, `Rid` — a handful
//! of integer words) it is several times cheaper than SipHash while
//! distributing well enough for `std::collections::HashMap`.
//!
//! It is **not** HashDoS-resistant. Keys in this workspace come from
//! the deterministic simulation itself, never from untrusted input, so
//! flood resistance buys nothing here.
//!
//! Nothing simulated depends on hash values: swapping hashers changes
//! host-side wall clock only. The figure harness's byte-identical
//! determinism oracle (`parallel_matches_serial`) guards that.
//!
//! [`LruCache`]: https://docs.rs (see `tq_pagestore::LruCache`)

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// `BuildHasher` producing [`FxHasher`]s (zero-sized, `Default`).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// 64-bit multiply constant: floor(2^64 / phi), the usual Fibonacci
/// hashing multiplier (odd, high bits well mixed).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The rustc/Firefox "Fx" hash function.
///
/// State folds each input word in with `rotate-left, xor, multiply`.
/// Small integer keys hash in a couple of cycles; there is no
/// finalization step (the multiply's high bits are already mixed, and
/// `HashMap` uses the high 7 bits for its control bytes).
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    /// Byte-slice path: folds 8 bytes at a time, then the tail. Only
    /// string/byte keys take this route; the hot keys (`PageId`, `Rid`)
    /// are integer tuples and use the `write_uNN` fast paths below.
    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            self.add_to_hash(u64::from_le_bytes(bytes[..8].try_into().unwrap()));
            bytes = &bytes[8..];
        }
        if bytes.len() >= 4 {
            self.add_to_hash(u32::from_le_bytes(bytes[..4].try_into().unwrap()) as u64);
            bytes = &bytes[4..];
        }
        for &b in bytes {
            self.add_to_hash(b as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// Hashes one value with [`FxHasher`] (convenience for tests and for
/// callers that need a raw hash rather than a map).
pub fn hash_one<T: std::hash::Hash + ?Sized>(value: &T) -> u64 {
    let mut h = FxHasher::default();
    value.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_hashers() {
        let a = hash_one(&(17u32, 42u64));
        let b = hash_one(&(17u32, 42u64));
        assert_eq!(a, b);
        assert_ne!(a, hash_one(&(18u32, 42u64)));
    }

    #[test]
    fn maps_and_sets_round_trip() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..10_000u64 {
            m.insert(i, i * i);
        }
        assert_eq!(m.len(), 10_000);
        for i in 0..10_000u64 {
            assert_eq!(m.get(&i), Some(&(i * i)));
        }
        let mut s: FxHashSet<(u32, u16)> = FxHashSet::default();
        assert!(s.insert((7, 9)));
        assert!(!s.insert((7, 9)));
        assert!(s.contains(&(7, 9)));
    }

    #[test]
    fn byte_slices_hash_by_content() {
        assert_eq!(
            hash_one(&b"hello world!"[..]),
            hash_one(&b"hello world!"[..])
        );
        assert_ne!(
            hash_one(&b"hello world!"[..]),
            hash_one(&b"hello world?"[..])
        );
        // Exercise every tail length of the byte path: equal content
        // hashes equal, one flipped trailing byte does not.
        for n in 1..24usize {
            let v: Vec<u8> = (0..n as u8).collect();
            assert_eq!(hash_one(&v), hash_one(&v.clone()));
            let mut w = v.clone();
            w[n - 1] ^= 1;
            assert_ne!(hash_one(&v), hash_one(&w));
        }
    }

    /// Distribution sanity: bucketing sequential and strided keys into
    /// 1024 buckets stays near-uniform (no catastrophic clustering for
    /// the page-number/slot patterns the simulator produces).
    #[test]
    fn sequential_keys_spread_over_buckets() {
        for stride in [1u64, 2, 4096] {
            let mut buckets = [0u32; 1024];
            let n = 64 * 1024u64;
            for i in 0..n {
                buckets[(hash_one(&(i * stride)) >> 54) as usize] += 1;
            }
            let expected = (n / 1024) as f64;
            let worst = buckets.iter().copied().max().unwrap() as f64;
            assert!(
                worst < expected * 4.0,
                "stride {stride}: worst bucket {worst} vs expected {expected}"
            );
        }
    }
}
