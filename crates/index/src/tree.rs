//! The B+-tree proper: bulk build, incremental insert, range scans.

use crate::node::{Node, INTERNAL_CAPACITY, LEAF_CAPACITY, NO_LEAF};
use tq_objstore::Rid;
use tq_pagestore::{FileId, PageId, StorageStack, PAGE_SIZE};

/// A B+-tree index over an integer key attribute.
///
/// Created either by [`BTreeIndex::bulk_build`] (sorted input, packed
/// leaves — the "create the index once the collection is populated"
/// path) or [`BTreeIndex::new_empty`] + [`BTreeIndex::insert`]
/// (index-first loading). Tree metadata lives in this struct; node
/// pages live in `file` and are accessed through the shared
/// [`StorageStack`], so every index page read is charged I/O.
#[derive(Clone, Debug)]
pub struct BTreeIndex {
    /// Index id recorded in member objects' headers.
    pub id: u16,
    /// Page file holding the nodes.
    pub file: FileId,
    /// True when key order matches the indexed objects' physical order.
    pub clustered: bool,
    root: u32,
    height: u32,
    entry_count: u64,
}

fn write_node(stack: &mut StorageStack, pid: PageId, node: &Node) {
    let bytes = node.encode();
    stack.write_page(pid, |p| {
        if p.slot_count() == 0 {
            p.insert(&bytes, PAGE_SIZE)
                .expect("node fits an empty page");
        } else {
            assert!(p.update(0, &bytes), "node must fit its page");
        }
    });
}

fn read_node(stack: &mut StorageStack, file: FileId, page_no: u32) -> Node {
    let page = stack.read_page(PageId { file, page_no });
    Node::decode(page.read(0).expect("index page holds a node"))
}

impl BTreeIndex {
    /// Creates an empty tree (a single empty leaf) in a fresh file.
    pub fn new_empty(
        stack: &mut StorageStack,
        id: u16,
        name: impl Into<String>,
        clustered: bool,
    ) -> Self {
        let file = stack.create_file(name);
        let pid = stack.allocate_page(file);
        write_node(
            stack,
            pid,
            &Node::Leaf {
                entries: vec![],
                next: NO_LEAF,
            },
        );
        Self {
            id,
            file,
            clustered,
            root: pid.page_no,
            height: 1,
            entry_count: 0,
        }
    }

    /// Bulk-builds a packed tree from entries **sorted by key** (ties
    /// in any order). This is the paper's recommended post-load index
    /// creation path.
    ///
    /// Panics if the input is unsorted.
    pub fn bulk_build(
        stack: &mut StorageStack,
        id: u16,
        name: impl Into<String>,
        clustered: bool,
        entries: &[(i64, Rid)],
    ) -> Self {
        assert!(
            entries.windows(2).all(|w| w[0].0 <= w[1].0),
            "bulk_build requires key-sorted input"
        );
        let file = stack.create_file(name);
        if entries.is_empty() {
            let pid = stack.allocate_page(file);
            write_node(
                stack,
                pid,
                &Node::Leaf {
                    entries: vec![],
                    next: NO_LEAF,
                },
            );
            return Self {
                id,
                file,
                clustered,
                root: pid.page_no,
                height: 1,
                entry_count: 0,
            };
        }
        // Leaves, left to right. Chunks are allocated first so each
        // leaf can point at its successor.
        let chunks: Vec<&[(i64, Rid)]> = entries.chunks(LEAF_CAPACITY).collect();
        let leaf_pages: Vec<PageId> = chunks.iter().map(|_| stack.allocate_page(file)).collect();
        let mut level: Vec<(i64, u32)> = Vec::with_capacity(chunks.len());
        for (i, chunk) in chunks.iter().enumerate() {
            let next = leaf_pages.get(i + 1).map(|p| p.page_no).unwrap_or(NO_LEAF);
            write_node(
                stack,
                leaf_pages[i],
                &Node::Leaf {
                    entries: chunk.to_vec(),
                    next,
                },
            );
            level.push((chunk[0].0, leaf_pages[i].page_no));
        }
        // Internal levels until one node remains.
        let mut height = 1;
        while level.len() > 1 {
            height += 1;
            let mut next_level = Vec::with_capacity(level.len() / INTERNAL_CAPACITY + 1);
            for group in level.chunks(INTERNAL_CAPACITY + 1) {
                let pid = stack.allocate_page(file);
                let keys: Vec<i64> = group[1..].iter().map(|&(k, _)| k).collect();
                let children: Vec<u32> = group.iter().map(|&(_, c)| c).collect();
                write_node(stack, pid, &Node::Internal { keys, children });
                next_level.push((group[0].0, pid.page_no));
            }
            level = next_level;
        }
        Self {
            id,
            file,
            clustered,
            root: level[0].1,
            height,
            entry_count: entries.len() as u64,
        }
    }

    /// Number of entries.
    pub fn entry_count(&self) -> u64 {
        self.entry_count
    }

    /// Tree height (1 = root is a leaf).
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Inserts one `(key, rid)` entry, splitting nodes as needed.
    pub fn insert(&mut self, stack: &mut StorageStack, key: i64, rid: Rid) {
        if let Some((sep, right)) = self.insert_into(stack, self.root, key, rid) {
            // Root split: grow a new root.
            let pid = stack.allocate_page(self.file);
            write_node(
                stack,
                pid,
                &Node::Internal {
                    keys: vec![sep],
                    children: vec![self.root, right],
                },
            );
            self.root = pid.page_no;
            self.height += 1;
        }
        self.entry_count += 1;
    }

    /// Recursive insert; returns `(separator, new_right_page)` when the
    /// child at `page_no` split.
    fn insert_into(
        &mut self,
        stack: &mut StorageStack,
        page_no: u32,
        key: i64,
        rid: Rid,
    ) -> Option<(i64, u32)> {
        match read_node(stack, self.file, page_no) {
            Node::Leaf { mut entries, next } => {
                let at = entries.partition_point(|&(k, _)| k <= key);
                entries.insert(at, (key, rid));
                if entries.len() <= LEAF_CAPACITY {
                    write_node(
                        stack,
                        PageId {
                            file: self.file,
                            page_no,
                        },
                        &Node::Leaf { entries, next },
                    );
                    return None;
                }
                // Split.
                let right_entries = entries.split_off(entries.len() / 2);
                let sep = right_entries[0].0;
                let right_pid = stack.allocate_page(self.file);
                write_node(
                    stack,
                    right_pid,
                    &Node::Leaf {
                        entries: right_entries,
                        next,
                    },
                );
                write_node(
                    stack,
                    PageId {
                        file: self.file,
                        page_no,
                    },
                    &Node::Leaf {
                        entries,
                        next: right_pid.page_no,
                    },
                );
                Some((sep, right_pid.page_no))
            }
            Node::Internal {
                mut keys,
                mut children,
            } => {
                let slot = keys.partition_point(|&k| k <= key);
                let split = self.insert_into(stack, children[slot], key, rid)?;
                let (sep, right) = split;
                keys.insert(slot, sep);
                children.insert(slot + 1, right);
                if keys.len() <= INTERNAL_CAPACITY {
                    write_node(
                        stack,
                        PageId {
                            file: self.file,
                            page_no,
                        },
                        &Node::Internal { keys, children },
                    );
                    return None;
                }
                // Split internal: middle key moves up.
                let mid = keys.len() / 2;
                let up_key = keys[mid];
                let right_keys = keys.split_off(mid + 1);
                keys.pop(); // up_key
                let right_children = children.split_off(mid + 1);
                let right_pid = stack.allocate_page(self.file);
                write_node(
                    stack,
                    right_pid,
                    &Node::Internal {
                        keys: right_keys,
                        children: right_children,
                    },
                );
                write_node(
                    stack,
                    PageId {
                        file: self.file,
                        page_no,
                    },
                    &Node::Internal { keys, children },
                );
                Some((up_key, right_pid.page_no))
            }
        }
    }

    /// Opens a cursor over keys in `lo ..= hi` (inclusive range,
    /// ascending). Descending the tree charges the node-page reads.
    pub fn range(&self, stack: &mut StorageStack, lo: i64, hi: i64) -> IndexCursor {
        let mut page_no = self.root;
        loop {
            match read_node(stack, self.file, page_no) {
                Node::Internal { keys, children } => {
                    // Lower-bound descent: duplicates of `lo` may sit
                    // left of an equal separator (splits don't respect
                    // duplicate runs), so take the leftmost candidate
                    // child; the leaf chain covers the rest.
                    let slot = keys.partition_point(|&k| k < lo);
                    page_no = children[slot];
                }
                Node::Leaf { entries, next } => {
                    let start = entries.partition_point(|&(k, _)| k < lo);
                    return IndexCursor {
                        file: self.file,
                        hi,
                        entries,
                        at: start,
                        next_leaf: next,
                        done: false,
                    };
                }
            }
        }
    }

    /// Cursor over the whole index in key order.
    pub fn scan_all(&self, stack: &mut StorageStack) -> IndexCursor {
        self.range(stack, i64::MIN, i64::MAX)
    }

    /// Removes one `(key, rid)` entry. Returns `true` when found.
    ///
    /// Deletion is lazy (no node merging): leaves may go underfull,
    /// which is standard practice for workloads where deletes are rare
    /// relative to scans. Empty leaves stay in the chain and cost one
    /// page read to skip.
    pub fn remove(&mut self, stack: &mut StorageStack, key: i64, rid: Rid) -> bool {
        // Lower-bound descent (duplicates may sit left of an equal
        // separator), then walk the leaf chain while keys match.
        let mut page_no = self.root;
        while let Node::Internal { keys, children } = read_node(stack, self.file, page_no) {
            let slot = keys.partition_point(|&k| k < key);
            page_no = children[slot];
        }
        loop {
            let node = read_node(stack, self.file, page_no);
            let Node::Leaf { mut entries, next } = node else {
                unreachable!("leaf chain links only leaves");
            };
            if let Some(at) = entries.iter().position(|&(k, r)| k == key && r == rid) {
                entries.remove(at);
                write_node(
                    stack,
                    PageId {
                        file: self.file,
                        page_no,
                    },
                    &Node::Leaf { entries, next },
                );
                self.entry_count -= 1;
                return true;
            }
            // Stop once the chain has moved past `key`.
            if entries.last().is_some_and(|&(k, _)| k > key) || next == crate::node::NO_LEAF {
                return false;
            }
            page_no = next;
        }
    }

    /// Re-keys one entry: removes `(old_key, rid)` and inserts
    /// `(new_key, new_rid)` — the index-maintenance step for an object
    /// update (possibly relocated). Returns `false` when the old entry
    /// was absent (nothing is inserted then).
    pub fn reinsert(
        &mut self,
        stack: &mut StorageStack,
        old_key: i64,
        rid: Rid,
        new_key: i64,
        new_rid: Rid,
    ) -> bool {
        if !self.remove(stack, old_key, rid) {
            return false;
        }
        self.insert(stack, new_key, new_rid);
        true
    }

    /// All rids for `key` (point lookup convenience).
    pub fn lookup(&self, stack: &mut StorageStack, key: i64) -> Vec<Rid> {
        let mut cursor = self.range(stack, key, key);
        let mut out = Vec::new();
        while let Some((_, rid)) = cursor.next(stack) {
            out.push(rid);
        }
        out
    }
}

/// Streaming cursor over an index range.
///
/// Holds the current leaf's entries decoded in memory (the leaf is
/// effectively pinned while scanned); crossing to the next leaf is one
/// (charged) page read.
#[derive(Clone, Debug)]
pub struct IndexCursor {
    file: FileId,
    hi: i64,
    entries: Vec<(i64, Rid)>,
    at: usize,
    next_leaf: u32,
    done: bool,
}

impl IndexCursor {
    /// Next `(key, rid)` in ascending key order, or `None` past `hi`.
    pub fn next(&mut self, stack: &mut StorageStack) -> Option<(i64, Rid)> {
        loop {
            if self.done {
                return None;
            }
            if self.at < self.entries.len() {
                let (k, r) = self.entries[self.at];
                if k > self.hi {
                    self.done = true;
                    return None;
                }
                self.at += 1;
                return Some((k, r));
            }
            if self.next_leaf == NO_LEAF {
                self.done = true;
                return None;
            }
            match read_node(stack, self.file, self.next_leaf) {
                Node::Leaf { entries, next } => {
                    self.entries = entries;
                    self.at = 0;
                    self.next_leaf = next;
                }
                Node::Internal { .. } => unreachable!("leaf chain links only leaves"),
            }
        }
    }

    /// Drains the cursor into a vector.
    pub fn collect_all(mut self, stack: &mut StorageStack) -> Vec<(i64, Rid)> {
        let mut out = Vec::new();
        while let Some(e) = self.next(stack) {
            out.push(e);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tq_pagestore::{CacheConfig, CostModel};

    fn stack() -> StorageStack {
        StorageStack::new(CostModel::free(), CacheConfig::default())
    }

    fn rid(n: u32) -> Rid {
        Rid::new(
            PageId {
                file: FileId(0),
                page_no: n / 50,
            },
            (n % 50) as u16,
        )
    }

    #[test]
    fn bulk_build_and_full_scan() {
        let mut s = stack();
        let entries: Vec<(i64, Rid)> = (0..1000).map(|i| (i * 2, rid(i as u32))).collect();
        let t = BTreeIndex::bulk_build(&mut s, 1, "idx", true, &entries);
        assert_eq!(t.entry_count(), 1000);
        assert!(t.height() >= 2);
        assert_eq!(t.scan_all(&mut s).collect_all(&mut s), entries);
    }

    #[test]
    fn range_scan_inclusive_bounds() {
        let mut s = stack();
        let entries: Vec<(i64, Rid)> = (0..500).map(|i| (i, rid(i as u32))).collect();
        let t = BTreeIndex::bulk_build(&mut s, 1, "idx", true, &entries);
        let got = t.range(&mut s, 100, 199).collect_all(&mut s);
        assert_eq!(got.len(), 100);
        assert_eq!(got.first().unwrap().0, 100);
        assert_eq!(got.last().unwrap().0, 199);
    }

    #[test]
    fn empty_tree_and_empty_range() {
        let mut s = stack();
        let t = BTreeIndex::bulk_build(&mut s, 1, "idx", false, &[]);
        assert_eq!(t.entry_count(), 0);
        assert!(t.scan_all(&mut s).collect_all(&mut s).is_empty());
        let t2 = BTreeIndex::bulk_build(&mut s, 2, "idx2", false, &[(5, rid(1))]);
        assert!(t2.range(&mut s, 10, 20).collect_all(&mut s).is_empty());
        assert!(t2.range(&mut s, 0, 4).collect_all(&mut s).is_empty());
    }

    #[test]
    fn duplicate_keys_all_returned() {
        let mut s = stack();
        let entries: Vec<(i64, Rid)> = (0..600).map(|i| (i / 3, rid(i as u32))).collect();
        let t = BTreeIndex::bulk_build(&mut s, 1, "idx", false, &entries);
        assert_eq!(t.lookup(&mut s, 7).len(), 3);
        assert_eq!(t.range(&mut s, 0, 9).collect_all(&mut s).len(), 30);
    }

    #[test]
    fn incremental_insert_matches_bulk() {
        let mut s = stack();
        // Pseudo-random insertion order.
        let mut keys: Vec<i64> = (0..3000).collect();
        let mut x = 0x9E3779B97F4A7C15u64;
        for i in (1..keys.len()).rev() {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            keys.swap(i, (x % (i as u64 + 1)) as usize);
        }
        let mut t = BTreeIndex::new_empty(&mut s, 1, "inc", false);
        for &k in &keys {
            t.insert(&mut s, k, rid(k as u32));
        }
        assert_eq!(t.entry_count(), 3000);
        let got = t.scan_all(&mut s).collect_all(&mut s);
        assert_eq!(got.len(), 3000);
        assert!(got.windows(2).all(|w| w[0].0 <= w[1].0), "sorted output");
        for (k, r) in got {
            assert_eq!(r, rid(k as u32), "payload follows key");
        }
        // Spot-check ranges against the definition.
        assert_eq!(t.range(&mut s, 1000, 1999).collect_all(&mut s).len(), 1000);
    }

    #[test]
    fn insert_after_bulk_build() {
        let mut s = stack();
        let entries: Vec<(i64, Rid)> = (0..1000).map(|i| (i * 2, rid(i as u32))).collect();
        let mut t = BTreeIndex::bulk_build(&mut s, 1, "idx", false, &entries);
        for i in 0..1000 {
            t.insert(&mut s, i * 2 + 1, rid(5000 + i as u32));
        }
        let got = t.scan_all(&mut s).collect_all(&mut s);
        assert_eq!(got.len(), 2000);
        assert!(got.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn bulk_build_rejects_unsorted() {
        let mut s = stack();
        BTreeIndex::bulk_build(&mut s, 1, "idx", false, &[(2, rid(0)), (1, rid(1))]);
    }

    #[test]
    fn remove_deletes_exactly_one_entry() {
        let mut s = stack();
        let entries: Vec<(i64, Rid)> = (0..600).map(|i| (i / 3, rid(i as u32))).collect();
        let mut t = BTreeIndex::bulk_build(&mut s, 1, "idx", false, &entries);
        assert_eq!(t.lookup(&mut s, 50).len(), 3);
        assert!(t.remove(&mut s, 50, rid(151)));
        assert_eq!(t.lookup(&mut s, 50).len(), 2);
        assert!(!t.remove(&mut s, 50, rid(151)), "already gone");
        assert!(!t.remove(&mut s, 9999, rid(0)), "absent key");
        assert_eq!(t.entry_count(), 599);
        // The rest of the index is untouched.
        assert_eq!(t.scan_all(&mut s).collect_all(&mut s).len(), 599);
    }

    #[test]
    fn remove_across_leaf_boundaries() {
        let mut s = stack();
        // One key duplicated enough to span multiple leaves.
        let mut entries: Vec<(i64, Rid)> = (0..400).map(|i| (7, rid(i as u32))).collect();
        entries.extend((0..200).map(|i| (9, rid(1000 + i as u32))));
        let mut t = BTreeIndex::bulk_build(&mut s, 1, "idx", false, &entries);
        // The victim sits in a later leaf of the duplicate run.
        assert!(t.remove(&mut s, 7, rid(399)));
        assert_eq!(t.lookup(&mut s, 7).len(), 399);
        assert_eq!(t.lookup(&mut s, 9).len(), 200);
    }

    #[test]
    fn reinsert_moves_an_entry() {
        let mut s = stack();
        let entries: Vec<(i64, Rid)> = (0..100).map(|i| (i, rid(i as u32))).collect();
        let mut t = BTreeIndex::bulk_build(&mut s, 1, "idx", false, &entries);
        assert!(t.reinsert(&mut s, 10, rid(10), 500, rid(77)));
        assert!(t.lookup(&mut s, 10).is_empty());
        assert_eq!(t.lookup(&mut s, 500), vec![rid(77)]);
        assert_eq!(t.entry_count(), 100);
        assert!(
            !t.reinsert(&mut s, 10, rid(10), 600, rid(78)),
            "stale old key"
        );
        assert!(t.lookup(&mut s, 600).is_empty(), "no insert on failure");
    }

    #[test]
    fn index_reads_are_charged_io() {
        let mut s = StorageStack::new(CostModel::sparc20(), CacheConfig::default());
        let entries: Vec<(i64, Rid)> = (0..10_000).map(|i| (i, rid(i as u32))).collect();
        let t = BTreeIndex::bulk_build(&mut s, 1, "idx", true, &entries);
        s.cold_restart();
        s.reset_metrics();
        let got = t.scan_all(&mut s).collect_all(&mut s);
        assert_eq!(got.len(), 10_000);
        let reads = s.stats().d2sc_read_pages;
        // 10k entries / 250 per leaf = 40 leaves + root path.
        assert!(
            (40..=45).contains(&reads),
            "full index scan should read ~41 pages, read {reads}"
        );
        assert!(s.clock().elapsed() > 0);
    }
}
