//! B+-tree node serialization.
//!
//! One node per page, stored as the page's record 0:
//!
//! ```text
//! leaf:      [ 0u8 | next_leaf u32 | count u16 | count × (key i64, rid 8B) ]
//! internal:  [ 1u8 | count u16 | count × key i64 | (count+1) × child u32 ]
//! ```
//!
//! `next_leaf == u32::MAX` terminates the leaf chain. Child pointers
//! are page numbers within the index file.

use tq_objstore::{Rid, RID_BYTES};

/// No-next-leaf sentinel.
pub const NO_LEAF: u32 = u32::MAX;

/// Maximum entries per leaf (16 bytes each; fits a 4 KB page with
/// header slack).
pub const LEAF_CAPACITY: usize = 250;

/// Maximum keys per internal node (8-byte key + 4-byte child each).
pub const INTERNAL_CAPACITY: usize = 250;

/// A decoded B+-tree node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Node {
    /// Leaf: sorted `(key, rid)` entries plus the next-leaf link.
    Leaf {
        /// Sorted entries (duplicate keys allowed).
        entries: Vec<(i64, Rid)>,
        /// Page number of the next leaf, or [`NO_LEAF`].
        next: u32,
    },
    /// Internal: `keys[i]` separates `children[i]` (keys below `keys[i]`)
    /// from `children[i+1]` (keys at or above `keys[i]`).
    Internal {
        /// Separator keys.
        keys: Vec<i64>,
        /// Child page numbers (`keys.len() + 1` of them).
        children: Vec<u32>,
    },
}

impl Node {
    /// Serializes the node.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Node::Leaf { entries, next } => {
                assert!(entries.len() <= LEAF_CAPACITY);
                let mut out = Vec::with_capacity(7 + entries.len() * 16);
                out.push(0u8);
                out.extend_from_slice(&next.to_le_bytes());
                out.extend_from_slice(&(entries.len() as u16).to_le_bytes());
                for (k, r) in entries {
                    out.extend_from_slice(&k.to_le_bytes());
                    out.extend_from_slice(&r.encode());
                }
                out
            }
            Node::Internal { keys, children } => {
                assert!(keys.len() <= INTERNAL_CAPACITY);
                assert_eq!(children.len(), keys.len() + 1, "internal node shape");
                let mut out = Vec::with_capacity(3 + keys.len() * 12 + 4);
                out.push(1u8);
                out.extend_from_slice(&(keys.len() as u16).to_le_bytes());
                for k in keys {
                    out.extend_from_slice(&k.to_le_bytes());
                }
                for c in children {
                    out.extend_from_slice(&c.to_le_bytes());
                }
                out
            }
        }
    }

    /// Deserializes a node. Panics on malformed bytes (index pages are
    /// engine-internal; corruption is a bug, not input).
    pub fn decode(bytes: &[u8]) -> Node {
        match bytes[0] {
            0 => {
                let next = u32::from_le_bytes(bytes[1..5].try_into().unwrap());
                let count = u16::from_le_bytes(bytes[5..7].try_into().unwrap()) as usize;
                let mut entries = Vec::with_capacity(count);
                let mut at = 7;
                for _ in 0..count {
                    let k = i64::from_le_bytes(bytes[at..at + 8].try_into().unwrap());
                    let r = Rid::decode(&bytes[at + 8..at + 8 + RID_BYTES]);
                    entries.push((k, r));
                    at += 8 + RID_BYTES;
                }
                Node::Leaf { entries, next }
            }
            1 => {
                let count = u16::from_le_bytes(bytes[1..3].try_into().unwrap()) as usize;
                let mut keys = Vec::with_capacity(count);
                let mut at = 3;
                for _ in 0..count {
                    keys.push(i64::from_le_bytes(bytes[at..at + 8].try_into().unwrap()));
                    at += 8;
                }
                let mut children = Vec::with_capacity(count + 1);
                for _ in 0..=count {
                    children.push(u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()));
                    at += 4;
                }
                Node::Internal { keys, children }
            }
            t => panic!("unknown node tag {t}"),
        }
    }

    /// Entry/key count.
    pub fn len(&self) -> usize {
        match self {
            Node::Leaf { entries, .. } => entries.len(),
            Node::Internal { keys, .. } => keys.len(),
        }
    }

    /// True when the node holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tq_pagestore::{FileId, PageId};

    fn rid(n: u32) -> Rid {
        Rid::new(
            PageId {
                file: FileId(3),
                page_no: n,
            },
            (n % 5) as u16,
        )
    }

    #[test]
    fn leaf_round_trip() {
        let node = Node::Leaf {
            entries: (0..LEAF_CAPACITY as i64)
                .map(|i| (i * 3, rid(i as u32)))
                .collect(),
            next: 42,
        };
        let bytes = node.encode();
        assert!(bytes.len() < 4080, "full leaf must fit a page");
        assert_eq!(Node::decode(&bytes), node);
    }

    #[test]
    fn internal_round_trip() {
        let node = Node::Internal {
            keys: (0..INTERNAL_CAPACITY as i64).collect(),
            children: (0..=INTERNAL_CAPACITY as u32).collect(),
        };
        let bytes = node.encode();
        assert!(bytes.len() < 4080, "full internal node must fit a page");
        assert_eq!(Node::decode(&bytes), node);
    }

    #[test]
    fn empty_leaf() {
        let node = Node::Leaf {
            entries: vec![],
            next: NO_LEAF,
        };
        assert!(node.is_empty());
        assert_eq!(Node::decode(&node.encode()), node);
    }

    #[test]
    #[should_panic(expected = "internal node shape")]
    fn malformed_internal_panics() {
        Node::Internal {
            keys: vec![1, 2],
            children: vec![0, 1],
        }
        .encode();
    }
}
