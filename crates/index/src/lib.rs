//! # tq-index — B+-tree indexes over object collections
//!
//! O2-style value indexes: a B+-tree mapping an integer key attribute
//! to the [`Rid`](tq_objstore::Rid)s of the objects carrying that key.
//! Index nodes live in their own page file and are read **through the
//! same [`StorageStack`](tq_pagestore::StorageStack)** as data pages,
//! so index I/O shows up in the paper's counters (the Figure 6 effect:
//! above a selectivity threshold, an unclustered index scan reads
//! *more* pages than a full scan, because it reads the whole collection
//! *and* the index).
//!
//! An index is *clustered* when key order matches the physical order of
//! the indexed objects (the paper's §5 join indexes on `mrn`/`upin`,
//! which equal creation order) and *unclustered* otherwise (the §4.2
//! index on the random key `num`). Clustering is a property of the
//! data, not the tree: the flag is declared by the creator and consumed
//! by the query planner.
//!
//! The leaves store only object identifiers, "i.e., no object
//! properties" (§5), exactly like the paper's indexes.

pub mod node;
pub mod tree;

pub use tree::{BTreeIndex, IndexCursor};

#[cfg(test)]
mod thread_safety {
    use super::*;

    /// Compile-time proof that indexes can be cloned onto worker
    /// threads alongside their store.
    #[test]
    fn btree_index_is_send_and_sync() {
        fn assert_send<T: Send>() {}
        fn assert_sync<T: Sync>() {}
        assert_send::<BTreeIndex>();
        assert_sync::<BTreeIndex>();
    }
}
