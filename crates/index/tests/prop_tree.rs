//! Randomized model tests: the B+-tree against a `BTreeMap` reference
//! model. Deterministically seeded.

use std::collections::BTreeMap;
use tq_index::BTreeIndex;
use tq_objstore::Rid;
use tq_pagestore::{CacheConfig, CostModel, FileId, PageId, StorageStack};
use tq_simrng::SimRng;

fn stack() -> StorageStack {
    StorageStack::new(CostModel::free(), CacheConfig::default())
}

fn rid(n: u32) -> Rid {
    Rid::new(
        PageId {
            file: FileId(0),
            page_no: n,
        },
        0,
    )
}

fn model_range(model: &BTreeMap<i64, Vec<u32>>, lo: i64, hi: i64) -> Vec<(i64, u32)> {
    model
        .range(lo..=hi)
        .flat_map(|(&k, v)| v.iter().map(move |&n| (k, n)))
        .collect()
}

/// Incremental inserts agree with a BTreeMap on every range query.
#[test]
fn inserts_match_model() {
    for case in 0..64u64 {
        let mut rng = SimRng::seed_from_u64(0x7EE0_0000 + case);
        let keys: Vec<i64> = (0..1 + rng.index(599))
            .map(|_| rng.range_i64(-50, 49))
            .collect();
        let ranges: Vec<(i64, i64)> = (0..1 + rng.index(9))
            .map(|_| (rng.range_i64(-60, 59), rng.range_i64(-60, 59)))
            .collect();
        let mut s = stack();
        let mut tree = BTreeIndex::new_empty(&mut s, 1, "t", false);
        let mut model: BTreeMap<i64, Vec<u32>> = BTreeMap::new();
        for (i, &k) in keys.iter().enumerate() {
            tree.insert(&mut s, k, rid(i as u32));
            model.entry(k).or_default().push(i as u32);
        }
        assert_eq!(tree.entry_count(), keys.len() as u64);
        for (a, b) in ranges {
            let (lo, hi) = (a.min(b), a.max(b));
            let got: Vec<(i64, u32)> = tree
                .range(&mut s, lo, hi)
                .collect_all(&mut s)
                .into_iter()
                .map(|(k, r)| (k, r.page.page_no))
                .collect();
            let mut want = model_range(&model, lo, hi);
            // The tree may return equal keys in any insertion order.
            let mut got_sorted = got.clone();
            got_sorted.sort_unstable();
            want.sort_unstable();
            assert_eq!(got_sorted, want);
            // But keys themselves must be ascending.
            assert!(got.windows(2).all(|w| w[0].0 <= w[1].0));
        }
    }
}

/// Random interleaving of inserts and removes agrees with the model.
#[test]
fn removes_match_model() {
    for case in 0..64u64 {
        let mut rng = SimRng::seed_from_u64(0x4E30_0000 + case);
        let ops: Vec<(bool, i64, u32)> = (0..1 + rng.index(399))
            .map(|_| (rng.bool(), rng.range_i64(-30, 29), rng.range_u32(0, 49)))
            .collect();
        let mut s = stack();
        let mut tree = BTreeIndex::new_empty(&mut s, 1, "t", false);
        let mut model: Vec<(i64, u32)> = Vec::new();
        for (is_insert, k, n) in ops {
            if is_insert {
                tree.insert(&mut s, k, rid(n));
                model.push((k, n));
            } else {
                let expect = model.iter().position(|&(mk, mn)| mk == k && mn == n);
                let got = tree.remove(&mut s, k, rid(n));
                assert_eq!(got, expect.is_some(), "remove ({k},{n})");
                if let Some(at) = expect {
                    model.remove(at);
                }
            }
            assert_eq!(tree.entry_count() as usize, model.len());
        }
        let mut got: Vec<(i64, u32)> = tree
            .scan_all(&mut s)
            .collect_all(&mut s)
            .into_iter()
            .map(|(k, r)| (k, r.page.page_no))
            .collect();
        got.sort_unstable();
        model.sort_unstable();
        assert_eq!(got, model);
    }
}

/// Bulk build equals incremental insert of the same entries.
#[test]
fn bulk_equals_incremental() {
    for case in 0..64u64 {
        let mut rng = SimRng::seed_from_u64(0xB01C_0000 + case);
        let mut keys: Vec<i64> = (0..1 + rng.index(799))
            .map(|_| rng.range_i64(-1000, 999))
            .collect();
        let mut s = stack();
        let mut entries: Vec<(i64, Rid)> = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| (k, rid(i as u32)))
            .collect();
        entries.sort_by_key(|&(k, _)| k);
        let bulk = BTreeIndex::bulk_build(&mut s, 1, "b", false, &entries);
        let mut inc = BTreeIndex::new_empty(&mut s, 2, "i", false);
        keys.sort_unstable();
        for &k in keys.iter() {
            inc.insert(&mut s, k, rid(0));
        }
        let bulk_keys: Vec<i64> = bulk
            .scan_all(&mut s)
            .collect_all(&mut s)
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        let inc_keys: Vec<i64> = inc
            .scan_all(&mut s)
            .collect_all(&mut s)
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        assert_eq!(bulk_keys, inc_keys);
    }
}
