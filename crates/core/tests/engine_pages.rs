//! Regression: the engine's per-collection page counts under shared
//! files.
//!
//! `Engine::data_pages` used to report the whole data *file's* length
//! as a collection's scan pages. Under composition clustering both
//! classes live in one file, so the planner believed a scan of the
//! (small) parent collection cost as much as scanning every child too
//! — inflating both sides of every `choose_join` estimate. The count
//! now comes from the catalog: the distinct pages actually holding the
//! collection's members.

use tq_index::BTreeIndex;
use tq_objstore::{AttrType, ClassId, ObjectStore, Rid, Schema, SetValue, Value};
use tq_pagestore::{CacheConfig, CostModel, StorageStack};
use tq_query::engine::Engine;
use tq_query::{ResultMode, TreeJoinSpec};

/// Builds a composition-clustered store: each parent is appended
/// immediately followed by its (padded, page-filling) children, all in
/// one shared file — parents end up on a small fraction of the pages.
fn composition_engine(parents: usize, fanout: usize) -> (Engine, Vec<Rid>, Vec<Rid>) {
    let mut schema = Schema::new();
    let parent = schema.add_class(
        "P",
        vec![("k", AttrType::Int), ("kids", AttrType::SetRef(ClassId(1)))],
    );
    let child = schema.add_class(
        "C",
        vec![
            ("k", AttrType::Int),
            ("pad", AttrType::Str),
            ("up", AttrType::Ref(parent)),
        ],
    );
    let stack = StorageStack::new(CostModel::sparc20(), CacheConfig::default());
    let mut store = ObjectStore::new(schema, stack);
    let file = store.create_file("objects");
    let pad = "x".repeat(200);
    let mut parent_rids = Vec::new();
    let mut child_rids = Vec::new();
    let mut next_child_key = 0i32;
    for i in 0..parents {
        let placeholder = SetValue::Inline(vec![Rid::nil(); fanout]);
        let prid = store.insert(
            file,
            parent,
            &[Value::Int(i as i32), Value::Set(placeholder)],
            true,
        );
        let mut kids = Vec::new();
        for _ in 0..fanout {
            let crid = store.insert(
                file,
                child,
                &[
                    Value::Int(next_child_key),
                    Value::Str(pad.clone()),
                    Value::Ref(prid),
                ],
                true,
            );
            next_child_key += 1;
            kids.push(crid);
            child_rids.push(crid);
        }
        store.update(
            prid,
            &[Value::Int(i as i32), Value::Set(SetValue::Inline(kids))],
        );
        parent_rids.push(prid);
    }
    store.create_collection("Ps", parent, &parent_rids);
    store.create_collection("Cs", child, &child_rids);
    let p_entries: Vec<(i64, Rid)> = parent_rids
        .iter()
        .enumerate()
        .map(|(i, &r)| (i as i64, r))
        .collect();
    let parent_index = BTreeIndex::bulk_build(store.stack_mut(), 1, "pi", true, &p_entries);
    let c_entries: Vec<(i64, Rid)> = child_rids
        .iter()
        .enumerate()
        .map(|(i, &r)| (i as i64, r))
        .collect();
    let child_index = BTreeIndex::bulk_build(store.stack_mut(), 2, "ci", false, &c_entries);
    let mut engine = Engine::new(store);
    engine.register_index(parent_index, parent, 0);
    engine.register_index(child_index, child, 0);
    (engine, parent_rids, child_rids)
}

fn distinct_pages(rids: &[Rid]) -> u64 {
    let mut pages: Vec<_> = rids.iter().map(|r| r.page).collect();
    pages.sort_unstable();
    pages.dedup();
    pages.len() as u64
}

#[test]
fn composition_join_profile_counts_each_collections_own_pages() {
    let (mut engine, parent_rids, child_rids) = composition_engine(24, 40);
    let spec = TreeJoinSpec {
        parents: "Ps".into(),
        children: "Cs".into(),
        parent_key: 0,
        parent_set: 1,
        child_key: 0,
        child_parent: 2,
        parent_project: 0,
        child_project: 0,
        parent_key_limit: 24,
        child_key_limit: 24 * 40,
        result_mode: ResultMode::Transient,
    };
    let profile = engine.profile_for(&spec).expect("profile");
    assert!(profile.composition, "the layout must read as composition");

    let file = parent_rids[0].page.file;
    let file_pages = engine.store().stack().disk().file_len(file) as u64;
    let parent_pages = distinct_pages(&parent_rids);
    let child_pages = distinct_pages(&child_rids);

    // The ground truth: the catalog-derived counts match the rids.
    assert_eq!(profile.parent_scan_pages, parent_pages);
    assert_eq!(profile.child_scan_pages, child_pages);

    // The regression: the parent side used to be charged the whole
    // shared file. With 40 padded children per parent, parents occupy
    // only a sliver of it.
    assert!(
        profile.parent_scan_pages < file_pages / 2,
        "parent scan {} pages must be far below the shared file's {}",
        profile.parent_scan_pages,
        file_pages
    );
    // And neither side exceeds the file it lives in.
    assert!(profile.child_scan_pages <= file_pages);
}

#[test]
fn class_clustered_profile_is_unchanged_by_the_fix() {
    // Separate files per class: the collection's own pages and its
    // file are the same thing (modulo fill slack), so the fix must not
    // move these numbers materially.
    use tq_workload::{build, BuildConfig, DbShape, Organization};
    use tq_workload::{patient_attr, provider_attr};
    let db = build(&BuildConfig::scaled(
        DbShape::Db2,
        Organization::ClassClustered,
        1000,
    ));
    let derby = db.derby.clone();
    let (upin, mrn) = (db.idx_provider_upin.clone(), db.idx_patient_mrn.clone());
    let mut engine = Engine::new(db.store);
    engine.register_index(upin, derby.provider, provider_attr::UPIN);
    engine.register_index(mrn, derby.patient, patient_attr::MRN);
    let spec = TreeJoinSpec {
        parents: "Providers".into(),
        children: "Patients".into(),
        parent_key: provider_attr::UPIN,
        parent_set: provider_attr::CLIENTS,
        child_key: patient_attr::MRN,
        child_parent: patient_attr::PCP,
        parent_project: provider_attr::NAME,
        child_project: patient_attr::AGE,
        parent_key_limit: 100,
        child_key_limit: 300,
        result_mode: ResultMode::Transient,
    };
    let profile = engine.profile_for(&spec).expect("profile");
    let disk = engine.store().stack().disk();
    let p_file = disk.file_len(disk.file_by_name("providers").unwrap()) as u64;
    let c_file = disk.file_len(disk.file_by_name("patients").unwrap()) as u64;
    assert!(profile.parent_scan_pages <= p_file);
    assert!(profile.child_scan_pages <= c_file);
    // Within a page of the file size: only trailing slack differs.
    assert!(p_file - profile.parent_scan_pages <= 1);
    assert!(c_file - profile.child_scan_pages <= 1);
}
