//! Integration: hybrid hashing — correctness and the no-swap property.

use tq_query::join::{run_join, JoinContext, JoinOptions};
use tq_query::{JoinAlgo, ResultMode, TreeJoinSpec};
use tq_workload::{build, patient_attr, provider_attr, BuildConfig, DbShape, Organization};

fn spec(db: &tq_workload::Database, pat: u32, prov: u32) -> TreeJoinSpec {
    TreeJoinSpec {
        parents: "Providers".into(),
        children: "Patients".into(),
        parent_key: provider_attr::UPIN,
        parent_set: provider_attr::CLIENTS,
        child_key: patient_attr::MRN,
        child_parent: patient_attr::PCP,
        parent_project: provider_attr::NAME,
        child_project: patient_attr::AGE,
        parent_key_limit: db.provider_selectivity_key(prov),
        child_key_limit: db.patient_selectivity_key(pat),
        result_mode: ResultMode::Transient,
    }
}

fn run(
    db: &mut tq_workload::Database,
    algo: JoinAlgo,
    s: &TreeJoinSpec,
    opts: &JoinOptions,
) -> (tq_query::JoinReport, f64) {
    let parent_index = db.idx_provider_upin.clone();
    let child_index = db.idx_patient_mrn.clone();
    let s = s.clone();
    let opts = *opts;
    db.measure_cold(move |db| {
        let mut ctx = JoinContext {
            store: &mut db.store,
            parent_index: &parent_index,
            child_index: &child_index,
        };
        run_join(algo, &mut ctx, &s, &opts, true)
    })
}

/// Hybrid and plain joins produce identical results in every cell of
/// the 1:3 database (the one whose tables outgrow memory).
#[test]
fn hybrid_matches_plain_results() {
    let mut db = build(&BuildConfig::scaled(
        DbShape::Db2,
        Organization::ClassClustered,
        500,
    ));
    let plain = JoinOptions::default();
    let hybrid = JoinOptions {
        hybrid_hashing: true,
        ..JoinOptions::default()
    };
    for algo in [JoinAlgo::Phj, JoinAlgo::Chj] {
        for (pat, prov) in [(10, 10), (90, 90), (10, 90)] {
            let s = spec(&db, pat, prov);
            let (mut a, _) = run(&mut db, algo, &s, &plain);
            let (mut b, _) = run(&mut db, algo, &s, &hybrid);
            let (pa, pb) = (a.pairs.take().unwrap(), b.pairs.take().unwrap());
            let mut pa = pa;
            let mut pb = pb;
            pa.sort_unstable();
            pb.sort_unstable();
            assert_eq!(pa, pb, "{algo:?} at ({pat},{prov})");
            assert_eq!(a.results, b.results);
        }
    }
}

/// When the plain table swaps, the hybrid variant partitions instead:
/// zero faults, bounded spill I/O, and a large speedup.
#[test]
fn hybrid_eliminates_swap() {
    // 1:3 at (90,90): the Figure 12 swap cell.
    let mut db = build(&BuildConfig::scaled(
        DbShape::Db2,
        Organization::ClassClustered,
        100,
    ));
    let s = spec(&db, 90, 90);
    let (plain_report, plain_secs) = run(&mut db, JoinAlgo::Phj, &s, &JoinOptions::default());
    assert!(
        plain_report.swap_faults > 0,
        "the cell must swap without hybrid hashing"
    );
    let hybrid = JoinOptions {
        hybrid_hashing: true,
        ..JoinOptions::default()
    };
    let (hybrid_report, hybrid_secs) = run(&mut db, JoinAlgo::Phj, &s, &hybrid);
    assert_eq!(hybrid_report.swap_faults, 0, "hybrid never faults");
    assert!(hybrid_report.partitions > 1);
    assert!(hybrid_report.spill_pages > 0);
    assert!(
        hybrid_secs < plain_secs / 2.0,
        "hybrid {hybrid_secs:.1}s vs plain {plain_secs:.1}s"
    );
}

/// Within budget, hybrid degenerates to one partition and costs about
/// the same as the plain join.
#[test]
fn hybrid_degenerates_gracefully_when_memory_suffices() {
    let mut db = build(&BuildConfig::scaled(
        DbShape::Db2,
        Organization::ClassClustered,
        500,
    ));
    let s = spec(&db, 10, 10);
    let hybrid = JoinOptions {
        hybrid_hashing: true,
        ..JoinOptions::default()
    };
    let (report, hybrid_secs) = run(&mut db, JoinAlgo::Phj, &s, &hybrid);
    assert_eq!(report.partitions, 1);
    assert_eq!(report.spill_pages, 0);
    let (_, plain_secs) = run(&mut db, JoinAlgo::Phj, &s, &JoinOptions::default());
    let ratio = hybrid_secs / plain_secs;
    assert!(
        (0.9..1.1).contains(&ratio),
        "one-partition hybrid should cost like plain ({ratio:.2}x)"
    );
}

/// Spill files are reclaimed after the join (no page leak across runs).
#[test]
fn spill_space_is_reclaimed() {
    let mut db = build(&BuildConfig::scaled(
        DbShape::Db2,
        Organization::ClassClustered,
        100,
    ));
    let s = spec(&db, 90, 90);
    let hybrid = JoinOptions {
        hybrid_hashing: true,
        ..JoinOptions::default()
    };
    let before = db.store.stack().disk().total_pages();
    let (report, _) = run(&mut db, JoinAlgo::Chj, &s, &hybrid);
    assert!(report.spill_pages > 0);
    let after = db.store.stack().disk().total_pages();
    assert_eq!(before, after, "spill pages must be truncated away");
}
