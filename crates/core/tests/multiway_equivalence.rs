//! Integration: every enumerable physical plan for an N-way binding
//! chain — and every planner policy's pick — returns the same result
//! multiset as a naive nested-loop oracle that walks the raw
//! collections in binding order.

use tq_index::BTreeIndex;
use tq_objstore::{ClassId, Rid};
use tq_query::estimator::ChainFacts;
use tq_query::oql::{compile_str, CompiledQuery};
use tq_query::plan::{enumerate_plans, ChainStep};
use tq_query::{plan_chain, run_chain, ChainSpec, PlannerPolicy};
use tq_workload::{
    build, chain3_query_text, chain4_query_text, join_query_text, patient_attr, provider_attr,
    ref_chain_query_text, BuildConfig, Database, DbShape, Organization,
};

fn compile_chain(db: &Database, text: &str) -> ChainSpec {
    match compile_str(&db.store, text).expect("compiles") {
        CompiledQuery::Chain(spec) => spec,
        other => panic!("expected a chain, got {other:?}"),
    }
}

/// The workload's fixed index set, by (class, attribute).
fn index_lookup(db: &Database, class: ClassId, attr: usize) -> Option<&BTreeIndex> {
    if class == db.derby.provider && attr == provider_attr::UPIN {
        Some(&db.idx_provider_upin)
    } else if class == db.derby.patient && attr == patient_attr::MRN {
        Some(&db.idx_patient_mrn)
    } else if class == db.derby.patient && attr == patient_attr::NUM {
        Some(&db.idx_patient_num)
    } else {
        None
    }
}

fn indexes_for(db: &Database, spec: &ChainSpec) -> Vec<Option<BTreeIndex>> {
    spec.steps
        .iter()
        .map(|s| {
            let class = db.store.collection(&s.collection).class;
            s.preds
                .first()
                .and_then(|p| index_lookup(db, class, p.attr))
                .cloned()
        })
        .collect()
}

fn facts_for(db: &Database, spec: &ChainSpec) -> ChainFacts {
    ChainFacts::derive(&db.store, spec, |class, attr| {
        index_lookup(db, class, attr).map(|i| i.clustered)
    })
}

fn passes(db: &mut Database, rid: Rid, step: &ChainStep) -> bool {
    db.store.with_fetched(rid, |_store, o| {
        step.preds
            .iter()
            .all(|p| p.eval(o.object().values[p.attr].as_int().unwrap() as i64))
    })
}

/// Naive nested-loop evaluation in binding order: no planner, no
/// operators, just raw fetches along the traversed attributes.
fn oracle(db: &mut Database, spec: &ChainSpec) -> Vec<Vec<i64>> {
    let mut cursor = db.store.collection_cursor(&spec.steps[0].collection);
    let mut roots = Vec::new();
    while let Some(rid) = cursor.next(db.store.stack_mut()) {
        roots.push(rid);
    }
    let mut rows: Vec<Vec<Rid>> = Vec::new();
    for rid in roots {
        if passes(db, rid, &spec.steps[0]) {
            rows.push(vec![rid]);
        }
    }
    for i in 1..spec.len() {
        let edge = &spec.edges[i - 1];
        let mut next = Vec::new();
        for row in rows {
            let prev = row[i - 1];
            let candidates: Vec<Rid> = if edge.child == i {
                let attr = edge.set_attr.expect("set traversal");
                db.store.with_fetched(prev, |store, parent| {
                    let set = parent.object().values[attr].as_set().unwrap();
                    let mut members = store.set_cursor(set);
                    let mut out = Vec::new();
                    while let Some(r) = members.next(store.stack_mut()) {
                        out.push(r);
                    }
                    out
                })
            } else {
                let attr = edge.ref_attr.expect("reference traversal");
                db.store.with_fetched(prev, |_store, child| {
                    child.object().values[attr]
                        .as_ref_rid()
                        .into_iter()
                        .collect()
                })
            };
            for c in candidates {
                if passes(db, c, &spec.steps[i]) {
                    let mut nr = row.clone();
                    nr.push(c);
                    next.push(nr);
                }
            }
        }
        rows = next;
    }
    rows.into_iter()
        .map(|row| {
            spec.projection
                .iter()
                .map(|&(s, attr)| {
                    db.store.with_fetched(row[s], |_store, o| {
                        o.object().values[attr].as_int().unwrap() as i64
                    })
                })
                .collect()
        })
        .collect()
}

fn run_plan(
    db: &mut Database,
    spec: &ChainSpec,
    plan: &tq_query::LogicalPlan,
    indexes: &[Option<BTreeIndex>],
) -> Vec<Vec<i64>> {
    let (report, _) =
        db.measure_cold(|db| run_chain(&mut db.store, spec, plan, indexes, true, None));
    let mut got = report.rows.expect("collected");
    assert_eq!(got.len() as u64, report.results);
    got.sort_unstable();
    got
}

#[test]
fn query_texts_compile_to_their_shapes() {
    let db = build(&BuildConfig::scaled(
        DbShape::Db2,
        Organization::ClassClustered,
        5_000,
    ));
    let q = compile_str(&db.store, &join_query_text(&db, 10, 50)).unwrap();
    assert!(matches!(q, CompiledQuery::TreeJoin(_)));
    assert_eq!(compile_chain(&db, &chain3_query_text(&db, 10, 50)).len(), 3);
    assert_eq!(compile_chain(&db, &chain4_query_text(&db, 10, 50)).len(), 4);
    assert_eq!(compile_chain(&db, &ref_chain_query_text(&db, 10)).len(), 2);
}

#[test]
fn every_plan_and_policy_matches_the_oracle() {
    // Db1's overflow client sets and Db2's inline ones both matter;
    // vary the organization with them.
    for (shape, scale, org) in [
        (DbShape::Db1, 500, Organization::ClassClustered),
        (DbShape::Db2, 2_000, Organization::Randomized),
    ] {
        let mut db = build(&BuildConfig::scaled(shape, org, scale));
        let texts = [
            chain3_query_text(&db, 30, 60),
            ref_chain_query_text(&db, 40),
        ];
        for text in texts {
            let spec = compile_chain(&db, &text);
            let mut want = oracle(&mut db, &spec);
            want.sort_unstable();
            assert!(!want.is_empty(), "{shape:?}: `{text}` selects nothing");
            let indexes = indexes_for(&db, &spec);
            let facts = facts_for(&db, &spec);
            let plans = enumerate_plans(&spec, &facts.has_index());
            assert!(plans.len() > 2, "{shape:?}: `{text}`");
            for plan in &plans {
                let got = run_plan(&mut db, &spec, plan, &indexes);
                assert_eq!(got, want, "{shape:?}: {}", plan.describe(&spec));
            }
            // The policies choose from the same enumeration, so their
            // picks are already verified; pin that membership.
            let model = db.store.stack().model().clone();
            for policy in PlannerPolicy::all() {
                let choice = plan_chain(policy, &spec, &facts, &model);
                assert!(
                    plans.contains(&choice.plan),
                    "{policy:?} chose an unenumerated plan: {}",
                    choice.plan.describe(&spec)
                );
            }
        }
    }
}

#[test]
fn depth4_policies_match_the_oracle() {
    let mut db = build(&BuildConfig::scaled(
        DbShape::Db2,
        Organization::ClassClustered,
        2_000,
    ));
    let spec = compile_chain(&db, &chain4_query_text(&db, 50, 50));
    let mut want = oracle(&mut db, &spec);
    want.sort_unstable();
    assert!(!want.is_empty());
    let indexes = indexes_for(&db, &spec);
    let facts = facts_for(&db, &spec);
    let model = db.store.stack().model().clone();
    for policy in PlannerPolicy::all() {
        let choice = plan_chain(policy, &spec, &facts, &model);
        let got = run_plan(&mut db, &spec, &choice.plan, &indexes);
        assert_eq!(got, want, "{policy:?}: {}", choice.plan.describe(&spec));
    }
}
