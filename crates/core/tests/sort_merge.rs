//! Integration: the resurrected sort-merge pointer join — correct, and
//! worse than hashing where the paper said it was.

use tq_query::join::{run_join, smj, JoinContext, JoinOptions};
use tq_query::{JoinAlgo, ResultMode, TreeJoinSpec};
use tq_workload::{build, patient_attr, provider_attr, BuildConfig, DbShape, Organization};

fn spec(db: &tq_workload::Database, pat: u32, prov: u32) -> TreeJoinSpec {
    TreeJoinSpec {
        parents: "Providers".into(),
        children: "Patients".into(),
        parent_key: provider_attr::UPIN,
        parent_set: provider_attr::CLIENTS,
        child_key: patient_attr::MRN,
        child_parent: patient_attr::PCP,
        parent_project: provider_attr::NAME,
        child_project: patient_attr::AGE,
        parent_key_limit: db.provider_selectivity_key(prov),
        child_key_limit: db.patient_selectivity_key(pat),
        result_mode: ResultMode::Transient,
    }
}

fn run_smj(db: &mut tq_workload::Database, s: &TreeJoinSpec) -> (tq_query::JoinReport, f64) {
    let parent_index = db.idx_provider_upin.clone();
    let child_index = db.idx_patient_mrn.clone();
    let s = s.clone();
    db.measure_cold(move |db| {
        let mut ctx = JoinContext {
            store: &mut db.store,
            parent_index: &parent_index,
            child_index: &child_index,
        };
        smj::run(&mut ctx, &s, &JoinOptions::default(), true)
    })
}

fn run_algo(
    db: &mut tq_workload::Database,
    algo: JoinAlgo,
    s: &TreeJoinSpec,
) -> (tq_query::JoinReport, f64) {
    let parent_index = db.idx_provider_upin.clone();
    let child_index = db.idx_patient_mrn.clone();
    let s = s.clone();
    db.measure_cold(move |db| {
        let mut ctx = JoinContext {
            store: &mut db.store,
            parent_index: &parent_index,
            child_index: &child_index,
        };
        run_join(algo, &mut ctx, &s, &JoinOptions::default(), true)
    })
}

#[test]
fn smj_matches_hash_join_results() {
    for org in Organization::all() {
        let mut db = build(&BuildConfig::scaled(DbShape::Db2, org, 1000));
        for (pat, prov) in [(10, 90), (90, 10), (50, 50)] {
            let s = spec(&db, pat, prov);
            let (smj_report, _) = run_smj(&mut db, &s);
            let (phj_report, _) = run_algo(&mut db, JoinAlgo::Phj, &s);
            let mut a = smj_report.pairs.unwrap();
            let mut b = phj_report.pairs.unwrap();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "{org:?} ({pat},{prov})");
        }
    }
}

/// The paper's reason for dropping sort-based joins: on the cells they
/// measured (tables within memory), hashing wins.
#[test]
fn smj_loses_to_hashing_when_memory_suffices() {
    let mut db = build(&BuildConfig::scaled(
        DbShape::Db2,
        Organization::ClassClustered,
        200,
    ));
    let s = spec(&db, 90, 10);
    let (smj_report, smj_secs) = run_smj(&mut db, &s);
    let (phj_report, phj_secs) = run_algo(&mut db, JoinAlgo::Phj, &s);
    assert_eq!(phj_report.swap_faults, 0, "a no-swap cell");
    assert!(
        smj_secs > phj_secs,
        "SMJ {smj_secs:.2}s must lose to PHJ {phj_secs:.2}s (the paper dropped it)"
    );
    // The child sort spilled: its input exceeds the scaled budget.
    assert!(smj_report.spill_pages > 0);
    assert_eq!(smj_report.swap_faults, 0, "merge join never pages a table");
}

/// But like hybrid hashing, SMJ is immune to the (90,90) swap collapse
/// — the branch the authors dropped would have won those cells too.
#[test]
fn smj_survives_the_swap_cell() {
    let mut db = build(&BuildConfig::scaled(
        DbShape::Db2,
        Organization::ClassClustered,
        100,
    ));
    let s = spec(&db, 90, 90);
    let (phj_report, phj_secs) = run_algo(&mut db, JoinAlgo::Phj, &s);
    assert!(phj_report.swap_faults > 0);
    let (smj_report, smj_secs) = run_smj(&mut db, &s);
    assert_eq!(smj_report.results, phj_report.results);
    assert!(
        smj_secs < phj_secs / 2.0,
        "SMJ {smj_secs:.1}s vs swapping PHJ {phj_secs:.1}s"
    );
}
