//! Integration: the engine façade — OQL in, planned execution out.

use tq_query::engine::{Engine, EngineError, QueryOutcome};
use tq_query::estimator::SelectPath;
use tq_query::planner::Strategy;
use tq_query::JoinAlgo;
use tq_workload::{
    build, patient_attr, provider_attr, BuildConfig, Database, DbShape, Organization,
};

/// Wraps a workload database into an engine with its three indexes
/// registered.
fn engine_for(db: Database) -> Engine {
    let Database {
        store,
        derby,
        idx_provider_upin,
        idx_patient_mrn,
        idx_patient_num,
        ..
    } = db;
    let mut engine = Engine::new(store);
    engine.register_index(idx_provider_upin, derby.provider, provider_attr::UPIN);
    engine.register_index(idx_patient_mrn, derby.patient, patient_attr::MRN);
    engine.register_index(idx_patient_num, derby.patient, patient_attr::NUM);
    engine
}

fn class_db(scale: u32) -> Engine {
    engine_for(build(&BuildConfig::scaled(
        DbShape::Db2,
        Organization::ClassClustered,
        scale,
    )))
}

#[test]
fn selection_plans_the_sorted_index_scan() {
    let mut e = class_db(500);
    let n = e.store().collection("Patients").run.count;
    let out = e
        .run(
            &format!("select pa.age from pa in Patients where pa.num < {}", n / 2),
            Strategy::CostBased,
        )
        .unwrap();
    let QueryOutcome::Selection { path, report, secs } = out else {
        panic!("expected a selection");
    };
    assert_eq!(path, SelectPath::SortedIndexScan, "the Figure 7 lesson");
    assert!(secs > 0.0);
    let frac = report.selected as f64 / n as f64;
    assert!((0.4..0.6).contains(&frac));
}

#[test]
fn conjunctive_selection_promotes_the_indexed_predicate() {
    let mut e = class_db(500);
    let n = e.store().collection("Patients").run.count as i64;
    // `age` has no index; `num` does. The compiler put `age` primary
    // (first in the text); the engine must promote `num`.
    let out = e
        .run(
            &format!(
                "select pa.mrn from pa in Patients where pa.age < 50 and pa.num < {}",
                n / 10
            ),
            Strategy::CostBased,
        )
        .unwrap();
    let QueryOutcome::Selection { path, report, .. } = out else {
        panic!("expected a selection");
    };
    assert_ne!(path, SelectPath::SeqScan, "the num index must be used");
    // Both predicates applied: roughly (50/97) * (1/10) of patients.
    let frac = report.selected as f64 / n as f64;
    assert!(
        (0.02..0.09).contains(&frac),
        "conjunction must filter: {frac}"
    );
}

#[test]
fn conjunctive_results_match_across_strategies() {
    let mut e = class_db(500);
    let n = e.store().collection("Patients").run.count as i64;
    let q = format!(
        "select pa.mrn from pa in Patients where pa.num < {} and pa.age >= 30",
        n / 3
    );
    let cost = e.run(&q, Strategy::CostBased).unwrap().results();
    let heuristic = e.run(&q, Strategy::Heuristic).unwrap().results();
    assert_eq!(cost, heuristic, "plans must not change answers");
    assert!(cost > 0);
}

#[test]
fn join_is_planned_per_organization() {
    // Class clustering at low selectivity: a hash join.
    let mut e = class_db(500);
    let (p, c) = {
        let p = e.store().collection("Providers").run.count as i64;
        let c = e.store().collection("Patients").run.count as i64;
        (p, c)
    };
    let q = format!(
        "select [p.name, pa.age] from p in Providers, pa in p.clients \
         where pa.mrn < {} and p.upin < {}",
        c / 10,
        p / 10
    );
    let out = e.run(&q, Strategy::CostBased).unwrap();
    let QueryOutcome::Join { algo, report, .. } = out else {
        panic!("expected a join");
    };
    assert!(matches!(algo, JoinAlgo::Phj | JoinAlgo::Chj), "{algo:?}");
    assert!(report.results > 0);

    // Composition clustering: the engine detects adjacency and navigates.
    let mut e = engine_for(build(&BuildConfig::scaled(
        DbShape::Db2,
        Organization::Composition,
        500,
    )));
    let out = e.run(&q, Strategy::CostBased).unwrap();
    let QueryOutcome::Join { algo, .. } = out else {
        panic!("expected a join");
    };
    assert_eq!(algo, JoinAlgo::Nl, "composition detected -> navigation");
}

#[test]
fn planned_joins_and_selections_return_correct_counts() {
    let mut e = class_db(1000);
    let (p, c) = {
        let p = e.store().collection("Providers").run.count as i64;
        let c = e.store().collection("Patients").run.count as i64;
        (p, c)
    };
    let q = format!(
        "select [p.name, pa.age] from p in Providers, pa in p.clients \
         where pa.mrn < {} and p.upin < {}",
        c / 2,
        p / 2
    );
    let cost = e.run(&q, Strategy::CostBased).unwrap().results();
    let heur = e.run(&q, Strategy::Heuristic).unwrap().results();
    assert_eq!(cost, heur);
    let expect = (c as f64 / 2.0) * 0.5;
    let ratio = cost as f64 / expect;
    assert!((0.8..1.25).contains(&ratio), "{cost} vs ~{expect}");
}

#[test]
fn missing_index_is_reported() {
    let db = build(&BuildConfig::scaled(
        DbShape::Db2,
        Organization::ClassClustered,
        1000,
    ));
    let derby = db.derby.clone();
    let upin_idx = db.idx_provider_upin.clone();
    let mut engine = Engine::new(db.store);
    engine.register_index(upin_idx, derby.provider, provider_attr::UPIN);
    let err = engine
        .run(
            "select [p.name, pa.age] from p in Providers, pa in p.clients \
             where pa.mrn < 10 and p.upin < 10",
            Strategy::CostBased,
        )
        .unwrap_err();
    assert!(matches!(err, EngineError::MissingIndex(_)), "{err}");
    // Compile errors pass through too.
    let err = engine
        .run(
            "select x.a from x in Nowhere where x.a < 1",
            Strategy::CostBased,
        )
        .unwrap_err();
    assert!(matches!(err, EngineError::Compile(_)), "{err}");
}
