//! Integration: the four join algorithms agree on real (scaled)
//! databases, across all three physical organizations.

use tq_query::join::{run_join, JoinContext, JoinOptions};
use tq_query::{HashKeyMode, JoinAlgo, ResultMode, TreeJoinSpec};
use tq_workload::{build, BuildConfig, DbShape, Organization};
use tq_workload::{patient_attr, provider_attr};

fn join_spec(db: &tq_workload::Database, pat_pct: u32, prov_pct: u32) -> TreeJoinSpec {
    TreeJoinSpec {
        parents: "Providers".into(),
        children: "Patients".into(),
        parent_key: provider_attr::UPIN,
        parent_set: provider_attr::CLIENTS,
        child_key: patient_attr::MRN,
        child_parent: patient_attr::PCP,
        parent_project: provider_attr::NAME,
        child_project: patient_attr::AGE,
        parent_key_limit: db.provider_selectivity_key(prov_pct),
        child_key_limit: db.patient_selectivity_key(pat_pct),
        result_mode: ResultMode::Transient,
    }
}

fn run(db: &mut tq_workload::Database, algo: JoinAlgo, spec: &TreeJoinSpec) -> Vec<(i64, i64)> {
    let idx_parent = db.idx_provider_upin.clone();
    let idx_child = db.idx_patient_mrn.clone();
    let (report, _) = db.measure_cold(|db| {
        let mut ctx = JoinContext {
            store: &mut db.store,
            parent_index: &idx_parent,
            child_index: &idx_child,
        };
        run_join(algo, &mut ctx, spec, &JoinOptions::default(), true)
    });
    let mut pairs = report.pairs.expect("collected");
    assert_eq!(pairs.len() as u64, report.results);
    pairs.sort_unstable();
    pairs
}

#[test]
fn all_algorithms_agree_everywhere() {
    for org in Organization::all() {
        // Scaled DB2: 1000 providers, ~3000 patients.
        let mut db = build(&BuildConfig::scaled(DbShape::Db2, org, 1000));
        for (pat, prov) in [(10, 10), (10, 90), (90, 10), (90, 90)] {
            let spec = join_spec(&db, pat, prov);
            let nl = run(&mut db, JoinAlgo::Nl, &spec);
            let nojoin = run(&mut db, JoinAlgo::Nojoin, &spec);
            let phj = run(&mut db, JoinAlgo::Phj, &spec);
            let chj = run(&mut db, JoinAlgo::Chj, &spec);
            assert!(
                !nl.is_empty(),
                "({pat},{prov}) under {org:?} joined nothing"
            );
            assert_eq!(nl, nojoin, "NL vs NOJOIN at ({pat},{prov}) under {org:?}");
            assert_eq!(nl, phj, "NL vs PHJ at ({pat},{prov}) under {org:?}");
            assert_eq!(nl, chj, "NL vs CHJ at ({pat},{prov}) under {org:?}");
        }
    }
}

#[test]
fn result_cardinality_tracks_selectivities() {
    // Scale 100 (~25k patients), not smaller: the (10,10) cell's
    // cardinality is a sum of ~n/100 near-Bernoulli terms, so its
    // relative standard deviation is ~sqrt(100/n) — at scale 500 that
    // is ~13% and the 0.8..1.25 band is barely 2 sigma wide, making
    // the test a coin flip over the RNG stream. At this scale the
    // band is >3 sigma.
    let mut db = build(&BuildConfig::scaled(
        DbShape::Db2,
        Organization::ClassClustered,
        100,
    ));
    let n = db.patient_count as f64;
    for (pat, prov) in [(10, 10), (50, 50), (90, 90), (10, 90)] {
        let spec = join_spec(&db, pat, prov);
        let got = run(&mut db, JoinAlgo::Phj, &spec).len() as f64;
        let expect = n * (pat as f64 / 100.0) * (prov as f64 / 100.0);
        let ratio = got / expect;
        assert!(
            (0.8..1.25).contains(&ratio),
            "({pat},{prov}): got {got}, expected ~{expect}"
        );
    }
}

#[test]
fn results_against_a_brute_force_oracle() {
    // Independently recompute the join by walking the raw collections.
    let mut db = build(&BuildConfig::scaled(
        DbShape::Db2,
        Organization::Randomized,
        2000,
    ));
    let spec = join_spec(&db, 50, 50);
    let mut oracle: Vec<(i64, i64)> = Vec::new();
    let mut cursor = db.store.collection_cursor("Patients");
    let mut rids = Vec::new();
    while let Some(rid) = cursor.next(db.store.stack_mut()) {
        rids.push(rid);
    }
    for rid in rids {
        let pat = db.store.fetch(rid);
        let mrn = pat.object.values[patient_attr::MRN].as_int().unwrap() as i64;
        let pcp = pat.object.values[patient_attr::PCP].as_ref_rid().unwrap();
        let prov = db.store.fetch(pcp);
        let upin = prov.object.values[provider_attr::UPIN].as_int().unwrap() as i64;
        if mrn < spec.child_key_limit && upin < spec.parent_key_limit {
            oracle.push((upin, mrn));
        }
        db.store.unref(prov.rid);
        db.store.unref(pat.rid);
    }
    oracle.sort_unstable();
    for algo in JoinAlgo::all() {
        assert_eq!(run(&mut db, algo, &spec), oracle, "{algo:?} vs oracle");
    }
}

#[test]
fn hashing_handles_costs_more_than_hashing_rids() {
    // §4.1: "Hash table: Rids or Handles?"
    let mut db = build(&BuildConfig::scaled(
        DbShape::Db1,
        Organization::ClassClustered,
        100,
    ));
    let spec = join_spec(&db, 90, 90);
    let idx_parent = db.idx_provider_upin.clone();
    let idx_child = db.idx_patient_mrn.clone();
    let mut time_with = |mode: HashKeyMode| {
        let opts = JoinOptions {
            hash_key: mode,
            ..JoinOptions::default()
        };
        let (report, secs) = db.measure_cold(|db| {
            let mut ctx = JoinContext {
                store: &mut db.store,
                parent_index: &idx_parent,
                child_index: &idx_child,
            };
            run_join(JoinAlgo::Chj, &mut ctx, &spec, &opts, false)
        });
        (report, secs)
    };
    let (rid_report, rid_secs) = time_with(HashKeyMode::Rid);
    let (handle_report, handle_secs) = time_with(HashKeyMode::Handle);
    assert_eq!(rid_report.results, handle_report.results);
    assert!(
        handle_secs > rid_secs,
        "handles {handle_secs:.2}s must cost more than rids {rid_secs:.2}s"
    );
    assert!(handle_report.hash_table_bytes > rid_report.hash_table_bytes);
}

#[test]
fn unsorted_index_rids_hurt_when_the_index_is_unclustered() {
    // Composition clustering leaves the mrn index unclustered; without
    // rid sorting the child-side scan turns into random I/O. (The
    // effect needs more interleaved groups than cache pages, so use
    // the 1:3 database: mrn order hops between ~10k provider groups.)
    let mut db = build(&BuildConfig::scaled(
        DbShape::Db2,
        Organization::Composition,
        100,
    ));
    let spec = join_spec(&db, 90, 10);
    let idx_parent = db.idx_provider_upin.clone();
    let idx_child = db.idx_patient_mrn.clone();
    let mut time_with = |sort: bool| {
        let opts = JoinOptions {
            sort_index_rids: sort,
            ..JoinOptions::default()
        };
        let (_, secs) = db.measure_cold(|db| {
            let mut ctx = JoinContext {
                store: &mut db.store,
                parent_index: &idx_parent,
                child_index: &idx_child,
            };
            run_join(JoinAlgo::Nojoin, &mut ctx, &spec, &opts, false)
        });
        secs
    };
    let sorted = time_with(true);
    let unsorted = time_with(false);
    assert!(
        unsorted > 1.3 * sorted,
        "unsorted {unsorted:.1}s vs sorted {sorted:.1}s"
    );
}

#[test]
fn oql_compiles_and_runs_the_paper_query() {
    use tq_query::oql::{compile_str, CompiledQuery};
    let mut db = build(&BuildConfig::scaled(
        DbShape::Db2,
        Organization::ClassClustered,
        1000,
    ));
    let k1 = db.patient_selectivity_key(50);
    let k2 = db.provider_selectivity_key(50);
    let text = format!(
        "select [p.name, pa.age] from p in Providers, pa in p.clients \
         where pa.mrn < {k1} and p.upin < {k2}"
    );
    let compiled = compile_str(&db.store, &text).expect("compiles");
    let CompiledQuery::TreeJoin(mut spec) = compiled else {
        panic!("expected a tree join");
    };
    spec.result_mode = ResultMode::Transient;
    // The compiled spec matches the hand-built one and runs.
    let hand = join_spec(&db, 50, 50);
    assert_eq!(spec.parent_key_limit, hand.parent_key_limit);
    assert_eq!(spec.child_key_limit, hand.child_key_limit);
    assert_eq!(spec.child_parent, hand.child_parent);
    let via_oql = run(&mut db, JoinAlgo::Phj, &spec);
    let via_hand = run(&mut db, JoinAlgo::Phj, &hand);
    assert_eq!(via_oql, via_hand);
}
