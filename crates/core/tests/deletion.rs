//! Integration: logical deletion — flagged objects vanish from every
//! access path while their physical slots stay resolvable.

use tq_query::join::{run_join, JoinContext, JoinOptions};
use tq_query::spec::{CmpOp, ResultMode, Selection};
use tq_query::{index_scan, seq_scan, sorted_index_scan, JoinAlgo, TreeJoinSpec};
use tq_workload::{build, patient_attr, provider_attr, BuildConfig, DbShape, Organization};

fn db() -> tq_workload::Database {
    build(&BuildConfig::scaled(
        DbShape::Db2,
        Organization::ClassClustered,
        1000,
    ))
}

fn delete_every_nth_patient(db: &mut tq_workload::Database, n: usize) -> u64 {
    let mut rids = Vec::new();
    let mut c = db.store.collection_cursor("Patients");
    while let Some(rid) = c.next(db.store.stack_mut()) {
        rids.push(rid);
    }
    let victims: Vec<_> = rids.iter().copied().step_by(n).collect();
    for rid in &victims {
        db.store.mark_deleted(*rid);
    }
    victims.len() as u64
}

#[test]
fn deleted_objects_vanish_from_all_selection_paths() {
    let mut d = db();
    let sel = Selection {
        collection: "Patients".into(),
        attr: patient_attr::NUM,
        cmp: CmpOp::Lt,
        residual: vec![],
        key: d.patient_count as i64, // everything qualifies
        project: patient_attr::AGE,
        result_mode: ResultMode::Transient,
    };
    let before = seq_scan(&mut d.store, &sel, false).selected;
    assert_eq!(before, d.patient_count);
    let deleted = delete_every_nth_patient(&mut d, 5);
    let idx = d.idx_patient_num.clone();
    let a = seq_scan(&mut d.store, &sel, false);
    let b = index_scan(&mut d.store, &idx, &sel, false);
    let c = sorted_index_scan(&mut d.store, &idx, &sel, false);
    assert_eq!(a.selected, d.patient_count - deleted);
    assert_eq!(b.selected, a.selected);
    assert_eq!(c.selected, a.selected);
    // The survivors' rows still scan (slots were not reused).
    assert_eq!(a.scanned, d.patient_count);
}

#[test]
fn deleted_objects_vanish_from_all_joins_consistently() {
    let mut d = db();
    let spec = TreeJoinSpec {
        parents: "Providers".into(),
        children: "Patients".into(),
        parent_key: provider_attr::UPIN,
        parent_set: provider_attr::CLIENTS,
        child_key: patient_attr::MRN,
        child_parent: patient_attr::PCP,
        parent_project: provider_attr::NAME,
        child_project: patient_attr::AGE,
        parent_key_limit: d.provider_count as i64,
        child_key_limit: d.patient_count as i64,
        result_mode: ResultMode::Transient,
    };
    let run = |d: &mut tq_workload::Database, algo: JoinAlgo| {
        let parent_index = d.idx_provider_upin.clone();
        let child_index = d.idx_patient_mrn.clone();
        let spec = spec.clone();
        let (r, _) = d.measure_cold(move |d| {
            let mut ctx = JoinContext {
                store: &mut d.store,
                parent_index: &parent_index,
                child_index: &child_index,
            };
            run_join(algo, &mut ctx, &spec, &JoinOptions::default(), true)
        });
        let mut pairs = r.pairs.unwrap();
        pairs.sort_unstable();
        pairs
    };
    let full = run(&mut d, JoinAlgo::Phj);
    let deleted = delete_every_nth_patient(&mut d, 7);
    let reference = run(&mut d, JoinAlgo::Phj);
    assert_eq!(reference.len() as u64, full.len() as u64 - deleted);
    for algo in [JoinAlgo::Nl, JoinAlgo::Nojoin, JoinAlgo::Chj] {
        assert_eq!(run(&mut d, algo), reference, "{algo:?} after deletions");
    }
    // Hybrid too.
    let parent_index = d.idx_provider_upin.clone();
    let child_index = d.idx_patient_mrn.clone();
    let spec2 = spec.clone();
    let (hy, _) = d.measure_cold(move |d| {
        let mut ctx = JoinContext {
            store: &mut d.store,
            parent_index: &parent_index,
            child_index: &child_index,
        };
        run_join(
            JoinAlgo::Phj,
            &mut ctx,
            &spec2,
            &JoinOptions {
                hybrid_hashing: true,
                ..JoinOptions::default()
            },
            true,
        )
    });
    let mut hy_pairs = hy.pairs.unwrap();
    hy_pairs.sort_unstable();
    assert_eq!(hy_pairs, reference);
}

#[test]
fn deleting_a_provider_hides_it_from_child_to_parent_navigation() {
    let mut d = db();
    // Delete provider 0; NOJOIN must drop its patients' tuples.
    let victim = {
        let mut c = d.store.collection_cursor("Providers");
        c.next(d.store.stack_mut()).unwrap()
    };
    d.store.mark_deleted(victim);
    let spec = TreeJoinSpec {
        parents: "Providers".into(),
        children: "Patients".into(),
        parent_key: provider_attr::UPIN,
        parent_set: provider_attr::CLIENTS,
        child_key: patient_attr::MRN,
        child_parent: patient_attr::PCP,
        parent_project: provider_attr::NAME,
        child_project: patient_attr::AGE,
        parent_key_limit: d.provider_count as i64,
        child_key_limit: d.patient_count as i64,
        result_mode: ResultMode::Transient,
    };
    let parent_index = d.idx_provider_upin.clone();
    let child_index = d.idx_patient_mrn.clone();
    let (nojoin, _) = d.measure_cold(|d| {
        let mut ctx = JoinContext {
            store: &mut d.store,
            parent_index: &parent_index,
            child_index: &child_index,
        };
        run_join(
            JoinAlgo::Nojoin,
            &mut ctx,
            &spec,
            &JoinOptions::default(),
            true,
        )
    });
    let pairs = nojoin.pairs.unwrap();
    assert!(
        pairs.iter().all(|&(upin, _)| upin != 0),
        "the retired provider's tuples must be gone"
    );
    assert!(!pairs.is_empty());
}
