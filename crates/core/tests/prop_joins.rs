//! Randomized model tests: every join algorithm (plus hybrid and
//! sort-merge variants) against a brute-force oracle, over randomized
//! tree shapes built directly on the object store. Deterministically
//! seeded.

use tq_index::BTreeIndex;
use tq_objstore::{AttrType, ClassId, ObjectStore, Rid, Schema, SetValue, Value};
use tq_pagestore::{CacheConfig, CostModel, StorageStack};
use tq_query::join::{run_join, smj, JoinContext, JoinOptions};
use tq_query::{HashKeyMode, JoinAlgo, ResultMode, TreeJoinSpec};
use tq_simrng::SimRng;

const P_KEY: usize = 0; // parent key attr
const P_SET: usize = 1;
const C_KEY: usize = 0; // child key attr
const C_PARENT: usize = 1;

struct Tree {
    store: ObjectStore,
    parent_index: BTreeIndex,
    child_index: BTreeIndex,
    /// (parent_key, child_key) ground truth.
    edges: Vec<(i64, i64)>,
}

/// Builds a little tree: `fanouts[i]` children under parent `i`, child
/// keys drawn from `child_keys` (arbitrary, possibly duplicated).
fn build_tree(fanouts: &[u8], child_keys: &[i16]) -> Tree {
    let mut schema = Schema::new();
    let parent = schema.add_class(
        "P",
        vec![("k", AttrType::Int), ("kids", AttrType::SetRef(ClassId(1)))],
    );
    let child = schema.add_class(
        "C",
        vec![("k", AttrType::Int), ("up", AttrType::Ref(parent))],
    );
    // Tiny caches: force real cache behaviour even on small data.
    let stack = StorageStack::new(
        CostModel::sparc20(),
        CacheConfig {
            client_pages: 8,
            server_pages: 4,
        },
    );
    let mut store = ObjectStore::new(schema, stack);
    let file = store.create_file("objects");

    let mut parent_rids = Vec::new();
    let mut child_rids: Vec<(i64, Rid)> = Vec::new();
    let mut edges = Vec::new();
    let mut next_child = 0usize;
    for (i, &f) in fanouts.iter().enumerate() {
        let kids_placeholder = SetValue::Inline(vec![Rid::nil(); f as usize]);
        let prid = store.insert(
            file,
            parent,
            &[Value::Int(i as i32), Value::Set(kids_placeholder)],
            true,
        );
        let mut kids = Vec::new();
        for _ in 0..f {
            let ck = child_keys[next_child % child_keys.len()] as i64;
            next_child += 1;
            let crid = store.insert(
                file,
                child,
                &[Value::Int(ck as i32), Value::Ref(prid)],
                true,
            );
            kids.push(crid);
            child_rids.push((ck, crid));
            edges.push((i as i64, ck));
        }
        store.update(
            prid,
            &[Value::Int(i as i32), Value::Set(SetValue::Inline(kids))],
        );
        parent_rids.push(prid);
    }
    store.create_collection("Ps", parent, &parent_rids);
    store.create_collection(
        "Cs",
        child,
        &child_rids.iter().map(|&(_, r)| r).collect::<Vec<_>>(),
    );
    let p_entries: Vec<(i64, Rid)> = parent_rids
        .iter()
        .enumerate()
        .map(|(i, &r)| (i as i64, r))
        .collect();
    let parent_index = BTreeIndex::bulk_build(store.stack_mut(), 1, "pi", true, &p_entries);
    let mut c_entries = child_rids.clone();
    c_entries.sort_unstable_by_key(|&(k, _)| k);
    let child_index = BTreeIndex::bulk_build(store.stack_mut(), 2, "ci", false, &c_entries);
    store.cold_restart();
    store.reset_metrics();
    Tree {
        store,
        parent_index,
        child_index,
        edges,
    }
}

fn spec(k_parent: i64, k_child: i64) -> TreeJoinSpec {
    TreeJoinSpec {
        parents: "Ps".into(),
        children: "Cs".into(),
        parent_key: P_KEY,
        parent_set: P_SET,
        child_key: C_KEY,
        child_parent: C_PARENT,
        parent_project: P_KEY,
        child_project: C_KEY,
        parent_key_limit: k_parent,
        child_key_limit: k_child,
        result_mode: ResultMode::Transient,
    }
}

fn oracle(edges: &[(i64, i64)], k_parent: i64, k_child: i64) -> Vec<(i64, i64)> {
    let mut v: Vec<(i64, i64)> = edges
        .iter()
        .copied()
        .filter(|&(p, c)| p < k_parent && c < k_child)
        .collect();
    v.sort_unstable();
    v
}

/// All algorithms and option combinations equal the oracle.
#[test]
fn joins_equal_oracle() {
    for case in 0..48u64 {
        let mut rng = SimRng::seed_from_u64(0x0A1C_1E00 + case);
        let fanouts: Vec<u8> = (0..1 + rng.index(29)).map(|_| rng.below(6) as u8).collect();
        let child_keys: Vec<i16> = (0..1 + rng.index(39))
            .map(|_| rng.range_i64(-20, 19) as i16)
            .collect();
        let k_parent = rng.range_i64(-2, 31);
        let k_child = rng.range_i64(-25, 24);
        let mut t = build_tree(&fanouts, &child_keys);
        let want = oracle(&t.edges, k_parent, k_child);
        let s = spec(k_parent, k_child);
        let option_sets = [
            JoinOptions::default(),
            JoinOptions {
                sort_index_rids: false,
                ..JoinOptions::default()
            },
            JoinOptions {
                hash_key: HashKeyMode::Handle,
                ..JoinOptions::default()
            },
            JoinOptions {
                hybrid_hashing: true,
                ..JoinOptions::default()
            },
        ];
        for opts in option_sets {
            for algo in JoinAlgo::all() {
                let mut ctx = JoinContext {
                    store: &mut t.store,
                    parent_index: &t.parent_index,
                    child_index: &t.child_index,
                };
                let report = run_join(algo, &mut ctx, &s, &opts, true);
                t.store.end_of_query();
                let mut got = report.pairs.unwrap();
                got.sort_unstable();
                assert_eq!(&got, &want, "{algo:?} with {opts:?}");
            }
            // The resurrected sort-merge join too.
            let mut ctx = JoinContext {
                store: &mut t.store,
                parent_index: &t.parent_index,
                child_index: &t.child_index,
            };
            let report = smj::run(&mut ctx, &s, &opts, true);
            t.store.end_of_query();
            let mut got = report.pairs.unwrap();
            got.sort_unstable();
            assert_eq!(&got, &want, "SMJ with {opts:?}");
        }
    }
}

/// Handle accounting balances across any join: after end_of_query,
/// nothing stays pinned.
#[test]
fn no_handle_leaks() {
    for case in 0..48u64 {
        let mut rng = SimRng::seed_from_u64(0x1EA6_0000 + case);
        let fanouts: Vec<u8> = (0..1 + rng.index(14)).map(|_| rng.below(5) as u8).collect();
        let k_child = rng.range_i64(0, 19);
        let mut t = build_tree(&fanouts, &[1, 5, 9, 13]);
        let s = spec(fanouts.len() as i64, k_child);
        for algo in JoinAlgo::all() {
            let mut ctx = JoinContext {
                store: &mut t.store,
                parent_index: &t.parent_index,
                child_index: &t.child_index,
            };
            let _ = run_join(algo, &mut ctx, &s, &JoinOptions::default(), false);
            t.store.end_of_query();
            let h = t.store.handle_stats();
            // A revival reuses an existing handle, so the teardown
            // invariant is frees == allocations (once drained).
            assert_eq!(
                h.allocations, h.frees,
                "{algo:?}: every allocated handle must be torn down exactly once"
            );
            assert_eq!(
                h.unrefs,
                h.allocations + h.touches + h.revivals,
                "{algo:?}: every pin must be dropped"
            );
        }
    }
}
