//! Cost breakdowns — the paper's Figure 9 analysis, mechanized.
//!
//! Figure 9 decomposes the difference between the standard scan and the
//! sorted index scan into I/O and CPU terms. The simulated clock keeps
//! those tallies; [`CostBreakdown`] snapshots them and
//! [`CostBreakdown::diff`] prints where two plans' time went.
//!
//! [`render_trace`] extends the same analysis to the operator level:
//! each row is one physical operator's *exclusive* share of the
//! Figure 3 counters (pages, cache misses, handle traffic, CPU events)
//! and of the four time categories, and the rows sum exactly to the
//! query totals. [`render_estimate`] prints the estimator's matching
//! per-operator decomposition, so predicted and measured time can be
//! compared operator by operator.

use crate::estimator::EstimateBreakdown;
use crate::exec::{ExecTrace, OpCounters};
use crate::plan::{ChainSpec, LogicalPlan};
use crate::planner::PlannerPolicy;
use std::fmt;
use tq_pagestore::SimClock;

/// Seconds spent per cost category.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CostBreakdown {
    /// Disk I/O time.
    pub io_secs: f64,
    /// Client↔server page shipping time.
    pub rpc_secs: f64,
    /// CPU time (handles, predicates, hashing, sorting, results).
    pub cpu_secs: f64,
    /// Operator-memory swap time.
    pub swap_secs: f64,
}

impl CostBreakdown {
    /// Snapshot of a clock's tallies.
    pub fn from_clock(clock: &SimClock) -> Self {
        Self {
            io_secs: clock.io_time() as f64 / 1e9,
            rpc_secs: clock.rpc_time() as f64 / 1e9,
            cpu_secs: clock.cpu_time() as f64 / 1e9,
            swap_secs: clock.swap_time() as f64 / 1e9,
        }
    }

    /// Total seconds.
    pub fn total(&self) -> f64 {
        self.io_secs + self.rpc_secs + self.cpu_secs + self.swap_secs
    }

    /// Component-wise `self - other` (positive where `self` spent
    /// more) — the Figure 9 "cost difference" view.
    pub fn diff(&self, other: &CostBreakdown) -> CostBreakdown {
        CostBreakdown {
            io_secs: self.io_secs - other.io_secs,
            rpc_secs: self.rpc_secs - other.rpc_secs,
            cpu_secs: self.cpu_secs - other.cpu_secs,
            swap_secs: self.swap_secs - other.swap_secs,
        }
    }
}

impl fmt::Display for CostBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "total {:>9.2}s = io {:>9.2}s + rpc {:>7.2}s + cpu {:>8.2}s + swap {:>8.2}s",
            self.total(),
            self.io_secs,
            self.rpc_secs,
            self.cpu_secs,
            self.swap_secs
        )
    }
}

fn trace_row(out: &mut String, name: &str, c: &OpCounters) {
    use fmt::Write;
    let _ = writeln!(
        out,
        "{name:<34} {:>9} {:>9} {:>9} {:>10} {:>11} {:>9.2} {:>9.2} {:>9.2} {:>9.2}",
        c.io.d2sc_read_pages,
        c.io.sc2cc_read_pages,
        c.io.client_misses,
        c.handle_gets(),
        c.cpu_events,
        c.io_nanos as f64 / 1e9,
        c.rpc_nanos as f64 / 1e9,
        (c.cpu_nanos + c.swap_nanos) as f64 / 1e9,
        c.elapsed_secs(),
    );
}

/// Renders a measured [`ExecTrace`] as a per-operator counter table.
///
/// Columns: disk pages read, pages shipped to the client, client cache
/// misses, handle gets, CPU events, then seconds by category. The
/// `total` row is the field-wise sum of every operator row — by the
/// executor's attribution invariant it equals the whole measured
/// window.
pub fn render_trace(trace: &ExecTrace) -> String {
    let mut out = String::new();
    use fmt::Write;
    let _ = writeln!(
        out,
        "{:<34} {:>9} {:>9} {:>9} {:>10} {:>11} {:>9} {:>9} {:>9} {:>9}",
        "operator",
        "pages",
        "shipped",
        "c-miss",
        "h-gets",
        "cpu-ev",
        "io s",
        "rpc s",
        "cpu s",
        "sum s"
    );
    for op in &trace.ops {
        let name = format!(
            "{:indent$}{}({})",
            "",
            op.kind,
            op.label,
            indent = 2 * op.depth as usize
        );
        trace_row(&mut out, &name, &op.counters);
    }
    trace_row(&mut out, "total", &trace.total());
    out
}

/// Renders the estimator's per-operator decomposition next to nothing
/// but itself: operator, estimated seconds, and the aggregate the
/// planner compared (the rows sum to it up to fp re-association).
pub fn render_estimate(b: &EstimateBreakdown) -> String {
    let mut out = String::new();
    use fmt::Write;
    let _ = writeln!(out, "{:<34} {:>10}", "operator", "est s");
    for op in &b.ops {
        let _ = writeln!(
            out,
            "{:<34} {:>10.2}",
            format!("{}({})", op.kind, op.label),
            op.secs
        );
    }
    let _ = writeln!(out, "{:<34} {:>10.2}", "total", b.estimate.secs);
    out
}

/// Renders a chain plan choice as a one-line header:
/// `plan[simpli] est 12.34s: x:Providers[index] -> SetNav y:Patients`.
pub fn render_chain_plan(
    spec: &ChainSpec,
    plan: &LogicalPlan,
    policy: PlannerPolicy,
    estimated_secs: f64,
) -> String {
    format!(
        "plan[{}] est {:.2}s: {}",
        policy.label(),
        estimated_secs,
        plan.describe(spec)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use tq_pagestore::{CostModel, CpuEvent};

    #[test]
    fn breakdown_tracks_clock_categories() {
        let m = CostModel::sparc20();
        let mut clock = SimClock::new();
        clock.charge_read(&m, false);
        clock.charge_rpc(&m);
        clock.charge(&m, CpuEvent::HandleAlloc, 100);
        clock.charge(&m, CpuEvent::SwapFault, 2);
        let b = CostBreakdown::from_clock(&clock);
        assert!((b.io_secs - 0.01).abs() < 1e-9);
        assert!(b.rpc_secs > 0.0);
        assert!(b.cpu_secs > 0.0);
        assert!((b.swap_secs - 0.04).abs() < 1e-9);
        assert!((b.total() - clock.elapsed_secs()).abs() < 1e-9);
    }

    #[test]
    fn trace_table_rows_and_total_render() {
        use crate::exec::OpKind;
        let mut trace = ExecTrace::default();
        let mut c = OpCounters::default();
        c.io.d2sc_read_pages = 7;
        c.cpu_events = 3;
        c.io_nanos = 70_000_000;
        trace.push_root(OpKind::SeqScan, "Patients", c);
        trace.push_root(OpKind::Emit, "result", OpCounters::default());
        let table = render_trace(&trace);
        assert!(table.contains("SeqScan(Patients)"));
        assert!(table.contains("Emit(result)"));
        let total_line = table.lines().last().unwrap();
        assert!(total_line.starts_with("total"));
        assert!(total_line.contains("7"), "total row carries the page sum");
    }

    #[test]
    fn estimate_table_renders_the_breakdown() {
        use crate::estimator::estimate_join_breakdown;
        use crate::estimator::PhysicalProfile;
        use crate::spec::JoinAlgo;
        let p = PhysicalProfile {
            parents_total: 2_000,
            children_total: 2_000_000,
            parent_scan_pages: 70,
            child_scan_pages: 33_000,
            parent_index_clustered: true,
            child_index_clustered: true,
            composition: false,
            mean_fanout: 1_000.0,
            overflow_pages_per_parent: 2.0,
            client_cache_pages: 8_192,
        };
        let b = estimate_join_breakdown(JoinAlgo::Phj, &p, &CostModel::sparc20(), 0.5, 0.5);
        let table = render_estimate(&b);
        assert!(table.contains("HashBuild(parents)"));
        assert!(table.contains("HashProbe(children)"));
        assert!(table.lines().last().unwrap().starts_with("total"));
    }

    #[test]
    fn chain_estimate_rows_match_the_pipeline_vocabulary() {
        use crate::estimator::{estimate_chain_breakdown, ChainFacts, ChainStepFacts};
        use crate::plan::{
            chain_pipeline, enumerate_plans, ChainEdge, ChainStep, RootAccess, StepAlgo,
        };
        use crate::spec::{AttrPredicate, CmpOp, ResultMode};
        use tq_objstore::ClassId;
        let spec = ChainSpec {
            steps: vec![
                ChainStep {
                    var: "x".into(),
                    collection: "Providers".into(),
                    class: ClassId(0),
                    preds: vec![AttrPredicate {
                        attr: 1,
                        cmp: CmpOp::Lt,
                        key: 100,
                    }],
                },
                ChainStep {
                    var: "y".into(),
                    collection: "Patients".into(),
                    class: ClassId(1),
                    preds: vec![AttrPredicate {
                        attr: 1,
                        cmp: CmpOp::Lt,
                        key: 1_000,
                    }],
                },
                ChainStep {
                    var: "z".into(),
                    collection: "Providers".into(),
                    class: ClassId(0),
                    preds: vec![],
                },
            ],
            edges: vec![
                ChainEdge {
                    parent: 0,
                    child: 1,
                    set_attr: Some(2),
                    ref_attr: Some(4),
                },
                ChainEdge {
                    parent: 2,
                    child: 1,
                    set_attr: Some(2),
                    ref_attr: Some(4),
                },
            ],
            projection: vec![(2, 1)],
            result_mode: ResultMode::Transient,
        };
        let facts = ChainFacts {
            steps: vec![
                ChainStepFacts {
                    total: 2_000,
                    scan_pages: 70,
                    primary_selectivity: 0.05,
                    selectivity: 0.05,
                    has_index: true,
                    index_clustered: true,
                },
                ChainStepFacts {
                    total: 6_000,
                    scan_pages: 120,
                    primary_selectivity: 0.17,
                    selectivity: 0.17,
                    has_index: true,
                    index_clustered: true,
                },
                ChainStepFacts {
                    total: 2_000,
                    scan_pages: 70,
                    primary_selectivity: 1.0,
                    selectivity: 1.0,
                    has_index: false,
                    index_clustered: false,
                },
            ],
            client_cache_pages: 8_192,
        };
        let m = CostModel::sparc20();
        // Every enumerable plan's estimate decomposes into exactly the
        // rows chain_pipeline says the executor will emit.
        let plans = enumerate_plans(&spec, &facts.has_index());
        assert!(plans.len() > 4);
        for plan in &plans {
            let b = estimate_chain_breakdown(&spec, plan, &facts, &m);
            let want = chain_pipeline(&spec, plan);
            let got: Vec<(crate::exec::OpKind, String)> =
                b.ops.iter().map(|o| (o.kind, o.label.clone())).collect();
            assert_eq!(got, want, "{}", plan.describe(&spec));
            let table = render_estimate(&b);
            assert!(table.lines().last().unwrap().starts_with("total"));
        }
        let hashy = plans
            .iter()
            .find(|p| p.stages.iter().any(|s| s.algo == StepAlgo::Hash))
            .unwrap();
        let header = render_chain_plan(&spec, hashy, PlannerPolicy::Simpli, 3.5);
        assert!(header.starts_with("plan[simpli] est 3.50s: "), "{header}");
        assert!(header.contains("hash("), "{header}");
        let nav = plans
            .iter()
            .find(|p| {
                p.root == 0
                    && p.root_access == RootAccess::Index
                    && p.stages.iter().all(|s| s.algo == StepAlgo::Nav)
            })
            .unwrap();
        let header = render_chain_plan(&spec, nav, PlannerPolicy::Syntactic, 0.1);
        assert!(
            header.contains("x:Providers[index] -> SetNav y:Patients -> BackRefNav z:Providers"),
            "{header}"
        );
    }

    #[test]
    fn diff_is_component_wise() {
        let a = CostBreakdown {
            io_secs: 5.0,
            rpc_secs: 1.0,
            cpu_secs: 2.0,
            swap_secs: 0.0,
        };
        let b = CostBreakdown {
            io_secs: 3.0,
            rpc_secs: 2.0,
            cpu_secs: 2.0,
            swap_secs: 1.0,
        };
        let d = a.diff(&b);
        assert_eq!(d.io_secs, 2.0);
        assert_eq!(d.rpc_secs, -1.0);
        assert_eq!(d.cpu_secs, 0.0);
        assert_eq!(d.swap_secs, -1.0);
        let shown = format!("{a}");
        assert!(shown.contains("total"));
        assert!(shown.contains("io"));
    }
}
