//! Cost breakdowns — the paper's Figure 9 analysis, mechanized.
//!
//! Figure 9 decomposes the difference between the standard scan and the
//! sorted index scan into I/O and CPU terms. The simulated clock keeps
//! those tallies; [`CostBreakdown`] snapshots them and
//! [`CostBreakdown::diff`] prints where two plans' time went.

use std::fmt;
use tq_pagestore::SimClock;

/// Seconds spent per cost category.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CostBreakdown {
    /// Disk I/O time.
    pub io_secs: f64,
    /// Client↔server page shipping time.
    pub rpc_secs: f64,
    /// CPU time (handles, predicates, hashing, sorting, results).
    pub cpu_secs: f64,
    /// Operator-memory swap time.
    pub swap_secs: f64,
}

impl CostBreakdown {
    /// Snapshot of a clock's tallies.
    pub fn from_clock(clock: &SimClock) -> Self {
        Self {
            io_secs: clock.io_time() as f64 / 1e9,
            rpc_secs: clock.rpc_time() as f64 / 1e9,
            cpu_secs: clock.cpu_time() as f64 / 1e9,
            swap_secs: clock.swap_time() as f64 / 1e9,
        }
    }

    /// Total seconds.
    pub fn total(&self) -> f64 {
        self.io_secs + self.rpc_secs + self.cpu_secs + self.swap_secs
    }

    /// Component-wise `self - other` (positive where `self` spent
    /// more) — the Figure 9 "cost difference" view.
    pub fn diff(&self, other: &CostBreakdown) -> CostBreakdown {
        CostBreakdown {
            io_secs: self.io_secs - other.io_secs,
            rpc_secs: self.rpc_secs - other.rpc_secs,
            cpu_secs: self.cpu_secs - other.cpu_secs,
            swap_secs: self.swap_secs - other.swap_secs,
        }
    }
}

impl fmt::Display for CostBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "total {:>9.2}s = io {:>9.2}s + rpc {:>7.2}s + cpu {:>8.2}s + swap {:>8.2}s",
            self.total(),
            self.io_secs,
            self.rpc_secs,
            self.cpu_secs,
            self.swap_secs
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tq_pagestore::{CostModel, CpuEvent};

    #[test]
    fn breakdown_tracks_clock_categories() {
        let m = CostModel::sparc20();
        let mut clock = SimClock::new();
        clock.charge_read(&m, false);
        clock.charge_rpc(&m);
        clock.charge(&m, CpuEvent::HandleAlloc, 100);
        clock.charge(&m, CpuEvent::SwapFault, 2);
        let b = CostBreakdown::from_clock(&clock);
        assert!((b.io_secs - 0.01).abs() < 1e-9);
        assert!(b.rpc_secs > 0.0);
        assert!(b.cpu_secs > 0.0);
        assert!((b.swap_secs - 0.04).abs() < 1e-9);
        assert!((b.total() - clock.elapsed_secs()).abs() < 1e-9);
    }

    #[test]
    fn diff_is_component_wise() {
        let a = CostBreakdown {
            io_secs: 5.0,
            rpc_secs: 1.0,
            cpu_secs: 2.0,
            swap_secs: 0.0,
        };
        let b = CostBreakdown {
            io_secs: 3.0,
            rpc_secs: 2.0,
            cpu_secs: 2.0,
            swap_secs: 1.0,
        };
        let d = a.diff(&b);
        assert_eq!(d.io_secs, 2.0);
        assert_eq!(d.rpc_secs, -1.0);
        assert_eq!(d.cpu_secs, 0.0);
        assert_eq!(d.swap_secs, -1.0);
        let shown = format!("{a}");
        assert!(shown.contains("total"));
        assert!(shown.contains("io"));
    }
}
