//! Abstract syntax for the OQL fragment.

use crate::spec::CmpOp;
use std::fmt;

/// A dotted path `var.attr`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Path {
    /// Range variable.
    pub var: String,
    /// Attribute name.
    pub attr: String,
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.var, self.attr)
    }
}

/// Where a range variable draws its elements from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Source {
    /// A named collection (`Providers`).
    Collection(String),
    /// A set-valued attribute of an earlier variable (`p.clients`).
    Path(Path),
}

/// One `var in source` clause.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Binding {
    /// The variable.
    pub var: String,
    /// Its source.
    pub source: Source,
}

/// One `path op number` predicate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Pred {
    /// Left-hand path.
    pub path: Path,
    /// Comparison operator.
    pub op: CmpOp,
    /// Right-hand integer literal.
    pub value: i64,
}

/// A parsed query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Query {
    /// Projected paths (one, or a bracketed tuple).
    pub projection: Vec<Path>,
    /// Range bindings, in order.
    pub bindings: Vec<Binding>,
    /// Conjunctive predicates.
    pub predicates: Vec<Pred>,
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "select ")?;
        if self.projection.len() == 1 {
            write!(f, "{}", self.projection[0])?;
        } else {
            write!(f, "[")?;
            for (i, p) in self.projection.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{p}")?;
            }
            write!(f, "]")?;
        }
        write!(f, " from ")?;
        for (i, b) in self.bindings.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match &b.source {
                Source::Collection(c) => write!(f, "{} in {c}", b.var)?,
                Source::Path(p) => write!(f, "{} in {p}", b.var)?,
            }
        }
        if !self.predicates.is_empty() {
            write!(f, " where ")?;
            for (i, p) in self.predicates.iter().enumerate() {
                if i > 0 {
                    write!(f, " and ")?;
                }
                write!(f, "{} {} {}", p.path, p.op.symbol(), p.value)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_round_trips_shape() {
        let q = Query {
            projection: vec![
                Path {
                    var: "p".into(),
                    attr: "name".into(),
                },
                Path {
                    var: "pa".into(),
                    attr: "age".into(),
                },
            ],
            bindings: vec![
                Binding {
                    var: "p".into(),
                    source: Source::Collection("Providers".into()),
                },
                Binding {
                    var: "pa".into(),
                    source: Source::Path(Path {
                        var: "p".into(),
                        attr: "clients".into(),
                    }),
                },
            ],
            predicates: vec![Pred {
                path: Path {
                    var: "pa".into(),
                    attr: "mrn".into(),
                },
                op: CmpOp::Lt,
                value: 10,
            }],
        };
        assert_eq!(
            q.to_string(),
            "select [p.name, pa.age] from p in Providers, pa in p.clients where pa.mrn < 10"
        );
    }
}
