//! Recursive-descent parser for the OQL fragment.

use super::ast::{Binding, Path, Pred, Query, Source};
use super::lexer::{lex, Token};
use crate::spec::CmpOp;
use std::fmt;

/// A parse error with a human-readable message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

struct Parser {
    tokens: Vec<Token>,
    at: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.at)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.at).cloned();
        if t.is_some() {
            self.at += 1;
        }
        t
    }

    fn err(&self, want: &str) -> ParseError {
        match self.peek() {
            Some(t) => ParseError(format!("expected {want}, found {t:?}")),
            None => ParseError(format!("expected {want}, found end of query")),
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            _ => {
                self.at = self.at.saturating_sub(1);
                Err(self.err(what))
            }
        }
    }

    fn keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.peek() {
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw) => {
                self.at += 1;
                Ok(())
            }
            _ => Err(self.err(&format!("keyword `{kw}`"))),
        }
    }

    fn is_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn symbol(&mut self, sym: &str) -> Result<(), ParseError> {
        match self.peek() {
            Some(Token::Symbol(s)) if *s == sym => {
                self.at += 1;
                Ok(())
            }
            _ => Err(self.err(&format!("`{sym}`"))),
        }
    }

    fn is_symbol(&self, sym: &str) -> bool {
        matches!(self.peek(), Some(Token::Symbol(s)) if *s == sym)
    }

    fn path(&mut self) -> Result<Path, ParseError> {
        let var = self.ident("a range variable")?;
        self.symbol(".")?;
        let attr = self.ident("an attribute name")?;
        Ok(Path { var, attr })
    }

    fn projection(&mut self) -> Result<Vec<Path>, ParseError> {
        if self.is_symbol("[") {
            self.symbol("[")?;
            let mut out = vec![self.path()?];
            while self.is_symbol(",") {
                self.symbol(",")?;
                out.push(self.path()?);
            }
            self.symbol("]")?;
            Ok(out)
        } else {
            Ok(vec![self.path()?])
        }
    }

    fn binding(&mut self) -> Result<Binding, ParseError> {
        let var = self.ident("a range variable")?;
        self.keyword("in")?;
        let first = self.ident("a collection or variable")?;
        let source = if self.is_symbol(".") {
            self.symbol(".")?;
            let attr = self.ident("a set attribute")?;
            Source::Path(Path { var: first, attr })
        } else {
            Source::Collection(first)
        };
        Ok(Binding { var, source })
    }

    fn cmp_op(&mut self) -> Result<CmpOp, ParseError> {
        let op = match self.peek() {
            Some(Token::Symbol("<")) => CmpOp::Lt,
            Some(Token::Symbol("<=")) => CmpOp::Le,
            Some(Token::Symbol(">")) => CmpOp::Gt,
            Some(Token::Symbol(">=")) => CmpOp::Ge,
            Some(Token::Symbol("=")) => CmpOp::Eq,
            _ => return Err(self.err("a comparison operator")),
        };
        self.at += 1;
        Ok(op)
    }

    fn predicate(&mut self) -> Result<Pred, ParseError> {
        let path = self.path()?;
        let op = self.cmp_op()?;
        match self.next() {
            Some(Token::Number(value)) => Ok(Pred { path, op, value }),
            _ => {
                self.at = self.at.saturating_sub(1);
                Err(self.err("an integer literal"))
            }
        }
    }

    fn query(&mut self) -> Result<Query, ParseError> {
        self.keyword("select")?;
        let projection = self.projection()?;
        self.keyword("from")?;
        let mut bindings = vec![self.binding()?];
        while self.is_symbol(",") {
            self.symbol(",")?;
            bindings.push(self.binding()?);
        }
        let mut predicates = Vec::new();
        if self.is_keyword("where") {
            self.keyword("where")?;
            predicates.push(self.predicate()?);
            while self.is_keyword("and") {
                self.keyword("and")?;
                predicates.push(self.predicate()?);
            }
        }
        if let Some(t) = self.peek() {
            return Err(ParseError(format!("trailing input starting at {t:?}")));
        }
        Ok(Query {
            projection,
            bindings,
            predicates,
        })
    }
}

/// Parses one query.
pub fn parse(input: &str) -> Result<Query, ParseError> {
    let tokens = lex(input).map_err(|e| ParseError(e.to_string()))?;
    Parser { tokens, at: 0 }.query()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_join_query() {
        let q = parse(
            "select [p.name, pa.age] from p in Providers, pa in p.clients \
             where pa.mrn < 200000 and p.upin < 200",
        )
        .unwrap();
        assert_eq!(q.projection.len(), 2);
        assert_eq!(q.bindings.len(), 2);
        assert_eq!(q.predicates.len(), 2);
        assert_eq!(q.bindings[0].var, "p");
        assert_eq!(
            q.bindings[1].source,
            Source::Path(Path {
                var: "p".into(),
                attr: "clients".into()
            })
        );
        assert_eq!(q.predicates[0].op, CmpOp::Lt);
        assert_eq!(q.predicates[0].value, 200_000);
    }

    #[test]
    fn parses_the_selection_query() {
        let q = parse("select pa.age from pa in Patients where pa.num > 1_000").unwrap();
        assert_eq!(q.projection.len(), 1);
        assert_eq!(q.bindings.len(), 1);
        assert_eq!(q.bindings[0].source, Source::Collection("Patients".into()));
        assert_eq!(q.predicates[0].op, CmpOp::Gt);
    }

    #[test]
    fn parses_without_where() {
        let q = parse("select x.a from x in Xs").unwrap();
        assert!(q.predicates.is_empty());
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert!(parse("SELECT x.a FROM x IN Xs WHERE x.b < 1").is_ok());
    }

    #[test]
    fn round_trips_through_display() {
        let text = "select [p.name, pa.age] from p in Providers, pa in p.clients \
                    where pa.mrn < 10 and p.upin < 2";
        let q = parse(text).unwrap();
        assert_eq!(parse(&q.to_string()).unwrap(), q);
    }

    #[test]
    fn error_messages_point_at_the_problem() {
        let e = parse("select . from x in Xs").unwrap_err();
        assert!(e.to_string().contains("range variable"), "{e}");
        let e = parse("select from x in Xs").unwrap_err();
        assert!(e.to_string().contains("expected `.`"), "{e}");
        let e = parse("select x.a from x in Xs where x.b ! 3").unwrap_err();
        assert!(e.to_string().contains("unexpected character"), "{e}");
        let e = parse("select x.a from x in Xs where x.b < y").unwrap_err();
        assert!(e.to_string().contains("integer literal"), "{e}");
        let e = parse("select x.a from x in Xs extra").unwrap_err();
        assert!(e.to_string().contains("trailing"), "{e}");
    }
}
