//! Name resolution and lowering: AST → executable query spec.

use super::ast::{Query, Source};
use super::parser::{parse, ParseError};
use crate::plan::{ChainEdge, ChainSpec, ChainStep};
use crate::spec::{AttrPredicate, CmpOp, ResultMode, Selection, TreeJoinSpec};
use std::fmt;
use tq_objstore::{AttrId, AttrType, ClassId, ObjectStore};

/// A compiled query, ready for the planner/executor.
#[derive(Clone, Debug)]
pub enum CompiledQuery {
    /// Single-collection selection.
    Selection(Selection),
    /// 1-N tree join (the paper's exact two-binding shape).
    TreeJoin(TreeJoinSpec),
    /// General N-way binding chain.
    Chain(ChainSpec),
}

/// Compilation errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CompileError {
    /// The text did not parse.
    Parse(ParseError),
    /// No collection with this name.
    UnknownCollection(String),
    /// No such attribute on the bound class.
    UnknownAttr {
        /// Class name.
        class: String,
        /// Attribute name.
        attr: String,
    },
    /// Unbound range variable in a path.
    UnknownVar(String),
    /// The fragment doesn't cover this query shape.
    Unsupported(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Parse(e) => write!(f, "{e}"),
            CompileError::UnknownCollection(c) => write!(f, "unknown collection `{c}`"),
            CompileError::UnknownAttr { class, attr } => {
                write!(f, "class `{class}` has no attribute `{attr}`")
            }
            CompileError::UnknownVar(v) => write!(f, "unbound variable `{v}`"),
            CompileError::Unsupported(m) => write!(f, "unsupported query: {m}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<ParseError> for CompileError {
    fn from(e: ParseError) -> Self {
        CompileError::Parse(e)
    }
}

fn resolve_attr(store: &ObjectStore, class: ClassId, attr: &str) -> Result<AttrId, CompileError> {
    store
        .schema()
        .class(class)
        .attr_id(attr)
        .ok_or_else(|| CompileError::UnknownAttr {
            class: store.schema().class(class).name.clone(),
            attr: attr.to_string(),
        })
}

/// Finds the collection (by name) whose members are of `class`.
fn collection_of_class(store: &ObjectStore, class: ClassId) -> Option<String> {
    store
        .collection_names()
        .into_iter()
        .find(|n| store.collection(n).class == class)
        .map(str::to_string)
}

/// Compiles a parsed query against the store's schema and catalog.
///
/// One binding is a selection. Two bindings first try the paper's
/// exact tree-join shape (so the measured 2-way figures keep their
/// [`TreeJoinSpec`] path bit for bit); any other shape — reference
/// bindings, mixed operators, deeper chains — lowers to a
/// [`ChainSpec`] for the N-way planner.
pub fn compile(store: &ObjectStore, query: &Query) -> Result<CompiledQuery, CompileError> {
    match query.bindings.len() {
        1 => compile_selection(store, query),
        2 => match compile_join(store, query) {
            Ok(q) => Ok(q),
            Err(CompileError::Unsupported(_)) => compile_chain(store, query),
            Err(e) => Err(e),
        },
        _ => compile_chain(store, query),
    }
}

/// Parses and compiles in one step.
pub fn compile_str(store: &ObjectStore, text: &str) -> Result<CompiledQuery, CompileError> {
    let q = parse(text)?;
    compile(store, &q)
}

fn compile_selection(store: &ObjectStore, query: &Query) -> Result<CompiledQuery, CompileError> {
    let binding = &query.bindings[0];
    let Source::Collection(coll_name) = &binding.source else {
        return Err(CompileError::Unsupported(
            "a single binding must range over a named collection".into(),
        ));
    };
    let info = store
        .try_collection(coll_name)
        .ok_or_else(|| CompileError::UnknownCollection(coll_name.clone()))?;
    if query.predicates.is_empty() {
        return Err(CompileError::Unsupported(
            "selections take at least one predicate".into(),
        ));
    }
    // Resolve every conjunct; the first becomes the primary (access
    // path) predicate, the rest are residuals. The planner may
    // re-promote an indexed one with `Selection::promote`.
    let mut resolved = Vec::with_capacity(query.predicates.len());
    for pred in &query.predicates {
        if pred.path.var != binding.var {
            return Err(CompileError::UnknownVar(pred.path.var.clone()));
        }
        let attr = resolve_attr(store, info.class, &pred.path.attr)?;
        if store.schema().class(info.class).attrs[attr].ty != AttrType::Int {
            return Err(CompileError::Unsupported(format!(
                "predicate attribute `{}` must be an integer",
                pred.path.attr
            )));
        }
        resolved.push(crate::spec::AttrPredicate {
            attr,
            cmp: pred.op,
            key: pred.value,
        });
    }
    let primary = resolved.remove(0);
    let (attr, pred) = (primary.attr, &query.predicates[0]);
    if query.projection.len() != 1 {
        return Err(CompileError::Unsupported(
            "selections project exactly one attribute".into(),
        ));
    }
    let proj = &query.projection[0];
    if proj.var != binding.var {
        return Err(CompileError::UnknownVar(proj.var.clone()));
    }
    let project = resolve_attr(store, info.class, &proj.attr)?;
    Ok(CompiledQuery::Selection(Selection {
        collection: coll_name.clone(),
        attr,
        cmp: pred.op,
        key: pred.value,
        residual: resolved,
        project,
        result_mode: ResultMode::Persistent,
    }))
}

fn compile_join(store: &ObjectStore, query: &Query) -> Result<CompiledQuery, CompileError> {
    let (pb, cb) = (&query.bindings[0], &query.bindings[1]);
    let Source::Collection(parents_name) = &pb.source else {
        return Err(CompileError::Unsupported(
            "the first binding must range over a named collection".into(),
        ));
    };
    let parents = store
        .try_collection(parents_name)
        .ok_or_else(|| CompileError::UnknownCollection(parents_name.clone()))?;
    let Source::Path(set_path) = &cb.source else {
        return Err(CompileError::Unsupported(
            "the second binding must range over a set attribute of the first".into(),
        ));
    };
    if set_path.var != pb.var {
        return Err(CompileError::UnknownVar(set_path.var.clone()));
    }
    let parent_set = resolve_attr(store, parents.class, &set_path.attr)?;
    let AttrType::SetRef(child_class) = store.schema().class(parents.class).attrs[parent_set].ty
    else {
        return Err(CompileError::Unsupported(format!(
            "`{}.{}` is not a set of objects",
            pb.var, set_path.attr
        )));
    };
    let children_name = collection_of_class(store, child_class).ok_or_else(|| {
        CompileError::Unsupported(format!(
            "no named collection holds class `{}`",
            store.schema().class(child_class).name
        ))
    })?;

    // The child's back reference to the parent.
    let child_parent = store
        .schema()
        .class(child_class)
        .attrs
        .iter()
        .position(|a| a.ty == AttrType::Ref(parents.class))
        .ok_or_else(|| {
            CompileError::Unsupported(format!(
                "class `{}` has no reference back to `{}`",
                store.schema().class(child_class).name,
                store.schema().class(parents.class).name
            ))
        })?;

    // Predicates: exactly one per side, both `<`.
    if query.predicates.len() != 2 {
        return Err(CompileError::Unsupported(
            "tree joins take exactly two predicates".into(),
        ));
    }
    let mut parent_pred = None;
    let mut child_pred = None;
    for pred in &query.predicates {
        if pred.op != CmpOp::Lt {
            return Err(CompileError::Unsupported(
                "tree-join predicates must use `<`".into(),
            ));
        }
        if pred.path.var == pb.var {
            parent_pred = Some(pred);
        } else if pred.path.var == cb.var {
            child_pred = Some(pred);
        } else {
            return Err(CompileError::UnknownVar(pred.path.var.clone()));
        }
    }
    let (Some(pp), Some(cp)) = (parent_pred, child_pred) else {
        return Err(CompileError::Unsupported(
            "tree joins need one predicate per side".into(),
        ));
    };
    let parent_key = resolve_attr(store, parents.class, &pp.path.attr)?;
    let child_key = resolve_attr(store, child_class, &cp.path.attr)?;

    // Projection: [p.x, pa.y].
    if query.projection.len() != 2
        || query.projection[0].var != pb.var
        || query.projection[1].var != cb.var
    {
        return Err(CompileError::Unsupported(
            "tree joins project `[parent.attr, child.attr]`".into(),
        ));
    }
    let parent_project = resolve_attr(store, parents.class, &query.projection[0].attr)?;
    let child_project = resolve_attr(store, child_class, &query.projection[1].attr)?;

    Ok(CompiledQuery::TreeJoin(TreeJoinSpec {
        parents: parents_name.clone(),
        children: children_name,
        parent_key,
        parent_set,
        child_key,
        child_parent,
        parent_project,
        child_project,
        parent_key_limit: pp.value,
        child_key_limit: cp.value,
        result_mode: ResultMode::Transient,
    }))
}

/// Lowers an N-binding chain (`x in Providers, y in x.clients, z in
/// y.primary_care_provider, …`) to a [`ChainSpec`].
///
/// Rules, each with its own precise error:
/// * the first binding names a collection, every later one a path over
///   the *immediately preceding* variable (an unbound path variable is
///   [`CompileError::UnknownVar`]; a bound-but-not-previous one is
///   unsupported — the fragment's joins form a path, not a DAG);
/// * the path attribute must be a set of objects (`SetRef`, previous
///   variable is the parent) or an object reference (`Ref`, new
///   variable is the parent) — anything else is rejected by name;
/// * predicate and projection attributes must be integers (projected
///   values are collected as `i64`).
fn compile_chain(store: &ObjectStore, query: &Query) -> Result<CompiledQuery, CompileError> {
    let mut steps: Vec<ChainStep> = Vec::with_capacity(query.bindings.len());
    let mut edges: Vec<ChainEdge> = Vec::new();
    let step_of_var = |steps: &[ChainStep], var: &str| -> Option<usize> {
        steps.iter().position(|s| s.var == var)
    };
    for (i, b) in query.bindings.iter().enumerate() {
        if step_of_var(&steps, &b.var).is_some() {
            return Err(CompileError::Unsupported(format!(
                "variable `{}` is bound twice",
                b.var
            )));
        }
        let (collection, class) = match &b.source {
            Source::Collection(name) => {
                if i != 0 {
                    return Err(CompileError::Unsupported(format!(
                        "binding `{}` must range over an attribute path of the previous \
                         variable (only the first binding names a collection)",
                        b.var
                    )));
                }
                let info = store
                    .try_collection(name)
                    .ok_or_else(|| CompileError::UnknownCollection(name.clone()))?;
                (name.clone(), info.class)
            }
            Source::Path(path) => {
                if i == 0 {
                    return Err(CompileError::Unsupported(
                        "the first binding must range over a named collection".into(),
                    ));
                }
                let Some(prev) = step_of_var(&steps, &path.var) else {
                    return Err(CompileError::UnknownVar(path.var.clone()));
                };
                if prev != i - 1 {
                    return Err(CompileError::Unsupported(format!(
                        "binding `{}` must draw from the immediately preceding \
                         variable `{}`, not `{}`",
                        b.var,
                        steps[i - 1].var,
                        path.var
                    )));
                }
                let prev_class = steps[prev].class;
                let attr = resolve_attr(store, prev_class, &path.attr)?;
                match store.schema().class(prev_class).attrs[attr].ty {
                    AttrType::SetRef(child_class) => {
                        // Previous step is the 1 side; this one the N.
                        let ref_attr = back_ref(store, child_class, prev_class);
                        edges.push(ChainEdge {
                            parent: prev,
                            child: i,
                            set_attr: Some(attr),
                            ref_attr,
                        });
                        (named_collection(store, child_class)?, child_class)
                    }
                    AttrType::Ref(parent_class) => {
                        // This step is the 1 side; the previous the N.
                        let set_attr = set_ref(store, parent_class, prev_class);
                        edges.push(ChainEdge {
                            parent: i,
                            child: prev,
                            set_attr,
                            ref_attr: Some(attr),
                        });
                        (named_collection(store, parent_class)?, parent_class)
                    }
                    _ => {
                        return Err(CompileError::Unsupported(format!(
                            "`{}.{}` is neither a set of objects nor an object reference",
                            path.var, path.attr
                        )));
                    }
                }
            }
        };
        steps.push(ChainStep {
            var: b.var.clone(),
            collection,
            class,
            preds: Vec::new(),
        });
    }

    for pred in &query.predicates {
        let Some(step) = step_of_var(&steps, &pred.path.var) else {
            return Err(CompileError::UnknownVar(pred.path.var.clone()));
        };
        let class = steps[step].class;
        let attr = resolve_attr(store, class, &pred.path.attr)?;
        if store.schema().class(class).attrs[attr].ty != AttrType::Int {
            return Err(CompileError::Unsupported(format!(
                "predicate attribute `{}` must be an integer",
                pred.path.attr
            )));
        }
        steps[step].preds.push(AttrPredicate {
            attr,
            cmp: pred.op,
            key: pred.value,
        });
    }

    let mut projection = Vec::with_capacity(query.projection.len());
    for proj in &query.projection {
        let Some(step) = step_of_var(&steps, &proj.var) else {
            return Err(CompileError::UnknownVar(proj.var.clone()));
        };
        let class = steps[step].class;
        let attr = resolve_attr(store, class, &proj.attr)?;
        if store.schema().class(class).attrs[attr].ty != AttrType::Int {
            return Err(CompileError::Unsupported(format!(
                "chain projection `{}.{}` must be an integer attribute",
                proj.var, proj.attr
            )));
        }
        projection.push((step, attr));
    }

    Ok(CompiledQuery::Chain(ChainSpec {
        steps,
        edges,
        projection,
        result_mode: ResultMode::Transient,
    }))
}

/// The collection named in the catalog for `class`, or a precise error.
fn named_collection(store: &ObjectStore, class: ClassId) -> Result<String, CompileError> {
    collection_of_class(store, class).ok_or_else(|| {
        CompileError::Unsupported(format!(
            "no named collection holds class `{}`",
            store.schema().class(class).name
        ))
    })
}

/// `child_class`'s back reference to `parent_class`, if the schema has
/// one.
fn back_ref(store: &ObjectStore, child_class: ClassId, parent_class: ClassId) -> Option<AttrId> {
    store
        .schema()
        .class(child_class)
        .attrs
        .iter()
        .position(|a| a.ty == AttrType::Ref(parent_class))
}

/// `parent_class`'s set attribute over `child_class`, if the schema
/// has one.
fn set_ref(store: &ObjectStore, parent_class: ClassId, child_class: ClassId) -> Option<AttrId> {
    store
        .schema()
        .class(parent_class)
        .attrs
        .iter()
        .position(|a| a.ty == AttrType::SetRef(child_class))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tq_objstore::{Schema, Value};
    use tq_pagestore::{CacheConfig, CostModel, StorageStack};

    /// A minimal Derby-shaped store (no data needed for compilation,
    /// but collections must exist).
    fn derby_store() -> ObjectStore {
        let mut schema = Schema::new();
        let provider = schema.add_class(
            "Provider",
            vec![
                ("name", AttrType::Str),
                ("upin", AttrType::Int),
                ("clients", AttrType::SetRef(ClassId(1))),
            ],
        );
        let patient = schema.add_class(
            "Patient",
            vec![
                ("name", AttrType::Str),
                ("mrn", AttrType::Int),
                ("age", AttrType::Int),
                ("num", AttrType::Int),
                ("primary_care_provider", AttrType::Ref(provider)),
            ],
        );
        let stack = StorageStack::new(CostModel::free(), CacheConfig::default());
        let mut store = ObjectStore::new(schema, stack);
        let pf = store.create_file("providers");
        let af = store.create_file("patients");
        let p0 = store.insert(
            pf,
            provider,
            &[
                Value::Str("d".into()),
                Value::Int(0),
                Value::Set(tq_objstore::SetValue::Inline(vec![])),
            ],
            true,
        );
        let a0 = store.insert(
            af,
            patient,
            &[
                Value::Str("p".into()),
                Value::Int(0),
                Value::Int(30),
                Value::Int(5),
                Value::Ref(p0),
            ],
            true,
        );
        store.create_collection("Providers", provider, &[p0]);
        store.create_collection("Patients", patient, &[a0]);
        store
    }

    #[test]
    fn compiles_the_selection() {
        let store = derby_store();
        let q = compile_str(
            &store,
            "select pa.age from pa in Patients where pa.num > 100",
        )
        .unwrap();
        match q {
            CompiledQuery::Selection(s) => {
                assert_eq!(s.collection, "Patients");
                assert_eq!(s.cmp, CmpOp::Gt);
                assert_eq!(s.key, 100);
                // num is attr 3, age is attr 2 in this test schema.
                assert_eq!(s.attr, 3);
                assert_eq!(s.project, 2);
            }
            other => panic!("expected selection, got {other:?}"),
        }
    }

    #[test]
    fn compiles_the_paper_join() {
        let store = derby_store();
        let q = compile_str(
            &store,
            "select [p.name, pa.age] from p in Providers, pa in p.clients \
             where pa.mrn < 1000 and p.upin < 10",
        )
        .unwrap();
        match q {
            CompiledQuery::TreeJoin(j) => {
                assert_eq!(j.parents, "Providers");
                assert_eq!(j.children, "Patients");
                assert_eq!(j.parent_key_limit, 10);
                assert_eq!(j.child_key_limit, 1000);
                assert_eq!(j.parent_set, 2);
                assert_eq!(j.child_parent, 4);
            }
            other => panic!("expected join, got {other:?}"),
        }
    }

    #[test]
    fn predicate_order_does_not_matter() {
        let store = derby_store();
        let q = compile_str(
            &store,
            "select [p.name, pa.age] from p in Providers, pa in p.clients \
             where p.upin < 10 and pa.mrn < 1000",
        )
        .unwrap();
        assert!(matches!(q, CompiledQuery::TreeJoin(_)));
    }

    #[test]
    fn good_errors() {
        let store = derby_store();
        let cases = [
            (
                "select x.a from x in Nurses where x.a < 1",
                "unknown collection",
            ),
            (
                "select pa.age from pa in Patients where pa.ssn < 1",
                "no attribute",
            ),
            (
                "select pa.age from pa in Patients where q.num < 1",
                "unbound variable",
            ),
            (
                "select pa.name from pa in Patients where pa.name < 1",
                "must be an integer",
            ),
            // `>=` pushes this off the TreeJoin shape onto the chain
            // path, which then objects to the non-integer projection.
            (
                "select [p.name, pa.age] from p in Providers, pa in p.clients \
                 where pa.mrn < 1 and p.upin >= 1",
                "must be an integer attribute",
            ),
            (
                "select [p.name, pa.age] from p in Providers, pa in q.clients \
                 where pa.mrn < 1 and p.upin < 1",
                "unbound variable",
            ),
        ];
        for (text, needle) in cases {
            let err = compile_str(&store, text).unwrap_err().to_string();
            assert!(err.contains(needle), "{text}: {err}");
        }
    }

    #[test]
    fn non_tree_join_two_way_shapes_now_compile_as_chains() {
        // `>=` was a hard "unsupported" before the chain path existed;
        // with integer projections it now compiles.
        let store = derby_store();
        let q = compile_str(
            &store,
            "select pa.age from p in Providers, pa in p.clients \
             where pa.mrn < 1000 and p.upin >= 1",
        )
        .unwrap();
        assert!(matches!(q, CompiledQuery::Chain(_)));
    }

    #[test]
    fn compiles_the_depth3_chain() {
        let store = derby_store();
        let q = compile_str(
            &store,
            "select z.upin from x in Providers, y in x.clients, \
             z in y.primary_care_provider where x.upin < 10 and y.mrn < 1000",
        )
        .unwrap();
        let CompiledQuery::Chain(c) = q else {
            panic!("expected chain");
        };
        assert_eq!(c.steps.len(), 3);
        assert_eq!(c.steps[0].collection, "Providers");
        assert_eq!(c.steps[1].collection, "Patients");
        assert_eq!(c.steps[2].collection, "Providers");
        // clients is Provider attr 2, primary_care_provider Patient
        // attr 4 in this test schema; both edges carry both attrs.
        assert_eq!(
            c.edges[0],
            crate::plan::ChainEdge {
                parent: 0,
                child: 1,
                set_attr: Some(2),
                ref_attr: Some(4),
            }
        );
        assert_eq!(
            c.edges[1],
            crate::plan::ChainEdge {
                parent: 2,
                child: 1,
                set_attr: Some(2),
                ref_attr: Some(4),
            }
        );
        assert_eq!(c.steps[0].preds.len(), 1);
        assert_eq!(c.steps[1].preds.len(), 1);
        assert!(c.steps[2].preds.is_empty());
        // upin is Provider attr 1.
        assert_eq!(c.projection, vec![(2, 1)]);
    }

    #[test]
    fn two_binding_ref_chain_compiles_as_chain_not_tree_join() {
        let store = derby_store();
        let q = compile_str(
            &store,
            "select z.upin from y in Patients, z in y.primary_care_provider \
             where y.mrn < 1000",
        )
        .unwrap();
        let CompiledQuery::Chain(c) = q else {
            panic!("expected chain");
        };
        assert_eq!(c.steps.len(), 2);
        assert_eq!(c.edges[0].parent, 1);
        assert_eq!(c.edges[0].child, 0);
    }

    #[test]
    fn legacy_two_way_shape_still_lowers_to_tree_join() {
        // Byte-identity guard: the measured figures' exact query shape
        // must keep taking the TreeJoinSpec path, not the chain path.
        let store = derby_store();
        let q = compile_str(
            &store,
            "select [p.name, pa.age] from p in Providers, pa in p.clients \
             where pa.mrn < 1000 and p.upin < 10",
        )
        .unwrap();
        assert!(matches!(q, CompiledQuery::TreeJoin(_)));
    }

    #[test]
    fn chain_errors_are_precise_at_any_depth() {
        let store = derby_store();
        let cases = [
            (
                // Unbound variable in the middle of the chain.
                "select z.upin from x in Providers, y in q.clients, \
                 z in y.primary_care_provider where x.upin < 10",
                "unbound variable `q`",
            ),
            (
                // Non-set, non-ref source at depth 2.
                "select y.mrn from x in Providers, y in x.upin where y.mrn < 1",
                "neither a set of objects nor an object reference",
            ),
            (
                // Non-set, non-ref source at depth 3.
                "select z.num from x in Providers, y in x.clients, z in y.num \
                 where x.upin < 10",
                "neither a set of objects nor an object reference",
            ),
            (
                // Unknown attribute deep in the chain.
                "select z.upin from x in Providers, y in x.clients, \
                 z in y.shadow where x.upin < 10",
                "no attribute `shadow`",
            ),
            (
                // Forward reference: z drawn from a later variable.
                "select z.upin from x in Providers, z in y.primary_care_provider, \
                 y in x.clients where x.upin < 10",
                "unbound variable `y`",
            ),
            (
                // Chains bind consecutive variables, not arbitrary DAGs.
                "select w.mrn from x in Providers, y in x.clients, \
                 z in y.primary_care_provider, w in x.clients where x.upin < 10",
                "immediately preceding",
            ),
            (
                // Re-binding a variable.
                "select y.mrn from x in Providers, y in x.clients, \
                 y in x.clients where x.upin < 10",
                "bound twice",
            ),
            (
                // Predicate on a variable nobody bound.
                "select z.upin from x in Providers, y in x.clients, \
                 z in y.primary_care_provider where v.upin < 10",
                "unbound variable `v`",
            ),
            (
                // Non-integer chain projection.
                "select z.name from x in Providers, y in x.clients, \
                 z in y.primary_care_provider where x.upin < 10",
                "must be an integer attribute",
            ),
            (
                // Later binding naming a collection.
                "select y.mrn from x in Providers, y in Patients where x.upin < 10",
                "only the first binding names a collection",
            ),
        ];
        for (text, needle) in cases {
            let err = compile_str(&store, text).unwrap_err().to_string();
            assert!(err.contains(needle), "{text}: {err}");
        }
    }
}
