//! A front end for the OQL fragment the paper exercises.
//!
//! O2 was "the only [commercial object database] featuring the
//! full-fledged OQL" (§2); rebuilding all of OQL is out of scope, but
//! the two query shapes the paper measures parse and compile here:
//!
//! ```text
//! select pa.age from pa in Patients where pa.num > 100000
//!
//! select [p.name, pa.age]
//! from p in Providers, pa in p.clients
//! where pa.mrn < 200000 and p.upin < 200
//! ```
//!
//! Pipeline: [`lexer`] → [`parser`] (AST in [`ast`]) → [`compile`]
//! (name resolution against the schema, producing a
//! [`Selection`](crate::spec::Selection) or a
//! [`TreeJoinSpec`](crate::spec::TreeJoinSpec) for the planner).

pub mod ast;
pub mod compile;
pub mod lexer;
pub mod parser;

pub use compile::{compile, compile_str, CompileError, CompiledQuery};
pub use parser::parse;
