//! Tokenizer for the OQL fragment.

use std::fmt;

/// A lexical token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Token {
    /// Keyword or identifier (`select`, `Providers`, `mrn`, …).
    Ident(String),
    /// Integer literal.
    Number(i64),
    /// One of `. , [ ] < <= > >= =`.
    Symbol(&'static str),
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Number(n) => write!(f, "{n}"),
            Token::Symbol(s) => write!(f, "{s}"),
        }
    }
}

/// A lexing error: the offending character and its byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LexError {
    /// Unexpected character.
    pub ch: char,
    /// Byte offset in the input.
    pub at: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unexpected character {:?} at byte {}", self.ch, self.at)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes `input`. Identifiers are `[A-Za-z_][A-Za-z0-9_]*`;
/// numbers are decimal, optionally with `_` separators.
pub fn lex(input: &str) -> Result<Vec<Token>, LexError> {
    let bytes = input.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            'A'..='Z' | 'a'..='z' | '_' => {
                let start = i;
                while i < bytes.len()
                    && matches!(bytes[i] as char, 'A'..='Z' | 'a'..='z' | '0'..='9' | '_')
                {
                    i += 1;
                }
                out.push(Token::Ident(input[start..i].to_string()));
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && matches!(bytes[i] as char, '0'..='9' | '_') {
                    i += 1;
                }
                let digits: String = input[start..i].chars().filter(|&c| c != '_').collect();
                let n = digits
                    .parse::<i64>()
                    .map_err(|_| LexError { ch: c, at: start })?;
                out.push(Token::Number(n));
            }
            '.' => {
                out.push(Token::Symbol("."));
                i += 1;
            }
            ',' => {
                out.push(Token::Symbol(","));
                i += 1;
            }
            '[' => {
                out.push(Token::Symbol("["));
                i += 1;
            }
            ']' => {
                out.push(Token::Symbol("]"));
                i += 1;
            }
            '<' | '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] as char == '=' {
                    out.push(Token::Symbol(if c == '<' { "<=" } else { ">=" }));
                    i += 2;
                } else {
                    out.push(Token::Symbol(if c == '<' { "<" } else { ">" }));
                    i += 1;
                }
            }
            '=' => {
                out.push(Token::Symbol("="));
                i += 1;
            }
            other => return Err(LexError { ch: other, at: i }),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_the_paper_query() {
        let toks = lex(
            "select [p.name, pa.age] from p in Providers, pa in p.clients \
                        where pa.mrn < 200_000 and p.upin <= 200",
        )
        .unwrap();
        assert!(toks.contains(&Token::Ident("select".into())));
        assert!(toks.contains(&Token::Symbol("[")));
        assert!(toks.contains(&Token::Number(200_000)));
        assert!(toks.contains(&Token::Symbol("<=")));
        let rendered: Vec<String> = toks.iter().map(|t| t.to_string()).collect();
        assert_eq!(&rendered[0], "select");
    }

    #[test]
    fn comparison_operators() {
        let toks = lex("< <= > >= =").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Symbol("<"),
                Token::Symbol("<="),
                Token::Symbol(">"),
                Token::Symbol(">="),
                Token::Symbol("="),
            ]
        );
    }

    #[test]
    fn rejects_garbage() {
        let err = lex("select ?").unwrap_err();
        assert_eq!(err.ch, '?');
        assert_eq!(err.at, 7);
        assert!(err.to_string().contains("unexpected"));
    }
}
