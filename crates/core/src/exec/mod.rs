//! The physical-operator execution layer.
//!
//! Every access pattern the paper measures — index range scans,
//! sequential scans, parent→child set navigation, child→parent
//! back-reference navigation, hash build/probe, residual predicates,
//! result construction — is a named operator here, and every join and
//! selection is a composition of them driven through one
//! [`ExecContext`]. The context does two jobs:
//!
//! 1. **Handle discipline.** Object fetches go through
//!    [`ExecContext::with_object`], which pairs the fetch with its
//!    release via an RAII [`ObjGuard`] — no operator can leak a pin,
//!    including on deleted-object early returns.
//! 2. **Counter attribution.** [`ExecContext::op`] opens a scope for
//!    one operator node and snapshots the store's counters (pages,
//!    RPCs, cache faults, handle traffic, CPU events, per-category
//!    nanoseconds) at every scope boundary. Each delta is credited to
//!    the *innermost* open scope, so the flattened per-operator rows
//!    sum **exactly** — field for field — to the query totals. That
//!    invariant is enforced by `crates/bench/tests/operator_invariants`.
//!
//! Scopes charge nothing themselves: wrapping existing executor code in
//! `op()` changes neither the charge sequence nor any counter, which is
//! how the refactor keeps figure output byte-identical.

use crate::spec::{ResultMode, TreeJoinSpec};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use tq_index::BTreeIndex;
use tq_objstore::{ObjBatch, ObjGuard, Object, ObjectStore, Rid};
use tq_pagestore::{CpuEvent, IoStats};

/// Default executor batch size when `TQ_BATCH` is unset: large enough
/// to amortize the per-scope snapshot pair over a thousand objects,
/// small enough that the pending-emit scratch stays cache-resident.
pub const DEFAULT_BATCH_SIZE: usize = 1024;

/// Process-wide default for [`ExecContext::batch_size`], set once at
/// startup from `TQ_BATCH` (binaries route through
/// `tq_bench::env_config_or_exit`). Relaxed ordering suffices: worker
/// threads are spawned after the knob is set, and any interleaving is
/// counter-invisible anyway (batched and scalar execution are
/// bitwise-identical by contract).
static DEFAULT_BATCH: AtomicUsize = AtomicUsize::new(DEFAULT_BATCH_SIZE);

/// Sets the process-wide default batch size (clamped to ≥ 1; 1 is the
/// legacy one-object-at-a-time path).
pub fn set_default_batch_size(n: usize) {
    DEFAULT_BATCH.store(n.max(1), Ordering::Relaxed);
}

/// The process-wide default batch size new contexts start with.
pub fn default_batch_size() -> usize {
    DEFAULT_BATCH.load(Ordering::Relaxed)
}

/// Process-wide intra-query parallel degree, set once at startup from
/// `TQ_PARALLEL` (binaries route through `tq_bench::env_config_or_exit`).
/// `1` — the default — is the exact serial path: the measurement layer
/// short-circuits to the unpartitioned executor, so serial output stays
/// byte-identical. `n > 1` partitions each join's driving access path
/// into morsels executed on `n` scoped worker threads (see
/// [`crate::join::parallel`]).
static DEFAULT_PARALLEL: AtomicUsize = AtomicUsize::new(1);

/// Sets the process-wide intra-query parallel degree (clamped to ≥ 1).
pub fn set_default_parallel_degree(n: usize) {
    DEFAULT_PARALLEL.store(n.max(1), Ordering::Relaxed);
}

/// The process-wide intra-query parallel degree.
pub fn default_parallel_degree() -> usize {
    DEFAULT_PARALLEL.load(Ordering::Relaxed)
}

/// Reusable rid scratch for chunked fan-out (set members, index-scan
/// pairs); lives in the [`ExecContext`] arena so a query allocates it
/// once across all its operators.
pub type RidBatch = Vec<Rid>;

/// Reusable `(left key, right key)` scratch for deferred `Emit`
/// flushes. Selections use the first slot only.
pub type ValueBatch = Vec<(i64, i64)>;

/// Why a cancellation check fired.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CancelReason {
    /// The query's simulated-time budget ran out.
    Deadline {
        /// The budget that was exceeded, in simulated nanoseconds.
        deadline_nanos: u64,
    },
    /// [`CancelToken::cancel`] was called (client disconnect, server
    /// shutdown).
    External,
}

/// The panic payload thrown when a cancellation check fires.
///
/// Cooperative cancellation must abandon an operator pipeline from
/// *inside* arbitrarily nested composition closures; unwinding is the
/// only way out that needs no `Result` plumbing through every operator
/// (and therefore cannot perturb the counter stream of uncancelled
/// queries). Callers that opt in via [`ExecContext::set_cancel`] must
/// wrap the query in `std::panic::catch_unwind` and downcast the
/// payload to this type; [`ObjGuard`]s pinned in unwound frames skip
/// their debug leak check while panicking, and the query's store clone
/// is discarded wholesale by the session layer.
#[derive(Clone, Copy, Debug)]
pub struct Cancelled {
    /// What fired.
    pub reason: CancelReason,
    /// Simulated nanoseconds the query had consumed when it was
    /// stopped.
    pub elapsed_nanos: u64,
}

/// Shared cancellation state for one query: an external flag plus an
/// optional deadline on *simulated* time. Simulated-time deadlines are
/// deterministic — the same query with the same budget is cancelled at
/// exactly the same operator boundary on every run and every machine.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    deadline_nanos: Option<u64>,
}

impl CancelToken {
    /// A token that only cancels on [`CancelToken::cancel`].
    pub fn new() -> Self {
        Self::default()
    }

    /// A token that additionally cancels once the query has consumed
    /// `nanos` of simulated time.
    pub fn with_deadline_nanos(nanos: u64) -> Self {
        Self {
            flag: Arc::new(AtomicBool::new(false)),
            deadline_nanos: Some(nanos),
        }
    }

    /// Requests cancellation from another thread.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Has [`CancelToken::cancel`] been called?
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }

    /// The simulated-time budget, if any.
    pub fn deadline_nanos(&self) -> Option<u64> {
        self.deadline_nanos
    }
}

/// The operator vocabulary.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Drain an index range into `(key, rid)` pairs (leaf-chain I/O,
    /// plus the rid sort when the §4.3 sorted-scan lesson is applied),
    /// or fetch objects in index-key order (the naive index scan).
    IndexRangeScan,
    /// Fetch every object of a collection (or a rid-sorted prefix) in
    /// physical order.
    SeqScan,
    /// Parent→child navigation through the set attribute.
    SetNav,
    /// Child→parent navigation through the back reference.
    BackRefNav,
    /// Build an operator hash table (fetch + insert + swap touches).
    HashBuild,
    /// Probe an operator hash table (fetch + probe + swap touches).
    HashProbe,
    /// Sort a gathered run (in memory or external with spill I/O).
    Sort,
    /// Merge rid-ordered runs (sort-merge join).
    Merge,
    /// Residual-predicate evaluation on pinned objects.
    Residual,
    /// Project attributes and append one result tuple.
    Emit,
    /// Rewrite fetched objects in place (or relocate them) and re-key
    /// their header-listed indexes — the write half of an update
    /// statement.
    Update,
    /// End-of-query handle drain (recorded by the measurement harness,
    /// outside any operator).
    Teardown,
    /// Work charged outside every operator scope (should stay zero).
    Other,
}

impl OpKind {
    /// Stable display name.
    pub fn label(&self) -> &'static str {
        match self {
            OpKind::IndexRangeScan => "IndexRangeScan",
            OpKind::SeqScan => "SeqScan",
            OpKind::SetNav => "SetNav",
            OpKind::BackRefNav => "BackRefNav",
            OpKind::HashBuild => "HashBuild",
            OpKind::HashProbe => "HashProbe",
            OpKind::Sort => "Sort",
            OpKind::Merge => "Merge",
            OpKind::Residual => "Residual",
            OpKind::Emit => "Emit",
            OpKind::Update => "Update",
            OpKind::Teardown => "Teardown",
            OpKind::Other => "Other",
        }
    }

    /// Parses a display name back (the statsdb CSV round trip).
    pub fn parse(s: &str) -> Option<OpKind> {
        Some(match s {
            "IndexRangeScan" => OpKind::IndexRangeScan,
            "SeqScan" => OpKind::SeqScan,
            "SetNav" => OpKind::SetNav,
            "BackRefNav" => OpKind::BackRefNav,
            "HashBuild" => OpKind::HashBuild,
            "HashProbe" => OpKind::HashProbe,
            "Sort" => OpKind::Sort,
            "Merge" => OpKind::Merge,
            "Residual" => OpKind::Residual,
            "Emit" => OpKind::Emit,
            "Update" => OpKind::Update,
            "Teardown" => OpKind::Teardown,
            "Other" => OpKind::Other,
            _ => return None,
        })
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Counter deltas attributed to one operator node. Every field is an
/// exactly summable `u64` (rates and high-water marks are derived,
/// never stored), so per-operator rows add up to the query totals
/// without rounding.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpCounters {
    /// I/O counters (Figure 3's page/RPC/fault fields).
    pub io: IoStats,
    /// Fresh handle allocations.
    pub handle_allocations: u64,
    /// Re-pins of live handles.
    pub handle_touches: u64,
    /// Revivals from the delayed-free pool.
    pub handle_revivals: u64,
    /// Pin drops.
    pub handle_unrefs: u64,
    /// Handle teardowns.
    pub handle_frees: u64,
    /// CPU events charged (handle traffic, attribute gets, compares,
    /// hashing, sorting, result appends, swap faults).
    pub cpu_events: u64,
    /// Simulated nanoseconds spent on disk I/O.
    pub io_nanos: u64,
    /// Simulated nanoseconds spent shipping pages client↔server.
    pub rpc_nanos: u64,
    /// Simulated nanoseconds of CPU work.
    pub cpu_nanos: u64,
    /// Simulated nanoseconds of operator-memory swap faults.
    pub swap_nanos: u64,
}

impl OpCounters {
    /// Absolute counter values right now — deltas between two
    /// snapshots attribute to operators.
    pub fn snapshot(store: &ObjectStore) -> Self {
        let h = store.handle_stats();
        let clock = store.clock();
        Self {
            io: store.stats(),
            handle_allocations: h.allocations,
            handle_touches: h.touches,
            handle_revivals: h.revivals,
            handle_unrefs: h.unrefs,
            handle_frees: h.frees,
            cpu_events: clock.cpu_events(),
            io_nanos: clock.io_time(),
            rpc_nanos: clock.rpc_time(),
            cpu_nanos: clock.cpu_time(),
            swap_nanos: clock.swap_time(),
        }
    }

    /// Field-wise `self - earlier` (all fields are monotone counters).
    pub fn delta_since(&self, earlier: &OpCounters) -> OpCounters {
        OpCounters {
            io: self.io.delta_since(&earlier.io),
            handle_allocations: self.handle_allocations - earlier.handle_allocations,
            handle_touches: self.handle_touches - earlier.handle_touches,
            handle_revivals: self.handle_revivals - earlier.handle_revivals,
            handle_unrefs: self.handle_unrefs - earlier.handle_unrefs,
            handle_frees: self.handle_frees - earlier.handle_frees,
            cpu_events: self.cpu_events - earlier.cpu_events,
            io_nanos: self.io_nanos - earlier.io_nanos,
            rpc_nanos: self.rpc_nanos - earlier.rpc_nanos,
            cpu_nanos: self.cpu_nanos - earlier.cpu_nanos,
            swap_nanos: self.swap_nanos - earlier.swap_nanos,
        }
    }

    /// Field-wise accumulate.
    pub fn add(&mut self, other: &OpCounters) {
        self.io.d2sc_read_pages += other.io.d2sc_read_pages;
        self.io.sc2cc_read_pages += other.io.sc2cc_read_pages;
        self.io.client_hits += other.io.client_hits;
        self.io.client_misses += other.io.client_misses;
        self.io.server_hits += other.io.server_hits;
        self.io.server_misses += other.io.server_misses;
        self.io.pages_written += other.io.pages_written;
        self.io.log_pages_written += other.io.log_pages_written;
        self.handle_allocations += other.handle_allocations;
        self.handle_touches += other.handle_touches;
        self.handle_revivals += other.handle_revivals;
        self.handle_unrefs += other.handle_unrefs;
        self.handle_frees += other.handle_frees;
        self.cpu_events += other.cpu_events;
        self.io_nanos += other.io_nanos;
        self.rpc_nanos += other.rpc_nanos;
        self.cpu_nanos += other.cpu_nanos;
        self.swap_nanos += other.swap_nanos;
    }

    /// All-zero?
    pub fn is_zero(&self) -> bool {
        *self == OpCounters::default()
    }

    /// Handle gets of any flavour (alloc + touch + revive).
    pub fn handle_gets(&self) -> u64 {
        self.handle_allocations + self.handle_touches + self.handle_revivals
    }

    /// Total simulated nanoseconds across the four categories.
    pub fn elapsed_nanos(&self) -> u64 {
        self.io_nanos + self.rpc_nanos + self.cpu_nanos + self.swap_nanos
    }

    /// Total simulated seconds.
    pub fn elapsed_secs(&self) -> f64 {
        self.elapsed_nanos() as f64 / 1e9
    }
}

/// One operator node of a finished trace, flattened pre-order.
#[derive(Clone, Debug, PartialEq)]
pub struct OpRecord {
    /// Operator kind.
    pub kind: OpKind,
    /// Deterministic instance label (collection name, "result", …).
    pub label: String,
    /// Nesting depth (0 = pipeline root).
    pub depth: u32,
    /// Counters exclusively attributed to this node.
    pub counters: OpCounters,
}

/// A finished per-operator attribution, pre-order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ExecTrace {
    /// The operator rows.
    pub ops: Vec<OpRecord>,
}

impl ExecTrace {
    /// Field-wise sum over every row — equals the counter deltas of the
    /// whole traced window.
    pub fn total(&self) -> OpCounters {
        let mut t = OpCounters::default();
        for op in &self.ops {
            t.add(&op.counters);
        }
        t
    }

    /// Appends a root-level row (the harness records the end-of-query
    /// handle drain this way, so the trace covers the full measured
    /// window).
    pub fn push_root(&mut self, kind: OpKind, label: &str, counters: OpCounters) {
        self.ops.push(OpRecord {
            kind,
            label: label.to_string(),
            depth: 0,
            counters,
        });
    }

    /// First row of the given kind, if any (test convenience). Prefer
    /// [`ExecTrace::find_all`] for pipelines where a kind can appear
    /// more than once (hybrid hash runs two `HashBuild`s, selections
    /// two `IndexRangeScan`s) — this returns only the first.
    pub fn find(&self, kind: OpKind) -> Option<&OpRecord> {
        self.ops.iter().find(|op| op.kind == kind)
    }

    /// Every row of the given kind, in pre-order. Pipelines with
    /// repeated operator kinds have one row per `(parent, label)`
    /// instance; summing over all of them gives the kind's true total
    /// where `find` would silently report just the first.
    pub fn find_all(&self, kind: OpKind) -> Vec<&OpRecord> {
        self.ops.iter().filter(|op| op.kind == kind).collect()
    }

    /// Field-wise counter sum over every row of the given kind.
    pub fn total_of(&self, kind: OpKind) -> OpCounters {
        let mut t = OpCounters::default();
        for op in self.find_all(kind) {
            t.add(&op.counters);
        }
        t
    }
}

struct Node {
    kind: OpKind,
    label: String,
    parent: Option<usize>,
    counters: OpCounters,
}

/// Drives a composition of operators over one store, attributing
/// counter deltas to the innermost open operator scope.
pub struct ExecContext<'a> {
    /// The store every operator works through.
    pub store: &'a mut ObjectStore,
    nodes: Vec<Node>,
    open: Vec<usize>,
    last: OpCounters,
    unattributed: OpCounters,
    cancel: Option<CancelToken>,
    start_nanos: u64,
    /// Objects fetched per [`ExecContext::with_batch`] call; 1 is the
    /// legacy one-at-a-time path.
    batch_size: usize,
    /// Scratch arena, reused across every operator of the query.
    obj_batch: ObjBatch,
    rid_scratch: RidBatch,
    val_scratch: ValueBatch,
}

impl<'a> ExecContext<'a> {
    /// Starts a trace: counters from here on are attributed.
    pub fn new(store: &'a mut ObjectStore) -> Self {
        let last = OpCounters::snapshot(store);
        let start_nanos = store.clock().elapsed();
        Self {
            store,
            nodes: Vec::new(),
            open: Vec::new(),
            last,
            unattributed: OpCounters::default(),
            cancel: None,
            start_nanos,
            batch_size: default_batch_size(),
            obj_batch: ObjBatch::default(),
            rid_scratch: RidBatch::new(),
            val_scratch: ValueBatch::new(),
        }
    }

    /// The batch size operators should chunk by (≥ 1).
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Overrides the batch size for this context (differential tests
    /// pin scalar vs batched execution without touching the process
    /// default). Clamped to ≥ 1.
    pub fn set_batch_size(&mut self, n: usize) {
        self.batch_size = n.max(1);
    }

    /// Takes the rid scratch buffer (empty). Return it with
    /// [`ExecContext::put_rid_batch`] so the next operator reuses the
    /// allocation.
    pub fn take_rid_batch(&mut self) -> RidBatch {
        let mut b = std::mem::take(&mut self.rid_scratch);
        b.clear();
        b
    }

    /// Returns the rid scratch buffer to the arena.
    pub fn put_rid_batch(&mut self, b: RidBatch) {
        self.rid_scratch = b;
    }

    /// Takes the value scratch buffer (empty); pair of
    /// [`ExecContext::put_val_batch`].
    pub fn take_val_batch(&mut self) -> ValueBatch {
        let mut b = std::mem::take(&mut self.val_scratch);
        b.clear();
        b
    }

    /// Returns the value scratch buffer to the arena.
    pub fn put_val_batch(&mut self, b: ValueBatch) {
        self.val_scratch = b;
    }

    /// Arms cooperative cancellation: every subsequent operator-scope
    /// entry and object fetch checks `token` and unwinds with a
    /// [`Cancelled`] payload when it fires. Without a token (the figure
    /// harness path) the checks cost nothing and charge nothing.
    pub fn set_cancel(&mut self, token: CancelToken) {
        self.cancel = Some(token);
    }

    /// Rebases the deadline origin to `nanos` on the *context's own*
    /// simulated clock. A morsel worker runs on a cloned store whose
    /// clock kept ticking through the coordinator's shared prefix
    /// (index scan, hash build); rebasing to the query's original
    /// start makes the worker's `Cancelled::elapsed_nanos` — and its
    /// deadline checks — measure from query start, exactly as the
    /// serial path would.
    pub fn rebase_start_nanos(&mut self, nanos: u64) {
        self.start_nanos = nanos;
    }

    /// The cancellation check, run at operator boundaries. Panics with
    /// a [`Cancelled`] payload — see that type for why unwinding.
    fn check_cancel(&self) {
        let Some(token) = &self.cancel else { return };
        let elapsed_nanos = self.store.clock().elapsed() - self.start_nanos;
        if token.is_cancelled() {
            std::panic::panic_any(Cancelled {
                reason: CancelReason::External,
                elapsed_nanos,
            });
        }
        if let Some(deadline_nanos) = token.deadline_nanos {
            if elapsed_nanos > deadline_nanos {
                std::panic::panic_any(Cancelled {
                    reason: CancelReason::Deadline { deadline_nanos },
                    elapsed_nanos,
                });
            }
        }
    }

    fn take_delta(&mut self) -> OpCounters {
        let now = OpCounters::snapshot(self.store);
        let delta = now.delta_since(&self.last);
        self.last = now;
        delta
    }

    fn credit(&mut self, delta: OpCounters) {
        match self.open.last() {
            Some(&id) => self.nodes[id].counters.add(&delta),
            None => self.unattributed.add(&delta),
        }
    }

    /// Runs `f` inside an operator scope. Repeated scopes with the same
    /// `(kind, label)` under the same parent accumulate into one node
    /// (a per-tuple navigation scope is still one operator row).
    pub fn op<R>(&mut self, kind: OpKind, label: &str, f: impl FnOnce(&mut Self) -> R) -> R {
        let parent = self.open.last().copied();
        self.op_inner(parent, kind, label, f)
    }

    /// Like [`ExecContext::op`], but the node's parent is given
    /// explicitly instead of taken from the innermost open scope.
    /// Batched pipelines use this to flush deferred `Emit`s *after*
    /// their driving scope has closed while still merging into the
    /// node the scalar path's nested scopes created — the flattened
    /// trace is identical. `parent` must come from
    /// [`ExecContext::current_node`] inside the intended scope.
    pub fn op_batch<R>(
        &mut self,
        parent: Option<usize>,
        kind: OpKind,
        label: &str,
        f: impl FnOnce(&mut Self) -> R,
    ) -> R {
        self.op_inner(parent, kind, label, f)
    }

    /// The innermost open node's id, for later [`ExecContext::op_batch`]
    /// re-entry. `None` outside every scope.
    pub fn current_node(&self) -> Option<usize> {
        self.open.last().copied()
    }

    fn op_inner<R>(
        &mut self,
        parent: Option<usize>,
        kind: OpKind,
        label: &str,
        f: impl FnOnce(&mut Self) -> R,
    ) -> R {
        self.check_cancel();
        let delta = self.take_delta();
        self.credit(delta);
        let id = self
            .nodes
            .iter()
            .position(|n| n.parent == parent && n.kind == kind && n.label == label)
            .unwrap_or_else(|| {
                self.nodes.push(Node {
                    kind,
                    label: label.to_string(),
                    parent,
                    counters: OpCounters::default(),
                });
                self.nodes.len() - 1
            });
        self.open.push(id);
        let out = f(self);
        let delta = self.take_delta();
        self.open.pop();
        self.nodes[id].counters.add(&delta);
        out
    }

    /// Fetches `rid` and runs `f` with the guarded object; the release
    /// is structural, so early returns (deleted objects) cannot leak
    /// the handle pin.
    pub fn with_object<R>(&mut self, rid: Rid, f: impl FnOnce(&mut Self, &ObjGuard) -> R) -> R {
        self.check_cancel();
        let guard = self.store.fetch_guard(rid);
        let out = f(self, &guard);
        self.store.release_guard(guard);
        out
    }

    /// Fetches a batch of distinct rids and runs `f` over the armed
    /// [`ObjBatch`]; every entry is released (in fetch order) on the
    /// way out. One cancellation check covers the whole batch — the
    /// per-object charge sequence is untouched (see
    /// [`tq_objstore::ObjectStore::fetch_batch`]), so counters are
    /// bitwise-identical to a `with_object` loop over the same rids.
    pub fn with_batch<R>(&mut self, rids: &[Rid], f: impl FnOnce(&mut Self, &ObjBatch) -> R) -> R {
        self.check_cancel();
        let mut batch = std::mem::take(&mut self.obj_batch);
        self.store.fetch_batch(rids, &mut batch);
        let out = f(self, &batch);
        self.store.release_batch(&mut batch);
        self.obj_batch = batch;
        out
    }

    /// Closes the trace. Anything charged outside every scope surfaces
    /// as an `Other` row (it should be zero; the invariant test counts
    /// it either way).
    pub fn finish(mut self) -> ExecTrace {
        debug_assert!(self.open.is_empty(), "finish with open operator scopes");
        let tail = self.take_delta();
        self.unattributed.add(&tail);
        let mut trace = ExecTrace::default();
        flatten(&self.nodes, None, 0, &mut trace.ops);
        if !self.unattributed.is_zero() {
            trace.push_root(OpKind::Other, "unattributed", self.unattributed);
        }
        trace
    }
}

fn flatten(nodes: &[Node], parent: Option<usize>, depth: u32, out: &mut Vec<OpRecord>) {
    for (i, n) in nodes.iter().enumerate() {
        if n.parent == parent {
            out.push(OpRecord {
                kind: n.kind,
                label: n.label.clone(),
                depth,
                counters: n.counters,
            });
            flatten(nodes, Some(i), depth + 1, out);
        }
    }
}

/// Integer attribute accessor — keys and projections are Int by
/// construction in the paper's Derby schemas. The one shared copy
/// (selections and joins used to carry private duplicates).
pub fn int_attr(obj: &Object, attr: usize) -> i64 {
    obj.values[attr]
        .as_int()
        .expect("key/projection attributes must be Int") as i64
}

/// `IndexRangeScan`: drains `(key, rid)` pairs for keys `< hi_exclusive`
/// from the index, optionally rid-sorting them (charging the sort
/// compares) so the subsequent fetches run in physical order — the
/// §4.3 sorted-scan lesson applied inside the joins.
pub fn index_range_scan(
    ctx: &mut ExecContext<'_>,
    index: &BTreeIndex,
    hi_exclusive: i64,
    sort: bool,
    label: &str,
) -> Vec<(i64, Rid)> {
    ctx.op(OpKind::IndexRangeScan, label, |ctx| {
        let mut cursor = index.range(ctx.store.stack_mut(), i64::MIN + 1, hi_exclusive - 1);
        let mut out: Vec<(i64, Rid)> = Vec::new();
        while let Some(pair) = cursor.next(ctx.store.stack_mut()) {
            out.push(pair);
        }
        if sort && out.len() > 1 {
            let n = out.len() as f64;
            ctx.store
                .charge(CpuEvent::SortCompare, (n * n.log2()).ceil() as u64);
            out.sort_unstable_by_key(|&(_, rid)| rid);
        }
        out
    })
}

/// `Emit` charge for one result tuple under the spec's result mode.
pub fn charge_result_append(store: &mut ObjectStore, mode: ResultMode) {
    store.charge(
        match mode {
            ResultMode::Persistent => CpuEvent::ResultAppendPersistent,
            ResultMode::Transient => CpuEvent::ResultAppendTransient,
        },
        1,
    );
}

/// The operator pipeline a join algorithm runs, in execution order —
/// the *specs* the estimator costs and the executor traces share. Kept
/// next to the executor so the two cannot drift; the estimator's
/// per-operator breakdown uses exactly these kinds, and a test pins
/// each algorithm's measured trace to this vocabulary.
pub fn join_pipeline(algo: crate::spec::JoinAlgo, spec: &TreeJoinSpec) -> Vec<(OpKind, String)> {
    use crate::spec::JoinAlgo;
    let parents = spec.parents.clone();
    let children = spec.children.clone();
    match algo {
        JoinAlgo::Nl => vec![
            (OpKind::IndexRangeScan, parents),
            (OpKind::SetNav, children),
            (OpKind::Emit, "result".to_string()),
        ],
        JoinAlgo::Nojoin => vec![
            (OpKind::IndexRangeScan, children),
            (OpKind::BackRefNav, parents),
            (OpKind::Emit, "result".to_string()),
        ],
        JoinAlgo::Phj => vec![
            (OpKind::IndexRangeScan, parents.clone()),
            (OpKind::HashBuild, parents),
            (OpKind::IndexRangeScan, children.clone()),
            (OpKind::HashProbe, children),
            (OpKind::Emit, "result".to_string()),
        ],
        JoinAlgo::Chj => vec![
            (OpKind::IndexRangeScan, children.clone()),
            (OpKind::HashBuild, children),
            (OpKind::IndexRangeScan, parents.clone()),
            (OpKind::HashProbe, parents),
            (OpKind::Emit, "result".to_string()),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tq_objstore::{AttrType, Schema, Value};
    use tq_pagestore::{CacheConfig, CostModel, StorageStack};

    fn small_store(n: i64) -> (ObjectStore, Vec<Rid>) {
        let mut schema = Schema::new();
        let item = schema.add_class("Item", vec![("key", AttrType::Int)]);
        let stack = StorageStack::new(CostModel::sparc20(), CacheConfig::default());
        let mut store = ObjectStore::new(schema, stack);
        let file = store.create_file("items");
        let rids: Vec<Rid> = (0..n)
            .map(|i| store.insert(file, item, &[Value::Int(i as i32)], true))
            .collect();
        store.cold_restart();
        store.reset_metrics();
        (store, rids)
    }

    #[test]
    fn deltas_attribute_to_the_innermost_scope() {
        let (mut store, rids) = small_store(10);
        let mut ctx = ExecContext::new(&mut store);
        ctx.op(OpKind::SeqScan, "Items", |ctx| {
            for &rid in &rids[..4] {
                ctx.with_object(rid, |_ctx, g| assert!(!g.is_deleted()));
            }
            ctx.op(OpKind::Emit, "result", |ctx| {
                ctx.store.charge(CpuEvent::ResultAppendTransient, 1);
            });
        });
        let trace = ctx.finish();
        let scan = trace.find(OpKind::SeqScan).unwrap();
        let emit = trace.find(OpKind::Emit).unwrap();
        assert_eq!(scan.counters.handle_allocations, 4);
        assert_eq!(scan.counters.handle_unrefs, 4);
        assert_eq!(emit.counters.handle_allocations, 0, "emit fetched nothing");
        assert_eq!(emit.counters.cpu_events, 1);
        assert_eq!(emit.depth, 1, "emit nests under the scan");
        assert!(trace.find(OpKind::Other).is_none(), "everything attributed");
    }

    #[test]
    fn repeated_scopes_merge_into_one_node() {
        let (mut store, rids) = small_store(6);
        let mut ctx = ExecContext::new(&mut store);
        for &rid in &rids {
            ctx.op(OpKind::SetNav, "children", |ctx| {
                ctx.with_object(rid, |_ctx, _g| ());
            });
        }
        let trace = ctx.finish();
        let navs: Vec<_> = trace
            .ops
            .iter()
            .filter(|o| o.kind == OpKind::SetNav)
            .collect();
        assert_eq!(navs.len(), 1, "per-tuple scopes share one node");
        assert_eq!(navs[0].counters.handle_gets(), 6);
    }

    #[test]
    fn trace_total_equals_window_delta_exactly() {
        let (mut store, rids) = small_store(50);
        let before = OpCounters::snapshot(&store);
        let mut ctx = ExecContext::new(&mut store);
        ctx.op(OpKind::SeqScan, "Items", |ctx| {
            for &rid in &rids {
                ctx.with_object(rid, |ctx, g| {
                    let _ = int_attr(g.object(), 0);
                    ctx.store.charge(CpuEvent::AttrGet, 1);
                });
            }
        });
        // Charge something *outside* every scope: it must surface as
        // Other, keeping the sum exact.
        ctx.store.charge(CpuEvent::Compare, 3);
        let trace = ctx.finish();
        let after = OpCounters::snapshot(&store);
        assert_eq!(trace.total(), after.delta_since(&before));
        assert_eq!(trace.find(OpKind::Other).unwrap().counters.cpu_events, 3);
    }

    #[test]
    fn deadline_cancellation_unwinds_with_payload() {
        let (mut store, rids) = small_store(50);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut ctx = ExecContext::new(&mut store);
            // 1 ns of simulated budget: the first charged page access
            // blows it, and the next boundary check fires.
            ctx.set_cancel(CancelToken::with_deadline_nanos(1));
            ctx.op(OpKind::SeqScan, "Items", |ctx| {
                for &rid in &rids {
                    ctx.with_object(rid, |_ctx, _g| ());
                }
            });
            ctx.finish()
        }));
        let payload = result.expect_err("deadline must cancel the scan");
        let cancelled = payload
            .downcast_ref::<Cancelled>()
            .expect("payload is exec::Cancelled");
        assert_eq!(
            cancelled.reason,
            CancelReason::Deadline { deadline_nanos: 1 }
        );
        assert!(cancelled.elapsed_nanos > 1);
    }

    #[test]
    fn external_cancellation_fires_at_the_next_boundary() {
        let (mut store, rids) = small_store(4);
        let token = CancelToken::new();
        let remote = token.clone();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut ctx = ExecContext::new(&mut store);
            ctx.set_cancel(token);
            ctx.op(OpKind::SeqScan, "Items", |ctx| {
                for (i, &rid) in rids.iter().enumerate() {
                    if i == 2 {
                        remote.cancel(); // what another thread would do
                    }
                    ctx.with_object(rid, |_ctx, _g| ());
                }
            });
        }));
        let payload = result.expect_err("cancel() must stop the scan");
        let cancelled = payload.downcast_ref::<Cancelled>().unwrap();
        assert_eq!(cancelled.reason, CancelReason::External);
    }

    #[test]
    fn unarmed_context_charges_and_attributes_identically() {
        // The same scan, with and without an (unfired) token: traces
        // must be bitwise identical — cancellation support costs the
        // figure harness nothing.
        let run = |arm: bool| {
            let (mut store, rids) = small_store(30);
            let mut ctx = ExecContext::new(&mut store);
            if arm {
                ctx.set_cancel(CancelToken::with_deadline_nanos(u64::MAX));
            }
            ctx.op(OpKind::SeqScan, "Items", |ctx| {
                for &rid in &rids {
                    ctx.with_object(rid, |ctx, g| {
                        let _ = int_attr(g.object(), 0);
                        ctx.store.charge(CpuEvent::AttrGet, 1);
                    });
                }
            });
            ctx.finish()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn find_all_sees_rows_that_find_shadows() {
        let (mut store, rids) = small_store(8);
        let mut ctx = ExecContext::new(&mut store);
        // Two same-kind scopes with different labels — two rows, the
        // shape hybrid hashing produces (HashBuild on the collection,
        // HashBuild on "spill").
        ctx.op(OpKind::HashBuild, "Items", |ctx| {
            for &rid in &rids[..5] {
                ctx.with_object(rid, |_ctx, _g| ());
            }
        });
        ctx.op(OpKind::HashBuild, "spill", |ctx| {
            for &rid in &rids[5..] {
                ctx.with_object(rid, |_ctx, _g| ());
            }
        });
        let trace = ctx.finish();
        let rows = trace.find_all(OpKind::HashBuild);
        assert_eq!(rows.len(), 2, "one row per (parent, kind, label)");
        // `find` silently reports just the first row; the kind's true
        // total needs both.
        assert_eq!(
            trace
                .find(OpKind::HashBuild)
                .unwrap()
                .counters
                .handle_gets(),
            5
        );
        assert_eq!(trace.total_of(OpKind::HashBuild).handle_gets(), 8);
    }

    #[test]
    fn batched_fetch_and_deferred_emit_trace_identically() {
        // The batch protocol is an execution detail: one with_batch +
        // one flushed Emit scope must produce the same trace as the
        // per-tuple loop with a nested Emit per result.
        let scalar = {
            let (mut store, rids) = small_store(40);
            let mut ctx = ExecContext::new(&mut store);
            ctx.op(OpKind::SeqScan, "Items", |ctx| {
                for &rid in &rids {
                    ctx.with_object(rid, |ctx, g| {
                        let _ = int_attr(g.object(), 0);
                        ctx.store.charge(CpuEvent::Compare, 1);
                        ctx.op(OpKind::Emit, "result", |ctx| {
                            ctx.store.charge(CpuEvent::ResultAppendTransient, 1);
                        });
                    });
                }
            });
            ctx.finish()
        };
        let batched = {
            let (mut store, rids) = small_store(40);
            let mut ctx = ExecContext::new(&mut store);
            ctx.set_batch_size(16);
            ctx.op(OpKind::SeqScan, "Items", |ctx| {
                let mut pending = 0u64;
                for chunk in rids.chunks(16) {
                    ctx.with_batch(chunk, |ctx, objs| {
                        for i in 0..objs.len() {
                            let _ = int_attr(objs.object(i), 0);
                            ctx.store.charge(CpuEvent::Compare, 1);
                            pending += 1;
                        }
                    });
                    let emit_parent = ctx.current_node();
                    ctx.op_batch(emit_parent, OpKind::Emit, "result", |ctx| {
                        ctx.store.charge(CpuEvent::ResultAppendTransient, pending);
                    });
                    pending = 0;
                }
            });
            ctx.finish()
        };
        assert_eq!(scalar, batched);
    }

    #[test]
    fn opkind_labels_round_trip() {
        for kind in [
            OpKind::IndexRangeScan,
            OpKind::SeqScan,
            OpKind::SetNav,
            OpKind::BackRefNav,
            OpKind::HashBuild,
            OpKind::HashProbe,
            OpKind::Sort,
            OpKind::Merge,
            OpKind::Residual,
            OpKind::Emit,
            OpKind::Update,
            OpKind::Teardown,
            OpKind::Other,
        ] {
            assert_eq!(OpKind::parse(kind.label()), Some(kind));
        }
        assert_eq!(OpKind::parse("NoSuchOp"), None);
    }
}
