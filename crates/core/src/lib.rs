//! # tq-query — queries over trees
//!
//! The core of the `treequery` reproduction of *Benchmarking Queries
//! over Trees* (SIGMOD 2000): the query algorithms whose behaviour the
//! paper measures, an analytic cost estimator, a heuristic and a
//! cost-based planner (the thing the authors set out to build), and a
//! small OQL front end for the query fragment the paper exercises.
//!
//! * [`exec`] — the physical-operator execution layer: every access
//!   pattern (scans, navigations, hash build/probe, …) is a named
//!   operator driven through an [`exec::ExecContext`] that enforces
//!   RAII handle pairing and attributes counter deltas per operator.
//! * [`select`] — sequential scan, index scan, and the Figure 8
//!   *sorted* index scan over a single collection.
//! * [`join`] — NL, NOJOIN, PHJ and CHJ over a 1-N tree (§5.1),
//!   including the Figure 10 hash-table sizing and the swap behaviour
//!   that inverts Figure 12's 90/90 cell.
//! * [`swap`] — the operator-memory paging simulation.
//! * [`plan`] — the logical plan IR for N-way binding chains, with
//!   connected-order and physical-plan enumeration.
//! * [`estimator`] / [`planner`] — analytic costs and plan choice,
//!   including the three chain-ordering policies (estimator-driven,
//!   Simpli-Squared size-only, syntactic).
//! * [`maintenance`] — header-driven index maintenance on updates
//!   (the §4.4 retiring-doctor scenario).
//! * [`update`] — the range-predicated update statement the concurrent
//!   service's mixed workloads run (scan + rewrite + index re-key,
//!   fully operator-attributed).
//! * [`oql`] — `select … from … where …` parsing and compilation.

pub mod engine;
pub mod estimator;
pub mod exec;
pub mod explain;
pub mod join;
pub mod maintenance;
pub mod oql;
pub mod plan;
pub mod planner;
pub mod select;
pub mod spec;
pub mod swap;
pub mod update;

pub use engine::{Engine, EngineError, QueryOutcome};
pub use estimator::{ChainFacts, EstimateBreakdown, OpEstimate};
pub use exec::{
    CancelReason, CancelToken, Cancelled, ExecContext, ExecTrace, OpCounters, OpKind, OpRecord,
};
pub use explain::{render_chain_plan, render_estimate, render_trace};
pub use join::parallel::{run_join_parallel, MorselPanic, ParallelRun};
pub use join::{
    hash_table_bytes, run_chain, run_join, run_join_with, ChainReport, JoinContext, JoinOptions,
    JoinReport,
};
pub use plan::{chain_pipeline, ChainSpec, LogicalPlan, RootAccess, StepAlgo};
pub use planner::{plan_chain, ChainChoice, PlannerPolicy};
pub use select::{index_scan, seq_scan, sorted_index_scan, SelectReport};
pub use spec::{AttrPredicate, CmpOp, HashKeyMode, JoinAlgo, ResultMode, Selection, TreeJoinSpec};
pub use swap::SwapSim;
pub use update::{run_update, UpdateOutcome, UpdateSpec};

#[cfg(test)]
mod thread_safety {
    use super::*;

    /// Compile-time proof that a whole engine (store + indexes +
    /// planner) can move to a worker thread.
    #[test]
    fn engine_is_send_and_sync() {
        fn assert_send<T: Send>() {}
        fn assert_sync<T: Sync>() {}
        assert_send::<Engine>();
        assert_sync::<Engine>();
        assert_send::<JoinReport>();
        assert_send::<SelectReport>();
    }

    /// The morsel machinery's contracts: the token is shared across
    /// worker threads, the typed panic crosses the join boundary, and
    /// a completed run moves back to the coordinator.
    #[test]
    fn parallel_types_are_send_and_sync() {
        fn assert_send<T: Send>() {}
        fn assert_sync<T: Sync>() {}
        assert_send::<CancelToken>();
        assert_sync::<CancelToken>();
        assert_send::<MorselPanic>();
        assert_sync::<MorselPanic>();
        assert_send::<ParallelRun>();
    }
}
