//! Morsel-driven intra-query parallelism (ROADMAP: "as fast as the
//! hardware allows").
//!
//! One query, all cores: the query's *driving* access path — the
//! drained `(key, rid)` list of its outer index scan — is partitioned
//! into **morsels**, contiguous batch-aligned runs, and executed on a
//! std-only [`std::thread::scope`] worker pool. Each morsel worker
//! owns:
//!
//! * a private [`ObjectStore`] clone — carrying the coordinator's warm
//!   cache at spawn time and evolving independently, which is exactly
//!   the per-shard private-cache discipline of the scatter-gather
//!   router, now in-process (aggregate cache capacity therefore scales
//!   with the degree; cache-hit counters are *not* topology-invariant
//!   and the differential oracle does not pin them);
//! * a private [`ExecContext`] whose partial trace is merged row-wise
//!   (same `(kind, label, depth)` rows sum field-for-field, exactly
//!   the `merge_stats` arithmetic) into one serial-shaped trace;
//! * the query's [`CancelToken`], rebased to the query's start so a
//!   deadline fires against total simulated time; a worker that
//!   unwinds with [`Cancelled`] trips the shared token so its siblings
//!   stop at their next operator boundary.
//!
//! Per-algorithm split (each worker replays the *identical* per-item
//! charge sequence via the loop bodies shared with the serial path):
//!
//! * **NL** — coordinator drains the parent index range; workers run
//!   [`nl::scan_parents`] over parent chunks.
//! * **NOJOIN** — coordinator gathers (and rid-sorts) the child scan;
//!   workers run [`nojoin::scan_children`] over child chunks.
//! * **PHJ** — coordinator builds the shared parent table serially;
//!   workers probe child chunks against it ([`phj::probe_children`]),
//!   each against a private clone of the post-build swap simulation.
//! * **CHJ** — workers build partial child tables over child chunks
//!   ([`chj::build_children`]); the coordinator concatenates the
//!   per-parent slot vectors in worker order (reproducing the serial
//!   child order exactly) and probes serially.
//!
//! What is deterministic at every degree, and byte-identical to the
//! serial run: result counts and pairs (morsel-order flush), per-row
//! `handle_gets` (object fetches partition exactly), Emit rows
//! (per-pair charges are cache-independent), and the attribution
//! invariant (rows sum to the merged totals). What diverges, bounded
//! and documented: cache hit/miss splits and swap-fault counts, for
//! the same reason the sharded oracle lets them diverge — private
//! caches see different access interleaves.
//!
//! Degree 1 never takes this path at all: [`run_join_parallel`]
//! short-circuits to [`run_join_with`], so serial output is
//! byte-identical by construction (the golden-stdout matrix enforces
//! it).

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

use super::{chj, nl, nojoin, phj, run_join_with, JoinContext, JoinOptions, JoinReport};
use crate::exec::{CancelToken, Cancelled, ExecContext, ExecTrace, OpCounters, OpKind, OpRecord};
use crate::spec::{HashKeyMode, JoinAlgo, TreeJoinSpec};
use crate::swap::SwapSim;
use tq_fasthash::FxHashMap;
use tq_objstore::{ObjectStore, Rid};
use tq_pagestore::IoStats;

/// A morsel worker panicked with a non-[`Cancelled`] payload. The
/// typed, joined alternative to a hung scope or a leaked guard: the
/// coordinator joins every worker, drops their store clones (the
/// primary store holds no pins — the coordinator's own scopes closed
/// cleanly), and surfaces the first failing worker. The session layer
/// treats it like a cancellation: discard the database clone, refill
/// the session, answer with a typed error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MorselPanic {
    /// Index of the first worker (in morsel order) that panicked.
    pub worker: usize,
    /// Its panic message, when one was attached.
    pub message: String,
}

impl std::fmt::Display for MorselPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "morsel worker {} panicked: {}",
            self.worker, self.message
        )
    }
}

impl std::error::Error for MorselPanic {}

/// A parallel join run: the merged report plus the worker-side counter
/// deltas the coordinator's own store never saw. The measurement layer
/// adds them to the coordinator's window so `Stat` totals — and the
/// trace-sums-to-total invariant — stay exact.
#[derive(Clone, Debug)]
pub struct ParallelRun {
    /// Merged report; its trace is serial-shaped (same rows, same
    /// order, counters summed across coordinator and workers).
    pub report: JoinReport,
    /// Sum of the workers' I/O counter deltas.
    pub workers_io: IoStats,
    /// Sum of the workers' simulated-clock deltas.
    pub workers_nanos: u64,
    /// Sum of the workers' end-of-query drains. Each worker's clone
    /// carries part of the query's deferred handle-frees (the zombie
    /// pool), and the paper's delayed-destruction protocol pays for
    /// them at end of query — so each worker drains its own pool
    /// inside its measured window before the clone dies, and the
    /// measurement layer folds these counters into the query's single
    /// trailing `Teardown` row. Without this, teardown cost would
    /// silently shrink with the degree.
    pub workers_teardown: OpCounters,
}

/// Worker index forced to panic, for the panic-in-morsel tests.
static FAIL_WORKER: AtomicUsize = AtomicUsize::new(usize::MAX);

/// Test hook: the next parallel run's worker `w` panics on entry.
#[doc(hidden)]
pub fn inject_worker_panic(w: usize) {
    FAIL_WORKER.store(w, Ordering::SeqCst);
}

/// Test hook: clear [`inject_worker_panic`].
#[doc(hidden)]
pub fn clear_worker_panic() {
    FAIL_WORKER.store(usize::MAX, Ordering::SeqCst);
}

/// Partitions `n` driving items into up to `degree` contiguous,
/// batch-aligned spans. Alignment matters: worker-local
/// `chunks(batch)` boundaries then coincide with the serial loop's, so
/// batched fetch charges partition exactly instead of fragmenting at
/// span edges. Pure arithmetic — the same inputs give the same morsels
/// on every run and every host.
pub fn morsel_spans(n: usize, batch: usize, degree: usize) -> Vec<(usize, usize)> {
    if n == 0 || degree == 0 {
        return Vec::new();
    }
    let batch = batch.max(1);
    let n_batches = n.div_ceil(batch);
    let span = n_batches.div_ceil(degree) * batch;
    (0..degree)
        .map_while(|w| {
            let lo = w * span;
            (lo < n).then(|| (lo, (lo + span).min(n)))
        })
        .collect()
}

/// One worker's completed morsel.
struct Morsel<T> {
    /// Partial report (counts, pairs, swap-fault delta, trace).
    report: JoinReport,
    /// I/O counter delta on the worker's store clone.
    io: IoStats,
    /// Simulated-clock delta on the worker's store clone.
    nanos: u64,
    /// The worker's end-of-query drain (deferred handle-frees), run on
    /// its clone inside the measured window.
    teardown: OpCounters,
    /// Algorithm-specific payload (CHJ's partial table).
    extra: T,
}

/// Runs one scoped worker per span, each on a private clone of `base`.
/// Joins every worker before returning. A worker that unwinds with
/// [`Cancelled`] trips the shared token (stopping siblings at their
/// next boundary) and re-raises after the join; any other panic is
/// captured as a typed [`MorselPanic`] (first worker in morsel order
/// wins; a concurrent `Cancelled` loses to it — a real defect outranks
/// a timeout).
fn run_morsels<T, F>(
    base: &ObjectStore,
    spans: &[(usize, usize)],
    cancel: Option<&CancelToken>,
    t0: u64,
    collect: bool,
    work: F,
) -> Result<Vec<Morsel<T>>, MorselPanic>
where
    T: Send,
    F: Fn(&mut ExecContext<'_>, (usize, usize), &mut JoinReport) -> T + Sync,
{
    let work = &work;
    let outcomes: Vec<Result<Morsel<T>, Box<dyn Any + Send>>> = std::thread::scope(|s| {
        let handles: Vec<_> = spans
            .iter()
            .enumerate()
            .map(|(w, &span)| {
                let mut store = base.clone();
                let token = cancel.cloned();
                s.spawn(move || {
                    let clock0 = store.clock().elapsed();
                    let io0 = store.stats();
                    let out = catch_unwind(AssertUnwindSafe(|| {
                        if FAIL_WORKER.load(Ordering::SeqCst) == w {
                            panic!("injected morsel failure (worker {w})");
                        }
                        let mut ex = ExecContext::new(&mut store);
                        if let Some(t) = token.clone() {
                            ex.set_cancel(t);
                        }
                        ex.rebase_start_nanos(t0);
                        let mut report = JoinReport {
                            pairs: collect.then(Vec::new),
                            ..Default::default()
                        };
                        let extra = work(&mut ex, span, &mut report);
                        report.trace = ex.finish();
                        (report, extra)
                    }));
                    match out {
                        Ok((report, extra)) => {
                            // Drain this worker's share of the query's
                            // deferred handle-frees before the clone
                            // dies, still inside the measured window.
                            let before = OpCounters::snapshot(&store);
                            store.end_of_query();
                            let teardown = OpCounters::snapshot(&store).delta_since(&before);
                            Ok(Morsel {
                                io: store.stats().delta_since(&io0),
                                nanos: store.clock().elapsed() - clock0,
                                report,
                                teardown,
                                extra,
                            })
                        }
                        Err(payload) => {
                            if payload.downcast_ref::<Cancelled>().is_some() {
                                if let Some(t) = &token {
                                    t.cancel();
                                }
                            }
                            Err(payload)
                        }
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(Err))
            .collect()
    });

    let mut morsels = Vec::with_capacity(outcomes.len());
    let mut cancelled: Option<Box<dyn Any + Send>> = None;
    let mut panicked: Option<MorselPanic> = None;
    for (w, out) in outcomes.into_iter().enumerate() {
        match out {
            Ok(m) => morsels.push(m),
            Err(payload) => {
                if payload.downcast_ref::<Cancelled>().is_some() {
                    cancelled.get_or_insert(payload);
                } else if panicked.is_none() {
                    panicked = Some(MorselPanic {
                        worker: w,
                        message: panic_message(payload.as_ref()),
                    });
                }
            }
        }
    }
    if let Some(p) = panicked {
        return Err(p);
    }
    if let Some(c) = cancelled {
        // Same unwind protocol as the serial path: the session layer
        // catches the payload and discards the database clone.
        resume_unwind(c);
    }
    Ok(morsels)
}

/// Best-effort panic-payload text.
fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Merges trace segments — coordinator prefix, workers in morsel
/// order, coordinator suffix — into one serial-shaped trace. Rows with
/// the same `(kind, label, depth)` sum field-for-field (the
/// `merge_stats` arithmetic at operator granularity); a row a segment
/// introduces is spliced right after the last row it shared with the
/// merge so far, preserving every segment's serial pre-order.
fn merge_trace_segments(segments: impl IntoIterator<Item = ExecTrace>) -> ExecTrace {
    let mut ops: Vec<OpRecord> = Vec::new();
    for seg in segments {
        let mut cursor = ops.len();
        for row in seg.ops {
            match ops
                .iter()
                .position(|r| r.kind == row.kind && r.label == row.label && r.depth == row.depth)
            {
                Some(pos) => {
                    ops[pos].counters.add(&row.counters);
                    cursor = pos + 1;
                }
                None => {
                    ops.insert(cursor, row);
                    cursor += 1;
                }
            }
        }
    }
    ExecTrace { ops }
}

/// Folds completed morsels into the coordinator's report, collecting
/// their traces (in morsel order) and extras, and summing their store
/// deltas.
fn fold_morsels<T>(
    report: &mut JoinReport,
    segments: &mut Vec<ExecTrace>,
    morsels: Vec<Morsel<T>>,
    extras: &mut Vec<T>,
) -> (IoStats, u64, OpCounters) {
    let mut io = IoStats::default();
    let mut nanos = 0u64;
    let mut teardown = OpCounters::default();
    for m in morsels {
        report.results += m.report.results;
        report.parents_scanned += m.report.parents_scanned;
        report.children_scanned += m.report.children_scanned;
        report.swap_faults += m.report.swap_faults;
        if let Some(pairs) = report.pairs.as_mut() {
            pairs.extend(m.report.pairs.unwrap_or_default());
        }
        io.accumulate(&m.io);
        nanos += m.nanos;
        teardown.add(&m.teardown);
        segments.push(m.report.trace);
        extras.push(m.extra);
    }
    (io, nanos, teardown)
}

/// [`run_join_with`], morsel-parallel at `degree > 1`.
///
/// At `degree <= 1` — and for hybrid hashing, whose partition loop is
/// already its own blocking decomposition — this IS `run_join_with`:
/// same code path, byte-identical output. At higher degrees the
/// driving scan is split with [`morsel_spans`] and executed as
/// documented on the module. Cancellation unwinds with [`Cancelled`]
/// exactly like the serial path; a non-cancellation worker panic
/// surfaces as `Err(MorselPanic)` after every worker has been joined,
/// with no pinned handle left on the coordinator's store.
pub fn run_join_parallel(
    algo: JoinAlgo,
    ctx: &mut JoinContext<'_>,
    spec: &TreeJoinSpec,
    opts: &JoinOptions,
    collect: bool,
    cancel: Option<CancelToken>,
    degree: usize,
) -> Result<ParallelRun, MorselPanic> {
    if degree <= 1 || opts.hybrid_hashing {
        return Ok(ParallelRun {
            report: run_join_with(algo, ctx, spec, opts, collect, cancel),
            workers_io: IoStats::default(),
            workers_nanos: 0,
            workers_teardown: OpCounters::default(),
        });
    }
    let t0 = ctx.store.clock().elapsed();
    match algo {
        JoinAlgo::Nl => nl_parallel(ctx, spec, collect, cancel, degree, t0),
        JoinAlgo::Nojoin => nojoin_parallel(ctx, spec, opts, collect, cancel, degree, t0),
        JoinAlgo::Phj => phj_parallel(ctx, spec, opts, collect, cancel, degree, t0),
        JoinAlgo::Chj => chj_parallel(ctx, spec, opts, collect, cancel, degree, t0),
    }
}

/// Opens a coordinator context with the query's token armed and its
/// deadline origin rebased to `t0`.
fn coordinator_ex<'a>(
    store: &'a mut ObjectStore,
    cancel: &Option<CancelToken>,
    t0: u64,
) -> ExecContext<'a> {
    let mut ex = ExecContext::new(store);
    if let Some(t) = cancel.clone() {
        ex.set_cancel(t);
    }
    ex.rebase_start_nanos(t0);
    ex
}

fn nl_parallel(
    ctx: &mut JoinContext<'_>,
    spec: &TreeJoinSpec,
    collect: bool,
    cancel: Option<CancelToken>,
    degree: usize,
    t0: u64,
) -> Result<ParallelRun, MorselPanic> {
    let mut report = JoinReport {
        pairs: collect.then(Vec::new),
        ..Default::default()
    };
    // Prefix: drain the parent index range — the gather half of the
    // serial IndexRangeScan node (the serial loop interleaves it with
    // the fetches; the node's total charges are identical).
    let parent_index = ctx.parent_index;
    let mut ex = coordinator_ex(ctx.store, &cancel, t0);
    let batch = ex.batch_size();
    let parents: Vec<(i64, Rid)> = ex.op(OpKind::IndexRangeScan, &spec.parents, |ex| {
        let mut cursor = parent_index.range(
            ex.store.stack_mut(),
            i64::MIN + 1,
            spec.parent_key_limit - 1,
        );
        let mut out = Vec::new();
        while let Some(pair) = cursor.next(ex.store.stack_mut()) {
            out.push(pair);
        }
        out
    });
    let prefix = ex.finish();

    let spans = morsel_spans(parents.len(), batch, degree);
    let morsels = run_morsels(
        ctx.store,
        &spans,
        cancel.as_ref(),
        t0,
        collect,
        |ex, (lo, hi), report| {
            let parent_class = ex.store.collection(&spec.parents).class;
            let child_class = ex.store.collection(&spec.children).class;
            ex.op(OpKind::IndexRangeScan, &spec.parents, |ex| {
                let mut items = parents[lo..hi].iter().copied();
                nl::scan_parents(ex, spec, parent_class, child_class, report, |_| {
                    items.next()
                });
            });
        },
    )?;

    let mut segments = vec![prefix];
    let (workers_io, workers_nanos, workers_teardown) =
        fold_morsels(&mut report, &mut segments, morsels, &mut Vec::new());
    report.trace = merge_trace_segments(segments);
    Ok(ParallelRun {
        report,
        workers_io,
        workers_nanos,
        workers_teardown,
    })
}

fn nojoin_parallel(
    ctx: &mut JoinContext<'_>,
    spec: &TreeJoinSpec,
    opts: &JoinOptions,
    collect: bool,
    cancel: Option<CancelToken>,
    degree: usize,
    t0: u64,
) -> Result<ParallelRun, MorselPanic> {
    let mut report = JoinReport {
        pairs: collect.then(Vec::new),
        ..Default::default()
    };
    // Prefix: the child gather (and rid sort), exactly the serial one.
    let child_index = ctx.child_index;
    let mut ex = coordinator_ex(ctx.store, &cancel, t0);
    let batch = ex.batch_size();
    let children = crate::exec::index_range_scan(
        &mut ex,
        child_index,
        spec.child_key_limit,
        opts.sort_index_rids,
        &spec.children,
    );
    let prefix = ex.finish();

    let spans = morsel_spans(children.len(), batch, degree);
    let morsels = run_morsels(
        ctx.store,
        &spans,
        cancel.as_ref(),
        t0,
        collect,
        |ex, (lo, hi), report| {
            let parent_class = ex.store.collection(&spec.parents).class;
            let child_class = ex.store.collection(&spec.children).class;
            nojoin::scan_children(
                ex,
                spec,
                parent_class,
                child_class,
                &children[lo..hi],
                report,
            );
        },
    )?;

    let mut segments = vec![prefix];
    let (workers_io, workers_nanos, workers_teardown) =
        fold_morsels(&mut report, &mut segments, morsels, &mut Vec::new());
    report.trace = merge_trace_segments(segments);
    Ok(ParallelRun {
        report,
        workers_io,
        workers_nanos,
        workers_teardown,
    })
}

fn phj_parallel(
    ctx: &mut JoinContext<'_>,
    spec: &TreeJoinSpec,
    opts: &JoinOptions,
    collect: bool,
    cancel: Option<CancelToken>,
    degree: usize,
    t0: u64,
) -> Result<ParallelRun, MorselPanic> {
    let mut report = JoinReport {
        pairs: collect.then(Vec::new),
        ..Default::default()
    };
    let parent_index = ctx.parent_index;
    let child_index = ctx.child_index;
    let budget = ctx.store.stack().model().operator_memory_budget;

    // Prefix: gather parents, build the shared table serially (the
    // table is written once, read by every prober), gather children.
    let mut table: FxHashMap<Rid, i64> = FxHashMap::default();
    let mut swap = SwapSim::new(0, budget);
    let mut ex = coordinator_ex(ctx.store, &cancel, t0);
    let batch = ex.batch_size();
    let parents = crate::exec::index_range_scan(
        &mut ex,
        parent_index,
        spec.parent_key_limit,
        opts.sort_index_rids,
        &spec.parents,
    );
    phj::build_parents(
        &mut ex,
        spec,
        opts,
        &parents,
        &mut table,
        &mut swap,
        &mut report,
    );
    report.hash_table_bytes = table.len() as u64 * phj::entry_bytes(opts);
    let build_faults = swap.faults();
    report.swap_faults = build_faults;
    let children = crate::exec::index_range_scan(
        &mut ex,
        child_index,
        spec.child_key_limit,
        opts.sort_index_rids,
        &spec.children,
    );
    let prefix = ex.finish();

    // Workers: probe child chunks against the shared (read-only)
    // table, each against a private clone of the post-build swap.
    let spans = morsel_spans(children.len(), batch, degree);
    let swap_template = &swap;
    let table_ref = &table;
    let morsels = run_morsels(
        ctx.store,
        &spans,
        cancel.as_ref(),
        t0,
        collect,
        |ex, (lo, hi), report| {
            let child_class = ex.store.collection(&spec.children).class;
            let mut wswap = swap_template.clone();
            phj::probe_children(
                ex,
                spec,
                child_class,
                &children[lo..hi],
                table_ref,
                &mut wswap,
                report,
            );
            report.swap_faults = wswap.faults() - build_faults;
        },
    )?;

    let mut segments = vec![prefix];
    let (workers_io, workers_nanos, workers_teardown) =
        fold_morsels(&mut report, &mut segments, morsels, &mut Vec::new());

    // Suffix: Handle-keyed tables pay their teardown on the
    // coordinator, merging into the build row like the serial run.
    if opts.hash_key == HashKeyMode::Handle {
        let mut ex = coordinator_ex(ctx.store, &cancel, t0);
        phj::free_table_handles(&mut ex, spec, table.len() as u64);
        segments.push(ex.finish());
    }
    report.trace = merge_trace_segments(segments);
    Ok(ParallelRun {
        report,
        workers_io,
        workers_nanos,
        workers_teardown,
    })
}

fn chj_parallel(
    ctx: &mut JoinContext<'_>,
    spec: &TreeJoinSpec,
    opts: &JoinOptions,
    collect: bool,
    cancel: Option<CancelToken>,
    degree: usize,
    t0: u64,
) -> Result<ParallelRun, MorselPanic> {
    let mut report = JoinReport {
        pairs: collect.then(Vec::new),
        ..Default::default()
    };
    let parent_index = ctx.parent_index;
    let child_index = ctx.child_index;
    let budget = ctx.store.stack().model().operator_memory_budget;

    // Prefix: the child gather (and rid sort).
    let mut ex = coordinator_ex(ctx.store, &cancel, t0);
    let batch = ex.batch_size();
    let children = crate::exec::index_range_scan(
        &mut ex,
        child_index,
        spec.child_key_limit,
        opts.sort_index_rids,
        &spec.children,
    );
    let prefix = ex.finish();

    // Workers: build partial tables over child chunks, each with a
    // private swap simulation growing from empty.
    let spans = morsel_spans(children.len(), batch, degree);
    let morsels = run_morsels(
        ctx.store,
        &spans,
        cancel.as_ref(),
        t0,
        collect,
        |ex, (lo, hi), report| {
            let mut table: FxHashMap<Rid, Vec<i64>> = FxHashMap::default();
            let mut wswap = SwapSim::new(0, budget);
            let mut inserted = 0u64;
            chj::build_children(
                ex,
                spec,
                opts,
                &children[lo..hi],
                &mut table,
                &mut wswap,
                &mut inserted,
                report,
            );
            report.swap_faults = wswap.faults();
            (table, inserted)
        },
    )?;

    let mut segments = vec![prefix];
    let mut extras: Vec<(FxHashMap<Rid, Vec<i64>>, u64)> = Vec::new();
    let (workers_io, workers_nanos, workers_teardown) =
        fold_morsels(&mut report, &mut segments, morsels, &mut extras);

    // Concatenate the partial tables in worker (= child list) order:
    // every parent slot ends up holding its child keys in exactly the
    // serial insertion order, so the probe's Emit sequence is
    // byte-identical to serial.
    let mut table: FxHashMap<Rid, Vec<i64>> = FxHashMap::default();
    let mut inserted_children = 0u64;
    for (partial, inserted) in extras {
        for (prid, keys) in partial {
            table.entry(prid).or_default().extend(keys);
        }
        inserted_children += inserted;
    }
    report.hash_table_bytes = chj::table_bytes(opts, table.len() as u64, inserted_children);

    // Suffix: probe serially on the coordinator (parents are the small
    // side; the probe is dominated by the build at paper scale). The
    // probe's swap starts from a fresh residency grown to the final
    // table size — same page count as serial, different (still
    // deterministic) resident set.
    let parent_class = ctx.store.collection(&spec.parents).class;
    let mut ex = coordinator_ex(ctx.store, &cancel, t0);
    let parents = crate::exec::index_range_scan(
        &mut ex,
        parent_index,
        spec.parent_key_limit,
        opts.sort_index_rids,
        &spec.parents,
    );
    let mut swap = SwapSim::new(0, budget);
    swap.grow_to(report.hash_table_bytes);
    chj::probe_parents(
        &mut ex,
        spec,
        parent_class,
        &parents,
        &table,
        &mut swap,
        &mut report,
    );
    report.swap_faults += swap.faults();
    if opts.hash_key == HashKeyMode::Handle {
        chj::free_table_handles(&mut ex, spec, inserted_children);
    }
    segments.push(ex.finish());
    report.trace = merge_trace_segments(segments);
    Ok(ParallelRun {
        report,
        workers_io,
        workers_nanos,
        workers_teardown,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::OpCounters;

    #[test]
    fn spans_are_contiguous_batch_aligned_and_cover() {
        for &(n, batch, degree) in &[
            (0usize, 8usize, 4usize),
            (1, 8, 4),
            (7, 8, 4),
            (8, 8, 4),
            (9, 8, 4),
            (1000, 8, 4),
            (1000, 1, 3),
            (1000, 1024, 2),
            (5, 1, 8),
        ] {
            let spans = morsel_spans(n, batch, degree);
            assert!(spans.len() <= degree);
            let mut expect = 0usize;
            for (i, &(lo, hi)) in spans.iter().enumerate() {
                assert_eq!(lo, expect, "contiguous at {n}/{batch}/{degree}");
                assert!(hi > lo);
                if i + 1 < spans.len() {
                    assert_eq!(hi % batch, 0, "aligned at {n}/{batch}/{degree}");
                }
                expect = hi;
            }
            assert_eq!(expect, n, "covering at {n}/{batch}/{degree}");
        }
    }

    #[test]
    fn spans_degree_one_is_everything() {
        assert_eq!(morsel_spans(100, 8, 1), vec![(0, 100)]);
    }

    fn row(kind: OpKind, label: &str, depth: u32, cpu: u64) -> OpRecord {
        OpRecord {
            kind,
            label: label.into(),
            depth,
            counters: OpCounters {
                cpu_events: cpu,
                ..Default::default()
            },
        }
    }

    #[test]
    fn merge_preserves_serial_shape_and_sums() {
        // Coordinator prefix: the gather rows. Workers: probe rows.
        // Suffix: a teardown merging into an existing row.
        let prefix = ExecTrace {
            ops: vec![
                row(OpKind::IndexRangeScan, "Providers", 0, 1),
                row(OpKind::HashBuild, "Providers", 0, 2),
                row(OpKind::IndexRangeScan, "Patients", 0, 3),
            ],
        };
        let w1 = ExecTrace {
            ops: vec![
                row(OpKind::HashProbe, "Patients", 0, 10),
                row(OpKind::Emit, "result", 1, 20),
            ],
        };
        // A worker with no emits still merges cleanly.
        let w2 = ExecTrace {
            ops: vec![row(OpKind::HashProbe, "Patients", 0, 100)],
        };
        let suffix = ExecTrace {
            ops: vec![row(OpKind::HashBuild, "Providers", 0, 1000)],
        };
        let merged = merge_trace_segments([prefix, w1, w2, suffix]);
        let shape: Vec<(OpKind, &str, u32, u64)> = merged
            .ops
            .iter()
            .map(|r| (r.kind, r.label.as_str(), r.depth, r.counters.cpu_events))
            .collect();
        assert_eq!(
            shape,
            vec![
                (OpKind::IndexRangeScan, "Providers", 0, 1),
                (OpKind::HashBuild, "Providers", 0, 1002),
                (OpKind::IndexRangeScan, "Patients", 0, 3),
                (OpKind::HashProbe, "Patients", 0, 110),
                (OpKind::Emit, "result", 1, 20),
            ]
        );
    }

    #[test]
    fn merge_splices_new_rows_after_shared_anchor() {
        // NL shape: every worker re-creates the IndexRangeScan row the
        // coordinator drained, then hangs SetNav/Emit under it.
        let prefix = ExecTrace {
            ops: vec![row(OpKind::IndexRangeScan, "Providers", 0, 1)],
        };
        let w1 = ExecTrace {
            ops: vec![
                row(OpKind::IndexRangeScan, "Providers", 0, 2),
                row(OpKind::SetNav, "Patients", 1, 3),
            ],
        };
        let w2 = ExecTrace {
            ops: vec![
                row(OpKind::IndexRangeScan, "Providers", 0, 4),
                row(OpKind::SetNav, "Patients", 1, 5),
                row(OpKind::Emit, "result", 2, 6),
            ],
        };
        let merged = merge_trace_segments([prefix, w1, w2]);
        let shape: Vec<(OpKind, u64)> = merged
            .ops
            .iter()
            .map(|r| (r.kind, r.counters.cpu_events))
            .collect();
        assert_eq!(
            shape,
            vec![
                (OpKind::IndexRangeScan, 7),
                (OpKind::SetNav, 8),
                (OpKind::Emit, 6),
            ]
        );
    }
}
