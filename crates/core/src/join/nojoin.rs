//! NOJOIN — child-to-parent navigation (paper §5.1).
//!
//! ```text
//! For all patients whose mrn < k1              /* index scan */
//!     get the patient primary care provider p  /* navigation */
//!     if p.upin < k2 add f(p,pa) to the result
//! ```
//!
//! Only the child index is usable, "but this time it is that of the
//! largest collection so the handicap is less". The parent condition
//! is re-tested once per child (up to fan-out times per parent), and
//! parent accesses are random under class/random clustering — but a
//! hot parent's handle and page stay cached while its children stream
//! by, which is what makes NOJOIN competitive in the 1:1000 database.

use super::{
    emit, gather_index_rids, int_attr, JoinContext, JoinOptions, JoinReport, TreeJoinSpec,
};
use tq_pagestore::CpuEvent;

pub(super) fn run(
    ctx: &mut JoinContext<'_>,
    spec: &TreeJoinSpec,
    opts: &JoinOptions,
    collect: bool,
) -> JoinReport {
    let mut report = JoinReport {
        pairs: collect.then(Vec::new),
        ..Default::default()
    };
    let parent_class = ctx.store.collection(&spec.parents).class;
    let child_class = ctx.store.collection(&spec.children).class;
    let children = gather_index_rids(
        ctx.store,
        ctx.child_index,
        spec.child_key_limit,
        opts.sort_index_rids,
    );
    for (child_key, crid) in children {
        let child = ctx.store.fetch(crid);
        report.children_scanned += 1;
        if child.object.header.is_deleted() {
            ctx.store.release(child);
            continue;
        }
        ctx.store.charge_attr_access(child_class, spec.child_parent);
        let prid = child.object.values[spec.child_parent]
            .as_ref_rid()
            .expect("child parent reference");
        let parent = ctx.store.fetch(prid);
        report.parents_scanned += 1;
        if parent.object.header.is_deleted() {
            ctx.store.release(parent);
            ctx.store.release(child);
            continue;
        }
        ctx.store.charge_attr_access(parent_class, spec.parent_key);
        ctx.store.charge(CpuEvent::Compare, 1);
        let parent_key = int_attr(&parent.object, spec.parent_key);
        if parent_key < spec.parent_key_limit {
            ctx.store
                .charge_attr_access(parent_class, spec.parent_project);
            ctx.store
                .charge_attr_access(child_class, spec.child_project);
            emit(ctx.store, spec, &mut report, parent_key, child_key);
        }
        ctx.store.release(parent);
        ctx.store.release(child);
    }
    report
}
