//! NOJOIN — child-to-parent navigation (paper §5.1).
//!
//! ```text
//! For all patients whose mrn < k1              /* index scan */
//!     get the patient primary care provider p  /* navigation */
//!     if p.upin < k2 add f(p,pa) to the result
//! ```
//!
//! Only the child index is usable, "but this time it is that of the
//! largest collection so the handicap is less". The parent condition
//! is re-tested once per child (up to fan-out times per parent), and
//! parent accesses are random under class/random clustering — but a
//! hot parent's handle and page stay cached while its children stream
//! by, which is what makes NOJOIN competitive in the 1:1000 database.
//!
//! Operator composition: `IndexRangeScan(children)` driving a
//! `BackRefNav(parents)` per child, with `Emit` on qualifying pairs.

use super::{emit, flush_emits, JoinOptions, JoinReport, TreeJoinSpec};
use crate::exec::{index_range_scan, int_attr, ExecContext, OpKind};
use tq_index::BTreeIndex;
use tq_objstore::{ClassId, Rid};
use tq_pagestore::CpuEvent;

pub(super) fn run(
    ex: &mut ExecContext<'_>,
    child_index: &BTreeIndex,
    spec: &TreeJoinSpec,
    opts: &JoinOptions,
    collect: bool,
) -> JoinReport {
    let mut report = JoinReport {
        pairs: collect.then(Vec::new),
        ..Default::default()
    };
    let parent_class = ex.store.collection(&spec.parents).class;
    let child_class = ex.store.collection(&spec.children).class;
    let children = index_range_scan(
        ex,
        child_index,
        spec.child_key_limit,
        opts.sort_index_rids,
        &spec.children,
    );
    scan_children(ex, spec, parent_class, child_class, &children, &mut report);
    report
}

/// The fetch half of the child scan: navigate each `(child_key, crid)`
/// to its parent, test, and emit. Reopens the gather's
/// `IndexRangeScan(children)` node (same kind/label/parent), so the
/// per-operator row covers gather + fetch exactly as before the split.
/// Factored out of [`run`] so the morsel workers of
/// [`super::parallel`] run the identical charge sequence over a
/// contiguous chunk of the drained child list.
///
/// Child and parent fetches interleave (and a hot parent's rid
/// repeats, fan-out times) — that interleave IS the algorithm's
/// cache behaviour, so the fetches stay one-at-a-time at any batch
/// size; only the Emit scopes are deferred and flushed in batches.
pub(super) fn scan_children(
    ex: &mut ExecContext<'_>,
    spec: &TreeJoinSpec,
    parent_class: ClassId,
    child_class: ClassId,
    children: &[(i64, Rid)],
    report: &mut JoinReport,
) {
    let batch = ex.batch_size();
    ex.op(OpKind::IndexRangeScan, &spec.children, |ex| {
        if batch <= 1 {
            for &(child_key, crid) in children {
                ex.with_object(crid, |ex, child| {
                    report.children_scanned += 1;
                    if child.is_deleted() {
                        return;
                    }
                    ex.op(OpKind::BackRefNav, &spec.parents, |ex| {
                        ex.store.charge_attr_access(child_class, spec.child_parent);
                        let prid = child.object().values[spec.child_parent]
                            .as_ref_rid()
                            .expect("child parent reference");
                        ex.with_object(prid, |ex, parent| {
                            report.parents_scanned += 1;
                            if parent.is_deleted() {
                                return;
                            }
                            ex.store.charge_attr_access(parent_class, spec.parent_key);
                            ex.store.charge(CpuEvent::Compare, 1);
                            let parent_key = int_attr(parent.object(), spec.parent_key);
                            if parent_key < spec.parent_key_limit {
                                ex.op(OpKind::Emit, "result", |ex| {
                                    ex.store
                                        .charge_attr_access(parent_class, spec.parent_project);
                                    ex.store.charge_attr_access(child_class, spec.child_project);
                                    emit(ex.store, spec, report, parent_key, child_key);
                                });
                            }
                        });
                    });
                });
            }
        } else {
            let emit_charges = [
                (parent_class, spec.parent_project),
                (child_class, spec.child_project),
            ];
            let mut pending = ex.take_val_batch();
            let mut nav_node = None;
            for &(child_key, crid) in children {
                ex.with_object(crid, |ex, child| {
                    report.children_scanned += 1;
                    if child.is_deleted() {
                        return;
                    }
                    ex.op(OpKind::BackRefNav, &spec.parents, |ex| {
                        nav_node = ex.current_node();
                        ex.store.charge_attr_access(child_class, spec.child_parent);
                        let prid = child.object().values[spec.child_parent]
                            .as_ref_rid()
                            .expect("child parent reference");
                        ex.with_object(prid, |ex, parent| {
                            report.parents_scanned += 1;
                            if parent.is_deleted() {
                                return;
                            }
                            ex.store.charge_attr_access(parent_class, spec.parent_key);
                            ex.store.charge(CpuEvent::Compare, 1);
                            let parent_key = int_attr(parent.object(), spec.parent_key);
                            if parent_key < spec.parent_key_limit {
                                pending.push((parent_key, child_key));
                            }
                        });
                        if pending.len() >= batch {
                            let at = ex.current_node();
                            flush_emits(ex, at, &mut pending, &emit_charges, spec, report);
                        }
                    });
                });
            }
            flush_emits(ex, nav_node, &mut pending, &emit_charges, spec, report);
            ex.put_val_batch(pending);
        }
    });
}
