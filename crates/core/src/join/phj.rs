//! PHJ — hash the parents and join (paper §5.1).
//!
//! ```text
//! hash all providers whose upin < k2 by their identifiers  /* index scan */
//! For all patients whose mrn < k1                          /* index scan */
//!     probe the hash table with the patient's provider
//!     add f(p,pa) to the result
//! ```
//!
//! Uses both indexes and accesses both collections sequentially. One
//! 64-byte entry per selected parent (Figure 10); the table pages
//! against the operator memory budget when it outgrows it — "swapping
//! will occur in the 1:3 case, when 90% of the providers are
//! selected". "Note that this algorithm requires more instructions
//! than the previous ones": the hash insert/probe CPU is charged per
//! element.
//!
//! Operator composition: `IndexRangeScan(parents)` → `HashBuild`,
//! then `IndexRangeScan(children)` → `HashProbe` with `Emit` on hits.

use super::{
    emit, flush_emits, rid_hash, JoinOptions, JoinReport, TreeJoinSpec, HANDLE_ENTRY_EXTRA_BYTES,
    PHJ_ENTRY_BYTES,
};
use crate::exec::{index_range_scan, ExecContext, OpKind};
use crate::spec::HashKeyMode;
use crate::swap::SwapSim;
use tq_fasthash::FxHashMap;
use tq_index::BTreeIndex;
use tq_objstore::{ClassId, Rid};
use tq_pagestore::CpuEvent;

/// Bytes per table entry under the given key mode.
pub(super) fn entry_bytes(opts: &JoinOptions) -> u64 {
    PHJ_ENTRY_BYTES
        + match opts.hash_key {
            HashKeyMode::Rid => 0,
            HashKeyMode::Handle => HANDLE_ENTRY_EXTRA_BYTES,
        }
}

pub(super) fn run(
    ex: &mut ExecContext<'_>,
    parent_index: &BTreeIndex,
    child_index: &BTreeIndex,
    spec: &TreeJoinSpec,
    opts: &JoinOptions,
    collect: bool,
) -> JoinReport {
    let mut report = JoinReport {
        pairs: collect.then(Vec::new),
        ..Default::default()
    };
    let child_class = ex.store.collection(&spec.children).class;
    let budget = ex.store.stack().model().operator_memory_budget;

    // Build: hash selected parents by identifier, carrying the
    // information f(p, pa) needs (the projected attribute).
    let mut table: FxHashMap<Rid, i64> = FxHashMap::default();
    let mut swap = SwapSim::new(0, budget);
    let parents = index_range_scan(
        ex,
        parent_index,
        spec.parent_key_limit,
        opts.sort_index_rids,
        &spec.parents,
    );
    build_parents(ex, spec, opts, &parents, &mut table, &mut swap, &mut report);
    report.hash_table_bytes = table.len() as u64 * entry_bytes(opts);

    // Probe: scan selected children sequentially, probe by parent rid.
    let children = index_range_scan(
        ex,
        child_index,
        spec.child_key_limit,
        opts.sort_index_rids,
        &spec.children,
    );
    probe_children(
        ex,
        spec,
        child_class,
        &children,
        &table,
        &mut swap,
        &mut report,
    );
    report.swap_faults = swap.faults();
    if opts.hash_key == HashKeyMode::Handle {
        free_table_handles(ex, spec, table.len() as u64);
    }
    report
}

/// The build half: fetch each selected parent and insert it into the
/// shared table, growing and touching the swap simulation per entry.
/// Call after the parent gather; opens the `HashBuild(parents)` scope.
pub(super) fn build_parents(
    ex: &mut ExecContext<'_>,
    spec: &TreeJoinSpec,
    opts: &JoinOptions,
    parents: &[(i64, Rid)],
    table: &mut FxHashMap<Rid, i64>,
    swap: &mut SwapSim,
    report: &mut JoinReport,
) {
    let parent_class = ex.store.collection(&spec.parents).class;
    let entry_bytes = entry_bytes(opts);
    let batch = ex.batch_size();
    ex.op(OpKind::HashBuild, &spec.parents, |ex| {
        if batch <= 1 {
            for &(parent_key, prid) in parents {
                ex.with_object(prid, |ex, parent| {
                    report.parents_scanned += 1;
                    if parent.is_deleted() {
                        return;
                    }
                    ex.store
                        .charge_attr_access(parent_class, spec.parent_project);
                    table.insert(parent.rid(), parent_key);
                    ex.store.charge(CpuEvent::HashInsert, 1);
                    if opts.hash_key == HashKeyMode::Handle {
                        // The entry pins a full handle for the table's lifetime.
                        ex.store.charge(CpuEvent::HandleAlloc, 1);
                    }
                    // The table grows; keep its simulated page count current.
                    swap.grow_to(table.len() as u64 * entry_bytes);
                    if swap.touch(rid_hash(parent.rid())) {
                        ex.store.charge(CpuEvent::SwapFault, 1);
                    }
                });
            }
        } else {
            let mut rids = ex.take_rid_batch();
            for chunk in parents.chunks(batch) {
                rids.clear();
                rids.extend(chunk.iter().map(|&(_, r)| r));
                ex.with_batch(&rids, |ex, objs| {
                    for (i, &(parent_key, _)) in chunk.iter().enumerate() {
                        let (prid, parent) = objs.get(i);
                        report.parents_scanned += 1;
                        if parent.header.is_deleted() {
                            continue;
                        }
                        ex.store
                            .charge_attr_access(parent_class, spec.parent_project);
                        table.insert(prid, parent_key);
                        ex.store.charge(CpuEvent::HashInsert, 1);
                        if opts.hash_key == HashKeyMode::Handle {
                            ex.store.charge(CpuEvent::HandleAlloc, 1);
                        }
                        swap.grow_to(table.len() as u64 * entry_bytes);
                        if swap.touch(rid_hash(prid)) {
                            ex.store.charge(CpuEvent::SwapFault, 1);
                        }
                    }
                });
            }
            ex.put_rid_batch(rids);
        }
    });
}

/// The probe half: fetch each selected child, probe the (read-only)
/// table by parent rid, and emit hits. Opens the
/// `HashProbe(children)` scope. Factored out of [`run`] so the morsel
/// workers of [`super::parallel`] probe contiguous chunks of the child
/// list against the shared table with the identical charge sequence
/// (each worker touches its own clone of the post-build `swap`).
pub(super) fn probe_children(
    ex: &mut ExecContext<'_>,
    spec: &TreeJoinSpec,
    child_class: ClassId,
    children: &[(i64, Rid)],
    table: &FxHashMap<Rid, i64>,
    swap: &mut SwapSim,
    report: &mut JoinReport,
) {
    let batch = ex.batch_size();
    ex.op(OpKind::HashProbe, &spec.children, |ex| {
        if batch <= 1 {
            for &(child_key, crid) in children {
                ex.with_object(crid, |ex, child| {
                    report.children_scanned += 1;
                    if child.is_deleted() {
                        return;
                    }
                    ex.store.charge_attr_access(child_class, spec.child_parent);
                    let prid = child.object().values[spec.child_parent]
                        .as_ref_rid()
                        .expect("child parent reference");
                    ex.store.charge(CpuEvent::HashProbe, 1);
                    if swap.touch(rid_hash(prid)) {
                        ex.store.charge(CpuEvent::SwapFault, 1);
                    }
                    if let Some(&parent_key) = table.get(&prid) {
                        ex.op(OpKind::Emit, "result", |ex| {
                            ex.store.charge_attr_access(child_class, spec.child_project);
                            emit(ex.store, spec, report, parent_key, child_key);
                        });
                    }
                });
            }
        } else {
            let mut rids = ex.take_rid_batch();
            let mut pending = ex.take_val_batch();
            let emit_charges = [(child_class, spec.child_project)];
            for chunk in children.chunks(batch) {
                rids.clear();
                rids.extend(chunk.iter().map(|&(_, r)| r));
                ex.with_batch(&rids, |ex, objs| {
                    for (i, &(child_key, _)) in chunk.iter().enumerate() {
                        let child = objs.object(i);
                        report.children_scanned += 1;
                        if child.header.is_deleted() {
                            continue;
                        }
                        ex.store.charge_attr_access(child_class, spec.child_parent);
                        let prid = child.values[spec.child_parent]
                            .as_ref_rid()
                            .expect("child parent reference");
                        ex.store.charge(CpuEvent::HashProbe, 1);
                        if swap.touch(rid_hash(prid)) {
                            ex.store.charge(CpuEvent::SwapFault, 1);
                        }
                        if let Some(&parent_key) = table.get(&prid) {
                            pending.push((parent_key, child_key));
                        }
                    }
                });
                if pending.len() >= batch {
                    let at = ex.current_node();
                    flush_emits(ex, at, &mut pending, &emit_charges, spec, report);
                }
            }
            let at = ex.current_node();
            flush_emits(ex, at, &mut pending, &emit_charges, spec, report);
            ex.put_rid_batch(rids);
            ex.put_val_batch(pending);
        }
    });
}

/// Tear the pinned table handles down (the table's cost) — Handle key
/// mode only. Re-enters the `HashBuild(parents)` node.
pub(super) fn free_table_handles(ex: &mut ExecContext<'_>, spec: &TreeJoinSpec, entries: u64) {
    ex.op(OpKind::HashBuild, &spec.parents, |ex| {
        ex.store.charge(CpuEvent::HandleFree, entries);
    });
}
