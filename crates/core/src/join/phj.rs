//! PHJ — hash the parents and join (paper §5.1).
//!
//! ```text
//! hash all providers whose upin < k2 by their identifiers  /* index scan */
//! For all patients whose mrn < k1                          /* index scan */
//!     probe the hash table with the patient's provider
//!     add f(p,pa) to the result
//! ```
//!
//! Uses both indexes and accesses both collections sequentially. One
//! 64-byte entry per selected parent (Figure 10); the table pages
//! against the operator memory budget when it outgrows it — "swapping
//! will occur in the 1:3 case, when 90% of the providers are
//! selected". "Note that this algorithm requires more instructions
//! than the previous ones": the hash insert/probe CPU is charged per
//! element.
//!
//! Operator composition: `IndexRangeScan(parents)` → `HashBuild`,
//! then `IndexRangeScan(children)` → `HashProbe` with `Emit` on hits.

use super::{
    emit, rid_hash, JoinOptions, JoinReport, TreeJoinSpec, HANDLE_ENTRY_EXTRA_BYTES,
    PHJ_ENTRY_BYTES,
};
use crate::exec::{index_range_scan, ExecContext, OpKind};
use crate::spec::HashKeyMode;
use crate::swap::SwapSim;
use tq_fasthash::FxHashMap;
use tq_index::BTreeIndex;
use tq_objstore::Rid;
use tq_pagestore::CpuEvent;

pub(super) fn run(
    ex: &mut ExecContext<'_>,
    parent_index: &BTreeIndex,
    child_index: &BTreeIndex,
    spec: &TreeJoinSpec,
    opts: &JoinOptions,
    collect: bool,
) -> JoinReport {
    let mut report = JoinReport {
        pairs: collect.then(Vec::new),
        ..Default::default()
    };
    let parent_class = ex.store.collection(&spec.parents).class;
    let child_class = ex.store.collection(&spec.children).class;
    let entry_bytes = PHJ_ENTRY_BYTES
        + match opts.hash_key {
            HashKeyMode::Rid => 0,
            HashKeyMode::Handle => HANDLE_ENTRY_EXTRA_BYTES,
        };
    let budget = ex.store.stack().model().operator_memory_budget;

    // Build: hash selected parents by identifier, carrying the
    // information f(p, pa) needs (the projected attribute).
    let mut table: FxHashMap<Rid, i64> = FxHashMap::default();
    let mut swap = SwapSim::new(0, budget);
    let parents = index_range_scan(
        ex,
        parent_index,
        spec.parent_key_limit,
        opts.sort_index_rids,
        &spec.parents,
    );
    ex.op(OpKind::HashBuild, &spec.parents, |ex| {
        for (parent_key, prid) in parents {
            ex.with_object(prid, |ex, parent| {
                report.parents_scanned += 1;
                if parent.is_deleted() {
                    return;
                }
                ex.store
                    .charge_attr_access(parent_class, spec.parent_project);
                table.insert(parent.rid(), parent_key);
                ex.store.charge(CpuEvent::HashInsert, 1);
                if opts.hash_key == HashKeyMode::Handle {
                    // The entry pins a full handle for the table's lifetime.
                    ex.store.charge(CpuEvent::HandleAlloc, 1);
                }
                // The table grows; keep its simulated page count current.
                swap.grow_to(table.len() as u64 * entry_bytes);
                if swap.touch(rid_hash(parent.rid())) {
                    ex.store.charge(CpuEvent::SwapFault, 1);
                }
            });
        }
    });
    report.hash_table_bytes = table.len() as u64 * entry_bytes;

    // Probe: scan selected children sequentially, probe by parent rid.
    let children = index_range_scan(
        ex,
        child_index,
        spec.child_key_limit,
        opts.sort_index_rids,
        &spec.children,
    );
    ex.op(OpKind::HashProbe, &spec.children, |ex| {
        for (child_key, crid) in children {
            ex.with_object(crid, |ex, child| {
                report.children_scanned += 1;
                if child.is_deleted() {
                    return;
                }
                ex.store.charge_attr_access(child_class, spec.child_parent);
                let prid = child.object().values[spec.child_parent]
                    .as_ref_rid()
                    .expect("child parent reference");
                ex.store.charge(CpuEvent::HashProbe, 1);
                if swap.touch(rid_hash(prid)) {
                    ex.store.charge(CpuEvent::SwapFault, 1);
                }
                if let Some(&parent_key) = table.get(&prid) {
                    ex.op(OpKind::Emit, "result", |ex| {
                        ex.store.charge_attr_access(child_class, spec.child_project);
                        emit(ex.store, spec, &mut report, parent_key, child_key);
                    });
                }
            });
        }
    });
    report.swap_faults = swap.faults();
    if opts.hash_key == HashKeyMode::Handle {
        // Tear the pinned table handles down (the table's cost).
        ex.op(OpKind::HashBuild, &spec.parents, |ex| {
            ex.store.charge(CpuEvent::HandleFree, table.len() as u64);
        });
    }
    report
}
