//! PHJ — hash the parents and join (paper §5.1).
//!
//! ```text
//! hash all providers whose upin < k2 by their identifiers  /* index scan */
//! For all patients whose mrn < k1                          /* index scan */
//!     probe the hash table with the patient's provider
//!     add f(p,pa) to the result
//! ```
//!
//! Uses both indexes and accesses both collections sequentially. One
//! 64-byte entry per selected parent (Figure 10); the table pages
//! against the operator memory budget when it outgrows it — "swapping
//! will occur in the 1:3 case, when 90% of the providers are
//! selected". "Note that this algorithm requires more instructions
//! than the previous ones": the hash insert/probe CPU is charged per
//! element.

use super::{
    emit, gather_index_rids, rid_hash, JoinContext, JoinOptions, JoinReport, TreeJoinSpec,
    HANDLE_ENTRY_EXTRA_BYTES, PHJ_ENTRY_BYTES,
};
use crate::spec::HashKeyMode;
use crate::swap::SwapSim;
use tq_fasthash::FxHashMap;
use tq_objstore::Rid;
use tq_pagestore::CpuEvent;

pub(super) fn run(
    ctx: &mut JoinContext<'_>,
    spec: &TreeJoinSpec,
    opts: &JoinOptions,
    collect: bool,
) -> JoinReport {
    let mut report = JoinReport {
        pairs: collect.then(Vec::new),
        ..Default::default()
    };
    let parent_class = ctx.store.collection(&spec.parents).class;
    let child_class = ctx.store.collection(&spec.children).class;
    let entry_bytes = PHJ_ENTRY_BYTES
        + match opts.hash_key {
            HashKeyMode::Rid => 0,
            HashKeyMode::Handle => HANDLE_ENTRY_EXTRA_BYTES,
        };
    let budget = ctx.store.stack().model().operator_memory_budget;

    // Build: hash selected parents by identifier, carrying the
    // information f(p, pa) needs (the projected attribute).
    let mut table: FxHashMap<Rid, i64> = FxHashMap::default();
    let mut swap = SwapSim::new(0, budget);
    let parents = gather_index_rids(
        ctx.store,
        ctx.parent_index,
        spec.parent_key_limit,
        opts.sort_index_rids,
    );
    for (parent_key, prid) in parents {
        let parent = ctx.store.fetch(prid);
        report.parents_scanned += 1;
        if parent.object.header.is_deleted() {
            ctx.store.release(parent);
            continue;
        }
        ctx.store
            .charge_attr_access(parent_class, spec.parent_project);
        table.insert(parent.rid, parent_key);
        ctx.store.charge(CpuEvent::HashInsert, 1);
        if opts.hash_key == HashKeyMode::Handle {
            // The entry pins a full handle for the table's lifetime.
            ctx.store.charge(CpuEvent::HandleAlloc, 1);
        }
        // The table grows; keep its simulated page count current.
        swap.grow_to(table.len() as u64 * entry_bytes);
        if swap.touch(rid_hash(parent.rid)) {
            ctx.store.charge(CpuEvent::SwapFault, 1);
        }
        ctx.store.release(parent);
    }
    report.hash_table_bytes = table.len() as u64 * entry_bytes;

    // Probe: scan selected children sequentially, probe by parent rid.
    let children = gather_index_rids(
        ctx.store,
        ctx.child_index,
        spec.child_key_limit,
        opts.sort_index_rids,
    );
    for (child_key, crid) in children {
        let child = ctx.store.fetch(crid);
        report.children_scanned += 1;
        if child.object.header.is_deleted() {
            ctx.store.release(child);
            continue;
        }
        ctx.store.charge_attr_access(child_class, spec.child_parent);
        let prid = child.object.values[spec.child_parent]
            .as_ref_rid()
            .expect("child parent reference");
        ctx.store.charge(CpuEvent::HashProbe, 1);
        if swap.touch(rid_hash(prid)) {
            ctx.store.charge(CpuEvent::SwapFault, 1);
        }
        if let Some(&parent_key) = table.get(&prid) {
            ctx.store
                .charge_attr_access(child_class, spec.child_project);
            emit(ctx.store, spec, &mut report, parent_key, child_key);
        }
        ctx.store.release(child);
    }
    report.swap_faults = swap.faults();
    if opts.hash_key == HashKeyMode::Handle {
        // Tear the pinned table handles down.
        ctx.store.charge(CpuEvent::HandleFree, table.len() as u64);
    }
    report
}
