//! NL — parent-to-child navigation (paper §5.1).
//!
//! ```text
//! For all providers p whose upin < k2          /* index scan */
//!     For all clients pa of p                  /* navigation */
//!         if pa.mrn < k1 add f(p,pa) to the result
//! ```
//!
//! Only the parent index is usable ("a big handicap since the
//! collection of patients is the largest of the two"). Parents arrive
//! sequentially; children are reached through the set attribute —
//! random I/O under class or random clustering, sequential under
//! composition clustering. Large (overflow) client sets add their own
//! rid-run page reads.

use super::{emit, int_attr, JoinContext, JoinReport, TreeJoinSpec};
use tq_pagestore::CpuEvent;

pub(super) fn run(ctx: &mut JoinContext<'_>, spec: &TreeJoinSpec, collect: bool) -> JoinReport {
    let mut report = JoinReport {
        pairs: collect.then(Vec::new),
        ..Default::default()
    };
    let parent_class = ctx.store.collection(&spec.parents).class;
    let child_class = ctx.store.collection(&spec.children).class;
    let mut parents = ctx.parent_index.range(
        ctx.store.stack_mut(),
        i64::MIN + 1,
        spec.parent_key_limit - 1,
    );
    while let Some((parent_key, prid)) = parents.next(ctx.store.stack_mut()) {
        let parent = ctx.store.fetch(prid);
        report.parents_scanned += 1;
        if parent.object.header.is_deleted() {
            ctx.store.release(parent);
            continue;
        }
        ctx.store.charge_attr_access(parent_class, spec.parent_set);
        let set = parent.object.values[spec.parent_set]
            .as_set()
            .expect("parent set attribute");
        let mut members = ctx.store.set_cursor(set);
        while let Some(crid) = members.next(ctx.store.stack_mut()) {
            let child = ctx.store.fetch(crid);
            report.children_scanned += 1;
            if child.object.header.is_deleted() {
                ctx.store.release(child);
                continue;
            }
            ctx.store.charge_attr_access(child_class, spec.child_key);
            ctx.store.charge(CpuEvent::Compare, 1);
            let child_key = int_attr(&child.object, spec.child_key);
            if child_key < spec.child_key_limit {
                ctx.store
                    .charge_attr_access(parent_class, spec.parent_project);
                ctx.store
                    .charge_attr_access(child_class, spec.child_project);
                emit(ctx.store, spec, &mut report, parent_key, child_key);
            }
            ctx.store.release(child);
        }
        ctx.store.release(parent);
    }
    report
}
