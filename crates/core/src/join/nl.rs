//! NL — parent-to-child navigation (paper §5.1).
//!
//! ```text
//! For all providers p whose upin < k2          /* index scan */
//!     For all clients pa of p                  /* navigation */
//!         if pa.mrn < k1 add f(p,pa) to the result
//! ```
//!
//! Only the parent index is usable ("a big handicap since the
//! collection of patients is the largest of the two"). Parents arrive
//! sequentially; children are reached through the set attribute —
//! random I/O under class or random clustering, sequential under
//! composition clustering. Large (overflow) client sets add their own
//! rid-run page reads.
//!
//! Operator composition: `IndexRangeScan(parents)` driving a
//! `SetNav(children)` per parent, with `Emit` on qualifying pairs.

use super::{emit, flush_emits, JoinReport, TreeJoinSpec};
use crate::exec::{int_attr, ExecContext, OpKind};
use tq_index::BTreeIndex;
use tq_objstore::{ClassId, Rid};
use tq_pagestore::CpuEvent;

pub(super) fn run(
    ex: &mut ExecContext<'_>,
    parent_index: &BTreeIndex,
    spec: &TreeJoinSpec,
    collect: bool,
) -> JoinReport {
    let mut report = JoinReport {
        pairs: collect.then(Vec::new),
        ..Default::default()
    };
    let parent_class = ex.store.collection(&spec.parents).class;
    let child_class = ex.store.collection(&spec.children).class;
    ex.op(OpKind::IndexRangeScan, &spec.parents, |ex| {
        let mut parents = parent_index.range(
            ex.store.stack_mut(),
            i64::MIN + 1,
            spec.parent_key_limit - 1,
        );
        scan_parents(ex, spec, parent_class, child_class, &mut report, |ex| {
            parents.next(ex.store.stack_mut())
        });
    });
    report
}

/// The per-parent pipeline body — the navigation, predicate, and emit
/// work for every `(parent_key, prid)` the driver yields, exactly as
/// the serial loop charges it. Factored out of [`run`] so the morsel
/// workers of [`super::parallel`] execute the identical charge
/// sequence over their slice of the driving scan: the serial path
/// passes the live index cursor as `next`, a worker passes an iterator
/// over its contiguous chunk of the pre-drained `(key, rid)` list.
/// Call inside an open `IndexRangeScan(parents)` scope.
pub(super) fn scan_parents(
    ex: &mut ExecContext<'_>,
    spec: &TreeJoinSpec,
    parent_class: ClassId,
    child_class: ClassId,
    report: &mut JoinReport,
    mut next: impl FnMut(&mut ExecContext<'_>) -> Option<(i64, Rid)>,
) {
    let batch = ex.batch_size();
    if batch <= 1 {
        while let Some((parent_key, prid)) = next(ex) {
            ex.with_object(prid, |ex, parent| {
                report.parents_scanned += 1;
                if parent.is_deleted() {
                    return;
                }
                ex.op(OpKind::SetNav, &spec.children, |ex| {
                    ex.store.charge_attr_access(parent_class, spec.parent_set);
                    let set = parent.object().values[spec.parent_set]
                        .as_set()
                        .expect("parent set attribute");
                    let mut members = ex.store.set_cursor(set);
                    while let Some(crid) = members.next(ex.store.stack_mut()) {
                        ex.with_object(crid, |ex, child| {
                            report.children_scanned += 1;
                            if child.is_deleted() {
                                return;
                            }
                            ex.store.charge_attr_access(child_class, spec.child_key);
                            ex.store.charge(CpuEvent::Compare, 1);
                            let child_key = int_attr(child.object(), spec.child_key);
                            if child_key < spec.child_key_limit {
                                ex.op(OpKind::Emit, "result", |ex| {
                                    ex.store
                                        .charge_attr_access(parent_class, spec.parent_project);
                                    ex.store.charge_attr_access(child_class, spec.child_project);
                                    emit(ex.store, spec, report, parent_key, child_key);
                                });
                            }
                        });
                    }
                });
            });
        }
    } else {
        // Batched: inline sets (small fan-out) chunk the member
        // fan-out and fetch children in batches — draining an
        // inline set touches no pages, so the page-access sequence
        // is the member fetches alone, identical to the scalar
        // loop. Overflow sets interleave rid-run page reads with
        // the child fetches; that interleave is measured physical
        // behaviour (reordering it perturbs cache recency), so
        // their fetches stay one-at-a-time. Both defer qualifying
        // pairs and flush inside the SetNav scope when possible;
        // the tail flush re-enters the SetNav node via its
        // recorded id, so the Emit row keeps its scalar position
        // under SetNav.
        let emit_charges = [
            (parent_class, spec.parent_project),
            (child_class, spec.child_project),
        ];
        let mut crids = ex.take_rid_batch();
        let mut pending = ex.take_val_batch();
        let mut nav_node = None;
        while let Some((parent_key, prid)) = next(ex) {
            ex.with_object(prid, |ex, parent| {
                report.parents_scanned += 1;
                if parent.is_deleted() {
                    return;
                }
                ex.op(OpKind::SetNav, &spec.children, |ex| {
                    nav_node = ex.current_node();
                    ex.store.charge_attr_access(parent_class, spec.parent_set);
                    let set = parent.object().values[spec.parent_set]
                        .as_set()
                        .expect("parent set attribute");
                    let mut members = ex.store.set_cursor(set);
                    if members.is_inline() {
                        loop {
                            crids.clear();
                            members.next_chunk(ex.store.stack_mut(), batch, &mut crids);
                            if crids.is_empty() {
                                break;
                            }
                            ex.with_batch(&crids, |ex, objs| {
                                for i in 0..objs.len() {
                                    let child = objs.object(i);
                                    report.children_scanned += 1;
                                    if child.header.is_deleted() {
                                        continue;
                                    }
                                    ex.store.charge_attr_access(child_class, spec.child_key);
                                    ex.store.charge(CpuEvent::Compare, 1);
                                    let child_key = int_attr(child, spec.child_key);
                                    if child_key < spec.child_key_limit {
                                        pending.push((parent_key, child_key));
                                    }
                                }
                            });
                        }
                    } else {
                        while let Some(crid) = members.next(ex.store.stack_mut()) {
                            ex.with_object(crid, |ex, child| {
                                report.children_scanned += 1;
                                if child.is_deleted() {
                                    return;
                                }
                                ex.store.charge_attr_access(child_class, spec.child_key);
                                ex.store.charge(CpuEvent::Compare, 1);
                                let child_key = int_attr(child.object(), spec.child_key);
                                if child_key < spec.child_key_limit {
                                    pending.push((parent_key, child_key));
                                }
                            });
                        }
                    }
                    if pending.len() >= batch {
                        let at = ex.current_node();
                        flush_emits(ex, at, &mut pending, &emit_charges, spec, report);
                    }
                });
            });
        }
        flush_emits(ex, nav_node, &mut pending, &emit_charges, spec, report);
        ex.put_rid_batch(crids);
        ex.put_val_batch(pending);
    }
}
