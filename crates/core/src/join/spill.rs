//! Spill runs for hybrid hashing: `(i64 key, Rid)` pairs packed into
//! pages of a temporary file, written and read back through the cache
//! hierarchy so partitioning I/O is charged like any other I/O.
//!
//! One page holds one packed record of up to [`PAIRS_PER_PAGE`]
//! entries (16 bytes each).

use tq_objstore::{Rid, RID_BYTES};
use tq_pagestore::{FileId, PageId, StorageStack, PAGE_SIZE};

/// Entries per spill page (16 B each; 250 × 16 = 4000 B fits a page).
pub const PAIRS_PER_PAGE: usize = 250;

const PAIR_BYTES: usize = 8 + RID_BYTES;

/// An in-progress spill partition: buffers one page worth of entries,
/// flushing full pages to its file.
#[derive(Debug)]
pub struct SpillWriter {
    file: FileId,
    buffer: Vec<(i64, Rid)>,
    first_page: Option<u32>,
    pages: u32,
    count: u64,
}

impl SpillWriter {
    /// A writer appending to `file`.
    pub fn new(file: FileId) -> Self {
        Self {
            file,
            buffer: Vec::with_capacity(PAIRS_PER_PAGE),
            first_page: None,
            pages: 0,
            count: 0,
        }
    }

    /// Appends one pair, flushing a page when the buffer fills.
    pub fn push(&mut self, stack: &mut StorageStack, key: i64, rid: Rid) {
        self.buffer.push((key, rid));
        self.count += 1;
        if self.buffer.len() == PAIRS_PER_PAGE {
            self.flush(stack);
        }
    }

    fn flush(&mut self, stack: &mut StorageStack) {
        if self.buffer.is_empty() {
            return;
        }
        let pid = stack.allocate_page(self.file);
        if self.first_page.is_none() {
            self.first_page = Some(pid.page_no);
        }
        self.pages += 1;
        let mut bytes = Vec::with_capacity(self.buffer.len() * PAIR_BYTES);
        for (k, r) in self.buffer.drain(..) {
            bytes.extend_from_slice(&k.to_le_bytes());
            bytes.extend_from_slice(&r.encode());
        }
        stack.write_page(pid, |p| {
            p.insert(&bytes, PAGE_SIZE)
                .expect("a spill chunk fits an empty page");
        });
    }

    /// Flushes the tail and seals the run for reading.
    pub fn finish(mut self, stack: &mut StorageStack) -> SpillRun {
        self.flush(stack);
        SpillRun {
            file: self.file,
            first_page: self.first_page.unwrap_or(0),
            pages: self.pages,
            count: self.count,
        }
    }

    /// Pairs written so far.
    pub fn count(&self) -> u64 {
        self.count
    }
}

/// A sealed spill run, ready for sequential read-back.
#[derive(Clone, Copy, Debug)]
pub struct SpillRun {
    /// The spill file.
    pub file: FileId,
    /// First page of the run.
    pub first_page: u32,
    /// Pages in the run.
    pub pages: u32,
    /// Pairs stored.
    pub count: u64,
}

impl SpillRun {
    /// Reads every pair back, in write order.
    pub fn read_all(&self, stack: &mut StorageStack) -> Vec<(i64, Rid)> {
        let mut out = Vec::with_capacity(self.count as usize);
        let mut remaining = self.count as usize;
        for page_off in 0..self.pages {
            let pid = PageId {
                file: self.file,
                page_no: self.first_page + page_off,
            };
            let page = stack.read_page(pid);
            let record = page.read(0).expect("spill page holds one record");
            let in_page = remaining.min(PAIRS_PER_PAGE);
            for i in 0..in_page {
                let at = i * PAIR_BYTES;
                let key = i64::from_le_bytes(record[at..at + 8].try_into().unwrap());
                let rid = Rid::decode(&record[at + 8..at + PAIR_BYTES]);
                out.push((key, rid));
            }
            remaining -= in_page;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tq_pagestore::{CacheConfig, CostModel};

    fn rid(n: u32) -> Rid {
        Rid::new(
            PageId {
                file: FileId(7),
                page_no: n,
            },
            (n % 11) as u16,
        )
    }

    #[test]
    fn write_and_read_back() {
        let mut s = StorageStack::new(CostModel::free(), CacheConfig::default());
        let f = s.create_file("spill.0");
        let mut w = SpillWriter::new(f);
        let pairs: Vec<(i64, Rid)> = (0..777).map(|i| (i * 3, rid(i as u32))).collect();
        for &(k, r) in &pairs {
            w.push(&mut s, k, r);
        }
        assert_eq!(w.count(), 777);
        let run = w.finish(&mut s);
        assert_eq!(run.pages, 4); // 250+250+250+27
        assert_eq!(run.read_all(&mut s), pairs);
    }

    #[test]
    fn empty_run() {
        let mut s = StorageStack::new(CostModel::free(), CacheConfig::default());
        let f = s.create_file("spill.0");
        let run = SpillWriter::new(f).finish(&mut s);
        assert_eq!(run.count, 0);
        assert!(run.read_all(&mut s).is_empty());
    }

    #[test]
    fn spill_io_is_charged() {
        let mut s = StorageStack::new(CostModel::sparc20(), CacheConfig::default());
        let f = s.create_file("spill.0");
        let mut w = SpillWriter::new(f);
        for i in 0..500 {
            w.push(&mut s, i, rid(i as u32));
        }
        let run = w.finish(&mut s);
        s.commit();
        let written = s.stats().pages_written;
        assert!(written >= 2, "spill pages written: {written}");
        s.cold_restart();
        s.reset_metrics();
        run.read_all(&mut s);
        assert_eq!(s.stats().d2sc_read_pages as u32, run.pages);
    }
}
