//! N-way chain executor: runs a [`LogicalPlan`] over a [`ChainSpec`]
//! by composing the same physical operators the 2-way joins use.
//!
//! The executor materializes the bound-row frontier between stages:
//! each row carries the rids of the steps bound so far plus the
//! projection slots already filled. Navigation stages re-fetch the
//! frontier object through its rid (the physically honest cost of a
//! materialized pipeline) and walk the edge attribute; hash stages
//! scan the new step's extent, build or probe an rid-keyed table
//! ([`SwapSim`]-paged like PHJ), and extend matching rows. Predicates
//! beyond an index-served primary are evaluated at fetch, charged
//! inside the enclosing operator scope.
//!
//! The trace rows this produces are exactly
//! [`chain_pipeline`](crate::plan::chain_pipeline)'s `(OpKind, label)`
//! vocabulary, and — through the [`ExecContext`] attribution invariant
//! — sum field for field to the query-level counters. Execution is
//! scalar at any `TQ_BATCH` (the batched gather-fetch protocol is a
//! 2-way figure concern), so chain output is identical at every batch
//! size by construction.

use super::rid_hash;
use crate::exec::{charge_result_append, int_attr, CancelToken, ExecContext, ExecTrace, OpKind};
use crate::plan::{ChainSpec, ChainStep, LogicalPlan, RootAccess, StepAlgo};
use crate::swap::SwapSim;
use tq_fasthash::FxHashMap;
use tq_index::BTreeIndex;
use tq_objstore::{ClassId, Object, ObjectStore, Rid};
use tq_pagestore::CpuEvent;

/// Bytes per chain hash-table entry: rid key plus the carried row
/// payload — same order of magnitude as the PHJ entry (Figure 10).
pub const CHAIN_ENTRY_BYTES: u64 = 64;

/// What a chain execution did.
#[derive(Clone, Debug, Default)]
pub struct ChainReport {
    /// Result tuples produced.
    pub results: u64,
    /// Objects fetched per step (chain order, not bind order).
    pub scanned: Vec<u64>,
    /// Peak hash-table bytes across hash stages (0 for all-nav plans).
    pub hash_table_bytes: u64,
    /// Swap faults the stage tables incurred.
    pub swap_faults: u64,
    /// Projected tuples, when collection was requested (tests only).
    pub rows: Option<Vec<Vec<i64>>>,
    /// Per-operator counter attribution.
    pub trace: ExecTrace,
}

/// One frontier row: rids of the bound steps (indexed by step, only
/// bound slots meaningful) and the projection values filled so far.
#[derive(Clone)]
struct Row {
    rids: Vec<Rid>,
    proj: Vec<i64>,
}

/// Runs `plan` over `spec`. `indexes[step]`, when present, is an index
/// on that step's primary predicate attribute (required by every
/// `RootAccess::Index` the plan uses). `collect` gathers the projected
/// tuples into [`ChainReport::rows`].
pub fn run_chain(
    store: &mut ObjectStore,
    spec: &ChainSpec,
    plan: &LogicalPlan,
    indexes: &[Option<BTreeIndex>],
    collect: bool,
    cancel: Option<CancelToken>,
) -> ChainReport {
    let mut report = ChainReport {
        scanned: vec![0; spec.len()],
        rows: collect.then(Vec::new),
        ..Default::default()
    };
    let classes: Vec<ClassId> = spec
        .steps
        .iter()
        .map(|s| store.collection(&s.collection).class)
        .collect();
    let mut ex = ExecContext::new(store);
    if let Some(token) = cancel {
        ex.set_cancel(token);
    }

    let mut rows = bind_root(&mut ex, spec, plan, indexes, &classes, &mut report);
    for stage in &plan.stages {
        let edge = spec.edge_between(stage.from, stage.step);
        let child_ward = edge.child == stage.step;
        rows = match stage.algo {
            StepAlgo::Nav if child_ward => nav_set(
                &mut ex,
                spec,
                stage.from,
                stage.step,
                edge.set_attr.expect("planner checked set attribute"),
                &classes,
                rows,
                &mut report,
            ),
            StepAlgo::Nav => nav_back_ref(
                &mut ex,
                spec,
                stage.from,
                stage.step,
                edge.ref_attr.expect("planner checked back reference"),
                &classes,
                rows,
                &mut report,
            ),
            StepAlgo::Hash if child_ward => hash_children(
                &mut ex,
                spec,
                stage.from,
                stage.step,
                stage.access,
                edge.ref_attr.expect("planner checked back reference"),
                indexes[stage.step].as_ref(),
                &classes,
                rows,
                &mut report,
            ),
            StepAlgo::Hash => hash_parents(
                &mut ex,
                spec,
                stage.from,
                stage.step,
                stage.access,
                edge.ref_attr.expect("planner checked back reference"),
                indexes[stage.step].as_ref(),
                &classes,
                rows,
                &mut report,
            ),
        };
    }

    ex.op(OpKind::Emit, "result", |ex| {
        for row in rows {
            charge_result_append(ex.store, spec.result_mode);
            report.results += 1;
            if let Some(out) = &mut report.rows {
                out.push(row.proj);
            }
        }
    });
    report.trace = ex.finish();
    report
}

/// Evaluates `preds[skip..]` against a fetched object, charging one
/// attribute get and one compare per conjunct tested (short-circuit).
fn preds_pass(
    ex: &mut ExecContext<'_>,
    class: ClassId,
    obj: &Object,
    step: &ChainStep,
    skip: usize,
) -> bool {
    for pred in &step.preds[skip..] {
        ex.store.charge_attr_access(class, pred.attr);
        ex.store.charge(CpuEvent::Compare, 1);
        if !pred.eval(int_attr(obj, pred.attr)) {
            return false;
        }
    }
    true
}

/// Fills the projection slots owned by `step` from its pinned object.
fn fill_proj(
    ex: &mut ExecContext<'_>,
    spec: &ChainSpec,
    class: ClassId,
    step: usize,
    obj: &Object,
    proj: &mut [i64],
) {
    for (slot, &(s, attr)) in spec.projection.iter().enumerate() {
        if s == step {
            ex.store.charge_attr_access(class, attr);
            proj[slot] = int_attr(obj, attr);
        }
    }
}

/// Gathers the candidate rids of `step`'s extent: an index range scan
/// over the primary predicate (rid-sorted, so the fetches that follow
/// run in physical order) or a rid-run walk of the whole collection.
/// Fetch costs land on the consuming stage. Returns the rids plus how
/// many leading predicates the access already enforced.
fn gather_candidates(
    ex: &mut ExecContext<'_>,
    spec: &ChainSpec,
    step: usize,
    access: RootAccess,
    index: Option<&BTreeIndex>,
) -> (Vec<Rid>, usize) {
    let s = &spec.steps[step];
    let label = s.label();
    match access {
        RootAccess::Index => {
            let index = index.expect("plan uses an index this step lacks");
            let pred = &s.preds[0];
            let (lo, hi) = pred.cmp.index_range(pred.key, i64::MIN + 1, i64::MAX - 1);
            let rids = ex.op(OpKind::IndexRangeScan, &label, |ex| {
                let mut cursor = index.range(ex.store.stack_mut(), lo, hi);
                let mut out: Vec<Rid> = Vec::new();
                while let Some((_, rid)) = cursor.next(ex.store.stack_mut()) {
                    out.push(rid);
                }
                if out.len() > 1 {
                    let n = out.len() as f64;
                    ex.store
                        .charge(CpuEvent::SortCompare, (n * n.log2()).ceil() as u64);
                    out.sort_unstable();
                }
                out
            });
            (rids, 1)
        }
        RootAccess::Scan => {
            let rids = ex.op(OpKind::SeqScan, &label, |ex| {
                let mut cursor = ex.store.collection_cursor(&s.collection);
                let mut out: Vec<Rid> = Vec::new();
                while let Some(rid) = cursor.next(ex.store.stack_mut()) {
                    out.push(rid);
                }
                out
            });
            (rids, 0)
        }
    }
}

/// Binds the root step: candidate gather plus the fetch/filter pass,
/// all inside the access operator's scope (mirroring the selection
/// scans).
fn bind_root(
    ex: &mut ExecContext<'_>,
    spec: &ChainSpec,
    plan: &LogicalPlan,
    indexes: &[Option<BTreeIndex>],
    classes: &[ClassId],
    report: &mut ChainReport,
) -> Vec<Row> {
    let step = plan.root;
    let s = &spec.steps[step];
    let class = classes[step];
    let label = s.label();
    let proj_len = spec.projection.len();
    let (candidates, enforced) =
        gather_candidates(ex, spec, step, plan.root_access, indexes[step].as_ref());
    let kind = match plan.root_access {
        RootAccess::Index => OpKind::IndexRangeScan,
        RootAccess::Scan => OpKind::SeqScan,
    };
    // Re-entering the same (kind, label) scope merges with the gather
    // node, so the trace shows one row per pipeline stage.
    ex.op(kind, &label, |ex| {
        let mut rows = Vec::new();
        for rid in candidates {
            ex.with_object(rid, |ex, obj| {
                report.scanned[step] += 1;
                if obj.is_deleted() {
                    return;
                }
                if !preds_pass(ex, class, obj.object(), s, enforced) {
                    return;
                }
                let mut row = Row {
                    // Every slot starts as the root rid; stages
                    // overwrite their own step's slot as they bind.
                    rids: vec![obj.rid(); spec.len()],
                    proj: vec![0; proj_len],
                };
                fill_proj(ex, spec, class, step, obj.object(), &mut row.proj);
                rows.push(row);
            });
        }
        rows
    })
}

/// Parent→child navigation: re-fetch each frontier parent, walk its
/// set attribute, fetch and filter members.
#[allow(clippy::too_many_arguments)]
fn nav_set(
    ex: &mut ExecContext<'_>,
    spec: &ChainSpec,
    from: usize,
    step: usize,
    set_attr: usize,
    classes: &[ClassId],
    rows: Vec<Row>,
    report: &mut ChainReport,
) -> Vec<Row> {
    let s = &spec.steps[step];
    let label = s.label();
    let (from_class, class) = (classes[from], classes[step]);
    ex.op(OpKind::SetNav, &label, |ex| {
        let mut out = Vec::new();
        for row in rows {
            ex.with_object(row.rids[from], |ex, parent| {
                if parent.is_deleted() {
                    return;
                }
                ex.store.charge_attr_access(from_class, set_attr);
                let set = parent.object().values[set_attr]
                    .as_set()
                    .expect("edge set attribute");
                let mut members = ex.store.set_cursor(set);
                while let Some(crid) = members.next(ex.store.stack_mut()) {
                    ex.with_object(crid, |ex, child| {
                        report.scanned[step] += 1;
                        if child.is_deleted() {
                            return;
                        }
                        if !preds_pass(ex, class, child.object(), s, 0) {
                            return;
                        }
                        let mut nr = row.clone();
                        nr.rids[step] = child.rid();
                        fill_proj(ex, spec, class, step, child.object(), &mut nr.proj);
                        out.push(nr);
                    });
                }
            });
        }
        out
    })
}

/// Child→parent navigation: re-fetch each frontier child, follow its
/// back reference, fetch and filter the parent.
#[allow(clippy::too_many_arguments)]
fn nav_back_ref(
    ex: &mut ExecContext<'_>,
    spec: &ChainSpec,
    from: usize,
    step: usize,
    ref_attr: usize,
    classes: &[ClassId],
    rows: Vec<Row>,
    report: &mut ChainReport,
) -> Vec<Row> {
    let s = &spec.steps[step];
    let label = s.label();
    let (from_class, class) = (classes[from], classes[step]);
    ex.op(OpKind::BackRefNav, &label, |ex| {
        let mut out = Vec::new();
        for mut row in rows {
            let prid = ex.with_object(row.rids[from], |ex, child| {
                if child.is_deleted() {
                    return None;
                }
                ex.store.charge_attr_access(from_class, ref_attr);
                child.object().values[ref_attr].as_ref_rid()
            });
            let Some(prid) = prid else { continue };
            ex.with_object(prid, |ex, parent| {
                report.scanned[step] += 1;
                if parent.is_deleted() {
                    return;
                }
                if !preds_pass(ex, class, parent.object(), s, 0) {
                    return;
                }
                row.rids[step] = parent.rid();
                fill_proj(ex, spec, class, step, parent.object(), &mut row.proj);
                out.push(row);
            });
        }
        out
    })
}

/// Hash stage, new step on the child side: build a table over the
/// bound parent rids, scan the child extent, probe by back reference.
#[allow(clippy::too_many_arguments)]
fn hash_children(
    ex: &mut ExecContext<'_>,
    spec: &ChainSpec,
    from: usize,
    step: usize,
    access: RootAccess,
    ref_attr: usize,
    index: Option<&BTreeIndex>,
    classes: &[ClassId],
    rows: Vec<Row>,
    report: &mut ChainReport,
) -> Vec<Row> {
    let s = &spec.steps[step];
    let class = classes[step];
    let budget = ex.store.stack().model().operator_memory_budget;
    let mut swap = SwapSim::new(0, budget);
    // Row indices per parent rid (a parent can back several rows once
    // the chain revisits a collection).
    let mut table: FxHashMap<Rid, Vec<usize>> = FxHashMap::default();
    ex.op(OpKind::HashBuild, &spec.steps[from].label(), |ex| {
        for (i, row) in rows.iter().enumerate() {
            table.entry(row.rids[from]).or_default().push(i);
            ex.store.charge(CpuEvent::HashInsert, 1);
            swap.grow_to(table.len() as u64 * CHAIN_ENTRY_BYTES);
            if swap.touch(rid_hash(row.rids[from])) {
                ex.store.charge(CpuEvent::SwapFault, 1);
            }
        }
    });
    report.hash_table_bytes = report
        .hash_table_bytes
        .max(table.len() as u64 * CHAIN_ENTRY_BYTES);

    let (candidates, enforced) = gather_candidates(ex, spec, step, access, index);
    let out = ex.op(OpKind::HashProbe, &s.label(), |ex| {
        let mut out = Vec::new();
        for crid in candidates {
            ex.with_object(crid, |ex, child| {
                report.scanned[step] += 1;
                if child.is_deleted() {
                    return;
                }
                if !preds_pass(ex, class, child.object(), s, enforced) {
                    return;
                }
                ex.store.charge_attr_access(class, ref_attr);
                let Some(prid) = child.object().values[ref_attr].as_ref_rid() else {
                    return;
                };
                ex.store.charge(CpuEvent::HashProbe, 1);
                if swap.touch(rid_hash(prid)) {
                    ex.store.charge(CpuEvent::SwapFault, 1);
                }
                if let Some(hits) = table.get(&prid) {
                    for &i in hits {
                        let mut nr = rows[i].clone();
                        nr.rids[step] = child.rid();
                        fill_proj(ex, spec, class, step, child.object(), &mut nr.proj);
                        out.push(nr);
                    }
                }
            });
        }
        out
    });
    report.swap_faults += swap.faults();
    out
}

/// Hash stage, new step on the parent side: scan and filter the parent
/// extent into a table keyed by rid (carrying its projection values),
/// then probe with each bound child's back reference.
#[allow(clippy::too_many_arguments)]
fn hash_parents(
    ex: &mut ExecContext<'_>,
    spec: &ChainSpec,
    from: usize,
    step: usize,
    access: RootAccess,
    ref_attr: usize,
    index: Option<&BTreeIndex>,
    classes: &[ClassId],
    rows: Vec<Row>,
    report: &mut ChainReport,
) -> Vec<Row> {
    let s = &spec.steps[step];
    let (from_class, class) = (classes[from], classes[step]);
    let budget = ex.store.stack().model().operator_memory_budget;
    let mut swap = SwapSim::new(0, budget);
    let (candidates, enforced) = gather_candidates(ex, spec, step, access, index);
    // Qualifying parents, carrying the projection slots they own.
    let mut table: FxHashMap<Rid, Vec<(usize, i64)>> = FxHashMap::default();
    ex.op(OpKind::HashBuild, &s.label(), |ex| {
        for prid in candidates {
            ex.with_object(prid, |ex, parent| {
                report.scanned[step] += 1;
                if parent.is_deleted() {
                    return;
                }
                if !preds_pass(ex, class, parent.object(), s, enforced) {
                    return;
                }
                let mut vals = Vec::new();
                for (slot, &(ps, attr)) in spec.projection.iter().enumerate() {
                    if ps == step {
                        ex.store.charge_attr_access(class, attr);
                        vals.push((slot, int_attr(parent.object(), attr)));
                    }
                }
                table.insert(parent.rid(), vals);
                ex.store.charge(CpuEvent::HashInsert, 1);
                swap.grow_to(table.len() as u64 * CHAIN_ENTRY_BYTES);
                if swap.touch(rid_hash(parent.rid())) {
                    ex.store.charge(CpuEvent::SwapFault, 1);
                }
            });
        }
    });
    report.hash_table_bytes = report
        .hash_table_bytes
        .max(table.len() as u64 * CHAIN_ENTRY_BYTES);

    ex.op(OpKind::HashProbe, &spec.steps[from].label(), |ex| {
        let mut out = Vec::new();
        for mut row in rows {
            let prid = ex.with_object(row.rids[from], |ex, child| {
                if child.is_deleted() {
                    return None;
                }
                ex.store.charge_attr_access(from_class, ref_attr);
                child.object().values[ref_attr].as_ref_rid()
            });
            let Some(prid) = prid else { continue };
            ex.store.charge(CpuEvent::HashProbe, 1);
            if swap.touch(rid_hash(prid)) {
                ex.store.charge(CpuEvent::SwapFault, 1);
            }
            if let Some(vals) = table.get(&prid) {
                row.rids[step] = prid;
                for &(slot, v) in vals {
                    row.proj[slot] = v;
                }
                out.push(row);
            }
        }
        report.swap_faults += swap.faults();
        out
    })
}
