//! Hybrid hash joins — the optimization the paper names but never
//! tested (§5.1: "We did not consider hybrid hashing — their citation 17 — to optimize
//! this"; conclusion: "the second point indicates the need for hybrid
//! hashing").
//!
//! When the build side outgrows the operator memory budget, the plain
//! PHJ/CHJ tables page catastrophically (the Figure 12 (90,90)
//! inversion). Hybrid hashing partitions both sides by a hash of the
//! join rid so that **every partition's table fits in memory**:
//! partition 0 is built and probed in memory on the fly; partitions
//! `1..P` spill `(key, rid)` pairs to temporary files — sequential,
//! charged I/O — and join pairwise afterwards. No swap faults, ever.
//!
//! The implementation is shared by both hash joins:
//! [`BuildSide::Parents`] gives hybrid-PHJ, [`BuildSide::Children`]
//! hybrid-CHJ.
//!
//! Operator composition: the in-memory partition runs under the same
//! `HashBuild`/`HashProbe` nodes as the plain joins; spilled-partition
//! work (run writes, re-reads, pairwise joins) lands on `"spill"`
//! labelled build/probe nodes, and releasing the spill space is a
//! `Teardown`.

use super::spill::{SpillRun, SpillWriter};
use super::{
    emit, flush_emits, rid_hash, JoinOptions, JoinReport, TreeJoinSpec, CHJ_CHILD_ENTRY_BYTES,
    CHJ_PARENT_SLOT_BYTES, PHJ_ENTRY_BYTES,
};
use crate::exec::{index_range_scan, ExecContext, OpKind};
use tq_fasthash::FxHashMap;
use tq_index::BTreeIndex;
use tq_objstore::{ObjectStore, Rid};
use tq_pagestore::CpuEvent;

/// Which side the hash table is built on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BuildSide {
    /// Hash the (selected) parents; probe with the children — PHJ.
    Parents,
    /// Hash the (selected) children by their parent; probe with the
    /// parents — CHJ.
    Children,
}

/// Partition of a rid. Uses the high hash bits so it stays independent
/// of any in-memory bucketing of the same hash.
fn partition_of(rid: Rid, partitions: u32) -> u32 {
    if partitions <= 1 {
        0
    } else {
        ((rid_hash(rid) >> 32) % partitions as u64) as u32
    }
}

/// Picks a partition count such that each partition's build table fits
/// comfortably (80%) inside the memory budget.
fn partition_count(table_bytes: u64, budget: u64) -> u32 {
    let usable = (budget as f64 * 0.8).max(1.0);
    (table_bytes as f64 / usable).ceil().max(1.0) as u32
}

struct Spills {
    build: Vec<SpillWriter>,
    probe: Vec<SpillWriter>,
    files: Vec<tq_pagestore::FileId>,
}

fn make_spills(store: &mut ObjectStore, partitions: u32) -> Spills {
    let mut build = Vec::new();
    let mut probe = Vec::new();
    let mut files = Vec::new();
    for p in 1..partitions {
        let bf = store.create_file(format!("spill.build.{p}"));
        let pf = store.create_file(format!("spill.probe.{p}"));
        build.push(SpillWriter::new(bf));
        probe.push(SpillWriter::new(pf));
        files.push(bf);
        files.push(pf);
    }
    Spills {
        build,
        probe,
        files,
    }
}

/// Runs the hybrid hash join.
#[allow(clippy::too_many_arguments)]
pub(super) fn run(
    ex: &mut ExecContext<'_>,
    parent_index: &BTreeIndex,
    child_index: &BTreeIndex,
    spec: &TreeJoinSpec,
    opts: &JoinOptions,
    side: BuildSide,
    collect: bool,
) -> JoinReport {
    let mut report = JoinReport {
        pairs: collect.then(Vec::new),
        ..Default::default()
    };
    let parent_class = ex.store.collection(&spec.parents).class;
    let child_class = ex.store.collection(&spec.children).class;
    let budget = ex.store.stack().model().operator_memory_budget;
    let (build_label, probe_label) = match side {
        BuildSide::Parents => (&spec.parents, &spec.children),
        BuildSide::Children => (&spec.children, &spec.parents),
    };

    // --- Build phase -------------------------------------------------
    // Gather the build side's (key, rid) stream and size the partitions
    // from its exact cardinality.
    let build_pairs = match side {
        BuildSide::Parents => index_range_scan(
            ex,
            parent_index,
            spec.parent_key_limit,
            opts.sort_index_rids,
            build_label,
        ),
        BuildSide::Children => index_range_scan(
            ex,
            child_index,
            spec.child_key_limit,
            opts.sort_index_rids,
            build_label,
        ),
    };
    let table_bytes = match side {
        BuildSide::Parents => PHJ_ENTRY_BYTES * build_pairs.len() as u64,
        // Pessimistic: every child could touch a distinct parent slot.
        BuildSide::Children => {
            (CHJ_PARENT_SLOT_BYTES + CHJ_CHILD_ENTRY_BYTES) * build_pairs.len() as u64
        }
    };
    let partitions = partition_count(table_bytes, budget);
    report.partitions = partitions;

    // The in-memory (partition 0) table: join-rid -> payload keys.
    let batch = ex.batch_size();
    let mut mem: FxHashMap<Rid, Vec<i64>> = FxHashMap::default();
    let mut spills = ex.op(OpKind::HashBuild, build_label, |ex| {
        let mut spills = make_spills(ex.store, partitions);
        // Sequence identity: when partitions spill, every row may write
        // a spill page between object fetches — that interleave of
        // writes and reads is the algorithm's measured cache behaviour,
        // so the fetch loop stays scalar. Only a spill-free build
        // (partition 0 holds everything) is a pure gather-then-fetch
        // stream that batching cannot perturb.
        if batch <= 1 || partitions > 1 {
            for &(key, rid) in &build_pairs {
                // Fetch the build object (its projected attribute travels
                // with the entry, as in the plain algorithms).
                ex.with_object(rid, |ex, fetched| {
                    if fetched.is_deleted() {
                        return;
                    }
                    match side {
                        BuildSide::Parents => {
                            report.parents_scanned += 1;
                            ex.store
                                .charge_attr_access(parent_class, spec.parent_project);
                            let p = partition_of(fetched.rid(), partitions);
                            ex.store.charge(CpuEvent::HashInsert, 1);
                            if p == 0 {
                                mem.entry(fetched.rid()).or_default().push(key);
                            } else {
                                spills.build[p as usize - 1].push(
                                    ex.store.stack_mut(),
                                    key,
                                    fetched.rid(),
                                );
                            }
                        }
                        BuildSide::Children => {
                            report.children_scanned += 1;
                            ex.store.charge_attr_access(child_class, spec.child_parent);
                            ex.store.charge_attr_access(child_class, spec.child_project);
                            let prid = fetched.object().values[spec.child_parent]
                                .as_ref_rid()
                                .expect("child parent reference");
                            let p = partition_of(prid, partitions);
                            ex.store.charge(CpuEvent::HashInsert, 1);
                            if p == 0 {
                                mem.entry(prid).or_default().push(key);
                            } else {
                                spills.build[p as usize - 1].push(ex.store.stack_mut(), key, prid);
                            }
                        }
                    }
                });
            }
        } else {
            let mut rids = ex.take_rid_batch();
            for chunk in build_pairs.chunks(batch) {
                rids.clear();
                rids.extend(chunk.iter().map(|&(_, r)| r));
                ex.with_batch(&rids, |ex, objs| {
                    for (i, &(key, _)) in chunk.iter().enumerate() {
                        let (rid, fetched) = objs.get(i);
                        if fetched.header.is_deleted() {
                            continue;
                        }
                        match side {
                            BuildSide::Parents => {
                                report.parents_scanned += 1;
                                ex.store
                                    .charge_attr_access(parent_class, spec.parent_project);
                                let p = partition_of(rid, partitions);
                                ex.store.charge(CpuEvent::HashInsert, 1);
                                if p == 0 {
                                    mem.entry(rid).or_default().push(key);
                                } else {
                                    spills.build[p as usize - 1].push(
                                        ex.store.stack_mut(),
                                        key,
                                        rid,
                                    );
                                }
                            }
                            BuildSide::Children => {
                                report.children_scanned += 1;
                                ex.store.charge_attr_access(child_class, spec.child_parent);
                                ex.store.charge_attr_access(child_class, spec.child_project);
                                let prid = fetched.values[spec.child_parent]
                                    .as_ref_rid()
                                    .expect("child parent reference");
                                let p = partition_of(prid, partitions);
                                ex.store.charge(CpuEvent::HashInsert, 1);
                                if p == 0 {
                                    mem.entry(prid).or_default().push(key);
                                } else {
                                    spills.build[p as usize - 1].push(
                                        ex.store.stack_mut(),
                                        key,
                                        prid,
                                    );
                                }
                            }
                        }
                    }
                });
            }
            ex.put_rid_batch(rids);
        }
        spills
    });

    // --- Probe phase (streaming) --------------------------------------
    let probe_pairs = match side {
        BuildSide::Parents => index_range_scan(
            ex,
            child_index,
            spec.child_key_limit,
            opts.sort_index_rids,
            probe_label,
        ),
        BuildSide::Children => index_range_scan(
            ex,
            parent_index,
            spec.parent_key_limit,
            opts.sort_index_rids,
            probe_label,
        ),
    };
    ex.op(OpKind::HashProbe, probe_label, |ex| {
        if batch > 1 && partitions > 1 {
            // Spilling probe: rows interleave spill-page writes with
            // object fetches, so the fetch loop stays in scalar order
            // (same doctrine as the build). The emits are page-pure —
            // deferring them through `flush_emits` is the only batching
            // this phase admits.
            let mut pending = ex.take_val_batch();
            for &(key, rid) in &probe_pairs {
                ex.with_object(rid, |ex, fetched| {
                    if fetched.is_deleted() {
                        return;
                    }
                    let join_rid = match side {
                        BuildSide::Parents => {
                            report.children_scanned += 1;
                            ex.store.charge_attr_access(child_class, spec.child_parent);
                            ex.store.charge_attr_access(child_class, spec.child_project);
                            fetched.object().values[spec.child_parent]
                                .as_ref_rid()
                                .expect("child parent reference")
                        }
                        BuildSide::Children => {
                            report.parents_scanned += 1;
                            ex.store
                                .charge_attr_access(parent_class, spec.parent_project);
                            fetched.rid()
                        }
                    };
                    let p = partition_of(join_rid, partitions);
                    if p == 0 {
                        ex.store.charge(CpuEvent::HashProbe, 1);
                        if let Some(payloads) = mem.get(&join_rid) {
                            for &payload in payloads.iter() {
                                match side {
                                    BuildSide::Parents => pending.push((payload, key)),
                                    BuildSide::Children => pending.push((key, payload)),
                                }
                            }
                        }
                    } else {
                        spills.probe[p as usize - 1].push(ex.store.stack_mut(), key, join_rid);
                    }
                });
                if pending.len() >= batch {
                    let at = ex.current_node();
                    flush_emits(ex, at, &mut pending, &[], spec, &mut report);
                }
            }
            let at = ex.current_node();
            flush_emits(ex, at, &mut pending, &[], spec, &mut report);
            ex.put_val_batch(pending);
        } else if batch <= 1 {
            for &(key, rid) in &probe_pairs {
                ex.with_object(rid, |ex, fetched| {
                    if fetched.is_deleted() {
                        return;
                    }
                    let join_rid = match side {
                        BuildSide::Parents => {
                            report.children_scanned += 1;
                            ex.store.charge_attr_access(child_class, spec.child_parent);
                            ex.store.charge_attr_access(child_class, spec.child_project);
                            fetched.object().values[spec.child_parent]
                                .as_ref_rid()
                                .expect("child parent reference")
                        }
                        BuildSide::Children => {
                            report.parents_scanned += 1;
                            ex.store
                                .charge_attr_access(parent_class, spec.parent_project);
                            fetched.rid()
                        }
                    };
                    let p = partition_of(join_rid, partitions);
                    if p == 0 {
                        ex.store.charge(CpuEvent::HashProbe, 1);
                        if let Some(payloads) = mem.get(&join_rid) {
                            ex.op(OpKind::Emit, "result", |ex| {
                                for &payload in payloads.iter() {
                                    match side {
                                        BuildSide::Parents => {
                                            emit(ex.store, spec, &mut report, payload, key)
                                        }
                                        BuildSide::Children => {
                                            emit(ex.store, spec, &mut report, key, payload)
                                        }
                                    }
                                }
                            });
                        }
                    } else {
                        spills.probe[p as usize - 1].push(ex.store.stack_mut(), key, join_rid);
                    }
                });
            }
        } else {
            let mut rids = ex.take_rid_batch();
            let mut pending = ex.take_val_batch();
            for chunk in probe_pairs.chunks(batch) {
                rids.clear();
                rids.extend(chunk.iter().map(|&(_, r)| r));
                ex.with_batch(&rids, |ex, objs| {
                    for (i, &(key, _)) in chunk.iter().enumerate() {
                        let (rid, fetched) = objs.get(i);
                        if fetched.header.is_deleted() {
                            continue;
                        }
                        let join_rid = match side {
                            BuildSide::Parents => {
                                report.children_scanned += 1;
                                ex.store.charge_attr_access(child_class, spec.child_parent);
                                ex.store.charge_attr_access(child_class, spec.child_project);
                                fetched.values[spec.child_parent]
                                    .as_ref_rid()
                                    .expect("child parent reference")
                            }
                            BuildSide::Children => {
                                report.parents_scanned += 1;
                                ex.store
                                    .charge_attr_access(parent_class, spec.parent_project);
                                rid
                            }
                        };
                        let p = partition_of(join_rid, partitions);
                        if p == 0 {
                            ex.store.charge(CpuEvent::HashProbe, 1);
                            if let Some(payloads) = mem.get(&join_rid) {
                                for &payload in payloads.iter() {
                                    match side {
                                        BuildSide::Parents => pending.push((payload, key)),
                                        BuildSide::Children => pending.push((key, payload)),
                                    }
                                }
                            }
                        } else {
                            spills.probe[p as usize - 1].push(ex.store.stack_mut(), key, join_rid);
                        }
                    }
                });
                if pending.len() >= batch {
                    let at = ex.current_node();
                    flush_emits(ex, at, &mut pending, &[], spec, &mut report);
                }
            }
            let at = ex.current_node();
            flush_emits(ex, at, &mut pending, &[], spec, &mut report);
            ex.put_rid_batch(rids);
            ex.put_val_batch(pending);
        }
    });
    report.hash_table_bytes = table_bytes.min(budget);
    drop(mem);

    // --- Spilled partitions, pairwise ----------------------------------
    let build_runs: Vec<SpillRun> = ex.op(OpKind::HashBuild, "spill", |ex| {
        spills
            .build
            .drain(..)
            .map(|w| w.finish(ex.store.stack_mut()))
            .collect()
    });
    let probe_runs: Vec<SpillRun> = ex.op(OpKind::HashProbe, "spill", |ex| {
        spills
            .probe
            .drain(..)
            .map(|w| w.finish(ex.store.stack_mut()))
            .collect()
    });
    for (build_run, probe_run) in build_runs.iter().zip(&probe_runs) {
        report.spill_pages += (build_run.pages + probe_run.pages) as u64;
        let mut table: FxHashMap<Rid, Vec<i64>> = FxHashMap::default();
        ex.op(OpKind::HashBuild, "spill", |ex| {
            for (key, join_rid) in build_run.read_all(ex.store.stack_mut()) {
                ex.store.charge(CpuEvent::HashInsert, 1);
                table.entry(join_rid).or_default().push(key);
            }
        });
        ex.op(OpKind::HashProbe, "spill", |ex| {
            if batch <= 1 {
                for (key, join_rid) in probe_run.read_all(ex.store.stack_mut()) {
                    ex.store.charge(CpuEvent::HashProbe, 1);
                    if let Some(payloads) = table.get(&join_rid) {
                        ex.op(OpKind::Emit, "result", |ex| {
                            for &payload in payloads.iter() {
                                match side {
                                    BuildSide::Parents => {
                                        emit(ex.store, spec, &mut report, payload, key)
                                    }
                                    BuildSide::Children => {
                                        emit(ex.store, spec, &mut report, key, payload)
                                    }
                                }
                            }
                        });
                    }
                }
            } else {
                let mut pending = ex.take_val_batch();
                for (key, join_rid) in probe_run.read_all(ex.store.stack_mut()) {
                    ex.store.charge(CpuEvent::HashProbe, 1);
                    if let Some(payloads) = table.get(&join_rid) {
                        for &payload in payloads.iter() {
                            match side {
                                BuildSide::Parents => pending.push((payload, key)),
                                BuildSide::Children => pending.push((key, payload)),
                            }
                        }
                    }
                    if pending.len() >= batch {
                        let at = ex.current_node();
                        flush_emits(ex, at, &mut pending, &[], spec, &mut report);
                    }
                }
                let at = ex.current_node();
                flush_emits(ex, at, &mut pending, &[], spec, &mut report);
                ex.put_val_batch(pending);
            }
        });
    }

    // Release the spill space.
    ex.op(OpKind::Teardown, "spill", |ex| {
        for f in spills.files {
            ex.store.stack_mut().truncate_file(f);
        }
    });
    report
}
