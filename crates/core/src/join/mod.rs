//! The four §5.1 join algorithms over a 1-N tree.
//!
//! All four evaluate
//!
//! ```text
//! select [p.<parent_project>, pa.<child_project>]
//! from p in <parents>, pa in p.<children set>
//! where pa.<child_key> < k1 and p.<parent_key> < k2
//! ```
//!
//! * [`nl`] — **parent-to-child navigation**: index on parents only;
//!   children reached through the set attribute (random I/O unless
//!   composition-clustered).
//! * [`nojoin`] — **child-to-parent navigation**: index on children
//!   only; parents reached through the back reference, tested up to
//!   fan-out times ("the join is hidden within the navigation
//!   pattern").
//! * [`phj`] — **hash the parents and join**: both indexes, both
//!   collections accessed sequentially; table of 64 bytes per selected
//!   parent (paper Figure 10).
//! * [`chj`] — **hash the children and join**: the sequential-outer
//!   variant of the Shekita–Carey pointer join; table of 60 bytes per
//!   parent slot plus 8 per selected child (Figure 10).
//!
//! Hash tables larger than the operator memory budget page against the
//! [`SwapSim`](crate::swap::SwapSim) — the Figure 12 inversion where
//! navigation wins back at 90/90 selectivity on the 1:3 database.

pub mod chain;
mod chj;
pub mod hybrid;
mod nl;
mod nojoin;
pub mod parallel;
mod phj;
pub mod smj;
pub mod spill;

pub use chain::{run_chain, ChainReport};

use crate::exec::{CancelToken, ExecContext, ExecTrace, OpKind, ValueBatch};
use crate::spec::{HashKeyMode, JoinAlgo, ResultMode, TreeJoinSpec};
use tq_index::BTreeIndex;
use tq_objstore::{AttrId, ClassId, ObjectStore, Rid};
use tq_pagestore::CpuEvent;

/// Bytes per PHJ hash-table entry: `(providerid, provider information)`
/// — calibrated so table sizes reproduce the paper's Figure 10 exactly.
pub const PHJ_ENTRY_BYTES: u64 = 64;
/// Bytes per CHJ parent slot (the table is directory-organized by
/// parent, sized for the parent cardinality) — Figure 10.
pub const CHJ_PARENT_SLOT_BYTES: u64 = 60;
/// Bytes per CHJ child entry — Figure 10.
pub const CHJ_CHILD_ENTRY_BYTES: u64 = 8;
/// Extra bytes per entry when hashing Handles instead of Rids (§4.1).
pub const HANDLE_ENTRY_EXTRA_BYTES: u64 = 60;

/// Options common to all join runs.
#[derive(Clone, Copy, Debug)]
pub struct JoinOptions {
    /// Hash tables keyed on rids (cheap) or handles (§4.1's costly
    /// alternative).
    pub hash_key: HashKeyMode,
    /// Sort index-returned rids before fetching, so large collections
    /// are "always accessed sequentially" (§5.1) regardless of index
    /// clustering — the §4.3 sorted-scan lesson applied inside the
    /// joins. Applies to the scan sides of NOJOIN/PHJ/CHJ; NL's child
    /// accesses are navigational and cannot be sorted.
    pub sort_index_rids: bool,
    /// Use hybrid hashing for PHJ/CHJ: partition both sides so every
    /// partition's table fits in memory (§5.1's untested "need for
    /// hybrid hashing"). Off by default — the paper measured the
    /// non-hybrid algorithms.
    pub hybrid_hashing: bool,
}

impl Default for JoinOptions {
    fn default() -> Self {
        Self {
            hash_key: HashKeyMode::Rid,
            sort_index_rids: true,
            hybrid_hashing: false,
        }
    }
}

/// What a join did. Clock and I/O counters live in the store; measure
/// around the call.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct JoinReport {
    /// Result tuples produced.
    pub results: u64,
    /// Parent objects fetched.
    pub parents_scanned: u64,
    /// Child objects fetched.
    pub children_scanned: u64,
    /// Final operator hash-table size in bytes (0 for navigation).
    pub hash_table_bytes: u64,
    /// Swap faults the table incurred (always 0 under hybrid hashing).
    pub swap_faults: u64,
    /// Partitions used (hybrid hashing; 0 when not hybrid).
    pub partitions: u32,
    /// Spill pages written+read by hybrid hashing.
    pub spill_pages: u64,
    /// `(parent_key, child_key)` pairs, when collection was requested
    /// (tests only — paper-scale runs stream).
    pub pairs: Option<Vec<(i64, i64)>>,
    /// Per-operator counter attribution (sums exactly to the counter
    /// deltas of the join's execution window).
    pub trace: ExecTrace,
}

/// Everything a join algorithm needs.
pub struct JoinContext<'a> {
    /// The object store.
    pub store: &'a mut ObjectStore,
    /// Clustered index on the parent key (`upin`).
    pub parent_index: &'a BTreeIndex,
    /// Clustered index on the child key (`mrn`).
    pub child_index: &'a BTreeIndex,
}

/// Dispatches to the chosen algorithm. Every algorithm runs through an
/// [`ExecContext`] built over the store: object accesses are
/// guard-paired (no manual `fetch`/`release`) and every counter delta
/// lands in the [`JoinReport::trace`] operator breakdown.
pub fn run_join(
    algo: JoinAlgo,
    ctx: &mut JoinContext<'_>,
    spec: &TreeJoinSpec,
    opts: &JoinOptions,
    collect: bool,
) -> JoinReport {
    run_join_with(algo, ctx, spec, opts, collect, None)
}

/// [`run_join`] with cooperative cancellation: when `cancel` is set,
/// operator boundaries check the token and abandon the pipeline by
/// unwinding with a [`Cancelled`](crate::exec::Cancelled) payload
/// (catch it with `std::panic::catch_unwind`; the store is then in an
/// undefined cache/handle state and must be discarded). With `None`
/// this is exactly `run_join` — no check, no charge, no drift.
pub fn run_join_with(
    algo: JoinAlgo,
    ctx: &mut JoinContext<'_>,
    spec: &TreeJoinSpec,
    opts: &JoinOptions,
    collect: bool,
    cancel: Option<CancelToken>,
) -> JoinReport {
    let mut ex = ExecContext::new(ctx.store);
    if let Some(token) = cancel {
        ex.set_cancel(token);
    }
    let mut report = match algo {
        JoinAlgo::Nl => nl::run(&mut ex, ctx.parent_index, spec, collect),
        JoinAlgo::Nojoin => nojoin::run(&mut ex, ctx.child_index, spec, opts, collect),
        JoinAlgo::Phj if opts.hybrid_hashing => hybrid::run(
            &mut ex,
            ctx.parent_index,
            ctx.child_index,
            spec,
            opts,
            hybrid::BuildSide::Parents,
            collect,
        ),
        JoinAlgo::Chj if opts.hybrid_hashing => hybrid::run(
            &mut ex,
            ctx.parent_index,
            ctx.child_index,
            spec,
            opts,
            hybrid::BuildSide::Children,
            collect,
        ),
        JoinAlgo::Phj => phj::run(
            &mut ex,
            ctx.parent_index,
            ctx.child_index,
            spec,
            opts,
            collect,
        ),
        JoinAlgo::Chj => chj::run(
            &mut ex,
            ctx.parent_index,
            ctx.child_index,
            spec,
            opts,
            collect,
        ),
    };
    report.trace = ex.finish();
    report
}

/// The paper's Figure 10 hash-table size *approximation*, in bytes.
///
/// `parents_total` is the parent-extent cardinality, `selected_parents`
/// / `selected_children` the predicate survivors. Note the CHJ
/// directory is sized pessimistically by the full parent cardinality,
/// exactly as the paper approximates it; the executor demand-allocates
/// parent slots and reports the (smaller) actual size in
/// [`JoinReport::hash_table_bytes`].
pub fn hash_table_bytes(
    algo: JoinAlgo,
    parents_total: u64,
    selected_parents: u64,
    selected_children: u64,
) -> u64 {
    match algo {
        JoinAlgo::Phj => PHJ_ENTRY_BYTES * selected_parents,
        JoinAlgo::Chj => {
            CHJ_PARENT_SLOT_BYTES * parents_total + CHJ_CHILD_ENTRY_BYTES * selected_children
        }
        JoinAlgo::Nl | JoinAlgo::Nojoin => 0,
    }
}

/// Hash a rid for table-page placement.
pub(crate) fn rid_hash(rid: Rid) -> u64 {
    let x = ((rid.page.file.0 as u64) << 48) ^ ((rid.page.page_no as u64) << 16) ^ rid.slot as u64;
    // splitmix64 finalizer.
    let mut z = x.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Charges one result append per `spec.result_mode` and records the
/// pair when collecting.
pub(crate) fn emit(
    store: &mut ObjectStore,
    spec: &TreeJoinSpec,
    report: &mut JoinReport,
    parent_key: i64,
    child_key: i64,
) {
    store.charge(
        match spec.result_mode {
            ResultMode::Persistent => CpuEvent::ResultAppendPersistent,
            ResultMode::Transient => CpuEvent::ResultAppendTransient,
        },
        1,
    );
    report.results += 1;
    if let Some(pairs) = &mut report.pairs {
        pairs.push((parent_key, child_key));
    }
}

/// Flushes a batch of deferred result emissions under one `Emit` scope
/// rooted at `emit_parent` (the node the scalar path's per-match nested
/// scopes merge into — capture it with
/// [`ExecContext::current_node`] inside that scope). Per pair, replays
/// exactly the scalar `Emit` body: `attr_charges` attribute accesses,
/// then the result append. No-op on an empty batch, so no spurious
/// `Emit` node appears for joins that matched nothing.
pub(crate) fn flush_emits(
    ex: &mut ExecContext<'_>,
    emit_parent: Option<usize>,
    pending: &mut ValueBatch,
    attr_charges: &[(ClassId, AttrId)],
    spec: &TreeJoinSpec,
    report: &mut JoinReport,
) {
    if pending.is_empty() {
        return;
    }
    ex.op_batch(emit_parent, OpKind::Emit, "result", |ex| {
        for &(parent_key, child_key) in pending.iter() {
            for &(class, attr) in attr_charges {
                ex.store.charge_attr_access(class, attr);
            }
            emit(ex.store, spec, report, parent_key, child_key);
        }
    });
    pending.clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure 10, all eight rows, to the megabyte.
    #[test]
    fn figure_10_hash_table_sizes() {
        let mb = |b: u64| b as f64 / 1e6; // the paper's "MB"
                                          // PHJ, 2000 providers, 1:1000.
        assert!((mb(hash_table_bytes(JoinAlgo::Phj, 2_000, 200, 0)) - 0.0128).abs() < 1e-4);
        assert!((mb(hash_table_bytes(JoinAlgo::Phj, 2_000, 1_800, 0)) - 0.1152).abs() < 1e-4);
        // PHJ, 10^6 providers, 1:3.
        assert!((mb(hash_table_bytes(JoinAlgo::Phj, 1_000_000, 100_000, 0)) - 6.4).abs() < 0.01);
        assert!((mb(hash_table_bytes(JoinAlgo::Phj, 1_000_000, 900_000, 0)) - 57.6).abs() < 0.01);
        // CHJ, 2000 providers, 1:1000 (2M patients).
        assert!((mb(hash_table_bytes(JoinAlgo::Chj, 2_000, 0, 200_000)) - 1.72).abs() < 0.01);
        assert!((mb(hash_table_bytes(JoinAlgo::Chj, 2_000, 0, 1_800_000)) - 14.52).abs() < 0.01);
        // CHJ, 10^6 providers, 1:3 (3M patients).
        assert!((mb(hash_table_bytes(JoinAlgo::Chj, 1_000_000, 0, 300_000)) - 62.4).abs() < 0.01);
        assert!((mb(hash_table_bytes(JoinAlgo::Chj, 1_000_000, 0, 2_700_000)) - 81.6).abs() < 0.01);
        // Navigation needs no table.
        assert_eq!(hash_table_bytes(JoinAlgo::Nl, 1, 1, 1), 0);
        assert_eq!(hash_table_bytes(JoinAlgo::Nojoin, 1, 1, 1), 0);
    }

    #[test]
    fn rid_hash_spreads() {
        use tq_pagestore::{FileId, PageId};
        let mut buckets = [0u32; 16];
        for p in 0..1000u32 {
            for s in 0..4u16 {
                let r = Rid::new(
                    PageId {
                        file: FileId(1),
                        page_no: p,
                    },
                    s,
                );
                buckets[(rid_hash(r) % 16) as usize] += 1;
            }
        }
        // Roughly uniform: every bucket within 2x of the mean.
        let mean = 4000 / 16;
        for (i, &b) in buckets.iter().enumerate() {
            assert!(
                b > mean / 2 && b < mean * 2,
                "bucket {i} holds {b}, mean {mean}"
            );
        }
    }
}
