//! CHJ — hash the children and join (paper §5.1).
//!
//! ```text
//! hash all patients whose mrn < k1 by their primary care provider
//! For all providers whose upin < k2            /* index scan */
//!     get the corresponding patient information in the hash table
//!     add f(p,pa) to the result
//! ```
//!
//! "A slight variation of the pointer-based join of [Shekita & Carey]":
//! because no hybrid hashing is used, the provider collection is
//! scanned *sequentially* rather than accessed randomly per hash-table
//! occurrence. Same index/sequentiality profile as PHJ, but the table
//! holds children — "potentially 3 to 1000 times more elements". The
//! table is directory-organized by parent: 60 bytes per parent slot
//! (sized by parent cardinality) plus 8 bytes per selected child
//! (Figure 10) — "too large in the 1:3 case whatever the selectivity on
//! Patients is".
//!
//! Operator composition: `IndexRangeScan(children)` → `HashBuild`,
//! then `IndexRangeScan(parents)` → `HashProbe` with `Emit` on hits.

use super::{
    emit, flush_emits, rid_hash, JoinOptions, JoinReport, TreeJoinSpec, CHJ_CHILD_ENTRY_BYTES,
    CHJ_PARENT_SLOT_BYTES, HANDLE_ENTRY_EXTRA_BYTES,
};
use crate::exec::{index_range_scan, int_attr, ExecContext, OpKind};
use crate::spec::HashKeyMode;
use crate::swap::SwapSim;
use tq_fasthash::FxHashMap;
use tq_index::BTreeIndex;
use tq_objstore::{ClassId, Rid};
use tq_pagestore::CpuEvent;

/// Bytes per child entry under the given key mode.
pub(super) fn child_entry_bytes(opts: &JoinOptions) -> u64 {
    CHJ_CHILD_ENTRY_BYTES
        + match opts.hash_key {
            HashKeyMode::Rid => 0,
            HashKeyMode::Handle => HANDLE_ENTRY_EXTRA_BYTES,
        }
}

/// Directory + entry bytes for a table of `parents` slots holding
/// `children` entries.
pub(super) fn table_bytes(opts: &JoinOptions, parents: u64, children: u64) -> u64 {
    CHJ_PARENT_SLOT_BYTES * parents + children * child_entry_bytes(opts)
}

pub(super) fn run(
    ex: &mut ExecContext<'_>,
    parent_index: &BTreeIndex,
    child_index: &BTreeIndex,
    spec: &TreeJoinSpec,
    opts: &JoinOptions,
    collect: bool,
) -> JoinReport {
    let mut report = JoinReport {
        pairs: collect.then(Vec::new),
        ..Default::default()
    };
    let parent_class = ex.store.collection(&spec.parents).class;
    let parents_total = ex.store.collection(&spec.parents).run.count;
    let budget = ex.store.stack().model().operator_memory_budget;

    // Build: parent slots are demand-allocated as children arrive
    // (the paper's Figure 10 sizes the directory pessimistically by
    // the full parent cardinality — an *approximation*; the executor
    // only pays for parents that actually hold selected children).
    let _ = parents_total;
    let mut table: FxHashMap<Rid, Vec<i64>> = FxHashMap::default();
    let mut swap = SwapSim::new(0, budget);
    let mut inserted_children = 0u64;
    let children = index_range_scan(
        ex,
        child_index,
        spec.child_key_limit,
        opts.sort_index_rids,
        &spec.children,
    );
    build_children(
        ex,
        spec,
        opts,
        &children,
        &mut table,
        &mut swap,
        &mut inserted_children,
        &mut report,
    );
    report.hash_table_bytes = table_bytes(opts, table.len() as u64, inserted_children);

    // Probe: scan selected parents sequentially.
    let parents = index_range_scan(
        ex,
        parent_index,
        spec.parent_key_limit,
        opts.sort_index_rids,
        &spec.parents,
    );
    probe_parents(
        ex,
        spec,
        parent_class,
        &parents,
        &table,
        &mut swap,
        &mut report,
    );
    report.swap_faults = swap.faults();
    if opts.hash_key == HashKeyMode::Handle {
        free_table_handles(ex, spec, inserted_children);
    }
    report
}

/// The build half: fetch each selected child and file its key under
/// its parent's slot, growing and touching the swap simulation per
/// entry. Opens the `HashBuild(children)` scope. Factored out of
/// [`run`] so the morsel workers of [`super::parallel`] build partial
/// tables over contiguous chunks of the child list with the identical
/// charge sequence; concatenating the partial slot vectors in worker
/// order reproduces the serial per-parent child order exactly.
#[allow(clippy::too_many_arguments)]
pub(super) fn build_children(
    ex: &mut ExecContext<'_>,
    spec: &TreeJoinSpec,
    opts: &JoinOptions,
    children: &[(i64, Rid)],
    table: &mut FxHashMap<Rid, Vec<i64>>,
    swap: &mut SwapSim,
    inserted_children: &mut u64,
    report: &mut JoinReport,
) {
    let child_class = ex.store.collection(&spec.children).class;
    let child_entry_bytes = child_entry_bytes(opts);
    let batch = ex.batch_size();
    ex.op(OpKind::HashBuild, &spec.children, |ex| {
        if batch <= 1 {
            for &(child_key, crid) in children {
                ex.with_object(crid, |ex, child| {
                    report.children_scanned += 1;
                    if child.is_deleted() {
                        return;
                    }
                    ex.store.charge_attr_access(child_class, spec.child_parent);
                    ex.store.charge_attr_access(child_class, spec.child_project);
                    let prid = child.object().values[spec.child_parent]
                        .as_ref_rid()
                        .expect("child parent reference");
                    table.entry(prid).or_default().push(child_key);
                    *inserted_children += 1;
                    ex.store.charge(CpuEvent::HashInsert, 1);
                    if opts.hash_key == HashKeyMode::Handle {
                        ex.store.charge(CpuEvent::HandleAlloc, 1);
                    }
                    swap.grow_to(
                        CHJ_PARENT_SLOT_BYTES * table.len() as u64
                            + *inserted_children * child_entry_bytes,
                    );
                    if swap.touch(rid_hash(prid)) {
                        ex.store.charge(CpuEvent::SwapFault, 1);
                    }
                });
            }
        } else {
            let mut rids = ex.take_rid_batch();
            for chunk in children.chunks(batch) {
                rids.clear();
                rids.extend(chunk.iter().map(|&(_, r)| r));
                ex.with_batch(&rids, |ex, objs| {
                    for (i, &(child_key, _)) in chunk.iter().enumerate() {
                        let child = objs.object(i);
                        report.children_scanned += 1;
                        if child.header.is_deleted() {
                            continue;
                        }
                        ex.store.charge_attr_access(child_class, spec.child_parent);
                        ex.store.charge_attr_access(child_class, spec.child_project);
                        let prid = child.values[spec.child_parent]
                            .as_ref_rid()
                            .expect("child parent reference");
                        table.entry(prid).or_default().push(child_key);
                        *inserted_children += 1;
                        ex.store.charge(CpuEvent::HashInsert, 1);
                        if opts.hash_key == HashKeyMode::Handle {
                            ex.store.charge(CpuEvent::HandleAlloc, 1);
                        }
                        swap.grow_to(
                            CHJ_PARENT_SLOT_BYTES * table.len() as u64
                                + *inserted_children * child_entry_bytes,
                        );
                        if swap.touch(rid_hash(prid)) {
                            ex.store.charge(CpuEvent::SwapFault, 1);
                        }
                    }
                });
            }
            ex.put_rid_batch(rids);
        }
    });
}

/// The probe half: fetch each selected parent sequentially, look its
/// slot up in the (read-only) table, and emit every filed child key.
/// Opens the `HashProbe(parents)` scope.
pub(super) fn probe_parents(
    ex: &mut ExecContext<'_>,
    spec: &TreeJoinSpec,
    parent_class: ClassId,
    parents: &[(i64, Rid)],
    table: &FxHashMap<Rid, Vec<i64>>,
    swap: &mut SwapSim,
    report: &mut JoinReport,
) {
    let batch = ex.batch_size();
    ex.op(OpKind::HashProbe, &spec.parents, |ex| {
        if batch <= 1 {
            for &(_pkey, prid) in parents {
                ex.with_object(prid, |ex, parent| {
                    report.parents_scanned += 1;
                    if parent.is_deleted() {
                        return;
                    }
                    ex.store
                        .charge_attr_access(parent_class, spec.parent_project);
                    let parent_key = int_attr(parent.object(), spec.parent_key);
                    ex.store.charge(CpuEvent::HashProbe, 1);
                    if swap.touch(rid_hash(parent.rid())) {
                        ex.store.charge(CpuEvent::SwapFault, 1);
                    }
                    if let Some(child_keys) = table.get(&parent.rid()) {
                        ex.op(OpKind::Emit, "result", |ex| {
                            for &child_key in child_keys {
                                emit(ex.store, spec, report, parent_key, child_key);
                            }
                        });
                    }
                });
            }
        } else {
            let mut rids = ex.take_rid_batch();
            let mut pending = ex.take_val_batch();
            for chunk in parents.chunks(batch) {
                rids.clear();
                rids.extend(chunk.iter().map(|&(_, r)| r));
                ex.with_batch(&rids, |ex, objs| {
                    for i in 0..objs.len() {
                        let (prid, parent) = objs.get(i);
                        report.parents_scanned += 1;
                        if parent.header.is_deleted() {
                            continue;
                        }
                        ex.store
                            .charge_attr_access(parent_class, spec.parent_project);
                        let parent_key = int_attr(parent, spec.parent_key);
                        ex.store.charge(CpuEvent::HashProbe, 1);
                        if swap.touch(rid_hash(prid)) {
                            ex.store.charge(CpuEvent::SwapFault, 1);
                        }
                        if let Some(child_keys) = table.get(&prid) {
                            for &child_key in child_keys {
                                pending.push((parent_key, child_key));
                            }
                        }
                    }
                });
                if pending.len() >= batch {
                    let at = ex.current_node();
                    flush_emits(ex, at, &mut pending, &[], spec, report);
                }
            }
            let at = ex.current_node();
            flush_emits(ex, at, &mut pending, &[], spec, report);
            ex.put_rid_batch(rids);
            ex.put_val_batch(pending);
        }
    });
}

/// Tear the pinned table handles down — Handle key mode only.
/// Re-enters the `HashBuild(children)` node.
pub(super) fn free_table_handles(ex: &mut ExecContext<'_>, spec: &TreeJoinSpec, entries: u64) {
    ex.op(OpKind::HashBuild, &spec.children, |ex| {
        ex.store.charge(CpuEvent::HandleFree, entries);
    });
}
