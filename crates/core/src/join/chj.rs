//! CHJ — hash the children and join (paper §5.1).
//!
//! ```text
//! hash all patients whose mrn < k1 by their primary care provider
//! For all providers whose upin < k2            /* index scan */
//!     get the corresponding patient information in the hash table
//!     add f(p,pa) to the result
//! ```
//!
//! "A slight variation of the pointer-based join of [Shekita & Carey]":
//! because no hybrid hashing is used, the provider collection is
//! scanned *sequentially* rather than accessed randomly per hash-table
//! occurrence. Same index/sequentiality profile as PHJ, but the table
//! holds children — "potentially 3 to 1000 times more elements". The
//! table is directory-organized by parent: 60 bytes per parent slot
//! (sized by parent cardinality) plus 8 bytes per selected child
//! (Figure 10) — "too large in the 1:3 case whatever the selectivity on
//! Patients is".

use super::{
    emit, gather_index_rids, int_attr, rid_hash, JoinContext, JoinOptions, JoinReport,
    TreeJoinSpec, CHJ_CHILD_ENTRY_BYTES, CHJ_PARENT_SLOT_BYTES, HANDLE_ENTRY_EXTRA_BYTES,
};
use crate::spec::HashKeyMode;
use crate::swap::SwapSim;
use tq_fasthash::FxHashMap;
use tq_objstore::Rid;
use tq_pagestore::CpuEvent;

pub(super) fn run(
    ctx: &mut JoinContext<'_>,
    spec: &TreeJoinSpec,
    opts: &JoinOptions,
    collect: bool,
) -> JoinReport {
    let mut report = JoinReport {
        pairs: collect.then(Vec::new),
        ..Default::default()
    };
    let parent_class = ctx.store.collection(&spec.parents).class;
    let child_class = ctx.store.collection(&spec.children).class;
    let parents_total = ctx.store.collection(&spec.parents).run.count;
    let child_entry_bytes = CHJ_CHILD_ENTRY_BYTES
        + match opts.hash_key {
            HashKeyMode::Rid => 0,
            HashKeyMode::Handle => HANDLE_ENTRY_EXTRA_BYTES,
        };
    let budget = ctx.store.stack().model().operator_memory_budget;

    // Build: parent slots are demand-allocated as children arrive
    // (the paper's Figure 10 sizes the directory pessimistically by
    // the full parent cardinality — an *approximation*; the executor
    // only pays for parents that actually hold selected children).
    let _ = parents_total;
    let mut table: FxHashMap<Rid, Vec<i64>> = FxHashMap::default();
    let mut swap = SwapSim::new(0, budget);
    let mut inserted_children = 0u64;
    let children = gather_index_rids(
        ctx.store,
        ctx.child_index,
        spec.child_key_limit,
        opts.sort_index_rids,
    );
    for (child_key, crid) in children {
        let child = ctx.store.fetch(crid);
        report.children_scanned += 1;
        if child.object.header.is_deleted() {
            ctx.store.release(child);
            continue;
        }
        ctx.store.charge_attr_access(child_class, spec.child_parent);
        ctx.store
            .charge_attr_access(child_class, spec.child_project);
        let prid = child.object.values[spec.child_parent]
            .as_ref_rid()
            .expect("child parent reference");
        table.entry(prid).or_default().push(child_key);
        inserted_children += 1;
        ctx.store.charge(CpuEvent::HashInsert, 1);
        if opts.hash_key == HashKeyMode::Handle {
            ctx.store.charge(CpuEvent::HandleAlloc, 1);
        }
        swap.grow_to(
            CHJ_PARENT_SLOT_BYTES * table.len() as u64 + inserted_children * child_entry_bytes,
        );
        if swap.touch(rid_hash(prid)) {
            ctx.store.charge(CpuEvent::SwapFault, 1);
        }
        ctx.store.release(child);
    }
    report.hash_table_bytes =
        CHJ_PARENT_SLOT_BYTES * table.len() as u64 + inserted_children * child_entry_bytes;

    // Probe: scan selected parents sequentially.
    let parents = gather_index_rids(
        ctx.store,
        ctx.parent_index,
        spec.parent_key_limit,
        opts.sort_index_rids,
    );
    for (_pkey, prid) in parents {
        let parent = ctx.store.fetch(prid);
        report.parents_scanned += 1;
        if parent.object.header.is_deleted() {
            ctx.store.release(parent);
            continue;
        }
        ctx.store
            .charge_attr_access(parent_class, spec.parent_project);
        let parent_key = int_attr(&parent.object, spec.parent_key);
        ctx.store.charge(CpuEvent::HashProbe, 1);
        if swap.touch(rid_hash(parent.rid)) {
            ctx.store.charge(CpuEvent::SwapFault, 1);
        }
        if let Some(child_keys) = table.get(&parent.rid) {
            for &child_key in child_keys {
                emit(ctx.store, spec, &mut report, parent_key, child_key);
            }
        }
        ctx.store.release(parent);
    }
    report.swap_faults = swap.faults();
    if opts.hash_key == HashKeyMode::Handle {
        ctx.store.charge(CpuEvent::HandleFree, inserted_children);
    }
    report
}
