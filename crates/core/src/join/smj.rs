//! The sort-based pointer join the paper dropped.
//!
//! §5.1: "We started testing sort-based algorithms but they proved to
//! be worse than hash-based ones and we dropped them." This module
//! resurrects that branch so the claim can be measured: a sort-merge
//! pointer join on the parents' physical identifiers.
//!
//! * Parents arrive rid-sorted for free (the upin index scan followed
//!   by the rid sort both sides already use).
//! * Children are scanned via the mrn index, their `(parent rid,
//!   child key)` pairs extracted, and **sorted by parent rid** — in
//!   memory when they fit the operator budget, otherwise by external
//!   merge sort whose runs spill through the storage stack (charged
//!   I/O, like everything else).
//! * A final sequential merge emits the result.
//!
//! No hash table, therefore no swap faults — but the child sort is
//! pure overhead that hashing avoids, which is exactly why the authors
//! dropped it.

use super::spill::{SpillRun, SpillWriter};
use super::{emit, gather_index_rids, JoinContext, JoinOptions, JoinReport, TreeJoinSpec};
use tq_objstore::Rid;
use tq_pagestore::CpuEvent;

/// Bytes per in-memory sort entry (key + rid + sort overhead).
const SORT_ENTRY_BYTES: u64 = 24;

/// Charges an in-memory sort of `n` entries.
fn charge_sort(ctx: &mut JoinContext<'_>, n: u64) {
    if n > 1 {
        let compares = (n as f64 * (n as f64).log2()).ceil() as u64;
        ctx.store.charge(CpuEvent::SortCompare, compares);
    }
}

/// Sorts `pairs` by rid, charging either an in-memory sort or an
/// external merge sort (run spills through the stack) when the set
/// exceeds the operator memory budget. Returns the sorted pairs and
/// the spill pages the external sort used.
fn sort_by_rid_external(
    ctx: &mut JoinContext<'_>,
    mut pairs: Vec<(i64, Rid)>,
    budget: u64,
) -> (Vec<(i64, Rid)>, u64) {
    let bytes = pairs.len() as u64 * SORT_ENTRY_BYTES;
    if bytes <= budget {
        charge_sort(ctx, pairs.len() as u64);
        pairs.sort_unstable_by_key(|&(_, rid)| rid);
        return (pairs, 0);
    }
    // External: sort budget-sized runs, spill them, merge once.
    let run_len = (budget / SORT_ENTRY_BYTES).max(1) as usize;
    let mut spill_pages = 0u64;
    let mut runs: Vec<SpillRun> = Vec::new();
    let mut files = Vec::new();
    for (i, chunk) in pairs.chunks_mut(run_len).enumerate() {
        charge_sort(ctx, chunk.len() as u64);
        chunk.sort_unstable_by_key(|&(_, rid)| rid);
        let file = ctx.store.create_file(format!("sort.run.{i}"));
        files.push(file);
        let mut w = SpillWriter::new(file);
        for &(k, r) in chunk.iter() {
            w.push(ctx.store.stack_mut(), k, r);
        }
        let run = w.finish(ctx.store.stack_mut());
        spill_pages += run.pages as u64;
        runs.push(run);
    }
    // Merge: read every run back (charged I/O) and k-way merge
    // (n·log2 k compares).
    let k = runs.len().max(2) as f64;
    let n = pairs.len() as f64;
    ctx.store
        .charge(CpuEvent::SortCompare, (n * k.log2()).ceil() as u64);
    let mut all: Vec<(i64, Rid)> = Vec::with_capacity(pairs.len());
    for run in &runs {
        spill_pages += run.pages as u64;
        all.extend(run.read_all(ctx.store.stack_mut()));
    }
    all.sort_unstable_by_key(|&(_, rid)| rid); // the merge's result
    for f in files {
        ctx.store.stack_mut().truncate_file(f);
    }
    (all, spill_pages)
}

/// Runs the sort-merge pointer join.
pub fn run(
    ctx: &mut JoinContext<'_>,
    spec: &TreeJoinSpec,
    opts: &JoinOptions,
    collect: bool,
) -> JoinReport {
    let mut report = JoinReport {
        pairs: collect.then(Vec::new),
        ..Default::default()
    };
    let parent_class = ctx.store.collection(&spec.parents).class;
    let child_class = ctx.store.collection(&spec.children).class;
    let budget = ctx.store.stack().model().operator_memory_budget;

    // Outer: selected parents in rid order, carrying (parent_key, rid).
    let mut parents = gather_index_rids(ctx.store, ctx.parent_index, spec.parent_key_limit, true);
    parents.sort_unstable_by_key(|&(_, rid)| rid); // no-op when presorted
    let mut parent_keys: Vec<(Rid, i64)> = Vec::with_capacity(parents.len());
    for &(parent_key, prid) in &parents {
        let parent = ctx.store.fetch(prid);
        report.parents_scanned += 1;
        if parent.object.header.is_deleted() {
            ctx.store.release(parent);
            continue;
        }
        ctx.store
            .charge_attr_access(parent_class, spec.parent_project);
        parent_keys.push((parent.rid, parent_key));
        ctx.store.release(parent);
    }

    // Inner: selected children as (child_key, parent rid) pairs.
    let children = gather_index_rids(
        ctx.store,
        ctx.child_index,
        spec.child_key_limit,
        opts.sort_index_rids,
    );
    let mut child_pairs: Vec<(i64, Rid)> = Vec::with_capacity(children.len());
    for (child_key, crid) in children {
        let child = ctx.store.fetch(crid);
        report.children_scanned += 1;
        if child.object.header.is_deleted() {
            ctx.store.release(child);
            continue;
        }
        ctx.store.charge_attr_access(child_class, spec.child_parent);
        ctx.store
            .charge_attr_access(child_class, spec.child_project);
        let prid = child.object.values[spec.child_parent]
            .as_ref_rid()
            .expect("child parent reference");
        child_pairs.push((child_key, prid));
        ctx.store.release(child);
    }
    let (sorted_children, spill_pages) = sort_by_rid_external(ctx, child_pairs, budget);
    report.spill_pages = spill_pages;

    // Merge on parent rid; both sides are rid-ordered.
    let mut ci = 0;
    for &(prid, parent_key) in &parent_keys {
        while ci < sorted_children.len() && sorted_children[ci].1 < prid {
            ctx.store.charge(CpuEvent::Compare, 1);
            ci += 1;
        }
        let mut cj = ci;
        while cj < sorted_children.len() && sorted_children[cj].1 == prid {
            ctx.store.charge(CpuEvent::Compare, 1);
            emit(
                ctx.store,
                spec,
                &mut report,
                parent_key,
                sorted_children[cj].0,
            );
            cj += 1;
        }
        // Do not advance ci past the run: duplicate parents cannot
        // occur (rids are unique), so continue from cj.
        ci = cj;
    }
    report
}
