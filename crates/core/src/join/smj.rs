//! The sort-based pointer join the paper dropped.
//!
//! §5.1: "We started testing sort-based algorithms but they proved to
//! be worse than hash-based ones and we dropped them." This module
//! resurrects that branch so the claim can be measured: a sort-merge
//! pointer join on the parents' physical identifiers.
//!
//! * Parents arrive rid-sorted for free (the upin index scan followed
//!   by the rid sort both sides already use).
//! * Children are scanned via the mrn index, their `(parent rid,
//!   child key)` pairs extracted, and **sorted by parent rid** — in
//!   memory when they fit the operator budget, otherwise by external
//!   merge sort whose runs spill through the storage stack (charged
//!   I/O, like everything else).
//! * A final sequential merge emits the result.
//!
//! No hash table, therefore no swap faults — but the child sort is
//! pure overhead that hashing avoids, which is exactly why the authors
//! dropped it.
//!
//! Operator composition: `IndexRangeScan` per side, `Sort(children)`
//! (spills included), then `Merge` with `Emit` on matches.

use super::spill::{SpillRun, SpillWriter};
use super::{emit, flush_emits, JoinContext, JoinOptions, JoinReport, TreeJoinSpec};
use crate::exec::{index_range_scan, ExecContext, OpKind};
use tq_index::BTreeIndex;
use tq_objstore::{ObjectStore, Rid};
use tq_pagestore::CpuEvent;

/// Bytes per in-memory sort entry (key + rid + sort overhead).
const SORT_ENTRY_BYTES: u64 = 24;

/// Charges an in-memory sort of `n` entries.
fn charge_sort(store: &mut ObjectStore, n: u64) {
    if n > 1 {
        let compares = (n as f64 * (n as f64).log2()).ceil() as u64;
        store.charge(CpuEvent::SortCompare, compares);
    }
}

/// Sorts `pairs` by rid, charging either an in-memory sort or an
/// external merge sort (run spills through the stack) when the set
/// exceeds the operator memory budget. Returns the sorted pairs and
/// the spill pages the external sort used.
fn sort_by_rid_external(
    store: &mut ObjectStore,
    mut pairs: Vec<(i64, Rid)>,
    budget: u64,
) -> (Vec<(i64, Rid)>, u64) {
    let bytes = pairs.len() as u64 * SORT_ENTRY_BYTES;
    if bytes <= budget {
        charge_sort(store, pairs.len() as u64);
        pairs.sort_unstable_by_key(|&(_, rid)| rid);
        return (pairs, 0);
    }
    // External: sort budget-sized runs, spill them, merge once.
    let run_len = (budget / SORT_ENTRY_BYTES).max(1) as usize;
    let mut spill_pages = 0u64;
    let mut runs: Vec<SpillRun> = Vec::new();
    let mut files = Vec::new();
    for (i, chunk) in pairs.chunks_mut(run_len).enumerate() {
        charge_sort(store, chunk.len() as u64);
        chunk.sort_unstable_by_key(|&(_, rid)| rid);
        let file = store.create_file(format!("sort.run.{i}"));
        files.push(file);
        let mut w = SpillWriter::new(file);
        for &(k, r) in chunk.iter() {
            w.push(store.stack_mut(), k, r);
        }
        let run = w.finish(store.stack_mut());
        spill_pages += run.pages as u64;
        runs.push(run);
    }
    // Merge: read every run back (charged I/O) and k-way merge
    // (n·log2 k compares).
    let k = runs.len().max(2) as f64;
    let n = pairs.len() as f64;
    store.charge(CpuEvent::SortCompare, (n * k.log2()).ceil() as u64);
    let mut all: Vec<(i64, Rid)> = Vec::with_capacity(pairs.len());
    for run in &runs {
        spill_pages += run.pages as u64;
        all.extend(run.read_all(store.stack_mut()));
    }
    all.sort_unstable_by_key(|&(_, rid)| rid); // the merge's result
    for f in files {
        store.stack_mut().truncate_file(f);
    }
    (all, spill_pages)
}

/// Runs the sort-merge pointer join.
pub fn run(
    ctx: &mut JoinContext<'_>,
    spec: &TreeJoinSpec,
    opts: &JoinOptions,
    collect: bool,
) -> JoinReport {
    let mut ex = ExecContext::new(ctx.store);
    let mut report = run_exec(
        &mut ex,
        ctx.parent_index,
        ctx.child_index,
        spec,
        opts,
        collect,
    );
    report.trace = ex.finish();
    report
}

fn run_exec(
    ex: &mut ExecContext<'_>,
    parent_index: &BTreeIndex,
    child_index: &BTreeIndex,
    spec: &TreeJoinSpec,
    opts: &JoinOptions,
    collect: bool,
) -> JoinReport {
    let mut report = JoinReport {
        pairs: collect.then(Vec::new),
        ..Default::default()
    };
    let parent_class = ex.store.collection(&spec.parents).class;
    let child_class = ex.store.collection(&spec.children).class;
    let budget = ex.store.stack().model().operator_memory_budget;

    // Outer: selected parents in rid order, carrying (parent_key, rid).
    let mut parents =
        index_range_scan(ex, parent_index, spec.parent_key_limit, true, &spec.parents);
    parents.sort_unstable_by_key(|&(_, rid)| rid); // no-op when presorted
    let batch = ex.batch_size();
    let mut parent_keys: Vec<(Rid, i64)> = Vec::with_capacity(parents.len());
    ex.op(OpKind::IndexRangeScan, &spec.parents, |ex| {
        if batch <= 1 {
            for &(parent_key, prid) in &parents {
                ex.with_object(prid, |ex, parent| {
                    report.parents_scanned += 1;
                    if parent.is_deleted() {
                        return;
                    }
                    ex.store
                        .charge_attr_access(parent_class, spec.parent_project);
                    parent_keys.push((parent.rid(), parent_key));
                });
            }
        } else {
            let mut rids = ex.take_rid_batch();
            for chunk in parents.chunks(batch) {
                rids.clear();
                rids.extend(chunk.iter().map(|&(_, r)| r));
                ex.with_batch(&rids, |ex, objs| {
                    for (i, &(parent_key, _)) in chunk.iter().enumerate() {
                        let (prid, parent) = objs.get(i);
                        report.parents_scanned += 1;
                        if parent.header.is_deleted() {
                            continue;
                        }
                        ex.store
                            .charge_attr_access(parent_class, spec.parent_project);
                        parent_keys.push((prid, parent_key));
                    }
                });
            }
            ex.put_rid_batch(rids);
        }
    });

    // Inner: selected children as (child_key, parent rid) pairs.
    let children = index_range_scan(
        ex,
        child_index,
        spec.child_key_limit,
        opts.sort_index_rids,
        &spec.children,
    );
    let mut child_pairs: Vec<(i64, Rid)> = Vec::with_capacity(children.len());
    ex.op(OpKind::IndexRangeScan, &spec.children, |ex| {
        if batch <= 1 {
            for &(child_key, crid) in &children {
                ex.with_object(crid, |ex, child| {
                    report.children_scanned += 1;
                    if child.is_deleted() {
                        return;
                    }
                    ex.store.charge_attr_access(child_class, spec.child_parent);
                    ex.store.charge_attr_access(child_class, spec.child_project);
                    let prid = child.object().values[spec.child_parent]
                        .as_ref_rid()
                        .expect("child parent reference");
                    child_pairs.push((child_key, prid));
                });
            }
        } else {
            let mut rids = ex.take_rid_batch();
            for chunk in children.chunks(batch) {
                rids.clear();
                rids.extend(chunk.iter().map(|&(_, r)| r));
                ex.with_batch(&rids, |ex, objs| {
                    for (i, &(child_key, _)) in chunk.iter().enumerate() {
                        let child = objs.object(i);
                        report.children_scanned += 1;
                        if child.header.is_deleted() {
                            continue;
                        }
                        ex.store.charge_attr_access(child_class, spec.child_parent);
                        ex.store.charge_attr_access(child_class, spec.child_project);
                        let prid = child.values[spec.child_parent]
                            .as_ref_rid()
                            .expect("child parent reference");
                        child_pairs.push((child_key, prid));
                    }
                });
            }
            ex.put_rid_batch(rids);
        }
    });
    let (sorted_children, spill_pages) = ex.op(OpKind::Sort, &spec.children, |ex| {
        sort_by_rid_external(ex.store, child_pairs, budget)
    });
    report.spill_pages = spill_pages;

    // Merge on parent rid; both sides are rid-ordered.
    ex.op(OpKind::Merge, "rid", |ex| {
        if batch <= 1 {
            let mut ci = 0;
            for &(prid, parent_key) in &parent_keys {
                while ci < sorted_children.len() && sorted_children[ci].1 < prid {
                    ex.store.charge(CpuEvent::Compare, 1);
                    ci += 1;
                }
                let mut cj = ci;
                while cj < sorted_children.len() && sorted_children[cj].1 == prid {
                    ex.store.charge(CpuEvent::Compare, 1);
                    ex.op(OpKind::Emit, "result", |ex| {
                        emit(
                            ex.store,
                            spec,
                            &mut report,
                            parent_key,
                            sorted_children[cj].0,
                        );
                    });
                    cj += 1;
                }
                // Do not advance ci past the run: duplicate parents cannot
                // occur (rids are unique), so continue from cj.
                ci = cj;
            }
        } else {
            let mut pending = ex.take_val_batch();
            let mut ci = 0;
            for &(prid, parent_key) in &parent_keys {
                while ci < sorted_children.len() && sorted_children[ci].1 < prid {
                    ex.store.charge(CpuEvent::Compare, 1);
                    ci += 1;
                }
                let mut cj = ci;
                while cj < sorted_children.len() && sorted_children[cj].1 == prid {
                    ex.store.charge(CpuEvent::Compare, 1);
                    pending.push((parent_key, sorted_children[cj].0));
                    cj += 1;
                }
                ci = cj;
                if pending.len() >= batch {
                    let at = ex.current_node();
                    flush_emits(ex, at, &mut pending, &[], spec, &mut report);
                }
            }
            let at = ex.current_node();
            flush_emits(ex, at, &mut pending, &[], spec, &mut report);
            ex.put_val_batch(pending);
        }
    });
    report
}
