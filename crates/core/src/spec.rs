//! Query specifications: what to run, independent of how.
//!
//! The paper's §5 query is
//!
//! ```text
//! select f(p,pa)
//! from p in Providers, pa in p.clients
//! where pa.mrn < k1 and p.upin < k2
//! ```
//!
//! [`TreeJoinSpec`] captures that shape generically — a 1-N tree
//! (parents with a set of children, children with a back reference)
//! plus two key predicates and a two-attribute projection. The §4
//! selection experiments are [`Selection`]s.

use tq_objstore::AttrId;

/// Comparison operator of a key predicate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    /// `attr < key`
    Lt,
    /// `attr <= key`
    Le,
    /// `attr > key`
    Gt,
    /// `attr >= key`
    Ge,
    /// `attr == key`
    Eq,
}

impl CmpOp {
    /// Evaluates the predicate.
    pub fn eval(&self, attr: i64, key: i64) -> bool {
        match self {
            CmpOp::Lt => attr < key,
            CmpOp::Le => attr <= key,
            CmpOp::Gt => attr > key,
            CmpOp::Ge => attr >= key,
            CmpOp::Eq => attr == key,
        }
    }

    /// The inclusive key range `[lo, hi]` selected from an index, given
    /// the domain `[domain_lo, domain_hi]`.
    pub fn index_range(&self, key: i64, domain_lo: i64, domain_hi: i64) -> (i64, i64) {
        match self {
            CmpOp::Lt => (domain_lo, key - 1),
            CmpOp::Le => (domain_lo, key),
            CmpOp::Gt => (key + 1, domain_hi),
            CmpOp::Ge => (key, domain_hi),
            CmpOp::Eq => (key, key),
        }
    }

    /// Parseable symbol.
    pub fn symbol(&self) -> &'static str {
        match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "=",
        }
    }
}

/// How result elements are materialized.
///
/// The paper's §4.2 selections construct a *persistent-capable*
/// collection in standard transaction mode (startlingly expensive:
/// ~0.6 ms per element); the §5 joins stream tuples to the caller.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResultMode {
    /// Standard transaction mode collection building.
    Persistent,
    /// Cursor-style transient results.
    Transient,
}

/// One residual predicate: applied after the object is fetched.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AttrPredicate {
    /// Attribute (must be `Int`).
    pub attr: AttrId,
    /// Operator.
    pub cmp: CmpOp,
    /// Key.
    pub key: i64,
}

impl AttrPredicate {
    /// Evaluates against an attribute value.
    pub fn eval(&self, value: i64) -> bool {
        self.cmp.eval(value, self.key)
    }
}

/// A single-collection selection with projection:
/// `select <project> from x in <collection> where x.<attr> <cmp> <key>
/// [and ...]`.
///
/// The *primary* predicate (`attr`/`cmp`/`key`) drives the access path
/// (it is the one an index can serve); `residual` predicates are
/// evaluated per fetched object. [`Selection::promote`] re-chooses the
/// primary — the planner uses it to put an indexed attribute first.
#[derive(Clone, Debug)]
pub struct Selection {
    /// Collection to scan.
    pub collection: String,
    /// Primary predicate attribute (must be `Int`).
    pub attr: AttrId,
    /// Primary predicate operator.
    pub cmp: CmpOp,
    /// Primary predicate key.
    pub key: i64,
    /// Conjunctive residual predicates.
    pub residual: Vec<AttrPredicate>,
    /// Projected attribute.
    pub project: AttrId,
    /// Result materialization mode.
    pub result_mode: ResultMode,
}

impl Selection {
    /// Makes the residual predicate on `attr` the primary one (the old
    /// primary becomes residual). No-op when `attr` is already primary
    /// or not present.
    pub fn promote(&mut self, attr: AttrId) {
        if self.attr == attr {
            return;
        }
        if let Some(at) = self.residual.iter().position(|p| p.attr == attr) {
            let p = self.residual.remove(at);
            self.residual.push(AttrPredicate {
                attr: self.attr,
                cmp: self.cmp,
                key: self.key,
            });
            self.attr = p.attr;
            self.cmp = p.cmp;
            self.key = p.key;
        }
    }
}

/// A 1-N tree join with two key predicates and a two-attribute
/// projection (`f(p, pa) = [p.<parent_project>, pa.<child_project>]`).
#[derive(Clone, Debug)]
pub struct TreeJoinSpec {
    /// Parent collection name (e.g. `"Providers"`).
    pub parents: String,
    /// Child collection name (e.g. `"Patients"`).
    pub children: String,
    /// Parent key attribute (`upin`).
    pub parent_key: AttrId,
    /// Parent's set-of-children attribute (`clients`).
    pub parent_set: AttrId,
    /// Child key attribute (`mrn`).
    pub child_key: AttrId,
    /// Child's back reference to its parent (`primary_care_provider`).
    pub child_parent: AttrId,
    /// Projected parent attribute (`name`).
    pub parent_project: AttrId,
    /// Projected child attribute (`age`).
    pub child_project: AttrId,
    /// Parent predicate: `parent_key < parent_key_limit`.
    pub parent_key_limit: i64,
    /// Child predicate: `child_key < child_key_limit`.
    pub child_key_limit: i64,
    /// Result materialization mode.
    pub result_mode: ResultMode,
}

/// The four join algorithms of §5.1.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum JoinAlgo {
    /// Parent-to-child navigation.
    Nl,
    /// Child-to-parent navigation (the join hidden in the pattern).
    Nojoin,
    /// Hash the parents and join.
    Phj,
    /// Hash the children and join (pointer-based join variant).
    Chj,
}

impl JoinAlgo {
    /// The paper's name for the algorithm.
    pub fn label(&self) -> &'static str {
        match self {
            JoinAlgo::Nl => "NL",
            JoinAlgo::Nojoin => "NOJOIN",
            JoinAlgo::Phj => "PHJ",
            JoinAlgo::Chj => "CHJ",
        }
    }

    /// All four, in the paper's presentation order.
    pub fn all() -> [JoinAlgo; 4] {
        [JoinAlgo::Nl, JoinAlgo::Nojoin, JoinAlgo::Phj, JoinAlgo::Chj]
    }
}

/// What operator hash tables key on (§4.1: "Hash table: Rids or
/// Handles?").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum HashKeyMode {
    /// Key on 8-byte physical rids (cheap; the paper's conclusion).
    #[default]
    Rid,
    /// Key on full Handles: each entry materializes a 60-byte handle
    /// that lives as long as the table.
    Handle,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_eval() {
        assert!(CmpOp::Lt.eval(1, 2));
        assert!(!CmpOp::Lt.eval(2, 2));
        assert!(CmpOp::Le.eval(2, 2));
        assert!(CmpOp::Gt.eval(3, 2));
        assert!(!CmpOp::Ge.eval(1, 2));
        assert!(CmpOp::Eq.eval(2, 2));
    }

    #[test]
    fn index_ranges_are_inclusive_and_equivalent_to_eval() {
        for cmp in [CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge, CmpOp::Eq] {
            let (lo, hi) = cmp.index_range(5, 0, 10);
            for v in 0..=10i64 {
                let in_range = v >= lo && v <= hi;
                assert_eq!(in_range, cmp.eval(v, 5), "{cmp:?} at {v}");
            }
        }
    }

    #[test]
    fn labels() {
        assert_eq!(JoinAlgo::Nl.label(), "NL");
        assert_eq!(JoinAlgo::all().len(), 4);
        assert_eq!(CmpOp::Ge.symbol(), ">=");
    }
}
