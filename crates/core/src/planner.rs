//! Plan choice: the heuristic strategy O2 shipped with, and the
//! cost-based strategy the authors wanted to build.
//!
//! §2 of the paper: "The OQL optimizer of the O2 database management
//! system relies on heuristics to choose the 'best' execution plans.
//! As expected, this implies that 'best' is sometimes rather bad."
//! [`Strategy::Heuristic`] encodes that navigation-first mindset;
//! [`Strategy::CostBased`] runs the [`estimator`](crate::estimator)
//! over every candidate and takes the argmin.
//!
//! N-way chains choose their join order through a [`PlannerPolicy`]:
//! * [`PlannerPolicy::Syntactic`] — the query's own binding order, all
//!   navigation (what a naive OQL evaluator does);
//! * [`PlannerPolicy::Simpli`] — Simpli-Squared (arXiv 2111.00163):
//!   order by collection size alone, no cardinality estimates, hash
//!   joins wherever the schema allows;
//! * [`PlannerPolicy::Estimate`] — enumerate every connected order ×
//!   per-stage algorithm × access path and take the estimator argmin.

use crate::estimator::{
    estimate_chain, estimate_join, estimate_selection, ChainFacts, PhysicalProfile, SelectPath,
};
use crate::plan::{
    enumerate_plans, root_options, stage_options, ChainSpec, JoinStage, LogicalPlan, RootAccess,
    StepAlgo,
};
use crate::spec::JoinAlgo;
use tq_pagestore::CostModel;

/// Plan-selection strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Navigation-oriented rules of thumb (what O2 did): follow the
    /// pointer from the smaller selected side.
    Heuristic,
    /// Estimate every candidate and take the cheapest.
    CostBased,
}

/// A join plan choice with its (estimated) cost in seconds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct JoinChoice {
    /// Chosen algorithm.
    pub algo: JoinAlgo,
    /// Estimated seconds (heuristic choices are costed too, for
    /// comparison).
    pub estimated_secs: f64,
}

/// Chooses a join algorithm.
pub fn choose_join(
    strategy: Strategy,
    profile: &PhysicalProfile,
    model: &CostModel,
    parent_sel: f64,
    child_sel: f64,
) -> JoinChoice {
    match strategy {
        Strategy::Heuristic => {
            // O2's object-oriented instinct: navigate, starting from
            // whichever side the predicates make smaller.
            let selected_parents = parent_sel * profile.parents_total as f64;
            let selected_children = child_sel * profile.children_total as f64;
            let algo = if selected_parents <= selected_children {
                JoinAlgo::Nl
            } else {
                JoinAlgo::Nojoin
            };
            JoinChoice {
                algo,
                estimated_secs: estimate_join(algo, profile, model, parent_sel, child_sel).secs,
            }
        }
        Strategy::CostBased => JoinAlgo::all()
            .into_iter()
            .map(|algo| JoinChoice {
                algo,
                estimated_secs: estimate_join(algo, profile, model, parent_sel, child_sel).secs,
            })
            .min_by(|a, b| a.estimated_secs.total_cmp(&b.estimated_secs))
            .expect("four candidates"),
    }
}

/// A selection plan choice.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SelectChoice {
    /// Chosen access path.
    pub path: SelectPath,
    /// Estimated seconds.
    pub estimated_secs: f64,
}

/// Chooses a selection access path. `has_index` limits the candidates.
pub fn choose_selection(
    strategy: Strategy,
    total: u64,
    pages: u64,
    cache_pages: u64,
    model: &CostModel,
    sel: f64,
    has_index: bool,
) -> SelectChoice {
    let cost = |p: SelectPath| estimate_selection(p, total, pages, cache_pages, model, sel);
    match strategy {
        Strategy::Heuristic => {
            // The classic rule of thumb the paper debunks: use the
            // index only below ~5% selectivity, never bother sorting.
            let path = if has_index && sel <= 0.05 {
                SelectPath::IndexScan
            } else {
                SelectPath::SeqScan
            };
            SelectChoice {
                path,
                estimated_secs: cost(path),
            }
        }
        Strategy::CostBased => {
            let mut candidates = vec![SelectPath::SeqScan];
            if has_index {
                candidates.push(SelectPath::IndexScan);
                candidates.push(SelectPath::SortedIndexScan);
            }
            candidates
                .into_iter()
                .map(|path| SelectChoice {
                    path,
                    estimated_secs: cost(path),
                })
                .min_by(|a, b| a.estimated_secs.total_cmp(&b.estimated_secs))
                .expect("at least one candidate")
        }
    }
}

/// Chain join-ordering policy — the `TQ_PLANNER` knob.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlannerPolicy {
    /// Enumerate every connected order × per-stage algorithm × access
    /// path and take the estimator argmin.
    Estimate,
    /// Simpli-Squared: join order from extent sizes alone — start at
    /// the smallest collection and greedily extend the bound interval
    /// toward the smaller frontier — hash joins wherever the schema
    /// allows. No cardinality estimate is ever consulted.
    Simpli,
    /// The query's own binding order, navigating every edge: what a
    /// naive OQL evaluator does.
    Syntactic,
}

impl PlannerPolicy {
    /// The knob value naming this policy.
    pub fn label(&self) -> &'static str {
        match self {
            PlannerPolicy::Estimate => "estimate",
            PlannerPolicy::Simpli => "simpli",
            PlannerPolicy::Syntactic => "syntactic",
        }
    }

    /// Parses a knob value (exact, lowercase).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "estimate" => Some(PlannerPolicy::Estimate),
            "simpli" => Some(PlannerPolicy::Simpli),
            "syntactic" => Some(PlannerPolicy::Syntactic),
            _ => None,
        }
    }

    /// Every policy, in figure order.
    pub fn all() -> [PlannerPolicy; 3] {
        [
            PlannerPolicy::Estimate,
            PlannerPolicy::Simpli,
            PlannerPolicy::Syntactic,
        ]
    }
}

/// A chain plan choice with its (estimated) cost in seconds. The
/// non-estimator policies are costed too, so the plan-quality figure
/// can show what each policy believed it was buying.
#[derive(Clone, Debug, PartialEq)]
pub struct ChainChoice {
    /// Chosen plan.
    pub plan: LogicalPlan,
    /// Estimated seconds.
    pub estimated_secs: f64,
}

/// Chooses a [`LogicalPlan`] for a binding chain under `policy`.
pub fn plan_chain(
    policy: PlannerPolicy,
    spec: &ChainSpec,
    facts: &ChainFacts,
    model: &CostModel,
) -> ChainChoice {
    let has_index = facts.has_index();
    let plan = match policy {
        PlannerPolicy::Syntactic => syntactic_plan(spec, &has_index),
        PlannerPolicy::Simpli => simpli_plan(spec, facts, &has_index),
        PlannerPolicy::Estimate => {
            // Ties break to the first enumerated candidate, so the
            // choice is deterministic.
            return enumerate_plans(spec, &has_index)
                .into_iter()
                .map(|plan| {
                    let estimated_secs = estimate_chain(spec, &plan, facts, model).secs;
                    ChainChoice {
                        plan,
                        estimated_secs,
                    }
                })
                .min_by(|a, b| a.estimated_secs.total_cmp(&b.estimated_secs))
                .expect("the all-nav binding-order plan is always legal");
        }
    };
    let estimated_secs = estimate_chain(spec, &plan, facts, model).secs;
    ChainChoice {
        plan,
        estimated_secs,
    }
}

/// Binding order, all navigation. Always legal: every edge carries at
/// least the attribute the query traversed it by.
fn syntactic_plan(spec: &ChainSpec, has_index: &[bool]) -> LogicalPlan {
    LogicalPlan {
        root: 0,
        root_access: root_options(spec, has_index, 0)[0],
        stages: (1..spec.len())
            .map(|step| JoinStage {
                step,
                from: step - 1,
                algo: StepAlgo::Nav,
                access: RootAccess::Scan,
            })
            .collect(),
    }
}

/// Size-only greedy order: smallest extent roots (tie → lower step
/// index), then the smaller bindable frontier extends the interval.
/// Stages prefer hash over navigation, and an index access over a
/// scan. If greed dead-ends on a one-way edge, fall back to the
/// always-legal syntactic plan.
fn simpli_plan(spec: &ChainSpec, facts: &ChainFacts, has_index: &[bool]) -> LogicalPlan {
    let n = spec.len();
    let size = |i: usize| facts.steps[i].total;
    let root = (0..n)
        .min_by_key(|&i| (size(i), i))
        .expect("non-empty chain");
    let (mut lo, mut hi) = (root, root);
    let mut stages = Vec::with_capacity(n - 1);
    while stages.len() + 1 < n {
        let mut frontier: Vec<(usize, usize)> = Vec::new(); // (step, from)
        if lo > 0 {
            frontier.push((lo - 1, lo));
        }
        if hi + 1 < n {
            frontier.push((hi + 1, hi));
        }
        let choice = frontier
            .into_iter()
            .filter_map(|(step, from)| {
                let opts = stage_options(spec, has_index, from, step);
                // Hash options precede Nav in preference; stage_options
                // lists the index-access hash first when it exists.
                opts.iter()
                    .copied()
                    .find(|&(algo, _)| algo == StepAlgo::Hash)
                    .or_else(|| opts.first().copied())
                    .map(|(algo, access)| JoinStage {
                        step,
                        from,
                        algo,
                        access,
                    })
            })
            .min_by_key(|st| (size(st.step), st.step));
        let Some(stage) = choice else {
            return syntactic_plan(spec, has_index);
        };
        lo = lo.min(stage.step);
        hi = hi.max(stage.step);
        stages.push(stage);
    }
    LogicalPlan {
        root,
        root_access: root_options(spec, has_index, root)[0],
        stages,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{ChainEdge, ChainStep};
    use crate::spec::{AttrPredicate, CmpOp, ResultMode};
    use tq_objstore::ClassId;

    fn profile() -> PhysicalProfile {
        PhysicalProfile {
            parents_total: 1_000_000,
            children_total: 3_000_000,
            parent_scan_pages: 33_000,
            child_scan_pages: 49_000,
            parent_index_clustered: true,
            child_index_clustered: true,
            composition: false,
            mean_fanout: 3.0,
            overflow_pages_per_parent: 0.0,
            client_cache_pages: 8_192,
        }
    }

    #[test]
    fn heuristic_navigates_cost_based_hashes() {
        let m = CostModel::sparc20();
        let p = profile();
        // Low selectivity both sides, class clustering: the paper shows
        // hash joins win; the heuristic still navigates.
        let h = choose_join(Strategy::Heuristic, &p, &m, 0.1, 0.1);
        assert!(matches!(h.algo, JoinAlgo::Nl | JoinAlgo::Nojoin));
        let c = choose_join(Strategy::CostBased, &p, &m, 0.1, 0.1);
        assert!(matches!(c.algo, JoinAlgo::Phj | JoinAlgo::Chj));
        assert!(c.estimated_secs <= h.estimated_secs);
    }

    #[test]
    fn cost_based_switches_to_navigation_under_swap() {
        // (90, 90) on 1:3: hash tables outgrow memory (Figure 12).
        let m = CostModel::sparc20();
        let c = choose_join(Strategy::CostBased, &profile(), &m, 0.9, 0.9);
        assert_eq!(c.algo, JoinAlgo::Nojoin);
    }

    #[test]
    fn cost_based_prefers_nl_on_composition() {
        let m = CostModel::sparc20();
        let mut p = profile();
        let shared = p.parent_scan_pages + p.child_scan_pages;
        p.parent_scan_pages = shared;
        p.child_scan_pages = shared;
        p.composition = true;
        p.child_index_clustered = false;
        for (sp, sc) in [(0.1, 0.1), (0.9, 0.9), (0.1, 0.9)] {
            let c = choose_join(Strategy::CostBased, &p, &m, sp, sc);
            assert_eq!(c.algo, JoinAlgo::Nl, "composition at ({sp},{sc})");
        }
    }

    #[test]
    fn selection_cost_based_always_sorts_the_index_scan() {
        // The paper's Figure 7 lesson, encoded: with an index, the
        // sorted scan wins at every selectivity.
        let m = CostModel::sparc20();
        for sel in [0.001, 0.05, 0.1, 0.5, 0.9] {
            let c = choose_selection(Strategy::CostBased, 2_000_000, 33_000, 8_192, &m, sel, true);
            assert_eq!(c.path, SelectPath::SortedIndexScan, "sel {sel}");
        }
        // Without an index there is only the scan.
        let c = choose_selection(
            Strategy::CostBased,
            2_000_000,
            33_000,
            8_192,
            &m,
            0.5,
            false,
        );
        assert_eq!(c.path, SelectPath::SeqScan);
    }

    #[test]
    fn heuristic_selection_misses_the_sorted_plan() {
        let m = CostModel::sparc20();
        let h = choose_selection(Strategy::Heuristic, 2_000_000, 33_000, 8_192, &m, 0.9, true);
        assert_eq!(h.path, SelectPath::SeqScan);
        let c = choose_selection(Strategy::CostBased, 2_000_000, 33_000, 8_192, &m, 0.9, true);
        assert!(c.estimated_secs < h.estimated_secs);
    }

    fn pred(attr: usize, key: i64) -> AttrPredicate {
        AttrPredicate {
            attr,
            cmp: CmpOp::Lt,
            key,
        }
    }

    /// Providers(x) —1:N→ Patients(y) —N:1→ Providers(z), both edges
    /// traversable in both directions.
    fn chain3() -> ChainSpec {
        ChainSpec {
            steps: vec![
                ChainStep {
                    var: "x".into(),
                    collection: "Providers".into(),
                    class: ClassId(0),
                    preds: vec![pred(1, 100)],
                },
                ChainStep {
                    var: "y".into(),
                    collection: "Patients".into(),
                    class: ClassId(1),
                    preds: vec![pred(1, 1_000)],
                },
                ChainStep {
                    var: "z".into(),
                    collection: "Providers".into(),
                    class: ClassId(0),
                    preds: vec![],
                },
            ],
            edges: vec![
                ChainEdge {
                    parent: 0,
                    child: 1,
                    set_attr: Some(2),
                    ref_attr: Some(4),
                },
                ChainEdge {
                    parent: 2,
                    child: 1,
                    set_attr: Some(2),
                    ref_attr: Some(4),
                },
            ],
            projection: vec![(2, 1)],
            result_mode: ResultMode::Transient,
        }
    }

    fn chain_facts(totals: [u64; 3]) -> ChainFacts {
        use crate::estimator::ChainStepFacts;
        ChainFacts {
            steps: totals
                .iter()
                .enumerate()
                .map(|(i, &total)| ChainStepFacts {
                    total,
                    scan_pages: (total / 30).max(1),
                    primary_selectivity: if i < 2 { 0.1 } else { 1.0 },
                    selectivity: if i < 2 { 0.1 } else { 1.0 },
                    has_index: i < 2,
                    index_clustered: true,
                })
                .collect(),
            client_cache_pages: 8_192,
        }
    }

    #[test]
    fn policy_labels_round_trip() {
        for p in PlannerPolicy::all() {
            assert_eq!(PlannerPolicy::parse(p.label()), Some(p));
        }
        assert_eq!(PlannerPolicy::parse("bogus"), None);
        assert_eq!(PlannerPolicy::parse("Estimate"), None, "exact match only");
    }

    #[test]
    fn syntactic_follows_the_binding_order() {
        let spec = chain3();
        let m = CostModel::sparc20();
        let c = plan_chain(
            PlannerPolicy::Syntactic,
            &spec,
            &chain_facts([10_000, 30_000, 10_000]),
            &m,
        );
        assert_eq!(c.plan.order(), vec![0, 1, 2]);
        assert!(c.plan.stages.iter().all(|s| s.algo == StepAlgo::Nav));
        // The root still takes its index: even O2 used one when handed it.
        assert_eq!(c.plan.root_access, RootAccess::Index);
        assert!(c.estimated_secs > 0.0);
    }

    #[test]
    fn simpli_orders_by_size_alone_and_hashes() {
        let spec = chain3();
        let m = CostModel::sparc20();
        // z's extent is smallest: size-only ordering roots there even
        // though z has no predicate at all.
        let c = plan_chain(
            PlannerPolicy::Simpli,
            &spec,
            &chain_facts([10_000, 30_000, 5_000]),
            &m,
        );
        assert_eq!(c.plan.order(), vec![2, 1, 0]);
        assert!(c.plan.stages.iter().all(|s| s.algo == StepAlgo::Hash));
        // Equal sizes tie toward the lower step index.
        let c = plan_chain(
            PlannerPolicy::Simpli,
            &spec,
            &chain_facts([10_000, 30_000, 10_000]),
            &m,
        );
        assert_eq!(c.plan.root, 0);
    }

    #[test]
    fn simpli_falls_back_to_navigation_on_one_way_edges() {
        let mut spec = chain3();
        // Each edge only carries the attribute the query traversed it
        // by: x→y through the set, y→z through the reference.
        spec.edges[0].ref_attr = None;
        spec.edges[1].set_attr = None;
        let m = CostModel::sparc20();
        let c = plan_chain(
            PlannerPolicy::Simpli,
            &spec,
            &chain_facts([10_000, 30_000, 5_000]),
            &m,
        );
        // Greed roots at z (smallest) and hashes y against it, but
        // then binding x from y needs a back reference edge 0–1 does
        // not have: the dead-end falls back to the syntactic plan.
        assert_eq!(c.plan.order(), vec![0, 1, 2]);
        assert!(c.plan.stages.iter().all(|s| s.algo == StepAlgo::Nav));
    }

    #[test]
    fn estimate_policy_never_loses_to_the_fixed_policies() {
        let spec = chain3();
        let m = CostModel::sparc20();
        for totals in [
            [10_000, 30_000, 10_000],
            [500, 1_500, 500],
            [200_000, 600_000, 200_000],
        ] {
            let facts = chain_facts(totals);
            let e = plan_chain(PlannerPolicy::Estimate, &spec, &facts, &m);
            let s = plan_chain(PlannerPolicy::Simpli, &spec, &facts, &m);
            let y = plan_chain(PlannerPolicy::Syntactic, &spec, &facts, &m);
            assert!(e.estimated_secs <= s.estimated_secs, "{totals:?}");
            assert!(e.estimated_secs <= y.estimated_secs, "{totals:?}");
        }
    }
}
