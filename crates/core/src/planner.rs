//! Plan choice: the heuristic strategy O2 shipped with, and the
//! cost-based strategy the authors wanted to build.
//!
//! §2 of the paper: "The OQL optimizer of the O2 database management
//! system relies on heuristics to choose the 'best' execution plans.
//! As expected, this implies that 'best' is sometimes rather bad."
//! [`Strategy::Heuristic`] encodes that navigation-first mindset;
//! [`Strategy::CostBased`] runs the [`estimator`](crate::estimator)
//! over every candidate and takes the argmin.

use crate::estimator::{estimate_join, estimate_selection, PhysicalProfile, SelectPath};
use crate::spec::JoinAlgo;
use tq_pagestore::CostModel;

/// Plan-selection strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Navigation-oriented rules of thumb (what O2 did): follow the
    /// pointer from the smaller selected side.
    Heuristic,
    /// Estimate every candidate and take the cheapest.
    CostBased,
}

/// A join plan choice with its (estimated) cost in seconds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct JoinChoice {
    /// Chosen algorithm.
    pub algo: JoinAlgo,
    /// Estimated seconds (heuristic choices are costed too, for
    /// comparison).
    pub estimated_secs: f64,
}

/// Chooses a join algorithm.
pub fn choose_join(
    strategy: Strategy,
    profile: &PhysicalProfile,
    model: &CostModel,
    parent_sel: f64,
    child_sel: f64,
) -> JoinChoice {
    match strategy {
        Strategy::Heuristic => {
            // O2's object-oriented instinct: navigate, starting from
            // whichever side the predicates make smaller.
            let selected_parents = parent_sel * profile.parents_total as f64;
            let selected_children = child_sel * profile.children_total as f64;
            let algo = if selected_parents <= selected_children {
                JoinAlgo::Nl
            } else {
                JoinAlgo::Nojoin
            };
            JoinChoice {
                algo,
                estimated_secs: estimate_join(algo, profile, model, parent_sel, child_sel).secs,
            }
        }
        Strategy::CostBased => JoinAlgo::all()
            .into_iter()
            .map(|algo| JoinChoice {
                algo,
                estimated_secs: estimate_join(algo, profile, model, parent_sel, child_sel).secs,
            })
            .min_by(|a, b| a.estimated_secs.total_cmp(&b.estimated_secs))
            .expect("four candidates"),
    }
}

/// A selection plan choice.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SelectChoice {
    /// Chosen access path.
    pub path: SelectPath,
    /// Estimated seconds.
    pub estimated_secs: f64,
}

/// Chooses a selection access path. `has_index` limits the candidates.
pub fn choose_selection(
    strategy: Strategy,
    total: u64,
    pages: u64,
    cache_pages: u64,
    model: &CostModel,
    sel: f64,
    has_index: bool,
) -> SelectChoice {
    let cost = |p: SelectPath| estimate_selection(p, total, pages, cache_pages, model, sel);
    match strategy {
        Strategy::Heuristic => {
            // The classic rule of thumb the paper debunks: use the
            // index only below ~5% selectivity, never bother sorting.
            let path = if has_index && sel <= 0.05 {
                SelectPath::IndexScan
            } else {
                SelectPath::SeqScan
            };
            SelectChoice {
                path,
                estimated_secs: cost(path),
            }
        }
        Strategy::CostBased => {
            let mut candidates = vec![SelectPath::SeqScan];
            if has_index {
                candidates.push(SelectPath::IndexScan);
                candidates.push(SelectPath::SortedIndexScan);
            }
            candidates
                .into_iter()
                .map(|path| SelectChoice {
                    path,
                    estimated_secs: cost(path),
                })
                .min_by(|a, b| a.estimated_secs.total_cmp(&b.estimated_secs))
                .expect("at least one candidate")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> PhysicalProfile {
        PhysicalProfile {
            parents_total: 1_000_000,
            children_total: 3_000_000,
            parent_scan_pages: 33_000,
            child_scan_pages: 49_000,
            parent_index_clustered: true,
            child_index_clustered: true,
            composition: false,
            mean_fanout: 3.0,
            overflow_pages_per_parent: 0.0,
            client_cache_pages: 8_192,
        }
    }

    #[test]
    fn heuristic_navigates_cost_based_hashes() {
        let m = CostModel::sparc20();
        let p = profile();
        // Low selectivity both sides, class clustering: the paper shows
        // hash joins win; the heuristic still navigates.
        let h = choose_join(Strategy::Heuristic, &p, &m, 0.1, 0.1);
        assert!(matches!(h.algo, JoinAlgo::Nl | JoinAlgo::Nojoin));
        let c = choose_join(Strategy::CostBased, &p, &m, 0.1, 0.1);
        assert!(matches!(c.algo, JoinAlgo::Phj | JoinAlgo::Chj));
        assert!(c.estimated_secs <= h.estimated_secs);
    }

    #[test]
    fn cost_based_switches_to_navigation_under_swap() {
        // (90, 90) on 1:3: hash tables outgrow memory (Figure 12).
        let m = CostModel::sparc20();
        let c = choose_join(Strategy::CostBased, &profile(), &m, 0.9, 0.9);
        assert_eq!(c.algo, JoinAlgo::Nojoin);
    }

    #[test]
    fn cost_based_prefers_nl_on_composition() {
        let m = CostModel::sparc20();
        let mut p = profile();
        let shared = p.parent_scan_pages + p.child_scan_pages;
        p.parent_scan_pages = shared;
        p.child_scan_pages = shared;
        p.composition = true;
        p.child_index_clustered = false;
        for (sp, sc) in [(0.1, 0.1), (0.9, 0.9), (0.1, 0.9)] {
            let c = choose_join(Strategy::CostBased, &p, &m, sp, sc);
            assert_eq!(c.algo, JoinAlgo::Nl, "composition at ({sp},{sc})");
        }
    }

    #[test]
    fn selection_cost_based_always_sorts_the_index_scan() {
        // The paper's Figure 7 lesson, encoded: with an index, the
        // sorted scan wins at every selectivity.
        let m = CostModel::sparc20();
        for sel in [0.001, 0.05, 0.1, 0.5, 0.9] {
            let c = choose_selection(Strategy::CostBased, 2_000_000, 33_000, 8_192, &m, sel, true);
            assert_eq!(c.path, SelectPath::SortedIndexScan, "sel {sel}");
        }
        // Without an index there is only the scan.
        let c = choose_selection(
            Strategy::CostBased,
            2_000_000,
            33_000,
            8_192,
            &m,
            0.5,
            false,
        );
        assert_eq!(c.path, SelectPath::SeqScan);
    }

    #[test]
    fn heuristic_selection_misses_the_sorted_plan() {
        let m = CostModel::sparc20();
        let h = choose_selection(Strategy::Heuristic, 2_000_000, 33_000, 8_192, &m, 0.9, true);
        assert_eq!(h.path, SelectPath::SeqScan);
        let c = choose_selection(Strategy::CostBased, 2_000_000, 33_000, 8_192, &m, 0.9, true);
        assert!(c.estimated_secs < h.estimated_secs);
    }
}
