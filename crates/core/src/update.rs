//! The update statement: `update C set a = a + Δ where key < K`.
//!
//! The write-side counterpart of [`select`](crate::select): an
//! [`IndexRangeScan`](OpKind::IndexRangeScan) drains the qualifying
//! `(key, rid)` pairs (rid-sorted, the §4.3 lesson — updates walk the
//! data file sequentially too), then an [`Update`](OpKind::Update)
//! operator rewrites each object through
//! [`maintenance::update_with_indexes`], which re-keys exactly the
//! indexes the object's header lists and fixes their rids when the
//! rewrite relocates the record. Both operators run through one
//! [`ExecContext`], so the per-operator counter rows sum field-for-field
//! to the query totals — the PR 3 attribution invariant extends to
//! writes unchanged.
//!
//! This is what the concurrent service runs for its mixed read/write
//! scenarios: the statement's dirtied pages become the session's
//! write-set, published (or aborted) by the MVCC commit path in
//! `tq-server`.

use crate::exec::{self, CancelToken, ExecContext, ExecTrace, OpKind};
use crate::maintenance::{self, MaintainedIndex};
use tq_index::BTreeIndex;
use tq_objstore::{ObjectStore, Value};

/// One range-predicated additive update.
#[derive(Clone, Debug)]
pub struct UpdateSpec {
    /// Collection label (trace rows and diagnostics).
    pub collection: String,
    /// Exclusive upper bound on the scan index's key.
    pub key_limit: i64,
    /// The Int attribute to add `delta` to.
    pub set_attr: usize,
    /// The increment (wrapping; 0 is a valid "touch" update that
    /// rewrites records without re-keying anything).
    pub delta: i32,
}

/// What an update statement did (plus its operator trace).
#[derive(Clone, Debug, Default)]
pub struct UpdateOutcome {
    /// `(key, rid)` pairs the range scan produced.
    pub scanned: u64,
    /// Objects rewritten.
    pub updated: u64,
    /// Rewrites that relocated the record (left a forwarder).
    pub relocated: u64,
    /// Index entries re-keyed or re-addressed.
    pub index_entries_updated: u64,
    /// Per-operator attribution for the statement window.
    pub trace: ExecTrace,
}

/// Runs one update statement over `store`.
///
/// `scan_index` drives the range predicate; `maintained` is the index
/// registry handed to [`maintenance::update_with_indexes`] — it must
/// contain every index the touched objects' headers list (the engine
/// invariant the maintenance layer asserts). The scan index may appear
/// in the registry as a separate clone of its descriptor: the scan
/// drains fully before the first rewrite, so the descriptor it reads
/// through is never stale.
///
/// With a [`CancelToken`], cancellation unwinds with a
/// [`Cancelled`](crate::exec::Cancelled) payload between object
/// rewrites; the half-applied store must then be discarded wholesale
/// (which is exactly what the server's session layer does).
pub fn run_update(
    store: &mut ObjectStore,
    scan_index: &BTreeIndex,
    maintained: &mut [MaintainedIndex<'_>],
    spec: &UpdateSpec,
    cancel: Option<CancelToken>,
) -> UpdateOutcome {
    let mut ctx = ExecContext::new(store);
    if let Some(token) = cancel {
        ctx.set_cancel(token);
    }
    let pairs =
        exec::index_range_scan(&mut ctx, scan_index, spec.key_limit, true, &spec.collection);
    let scanned = pairs.len() as u64;
    let mut updated = 0u64;
    let mut relocated = 0u64;
    let mut index_entries_updated = 0u64;
    ctx.op(OpKind::Update, &spec.collection, |ctx| {
        let mut values: Vec<Value> = Vec::new();
        for (_, rid) in pairs {
            let class = ctx.with_object(rid, |_ctx, g| {
                values.clear();
                values.extend_from_slice(&g.object().values);
                g.object().header.class
            });
            ctx.store.charge_attr_access(class, spec.set_attr);
            let old = values[spec.set_attr]
                .as_int()
                .expect("updated attribute must be Int");
            values[spec.set_attr] = Value::Int(old.wrapping_add(spec.delta));
            let report = maintenance::update_with_indexes(ctx.store, maintained, rid, &values);
            updated += 1;
            relocated += report.relocated as u64;
            index_entries_updated += report.indexes_updated as u64;
        }
    });
    let trace = ctx.finish();
    UpdateOutcome {
        scanned,
        updated,
        relocated,
        index_entries_updated,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::OpCounters;
    use tq_objstore::{AttrType, Rid, Schema};
    use tq_pagestore::{CacheConfig, CostModel, StorageStack};

    const KEY: usize = 0;
    const VAL: usize = 1;

    /// `Item { key: Int, val: Int }`, indexed on both attributes.
    fn setup(n: i64) -> (ObjectStore, Vec<Rid>, BTreeIndex, BTreeIndex) {
        let mut schema = Schema::new();
        let item = schema.add_class("Item", vec![("key", AttrType::Int), ("val", AttrType::Int)]);
        let stack = StorageStack::new(CostModel::sparc20(), CacheConfig::default());
        let mut store = ObjectStore::new(schema, stack);
        let file = store.create_file("items");
        let rids: Vec<Rid> = (0..n)
            .map(|i| {
                store.insert(
                    file,
                    item,
                    &[Value::Int(i as i32), Value::Int((i * 7 % n) as i32)],
                    true,
                )
            })
            .collect();
        store.create_collection("Items", item, &rids);
        let key_entries: Vec<(i64, Rid)> = rids
            .iter()
            .enumerate()
            .map(|(i, &r)| (i as i64, r))
            .collect();
        let idx_key = BTreeIndex::bulk_build(store.stack_mut(), 1, "idx.key", true, &key_entries);
        let mut val_entries: Vec<(i64, Rid)> = rids
            .iter()
            .enumerate()
            .map(|(i, &r)| ((i as i64 * 7) % n, r))
            .collect();
        val_entries.sort_unstable();
        let idx_val = BTreeIndex::bulk_build(store.stack_mut(), 2, "idx.val", false, &val_entries);
        store.register_index_on_collection("Items", 1);
        store.register_index_on_collection("Items", 2);
        store.cold_restart();
        store.reset_metrics();
        (store, rids, idx_key, idx_val)
    }

    fn spec(limit: i64, delta: i32) -> UpdateSpec {
        UpdateSpec {
            collection: "Items".into(),
            key_limit: limit,
            set_attr: VAL,
            delta,
        }
    }

    #[test]
    fn updates_qualifying_objects_and_rekeys_value_index() {
        let (mut store, rids, mut idx_key, mut idx_val) = setup(40);
        let out = {
            let scan = idx_key.clone();
            let mut reg = [
                MaintainedIndex {
                    index: &mut idx_key,
                    key_attr: KEY,
                },
                MaintainedIndex {
                    index: &mut idx_val,
                    key_attr: VAL,
                },
            ];
            run_update(&mut store, &scan, &mut reg, &spec(10, 1000), None)
        };
        assert_eq!(out.scanned, 10);
        assert_eq!(out.updated, 10);
        assert_eq!(out.relocated, 0, "same-width rewrite stays in place");
        assert_eq!(out.index_entries_updated, 10, "val index re-keyed only");
        // Object 3's val was 21; now 1021, findable through the index.
        assert_eq!(idx_val.lookup(store.stack_mut(), 1021), vec![rids[3]]);
        assert!(idx_val.lookup(store.stack_mut(), 21).is_empty());
        // The key index kept its entries (key unchanged, no relocation).
        assert_eq!(idx_key.lookup(store.stack_mut(), 3), vec![rids[3]]);
    }

    #[test]
    fn zero_delta_touch_rewrites_without_index_work() {
        let (mut store, _rids, mut idx_key, mut idx_val) = setup(40);
        let out = {
            let scan = idx_key.clone();
            let mut reg = [
                MaintainedIndex {
                    index: &mut idx_key,
                    key_attr: KEY,
                },
                MaintainedIndex {
                    index: &mut idx_val,
                    key_attr: VAL,
                },
            ];
            run_update(&mut store, &scan, &mut reg, &spec(10, 0), None)
        };
        assert_eq!(out.updated, 10);
        assert_eq!(out.index_entries_updated, 0);
        assert!(store.stack().dirty_pages() > 0, "records were rewritten");
    }

    #[test]
    fn trace_rows_sum_exactly_to_the_statement_window() {
        let (mut store, _rids, mut idx_key, mut idx_val) = setup(60);
        let before = OpCounters::snapshot(&store);
        let out = {
            let scan = idx_key.clone();
            let mut reg = [
                MaintainedIndex {
                    index: &mut idx_key,
                    key_attr: KEY,
                },
                MaintainedIndex {
                    index: &mut idx_val,
                    key_attr: VAL,
                },
            ];
            run_update(&mut store, &scan, &mut reg, &spec(30, 5), None)
        };
        let after = OpCounters::snapshot(&store);
        assert_eq!(out.trace.total(), after.delta_since(&before));
        assert!(out.trace.find(OpKind::Other).is_none(), "all attributed");
        let scan_row = out.trace.find(OpKind::IndexRangeScan).unwrap();
        let upd_row = out.trace.find(OpKind::Update).unwrap();
        assert!(scan_row.counters.elapsed_nanos() > 0);
        assert!(upd_row.counters.handle_gets() >= 60, "fetch + header read");
        assert!(
            upd_row.counters.io.pages_written == 0,
            "writes defer to commit"
        );
    }

    #[test]
    fn deadline_cancellation_unwinds_mid_update() {
        let (mut store, _rids, mut idx_key, mut idx_val) = setup(60);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let scan = idx_key.clone();
            let mut reg = [
                MaintainedIndex {
                    index: &mut idx_key,
                    key_attr: KEY,
                },
                MaintainedIndex {
                    index: &mut idx_val,
                    key_attr: VAL,
                },
            ];
            run_update(
                &mut store,
                &scan,
                &mut reg,
                &spec(60, 9),
                Some(CancelToken::with_deadline_nanos(1)),
            )
        }));
        let payload = result.expect_err("1 ns of budget must cancel");
        assert!(payload.downcast_ref::<crate::exec::Cancelled>().is_some());
    }
}
