//! Selection operators (paper §4.2–4.3, Figure 8).
//!
//! Three ways to evaluate
//! `select x.<project> from x in C where x.<attr> <cmp> <key>`:
//!
//! * [`seq_scan`] — Figure 8 left: open scan, one handle per object,
//!   evaluate the predicate on every element.
//! * [`index_scan`] — the naive index use: walk the index range in key
//!   order and fetch each object as its rid surfaces. For an
//!   unclustered key this is random I/O, and past a selectivity
//!   threshold it reads *more* pages than the full scan (Figure 6).
//! * [`sorted_index_scan`] — Figure 8 right: collect the qualifying
//!   rids, **sort them by rid**, then fetch in physical order. Handles
//!   are only created for selected objects, and the I/O is
//!   sequentialized — the paper's surprise winner at every selectivity
//!   (Figure 7).
//!
//! Each scan is a composition of [`exec`](crate::exec) operators —
//! `SeqScan`/`IndexRangeScan` driving optional `Residual` predicates,
//! a `Sort` for the rid sort, and `Emit` per result — and returns the
//! per-operator counter attribution in [`SelectReport::trace`].

use crate::exec::{charge_result_append, int_attr, ExecContext, ExecTrace, OpKind};
use crate::spec::{ResultMode, Selection};
use tq_index::BTreeIndex;
use tq_objstore::{ObjectStore, Rid};
use tq_pagestore::CpuEvent;

/// What a selection did (the clock and I/O counters live in the
/// store; measure around the call).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SelectReport {
    /// Objects examined (fetched and predicate-tested or projected).
    pub scanned: u64,
    /// Objects satisfying the predicate.
    pub selected: u64,
    /// Rids sorted (sorted index scan only).
    pub rids_sorted: u64,
    /// Projected integer values, when collection was requested.
    pub values: Option<Vec<i64>>,
    /// Per-operator counter attribution (sums exactly to the counter
    /// deltas of the scan's execution window).
    pub trace: ExecTrace,
}

fn append_result(
    store: &mut ObjectStore,
    mode: ResultMode,
    out: &mut Option<Vec<i64>>,
    value: i64,
) {
    charge_result_append(store, mode);
    if let Some(v) = out {
        v.push(value);
    }
}

/// Evaluates the residual conjunction on a pinned object, charging one
/// attribute get + compare per predicate actually tested (evaluation
/// short-circuits).
fn residual_pass(
    store: &mut ObjectStore,
    class: tq_objstore::ClassId,
    obj: &tq_objstore::Object,
    sel: &Selection,
) -> bool {
    for pred in &sel.residual {
        store.charge_attr_access(class, pred.attr);
        store.charge(CpuEvent::Compare, 1);
        if !pred.eval(int_attr(obj, pred.attr)) {
            return false;
        }
    }
    true
}

/// [`residual_pass`] under a `Residual` operator node — skipped
/// entirely (no empty node) when the selection has no residuals.
fn residual_op(
    ex: &mut ExecContext<'_>,
    class: tq_objstore::ClassId,
    obj: &tq_objstore::Object,
    sel: &Selection,
) -> bool {
    if sel.residual.is_empty() {
        return true;
    }
    ex.op(OpKind::Residual, "residual", |ex| {
        residual_pass(ex.store, class, obj, sel)
    })
}

/// Flushes deferred projected values through one `Emit` scope — the
/// batched scans' counterpart of the per-result nested `Emit`. The
/// per-value project charge and result append land on the same merged
/// `Emit` node the scalar path produces, so totals are identical.
fn flush_select_emits(
    ex: &mut ExecContext<'_>,
    class: tq_objstore::ClassId,
    sel: &Selection,
    pending: &mut Vec<(i64, i64)>,
    out: &mut Option<Vec<i64>>,
) {
    if pending.is_empty() {
        return;
    }
    ex.op(OpKind::Emit, "result", |ex| {
        for &(v, _) in pending.iter() {
            ex.store.charge_attr_access(class, sel.project);
            append_result(ex.store, sel.result_mode, out, v);
        }
    });
    pending.clear();
}

/// Figure 8 (left): full scan with per-object predicate evaluation.
pub fn seq_scan(store: &mut ObjectStore, sel: &Selection, collect: bool) -> SelectReport {
    let info = store.collection(&sel.collection);
    let mut cursor = store.collection_cursor(&sel.collection);
    let mut report = SelectReport {
        values: collect.then(Vec::new),
        ..Default::default()
    };
    let mut ex = ExecContext::new(store);
    let batch = ex.batch_size();
    ex.op(OpKind::SeqScan, &sel.collection, |ex| {
        if batch <= 1 {
            while let Some(rid) = cursor.next(ex.store.stack_mut()) {
                ex.with_object(rid, |ex, fetched| {
                    report.scanned += 1;
                    if fetched.is_deleted() {
                        return;
                    }
                    ex.store.charge_attr_access(info.class, sel.attr);
                    ex.store.charge(CpuEvent::Compare, 1);
                    let key_val = int_attr(fetched.object(), sel.attr);
                    if sel.cmp.eval(key_val, sel.key)
                        && residual_op(ex, info.class, fetched.object(), sel)
                    {
                        report.selected += 1;
                        ex.op(OpKind::Emit, "result", |ex| {
                            ex.store.charge_attr_access(info.class, sel.project);
                            let v = int_attr(fetched.object(), sel.project);
                            append_result(ex.store, sel.result_mode, &mut report.values, v);
                        });
                    }
                });
            }
        } else {
            // The open scan's rid-run page reads interleave with the
            // object fetches — that interleave is measured physical
            // behaviour (reordering it perturbs cache recency), so
            // fetches stay one-at-a-time at any batch size; only the
            // per-result Emit scopes are deferred and flushed in
            // batches.
            let mut pending = ex.take_val_batch();
            while let Some(rid) = cursor.next(ex.store.stack_mut()) {
                ex.with_object(rid, |ex, fetched| {
                    report.scanned += 1;
                    if fetched.is_deleted() {
                        return;
                    }
                    ex.store.charge_attr_access(info.class, sel.attr);
                    ex.store.charge(CpuEvent::Compare, 1);
                    let key_val = int_attr(fetched.object(), sel.attr);
                    if sel.cmp.eval(key_val, sel.key)
                        && residual_op(ex, info.class, fetched.object(), sel)
                    {
                        report.selected += 1;
                        pending.push((int_attr(fetched.object(), sel.project), 0));
                    }
                });
                if pending.len() >= batch {
                    flush_select_emits(ex, info.class, sel, &mut pending, &mut report.values);
                }
            }
            flush_select_emits(ex, info.class, sel, &mut pending, &mut report.values);
            ex.put_val_batch(pending);
        }
    });
    report.trace = ex.finish();
    report
}

fn index_bounds(sel: &Selection) -> (i64, i64) {
    sel.cmp.index_range(sel.key, i64::MIN + 1, i64::MAX - 1)
}

/// Naive index scan: fetch objects in key order (random pages for an
/// unclustered key).
pub fn index_scan(
    store: &mut ObjectStore,
    index: &BTreeIndex,
    sel: &Selection,
    collect: bool,
) -> SelectReport {
    let info = store.collection(&sel.collection);
    let (lo, hi) = index_bounds(sel);
    let mut report = SelectReport {
        values: collect.then(Vec::new),
        ..Default::default()
    };
    let mut ex = ExecContext::new(store);
    let batch = ex.batch_size();
    ex.op(OpKind::IndexRangeScan, &sel.collection, |ex| {
        let mut cursor = index.range(ex.store.stack_mut(), lo, hi);
        if batch <= 1 {
            while let Some((_key, rid)) = cursor.next(ex.store.stack_mut()) {
                ex.with_object(rid, |ex, fetched| {
                    report.scanned += 1;
                    if fetched.is_deleted() || !residual_op(ex, info.class, fetched.object(), sel) {
                        return;
                    }
                    report.selected += 1;
                    ex.op(OpKind::Emit, "result", |ex| {
                        ex.store.charge_attr_access(info.class, sel.project);
                        let v = int_attr(fetched.object(), sel.project);
                        append_result(ex.store, sel.result_mode, &mut report.values, v);
                    });
                });
            }
        } else {
            // The naive scan's index-leaf/object-page interleave IS
            // what Figure 6 measures, so fetches stay one-at-a-time at
            // any batch size; only the Emit scopes are batched.
            let mut pending = ex.take_val_batch();
            while let Some((_key, rid)) = cursor.next(ex.store.stack_mut()) {
                ex.with_object(rid, |ex, fetched| {
                    report.scanned += 1;
                    if fetched.is_deleted() || !residual_op(ex, info.class, fetched.object(), sel) {
                        return;
                    }
                    report.selected += 1;
                    pending.push((int_attr(fetched.object(), sel.project), 0));
                });
                if pending.len() >= batch {
                    flush_select_emits(ex, info.class, sel, &mut pending, &mut report.values);
                }
            }
            flush_select_emits(ex, info.class, sel, &mut pending, &mut report.values);
            ex.put_val_batch(pending);
        }
    });
    report.trace = ex.finish();
    report
}

/// Figure 8 (right): collect qualifying rids, sort them, fetch in
/// physical order.
pub fn sorted_index_scan(
    store: &mut ObjectStore,
    index: &BTreeIndex,
    sel: &Selection,
    collect: bool,
) -> SelectReport {
    let info = store.collection(&sel.collection);
    let (lo, hi) = index_bounds(sel);
    let mut report = SelectReport {
        values: collect.then(Vec::new),
        ..Default::default()
    };
    let mut ex = ExecContext::new(store);
    let mut rids: Vec<Rid> = Vec::new();
    ex.op(OpKind::IndexRangeScan, &sel.collection, |ex| {
        let mut cursor = index.range(ex.store.stack_mut(), lo, hi);
        while let Some((_key, rid)) = cursor.next(ex.store.stack_mut()) {
            rids.push(rid);
        }
    });
    // Sort table T on rids (n·log2 n charged compares).
    let n = rids.len() as u64;
    ex.op(OpKind::Sort, "rids", |ex| {
        if n > 1 {
            let compares = (n as f64 * (n as f64).log2()).ceil() as u64;
            ex.store.charge(CpuEvent::SortCompare, compares);
        }
        rids.sort_unstable();
    });
    report.rids_sorted = n;
    let batch = ex.batch_size();
    ex.op(OpKind::IndexRangeScan, &sel.collection, |ex| {
        if batch <= 1 {
            for &rid in &rids {
                ex.with_object(rid, |ex, fetched| {
                    report.scanned += 1;
                    if fetched.is_deleted() || !residual_op(ex, info.class, fetched.object(), sel) {
                        return;
                    }
                    report.selected += 1;
                    ex.op(OpKind::Emit, "result", |ex| {
                        ex.store.charge_attr_access(info.class, sel.project);
                        let v = int_attr(fetched.object(), sel.project);
                        append_result(ex.store, sel.result_mode, &mut report.values, v);
                    });
                });
            }
        } else {
            let mut pending = ex.take_val_batch();
            for chunk in rids.chunks(batch) {
                ex.with_batch(chunk, |ex, objs| {
                    for i in 0..objs.len() {
                        let fetched = objs.object(i);
                        report.scanned += 1;
                        if fetched.header.is_deleted() || !residual_op(ex, info.class, fetched, sel)
                        {
                            continue;
                        }
                        report.selected += 1;
                        pending.push((int_attr(fetched, sel.project), 0));
                    }
                });
                if pending.len() >= batch {
                    flush_select_emits(ex, info.class, sel, &mut pending, &mut report.values);
                }
            }
            flush_select_emits(ex, info.class, sel, &mut pending, &mut report.values);
            ex.put_val_batch(pending);
        }
    });
    report.trace = ex.finish();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::CmpOp;
    use tq_index::BTreeIndex;
    use tq_objstore::{AttrType, ObjectStore, Schema, Value};
    use tq_pagestore::{CacheConfig, CostModel, StorageStack};

    /// A small store: class Item { key: Int, payload: Int }, `n`
    /// objects with key = i and payload = i * 10, plus an unclustered
    /// index on payload%97 stored in attr `scat`.
    fn make(n: i64) -> (ObjectStore, BTreeIndex, BTreeIndex) {
        let mut schema = Schema::new();
        let item = schema.add_class(
            "Item",
            vec![
                ("key", AttrType::Int),
                ("payload", AttrType::Int),
                ("scat", AttrType::Int),
            ],
        );
        let stack = StorageStack::new(CostModel::sparc20(), CacheConfig::default());
        let mut store = ObjectStore::new(schema, stack);
        let file = store.create_file("items");
        let mut rids = Vec::new();
        for i in 0..n {
            let scat = (i * 7919) % 1000; // scattered key
            let values = vec![
                Value::Int(i as i32),
                Value::Int((i * 10) as i32),
                Value::Int(scat as i32),
            ];
            rids.push(store.insert(file, item, &values, true));
        }
        store.create_collection("Items", item, &rids);
        let key_entries: Vec<(i64, tq_objstore::Rid)> = rids
            .iter()
            .enumerate()
            .map(|(i, &r)| (i as i64, r))
            .collect();
        let key_idx = BTreeIndex::bulk_build(store.stack_mut(), 1, "idx.key", true, &key_entries);
        let mut scat_entries: Vec<(i64, tq_objstore::Rid)> = rids
            .iter()
            .enumerate()
            .map(|(i, &r)| (((i as i64) * 7919) % 1000, r))
            .collect();
        scat_entries.sort_unstable_by_key(|&(k, _)| k);
        let scat_idx =
            BTreeIndex::bulk_build(store.stack_mut(), 2, "idx.scat", false, &scat_entries);
        store.cold_restart();
        store.reset_metrics();
        (store, key_idx, scat_idx)
    }

    fn sel(attr: usize, cmp: CmpOp, key: i64) -> Selection {
        Selection {
            collection: "Items".into(),
            attr,
            cmp,
            key,
            residual: vec![],
            project: 1, // payload
            result_mode: ResultMode::Persistent,
        }
    }

    #[test]
    fn seq_scan_selects_correctly() {
        let (mut store, _, _) = make(500);
        let r = seq_scan(&mut store, &sel(0, CmpOp::Lt, 100), true);
        assert_eq!(r.scanned, 500);
        assert_eq!(r.selected, 100);
        let values = r.values.unwrap();
        assert_eq!(values.len(), 100);
        assert_eq!(values[0], 0);
        assert_eq!(values[99], 990);
    }

    #[test]
    fn all_three_agree_on_the_result_multiset() {
        let (mut store, key_idx, scat_idx) = make(800);
        for (attr, idx) in [(0usize, &key_idx), (2usize, &scat_idx)] {
            for (cmp, key) in [
                (CmpOp::Lt, 400),
                (CmpOp::Gt, 600),
                (CmpOp::Le, 0),
                (CmpOp::Ge, 999),
                (CmpOp::Eq, 7),
            ] {
                let s = sel(attr, cmp, key);
                let mut a = seq_scan(&mut store, &s, true).values.unwrap();
                let mut b = index_scan(&mut store, idx, &s, true).values.unwrap();
                let mut c = sorted_index_scan(&mut store, idx, &s, true).values.unwrap();
                a.sort_unstable();
                b.sort_unstable();
                c.sort_unstable();
                assert_eq!(a, b, "{cmp:?} {key} attr {attr}");
                assert_eq!(b, c, "{cmp:?} {key} attr {attr}");
            }
        }
    }

    #[test]
    fn sorted_scan_reports_sort_size() {
        let (mut store, _, scat_idx) = make(300);
        let r = sorted_index_scan(&mut store, &scat_idx, &sel(2, CmpOp::Lt, 500), false);
        assert_eq!(r.rids_sorted, r.selected);
        assert!(r.values.is_none());
    }

    #[test]
    fn seq_scan_creates_one_handle_per_object_index_scan_only_selected() {
        let (mut store, _, scat_idx) = make(400);
        store.cold_restart();
        store.reset_metrics();
        let h0 = store.handle_stats();
        seq_scan(&mut store, &sel(2, CmpOp::Lt, 100), false);
        let h1 = store.handle_stats();
        let seq_allocs = h1.allocations - h0.allocations;
        assert_eq!(seq_allocs, 400, "seq scan touches every object");
        store.cold_restart();
        store.reset_metrics();
        store.end_of_query();
        let h2 = store.handle_stats();
        sorted_index_scan(&mut store, &scat_idx, &sel(2, CmpOp::Lt, 100), false);
        let h3 = store.handle_stats();
        let idx_gets = (h3.allocations + h3.touches + h3.revivals)
            - (h2.allocations + h2.touches + h2.revivals);
        // ~10% of scat keys are < 100.
        assert!(
            idx_gets < 100,
            "index scan must only touch selected objects, touched {idx_gets}"
        );
    }

    #[test]
    fn sorted_scan_fetches_in_physical_order() {
        let (mut store, _, scat_idx) = make(2000);
        store.cold_restart();
        store.reset_metrics();
        let unsorted = {
            index_scan(&mut store, &scat_idx, &sel(2, CmpOp::Lt, 900), false);
            store.stats().d2sc_read_pages
        };
        store.cold_restart();
        store.reset_metrics();
        let sorted = {
            sorted_index_scan(&mut store, &scat_idx, &sel(2, CmpOp::Lt, 900), false);
            store.stats().d2sc_read_pages
        };
        // Same pages are needed, but the sorted scan never re-reads one
        // (cache-friendly sequential order).
        assert!(
            sorted <= unsorted,
            "sorted scan reads {sorted} pages, unsorted {unsorted}"
        );
        // And the sorted scan's I/O time is lower (sequential rate).
        store.cold_restart();
        store.reset_metrics();
        index_scan(&mut store, &scat_idx, &sel(2, CmpOp::Lt, 900), false);
        let t_unsorted = store.clock().io_time();
        store.cold_restart();
        store.reset_metrics();
        sorted_index_scan(&mut store, &scat_idx, &sel(2, CmpOp::Lt, 900), false);
        let t_sorted = store.clock().io_time();
        assert!(t_sorted < t_unsorted);
    }

    #[test]
    fn persistent_results_cost_more_than_transient() {
        let (mut store, key_idx, _) = make(500);
        let mut s = sel(0, CmpOp::Lt, 500);
        store.cold_restart();
        store.reset_metrics();
        index_scan(&mut store, &key_idx, &s, false);
        let persistent = store.clock().cpu_time();
        s.result_mode = ResultMode::Transient;
        store.cold_restart();
        store.reset_metrics();
        index_scan(&mut store, &key_idx, &s, false);
        let transient = store.clock().cpu_time();
        assert!(persistent > transient);
    }

    #[test]
    fn scan_traces_attribute_every_counter() {
        let (mut store, _, scat_idx) = make(600);
        store.cold_restart();
        store.reset_metrics();
        let before = crate::exec::OpCounters::snapshot(&store);
        let r = sorted_index_scan(&mut store, &scat_idx, &sel(2, CmpOp::Lt, 300), false);
        let after = crate::exec::OpCounters::snapshot(&store);
        assert_eq!(r.trace.total(), after.delta_since(&before));
        assert!(r.trace.find(OpKind::IndexRangeScan).is_some());
        assert!(r.trace.find(OpKind::Sort).is_some());
        assert!(r.trace.find(OpKind::Emit).is_some());
        assert!(
            r.trace.find(OpKind::Other).is_none(),
            "no unattributed work in a scan"
        );
    }
}
