//! The query engine façade: OQL text in, planned and measured
//! execution out.
//!
//! This is the layer the paper's authors were building toward: a
//! [`Strategy::CostBased`] optimizer over the physical facts of the
//! database. The engine keeps a registry of indexes, derives the
//! estimator's [`PhysicalProfile`] *mechanically* (collection
//! cardinalities and file sizes from the catalog, clustering flags
//! from the indexes, composition detection by sampling parent/child
//! adjacency), chooses an access path, and runs it.
//!
//! Selectivity estimation assumes integer keys uniform on
//! `0..cardinality` — the convention of the paper's Derby databases
//! (`upin`/`mrn` are creation ranks, `num` is uniform random). Finding
//! out *which* statistics a system should maintain was the paper's
//! original goal; this is the simplest answer that makes the paper's
//! plan choices correctly.

use crate::estimator::{ChainFacts, PhysicalProfile, SelectPath};
use crate::join::{run_chain, run_join, ChainReport, JoinContext, JoinOptions, JoinReport};
use crate::oql::{compile_str, CompileError, CompiledQuery};
use crate::plan::ChainSpec;
use crate::planner::{
    choose_join, choose_selection, plan_chain, ChainChoice, PlannerPolicy, Strategy,
};
use crate::select::{index_scan, seq_scan, sorted_index_scan, SelectReport};
use crate::spec::{JoinAlgo, Selection, TreeJoinSpec};
use std::fmt;
use tq_index::BTreeIndex;
use tq_objstore::{AttrId, ClassId, ObjectStore, SetValue};

/// A registered index: the tree plus what it indexes.
pub struct EngineIndex {
    /// The B+-tree.
    pub index: BTreeIndex,
    /// Class of the indexed objects.
    pub class: ClassId,
    /// The indexed attribute.
    pub key_attr: AttrId,
}

/// Engine errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// The query did not compile.
    Compile(CompileError),
    /// A tree join needs indexes on both key attributes.
    MissingIndex(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Compile(e) => write!(f, "{e}"),
            EngineError::MissingIndex(m) => write!(f, "missing index: {m}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<CompileError> for EngineError {
    fn from(e: CompileError) -> Self {
        EngineError::Compile(e)
    }
}

/// What a query execution produced.
#[derive(Debug)]
pub enum QueryOutcome {
    /// A selection ran.
    Selection {
        /// Chosen access path.
        path: SelectPath,
        /// Executor report.
        report: SelectReport,
        /// Simulated seconds the execution took.
        secs: f64,
    },
    /// A tree join ran.
    Join {
        /// Chosen algorithm.
        algo: JoinAlgo,
        /// Executor report.
        report: JoinReport,
        /// Simulated seconds the execution took.
        secs: f64,
    },
    /// An N-way binding chain ran.
    Chain {
        /// The compiled chain (kept for explain rendering).
        spec: ChainSpec,
        /// Policy that picked the plan.
        policy: PlannerPolicy,
        /// The chosen plan with its estimated cost.
        choice: ChainChoice,
        /// Executor report.
        report: ChainReport,
        /// Simulated seconds the execution took.
        secs: f64,
    },
}

impl QueryOutcome {
    /// Rows/tuples produced.
    pub fn results(&self) -> u64 {
        match self {
            QueryOutcome::Selection { report, .. } => report.selected,
            QueryOutcome::Join { report, .. } => report.results,
            QueryOutcome::Chain { report, .. } => report.results,
        }
    }

    /// Simulated seconds.
    pub fn secs(&self) -> f64 {
        match self {
            QueryOutcome::Selection { secs, .. }
            | QueryOutcome::Join { secs, .. }
            | QueryOutcome::Chain { secs, .. } => *secs,
        }
    }
}

/// The engine: an object store plus an index registry and a planner.
pub struct Engine {
    store: ObjectStore,
    indexes: Vec<EngineIndex>,
    /// Join options used for every join execution.
    pub join_options: JoinOptions,
    /// Ordering policy for N-way binding chains (the `TQ_PLANNER`
    /// knob; 2-way tree joins keep using `Strategy`).
    pub chain_policy: PlannerPolicy,
}

impl Engine {
    /// Wraps a store.
    pub fn new(store: ObjectStore) -> Self {
        Self {
            store,
            indexes: Vec::new(),
            join_options: JoinOptions::default(),
            chain_policy: PlannerPolicy::Estimate,
        }
    }

    /// The underlying store.
    pub fn store(&self) -> &ObjectStore {
        &self.store
    }

    /// Mutable access to the underlying store.
    pub fn store_mut(&mut self) -> &mut ObjectStore {
        &mut self.store
    }

    /// Registers an index for planning and execution.
    pub fn register_index(&mut self, index: BTreeIndex, class: ClassId, key_attr: AttrId) {
        self.indexes.push(EngineIndex {
            index,
            class,
            key_attr,
        });
    }

    fn find_index(&self, class: ClassId, attr: AttrId) -> Option<&EngineIndex> {
        self.indexes
            .iter()
            .find(|e| e.class == class && e.key_attr == attr)
    }

    /// Fraction of a collection a `attr cmp key` predicate keeps, under
    /// the uniform `0..count` key assumption.
    fn estimate_selectivity(cmp: crate::spec::CmpOp, key: i64, count: u64) -> f64 {
        if count == 0 {
            return 0.0;
        }
        let (lo, hi) = cmp.index_range(key, 0, count as i64 - 1);
        let kept = (hi - lo + 1).clamp(0, count as i64);
        kept as f64 / count as f64
    }

    /// Data pages a scan of the collection touches, from the catalog.
    ///
    /// This must be the collection's *own* page count, not its file's:
    /// under composition clustering both classes share one file, and
    /// charging the parent scan with the children's pages (or vice
    /// versa) made the planner believe every scan costs the whole
    /// file.
    fn data_pages(&self, collection: &str) -> u64 {
        self.store.collection(collection).data_pages
    }

    /// Detects composition placement by sampling: are parents' first
    /// children adjacent to them?
    fn detect_composition(&mut self, spec: &TreeJoinSpec) -> bool {
        let mut cursor = self.store.collection_cursor(&spec.parents);
        let mut sampled = 0;
        let mut adjacent = 0;
        while sampled < 8 {
            let Some(prid) = cursor.next(self.store.stack_mut()) else {
                break;
            };
            // `Some(first)` when the set is inline, `None` on overflow.
            let sample = self.store.with_fetched(prid, |_store, parent| {
                match parent.object().values[spec.parent_set]
                    .as_set()
                    .expect("parent set attribute")
                {
                    SetValue::Inline(rids) => Some((parent.rid(), rids.first().copied())),
                    SetValue::Overflow { .. } => None,
                }
            });
            let Some((parent_rid, first)) = sample else {
                // Overflow sets (1:1000): members never sit with the
                // parent.
                return false;
            };
            if let Some(first) = first {
                sampled += 1;
                let same_file = first.page.file == parent_rid.page.file;
                let close = first.page.page_no.abs_diff(parent_rid.page.page_no) <= 2;
                if same_file && close {
                    adjacent += 1;
                }
            }
        }
        sampled > 0 && adjacent * 2 > sampled
    }

    /// Derives the estimator profile for a join, mechanically.
    pub fn profile_for(&mut self, spec: &TreeJoinSpec) -> Result<PhysicalProfile, EngineError> {
        let parents = self.store.collection(&spec.parents);
        let children = self.store.collection(&spec.children);
        let parent_idx = self
            .find_index(parents.class, spec.parent_key)
            .ok_or_else(|| {
                EngineError::MissingIndex(format!("{}.{}", spec.parents, spec.parent_key))
            })?;
        let parent_clustered = parent_idx.index.clustered;
        let child_idx = self
            .find_index(children.class, spec.child_key)
            .ok_or_else(|| {
                EngineError::MissingIndex(format!("{}.{}", spec.children, spec.child_key))
            })?;
        let child_clustered = child_idx.index.clustered;
        let parent_scan_pages = self.data_pages(&spec.parents);
        let child_scan_pages = self.data_pages(&spec.children);
        // Overflow rid-run pages per parent.
        let overflow_pages_per_parent = {
            let mut cursor = self.store.collection_cursor(&spec.parents);
            match cursor.next(self.store.stack_mut()) {
                Some(prid) => self.store.with_fetched(prid, |store, parent| {
                    match parent.object().values[spec.parent_set].as_set() {
                        Some(SetValue::Overflow { file, .. }) => {
                            let pages = store.stack().disk().file_len(*file) as f64;
                            pages / parents.run.count.max(1) as f64
                        }
                        _ => 0.0,
                    }
                }),
                None => 0.0,
            }
        };
        Ok(PhysicalProfile {
            parents_total: parents.run.count,
            children_total: children.run.count,
            parent_scan_pages,
            child_scan_pages,
            parent_index_clustered: parent_clustered,
            child_index_clustered: child_clustered,
            composition: self.detect_composition(spec),
            mean_fanout: children.run.count as f64 / parents.run.count.max(1) as f64,
            overflow_pages_per_parent,
            client_cache_pages: self.store.stack().config().client_pages as u64,
        })
    }

    /// Compiles, plans and executes one OQL query under `strategy`,
    /// cold (the paper's protocol: server restart, metrics reset).
    pub fn run(&mut self, oql: &str, strategy: Strategy) -> Result<QueryOutcome, EngineError> {
        let compiled = compile_str(&self.store, oql)?;
        match compiled {
            CompiledQuery::Selection(sel) => self.run_selection(sel, strategy),
            CompiledQuery::TreeJoin(spec) => self.run_join_query(spec, strategy),
            CompiledQuery::Chain(spec) => self.run_chain_query(spec),
        }
    }

    fn run_chain_query(&mut self, spec: ChainSpec) -> Result<QueryOutcome, EngineError> {
        let facts = ChainFacts::derive(&self.store, &spec, |class, attr| {
            self.find_index(class, attr).map(|e| e.index.clustered)
        });
        let model = self.store.stack().model().clone();
        let policy = self.chain_policy;
        let choice = plan_chain(policy, &spec, &facts, &model);
        // Per-step index clone on each primary predicate attribute,
        // in the shape the executor takes.
        let indexes: Vec<Option<tq_index::BTreeIndex>> = spec
            .steps
            .iter()
            .map(|s| {
                let class = self.store.collection(&s.collection).class;
                s.preds
                    .first()
                    .and_then(|p| self.find_index(class, p.attr))
                    .map(|e| e.index.clone())
            })
            .collect();
        self.store.cold_restart();
        self.store.reset_metrics();
        let report = run_chain(&mut self.store, &spec, &choice.plan, &indexes, false, None);
        self.store.end_of_query();
        let secs = self.store.clock().elapsed_secs();
        Ok(QueryOutcome::Chain {
            spec,
            policy,
            choice,
            report,
            secs,
        })
    }

    fn run_selection(
        &mut self,
        mut sel: Selection,
        strategy: Strategy,
    ) -> Result<QueryOutcome, EngineError> {
        let info = self.store.collection(&sel.collection);
        // Put an indexed predicate first when the primary has none.
        if self.find_index(info.class, sel.attr).is_none() {
            if let Some(p) = sel
                .residual
                .iter()
                .find(|p| self.find_index(info.class, p.attr).is_some())
            {
                let attr = p.attr;
                sel.promote(attr);
            }
        }
        let has_index = self.find_index(info.class, sel.attr).is_some();
        let pages = self.data_pages(&sel.collection);
        let selectivity = Self::estimate_selectivity(sel.cmp, sel.key, info.run.count);
        let model = self.store.stack().model().clone();
        let choice = choose_selection(
            strategy,
            info.run.count,
            pages,
            self.store.stack().config().client_pages as u64,
            &model,
            selectivity,
            has_index,
        );
        self.store.cold_restart();
        self.store.reset_metrics();
        let report = match choice.path {
            SelectPath::SeqScan => seq_scan(&mut self.store, &sel, false),
            SelectPath::IndexScan => {
                let index = self
                    .find_index(info.class, sel.attr)
                    .expect("path implies index")
                    .index
                    .clone();
                index_scan(&mut self.store, &index, &sel, false)
            }
            SelectPath::SortedIndexScan => {
                let index = self
                    .find_index(info.class, sel.attr)
                    .expect("path implies index")
                    .index
                    .clone();
                sorted_index_scan(&mut self.store, &index, &sel, false)
            }
        };
        self.store.end_of_query();
        Ok(QueryOutcome::Selection {
            path: choice.path,
            report,
            secs: self.store.clock().elapsed_secs(),
        })
    }

    fn run_join_query(
        &mut self,
        spec: TreeJoinSpec,
        strategy: Strategy,
    ) -> Result<QueryOutcome, EngineError> {
        let profile = self.profile_for(&spec)?;
        let parent_sel = Self::estimate_selectivity(
            crate::spec::CmpOp::Lt,
            spec.parent_key_limit,
            profile.parents_total,
        );
        let child_sel = Self::estimate_selectivity(
            crate::spec::CmpOp::Lt,
            spec.child_key_limit,
            profile.children_total,
        );
        let model = self.store.stack().model().clone();
        let choice = choose_join(strategy, &profile, &model, parent_sel, child_sel);
        let parents = self.store.collection(&spec.parents);
        let children = self.store.collection(&spec.children);
        let parent_index = self
            .find_index(parents.class, spec.parent_key)
            .expect("checked by profile_for")
            .index
            .clone();
        let child_index = self
            .find_index(children.class, spec.child_key)
            .expect("checked by profile_for")
            .index
            .clone();
        self.store.cold_restart();
        self.store.reset_metrics();
        let opts = self.join_options;
        let report = {
            let mut ctx = JoinContext {
                store: &mut self.store,
                parent_index: &parent_index,
                child_index: &child_index,
            };
            run_join(choice.algo, &mut ctx, &spec, &opts, false)
        };
        self.store.end_of_query();
        Ok(QueryOutcome::Join {
            algo: choice.algo,
            report,
            secs: self.store.clock().elapsed_secs(),
        })
    }
}
