//! Analytic cost estimation — the cost model the authors set out to
//! build (§1: "(i) defining an accurate cost model and (ii) improving
//! its search strategy").
//!
//! The formulas mirror the mechanics of the executor: sequential and
//! random page reads through a finite client cache, rid-sorted index
//! scans, per-object handle CPU, hash build/probe CPU, result
//! construction, and paging when an operator's hash table exceeds the
//! memory budget. They are *adequate for choosing plans*, which is the
//! paper's bar, not cycle-accurate.

use crate::exec::OpKind;
use crate::join::chain::CHAIN_ENTRY_BYTES;
use crate::join::hash_table_bytes;
use crate::plan::{ChainSpec, LogicalPlan, RootAccess, StepAlgo};
use crate::spec::{CmpOp, JoinAlgo, ResultMode};
use tq_objstore::{AttrId, ClassId, ObjectStore};
use tq_pagestore::CostModel;

/// Physical facts the estimator needs about one 1-N tree.
#[derive(Clone, Copy, Debug)]
pub struct PhysicalProfile {
    /// Parent-extent cardinality.
    pub parents_total: u64,
    /// Child-extent cardinality.
    pub children_total: u64,
    /// Pages a full pass over the parents touches (for shared files —
    /// random/composition — this is the whole file).
    pub parent_scan_pages: u64,
    /// Pages a full pass over the children touches.
    pub child_scan_pages: u64,
    /// Is the parent key index clustered (key order = physical order)?
    pub parent_index_clustered: bool,
    /// Is the child key index clustered?
    pub child_index_clustered: bool,
    /// Children placed adjacent to their parent (composition
    /// clustering)?
    pub composition: bool,
    /// Mean children per parent.
    pub mean_fanout: f64,
    /// Overflow rid-run pages per parent's child set (0 when sets are
    /// inline).
    pub overflow_pages_per_parent: f64,
    /// Client cache capacity in pages.
    pub client_cache_pages: u64,
}

impl PhysicalProfile {
    /// Estimated join result cardinality at the given selectivities
    /// (fractions in `0..=1`). The predicates are independent: the
    /// three organizations store the same logical database.
    pub fn result_cardinality(&self, parent_sel: f64, child_sel: f64) -> f64 {
        parent_sel * child_sel * self.children_total as f64
    }
}

/// An estimated cost.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostEstimate {
    /// Estimated elapsed seconds.
    pub secs: f64,
    /// Estimated operator hash-table bytes (0 for navigation).
    pub table_bytes: u64,
}

/// One physical operator's share of a cost estimate — the same
/// vocabulary ([`OpKind`] + side label) the executor's trace uses, so
/// `explain` can print estimated and measured columns side by side.
#[derive(Clone, Debug, PartialEq)]
pub struct OpEstimate {
    /// Which side / stream the operator works on (a fixed side name
    /// for 2-way joins, a `var:Collection` step label for chains).
    pub label: String,
    /// Operator kind.
    pub kind: OpKind,
    /// Estimated seconds attributed to this operator.
    pub secs: f64,
}

/// A cost estimate with its per-operator decomposition.
///
/// `estimate.secs` is the planner's number, computed by the exact
/// historical formula (bitwise-stable); `ops` re-expresses it one
/// operator at a time. The rows sum to the total up to floating-point
/// re-association only.
#[derive(Clone, Debug, PartialEq)]
pub struct EstimateBreakdown {
    /// Per-operator terms, in pipeline order.
    pub ops: Vec<OpEstimate>,
    /// The aggregate estimate (what the planner compares).
    pub estimate: CostEstimate,
}

impl EstimateBreakdown {
    /// Sum of the operator rows (≈ `estimate.secs`).
    pub fn ops_total(&self) -> f64 {
        self.ops.iter().map(|o| o.secs).sum()
    }
}

fn secs(nanos: u64) -> f64 {
    nanos as f64 / 1e9
}

/// Pages of index leaves returning `entries` rids (250 entries/leaf).
fn index_leaf_pages(entries: f64) -> f64 {
    (entries / 250.0).ceil()
}

/// Expected distinct pages hit by `accesses` uniform random accesses
/// over `pages` pages (coupon-collector approximation).
fn distinct_pages(accesses: f64, pages: f64) -> f64 {
    if pages <= 0.0 {
        return 0.0;
    }
    pages * (1.0 - (-accesses / pages).exp())
}

/// Expected physical reads for `accesses` random accesses over `pages`
/// pages through a `cache`-page LRU: first touches plus re-reads at the
/// steady-state miss rate.
fn random_reads(accesses: f64, pages: f64, cache: f64) -> f64 {
    if pages <= cache {
        return distinct_pages(accesses, pages);
    }
    let hit = cache / pages;
    let first_pass = distinct_pages(accesses, pages).min(pages);
    let rereads = (accesses - first_pass).max(0.0) * (1.0 - hit);
    first_pass + rereads
}

/// Cost components shared by the estimators.
struct Env<'a> {
    m: &'a CostModel,
    cache: f64,
}

impl Env<'_> {
    fn seq_read(&self, pages: f64) -> f64 {
        pages * secs(self.m.read_page_sequential + self.m.rpc_per_page)
    }

    fn rand_read(&self, pages: f64) -> f64 {
        pages * secs(self.m.read_page_random + self.m.rpc_per_page)
    }

    /// One selected-prefix pass when the index is clustered: a
    /// sequential read of the selected fraction of the region.
    /// Otherwise a rid-sorted fetch of `count` objects scattered over
    /// `pages`: every page holding a selected object, read once, in
    /// physical order (dense runs stream; sparse ones seek).
    fn index_driven_scan(&self, clustered: bool, sel: f64, count: f64, pages: f64) -> f64 {
        if clustered {
            return self.seq_read(sel * pages);
        }
        let touched = distinct_pages(count, pages);
        let density = count / pages.max(1.0);
        let seq_fraction = density.min(1.0);
        touched
            * (seq_fraction * secs(self.m.read_page_sequential + self.m.rpc_per_page)
                + (1.0 - seq_fraction) * secs(self.m.read_page_random + self.m.rpc_per_page))
    }

    /// Full handle life cycle per scanned object.
    fn handle_scan(&self, objects: f64) -> f64 {
        objects * secs(self.m.handle_alloc + self.m.handle_unref + self.m.handle_free)
    }

    fn attr(&self, count: f64) -> f64 {
        count * secs(self.m.attr_get)
    }

    fn result_build(&self, tuples: f64) -> f64 {
        // Join results project two attributes and append transiently.
        tuples * secs(self.m.result_append_transient + 2 * self.m.attr_get)
    }

    fn sort(&self, n: f64) -> f64 {
        if n > 1.0 {
            n * n.log2() * secs(self.m.sort_compare)
        } else {
            0.0
        }
    }

    fn swap_cost(&self, table_bytes: u64, touches: f64) -> f64 {
        let budget = self.m.operator_memory_budget;
        if table_bytes <= budget {
            return 0.0;
        }
        let fault_rate = 1.0 - budget as f64 / table_bytes as f64;
        touches * fault_rate * secs(self.m.swap_fault)
    }
}

/// Estimates one join algorithm's cost at the given selectivities
/// (fractions in `0..=1`).
pub fn estimate_join(
    algo: JoinAlgo,
    profile: &PhysicalProfile,
    model: &CostModel,
    parent_sel: f64,
    child_sel: f64,
) -> CostEstimate {
    estimate_join_breakdown(algo, profile, model, parent_sel, child_sel).estimate
}

/// Estimates one join algorithm's cost, decomposed into the operator
/// pipeline the executor actually runs (see `exec::join_pipeline`).
///
/// The aggregate `estimate` folds the per-operator terms in the exact
/// order the pre-decomposition estimator used, so planner decisions
/// and printed figures are unchanged to the last bit.
pub fn estimate_join_breakdown(
    algo: JoinAlgo,
    profile: &PhysicalProfile,
    model: &CostModel,
    parent_sel: f64,
    child_sel: f64,
) -> EstimateBreakdown {
    let p = profile;
    let e = Env {
        m: model,
        cache: p.client_cache_pages as f64,
    };
    let sp = parent_sel * p.parents_total as f64; // selected parents
    let sc = child_sel * p.children_total as f64; // selected children
    let results = p.result_cardinality(parent_sel, child_sel);
    // PHJ tables match the paper's Figure 10 approximation; CHJ
    // directories are demand-allocated, so size by the *distinct*
    // parents the selected children touch.
    let table_bytes = match algo {
        JoinAlgo::Chj => {
            let distinct_parents =
                p.parents_total as f64 * (1.0 - (1.0 - child_sel).powf(p.mean_fanout));
            (60.0 * distinct_parents + 8.0 * sc) as u64
        }
        _ => hash_table_bytes(algo, p.parents_total, sp as u64, sc as u64),
    };

    // Index leaf I/O for the selected ranges (sequential leaf chains).
    let parent_leaves = e.seq_read(index_leaf_pages(sp));
    let child_leaves = e.seq_read(index_leaf_pages(sc));

    let (secs_total, ops) = match algo {
        JoinAlgo::Nl => {
            // Parents via their index (NL cannot sort: navigation).
            let io_parents = if p.parent_index_clustered {
                e.seq_read(parent_sel * p.parent_scan_pages as f64)
            } else {
                e.rand_read(random_reads(sp, p.parent_scan_pages as f64, e.cache))
            };
            let child_accesses = sp * p.mean_fanout;
            // Children via the set attribute: adjacent under
            // composition (covered by the parent pass), random I/O
            // otherwise, plus overflow rid-run pages.
            let io_children = if p.composition {
                0.0
            } else {
                e.rand_read(random_reads(
                    child_accesses,
                    p.child_scan_pages as f64,
                    e.cache,
                )) + e.rand_read(sp * p.overflow_pages_per_parent)
            };
            // Navigation CPU: handles on both sides, the set attribute,
            // the child key test. Kept apart from the result build so
            // the `SetNav` / `Emit` rows split the same way the
            // executor's trace does; `cpu` folds them in the historical
            // order.
            let nav_cpu = e.handle_scan(sp + child_accesses)
                + e.attr(sp) // set attribute
                + child_accesses * secs(e.m.attr_get + e.m.compare);
            let emit_cpu = e.result_build(results);
            let cpu = nav_cpu + emit_cpu;
            let ops = vec![
                OpEstimate {
                    kind: OpKind::IndexRangeScan,
                    label: "parents".into(),
                    secs: parent_leaves + io_parents,
                },
                OpEstimate {
                    kind: OpKind::SetNav,
                    label: "children".into(),
                    secs: io_children + nav_cpu,
                },
                OpEstimate {
                    kind: OpKind::Emit,
                    label: "result".into(),
                    secs: emit_cpu,
                },
            ];
            (parent_leaves + io_parents + io_children + cpu, ops)
        }
        JoinAlgo::Nojoin => {
            let io_children = e.index_driven_scan(
                p.child_index_clustered,
                child_sel,
                sc,
                p.child_scan_pages as f64,
            );
            // Parents: adjacent under composition (the sorted child
            // pass brings them in); random otherwise.
            let io_parents = if p.composition {
                0.0
            } else {
                e.rand_read(random_reads(sc, p.parent_scan_pages as f64, e.cache))
            };
            let distinct_parents = (p.parents_total as f64).min(sc);
            let cpu = e.sort(sc)
                + e.handle_scan(sc + distinct_parents)
                + (sc - distinct_parents).max(0.0)
                    * secs(e.m.handle_touch + e.m.handle_unref)
                + e.attr(sc) // back reference
                + sc * secs(e.m.attr_get + e.m.compare) // parent key test
                + e.result_build(results);
            let ops = vec![
                OpEstimate {
                    kind: OpKind::IndexRangeScan,
                    label: "children".into(),
                    // Leaf chain + rid sort + the data pass + child
                    // handles, as the trace attributes them.
                    secs: child_leaves + e.sort(sc) + io_children + e.handle_scan(sc),
                },
                OpEstimate {
                    kind: OpKind::BackRefNav,
                    label: "parents".into(),
                    secs: io_parents
                        + e.handle_scan(distinct_parents)
                        + (sc - distinct_parents).max(0.0)
                            * secs(e.m.handle_touch + e.m.handle_unref)
                        + e.attr(sc)
                        + sc * secs(e.m.attr_get + e.m.compare),
                },
                OpEstimate {
                    kind: OpKind::Emit,
                    label: "result".into(),
                    secs: e.result_build(results),
                },
            ];
            (child_leaves + io_children + io_parents + cpu, ops)
        }
        JoinAlgo::Phj | JoinAlgo::Chj => {
            let io_parent_scan = e.index_driven_scan(
                p.parent_index_clustered,
                parent_sel,
                sp,
                p.parent_scan_pages as f64,
            );
            let io_child_scan = e.index_driven_scan(
                p.child_index_clustered,
                child_sel,
                sc,
                p.child_scan_pages as f64,
            );
            let io = io_parent_scan + io_child_scan;
            let (inserts, probes) = if algo == JoinAlgo::Phj {
                (sp, sc)
            } else {
                (sc, sp)
            };
            let cpu = e.sort(sp)
                + e.sort(sc)
                + e.handle_scan(sp + sc)
                + e.attr(sp + 2.0 * sc) // projections + back references
                + inserts * secs(e.m.hash_insert)
                + probes * secs(e.m.hash_probe)
                + e.result_build(results);
            // Per-side rows. The parent side reads one projected
            // attribute; the child side reads its back reference and
            // projection (2 per object). Swap faults follow the table
            // touches: inserts on the build row, probes on the probe
            // row.
            let parent_scan_row = parent_leaves + e.sort(sp) + io_parent_scan;
            let child_scan_row = child_leaves + e.sort(sc) + io_child_scan;
            let parent_cpu = e.handle_scan(sp) + e.attr(sp);
            let child_cpu = e.handle_scan(sc) + e.attr(2.0 * sc);
            let ops = if algo == JoinAlgo::Phj {
                vec![
                    OpEstimate {
                        kind: OpKind::IndexRangeScan,
                        label: "parents".into(),
                        secs: parent_scan_row,
                    },
                    OpEstimate {
                        kind: OpKind::HashBuild,
                        label: "parents".into(),
                        secs: parent_cpu
                            + inserts * secs(e.m.hash_insert)
                            + e.swap_cost(table_bytes, inserts),
                    },
                    OpEstimate {
                        kind: OpKind::IndexRangeScan,
                        label: "children".into(),
                        secs: child_scan_row,
                    },
                    OpEstimate {
                        kind: OpKind::HashProbe,
                        label: "children".into(),
                        secs: child_cpu
                            + probes * secs(e.m.hash_probe)
                            + e.swap_cost(table_bytes, probes),
                    },
                    OpEstimate {
                        kind: OpKind::Emit,
                        label: "result".into(),
                        secs: e.result_build(results),
                    },
                ]
            } else {
                vec![
                    OpEstimate {
                        kind: OpKind::IndexRangeScan,
                        label: "children".into(),
                        secs: child_scan_row,
                    },
                    OpEstimate {
                        kind: OpKind::HashBuild,
                        label: "children".into(),
                        secs: child_cpu
                            + inserts * secs(e.m.hash_insert)
                            + e.swap_cost(table_bytes, inserts),
                    },
                    OpEstimate {
                        kind: OpKind::IndexRangeScan,
                        label: "parents".into(),
                        secs: parent_scan_row,
                    },
                    OpEstimate {
                        kind: OpKind::HashProbe,
                        label: "parents".into(),
                        secs: parent_cpu
                            + probes * secs(e.m.hash_probe)
                            + e.swap_cost(table_bytes, probes),
                    },
                    OpEstimate {
                        kind: OpKind::Emit,
                        label: "result".into(),
                        secs: e.result_build(results),
                    },
                ]
            };
            (
                parent_leaves + child_leaves + io + cpu + e.swap_cost(table_bytes, sp + sc),
                ops,
            )
        }
    };
    EstimateBreakdown {
        ops,
        estimate: CostEstimate {
            secs: secs_total,
            table_bytes,
        },
    }
}

/// Selection access paths for [`estimate_selection`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SelectPath {
    /// Full sequential scan.
    SeqScan,
    /// Unsorted (key-order) index scan.
    IndexScan,
    /// Rid-sorted index scan (Figure 8 right).
    SortedIndexScan,
}

/// Estimates a selection over `total` objects in `pages` pages with an
/// unclustered index, at selectivity `sel` (fraction).
pub fn estimate_selection(
    path: SelectPath,
    total: u64,
    pages: u64,
    cache_pages: u64,
    model: &CostModel,
    sel: f64,
) -> f64 {
    estimate_selection_breakdown(path, total, pages, cache_pages, model, sel)
        .estimate
        .secs
}

/// Estimates a selection, decomposed into the access path's operator
/// pipeline. The aggregate folds exactly as [`estimate_selection`]
/// always did; `table_bytes` is always 0 for selections.
pub fn estimate_selection_breakdown(
    path: SelectPath,
    total: u64,
    pages: u64,
    cache_pages: u64,
    model: &CostModel,
    sel: f64,
) -> EstimateBreakdown {
    let e = Env {
        m: model,
        cache: cache_pages as f64,
    };
    let n = total as f64;
    let selected = sel * n;
    let result = selected * secs(model.result_append_persistent + model.attr_get);
    let emit_row = OpEstimate {
        kind: OpKind::Emit,
        label: "result".into(),
        secs: result,
    };
    let (secs_total, ops) = match path {
        SelectPath::SeqScan => {
            let scan = e.seq_read(pages as f64)
                + e.handle_scan(n)
                + n * secs(model.compare + model.attr_get);
            (
                scan + result,
                vec![
                    OpEstimate {
                        kind: OpKind::SeqScan,
                        label: "collection".into(),
                        secs: scan,
                    },
                    emit_row,
                ],
            )
        }
        SelectPath::IndexScan => {
            let scan = e.seq_read(index_leaf_pages(selected))
                + e.rand_read(random_reads(selected, pages as f64, e.cache))
                + e.handle_scan(selected);
            (
                scan + result,
                vec![
                    OpEstimate {
                        kind: OpKind::IndexRangeScan,
                        label: "collection".into(),
                        secs: scan,
                    },
                    emit_row,
                ],
            )
        }
        SelectPath::SortedIndexScan => {
            // Historical fold: leaves + data pass + sort + handles +
            // result. The rows regroup the sort onto its own `Sort`
            // node, matching the executor's trace.
            let scan = e.seq_read(index_leaf_pages(selected))
                + e.index_driven_scan(false, sel, selected, pages as f64)
                + e.sort(selected)
                + e.handle_scan(selected);
            (
                scan + result,
                vec![
                    OpEstimate {
                        kind: OpKind::IndexRangeScan,
                        label: "collection".into(),
                        secs: e.seq_read(index_leaf_pages(selected))
                            + e.index_driven_scan(false, sel, selected, pages as f64)
                            + e.handle_scan(selected),
                    },
                    OpEstimate {
                        kind: OpKind::Sort,
                        label: "rids".into(),
                        secs: e.sort(selected),
                    },
                    emit_row,
                ],
            )
        }
    };
    EstimateBreakdown {
        ops,
        estimate: CostEstimate {
            secs: secs_total,
            table_bytes: 0,
        },
    }
}

/// Fraction of a collection an `attr cmp key` predicate keeps, under
/// the uniform `0..count` integer-key assumption the paper's Derby
/// databases follow (`upin`/`mrn` are creation ranks).
pub fn uniform_selectivity(cmp: CmpOp, key: i64, count: u64) -> f64 {
    if count == 0 {
        return 0.0;
    }
    let (lo, hi) = cmp.index_range(key, 0, count as i64 - 1);
    let kept = (hi - lo + 1).clamp(0, count as i64);
    kept as f64 / count as f64
}

/// Physical facts about one chain step's extent.
#[derive(Clone, Copy, Debug)]
pub struct ChainStepFacts {
    /// Extent cardinality.
    pub total: u64,
    /// Pages a full pass over the extent touches.
    pub scan_pages: u64,
    /// Selectivity of the primary (first) predicate; 1.0 with none.
    pub primary_selectivity: f64,
    /// Combined selectivity of all the step's predicates.
    pub selectivity: f64,
    /// Is there an index on the primary predicate's attribute?
    pub has_index: bool,
    /// Is that index clustered?
    pub index_clustered: bool,
}

/// Everything the chain estimator and planner need about a
/// [`ChainSpec`]'s physical world — derived mechanically from the
/// catalog, like [`PhysicalProfile`].
#[derive(Clone, Debug)]
pub struct ChainFacts {
    /// Per-step facts, in chain order.
    pub steps: Vec<ChainStepFacts>,
    /// Client cache capacity in pages.
    pub client_cache_pages: u64,
}

impl ChainFacts {
    /// Derives the facts from the catalog. `index_info(class, attr)`
    /// reports `Some(clustered)` when an index on that attribute
    /// exists (the engine answers from its registry; the measurement
    /// harness from the workload's fixed index set).
    pub fn derive(
        store: &ObjectStore,
        spec: &ChainSpec,
        index_info: impl Fn(ClassId, AttrId) -> Option<bool>,
    ) -> Self {
        let steps = spec
            .steps
            .iter()
            .map(|s| {
                let info = store.collection(&s.collection);
                let total = info.run.count;
                let selectivity = s
                    .preds
                    .iter()
                    .map(|p| uniform_selectivity(p.cmp, p.key, total))
                    .product();
                let primary_selectivity = s
                    .preds
                    .first()
                    .map(|p| uniform_selectivity(p.cmp, p.key, total))
                    .unwrap_or(1.0);
                let idx = s.preds.first().and_then(|p| index_info(info.class, p.attr));
                ChainStepFacts {
                    total,
                    scan_pages: info.data_pages,
                    primary_selectivity,
                    selectivity,
                    has_index: idx.is_some(),
                    index_clustered: idx.unwrap_or(false),
                }
            })
            .collect();
        Self {
            steps,
            client_cache_pages: store.stack().config().client_pages as u64,
        }
    }

    /// Per-step index availability, in the shape
    /// [`enumerate_plans`](crate::plan::enumerate_plans) takes.
    pub fn has_index(&self) -> Vec<bool> {
        self.steps.iter().map(|s| s.has_index).collect()
    }
}

/// One step-extent scan's estimated pieces.
struct StepScan {
    /// The gather op (index leaves + rid sort; ~0 for a rid-run walk).
    gather: f64,
    /// The fetch-and-filter pass (data I/O, handles, predicate CPU).
    fetch: f64,
    /// Rows surviving all the step's predicates.
    out_rows: f64,
}

fn scan_step(e: &Env<'_>, f: &ChainStepFacts, access: RootAccess, npreds: usize) -> StepScan {
    let total = f.total as f64;
    let pages = f.scan_pages as f64;
    match access {
        RootAccess::Index => {
            let fetched = f.primary_selectivity * total;
            let residual = npreds.saturating_sub(1) as f64;
            StepScan {
                gather: e.seq_read(index_leaf_pages(fetched)) + e.sort(fetched),
                fetch: e.index_driven_scan(
                    f.index_clustered,
                    f.primary_selectivity,
                    fetched,
                    pages,
                ) + e.handle_scan(fetched)
                    + fetched * residual * secs(e.m.attr_get + e.m.compare),
                out_rows: f.selectivity * total,
            }
        }
        RootAccess::Scan => StepScan {
            gather: 0.0,
            fetch: e.seq_read(pages)
                + e.handle_scan(total)
                + total * npreds as f64 * secs(e.m.attr_get + e.m.compare),
            out_rows: f.selectivity * total,
        },
    }
}

/// Estimates one [`LogicalPlan`]'s cost over a chain (aggregate only).
pub fn estimate_chain(
    spec: &ChainSpec,
    plan: &LogicalPlan,
    facts: &ChainFacts,
    model: &CostModel,
) -> CostEstimate {
    estimate_chain_breakdown(spec, plan, facts, model).estimate
}

/// Estimates one [`LogicalPlan`]'s cost, decomposed into exactly the
/// `(OpKind, label)` rows [`chain_pipeline`](crate::plan::chain_pipeline)
/// says the executor emits. The formulas mirror the chain executor's
/// mechanics stage by stage — materialized frontier re-fetches
/// included — and are adequate for *ordering* plans, the paper's bar.
pub fn estimate_chain_breakdown(
    spec: &ChainSpec,
    plan: &LogicalPlan,
    facts: &ChainFacts,
    model: &CostModel,
) -> EstimateBreakdown {
    let e = Env {
        m: model,
        cache: facts.client_cache_pages as f64,
    };
    let proj_slots =
        |step: usize| spec.projection.iter().filter(|&&(s, _)| s == step).count() as f64;
    let mut ops: Vec<OpEstimate> = Vec::new();
    let mut table_bytes_max = 0u64;

    // Root: gather + fetch merge into one access-op row.
    let root = plan.root;
    let rf = &facts.steps[root];
    let root_scan = scan_step(&e, rf, plan.root_access, spec.steps[root].preds.len());
    let root_kind = match plan.root_access {
        RootAccess::Index => OpKind::IndexRangeScan,
        RootAccess::Scan => OpKind::SeqScan,
    };
    ops.push(OpEstimate {
        kind: root_kind,
        label: spec.steps[root].label(),
        secs: root_scan.gather + root_scan.fetch + e.attr(root_scan.out_rows * proj_slots(root)),
    });
    let mut rows = root_scan.out_rows;

    for stage in &plan.stages {
        let (t, from) = (stage.step, stage.from);
        let edge = spec.edge_between(from, t);
        let child_ward = edge.child == t;
        let tf = &facts.steps[t];
        let ff = &facts.steps[from];
        let npreds = spec.steps[t].preds.len();
        let pred_cpu = |count: f64| count * npreds as f64 * secs(e.m.attr_get + e.m.compare);
        let fanout =
            facts.steps[edge.child].total as f64 / facts.steps[edge.parent].total.max(1) as f64;
        // Re-fetching the bound frontier object (nav and hash-probe
        // stages pay this per row).
        let refetch = |n: f64| {
            e.rand_read(random_reads(n, ff.scan_pages as f64, e.cache))
                + e.handle_scan(n)
                + e.attr(n)
        };
        match stage.algo {
            StepAlgo::Nav if child_ward => {
                let accesses = rows * fanout;
                let out_rows = accesses * tf.selectivity;
                let secs_nav = refetch(rows)
                    + e.rand_read(random_reads(accesses, tf.scan_pages as f64, e.cache))
                    + e.handle_scan(accesses)
                    + pred_cpu(accesses)
                    + e.attr(out_rows * proj_slots(t));
                ops.push(OpEstimate {
                    kind: OpKind::SetNav,
                    label: spec.steps[t].label(),
                    secs: secs_nav,
                });
                rows = out_rows;
            }
            StepAlgo::Nav => {
                let out_rows = rows * tf.selectivity;
                let secs_nav = refetch(rows)
                    + e.rand_read(random_reads(rows, tf.scan_pages as f64, e.cache))
                    + e.handle_scan(rows)
                    + pred_cpu(rows)
                    + e.attr(out_rows * proj_slots(t));
                ops.push(OpEstimate {
                    kind: OpKind::BackRefNav,
                    label: spec.steps[t].label(),
                    secs: secs_nav,
                });
                rows = out_rows;
            }
            StepAlgo::Hash if child_ward => {
                // Build over the bound rows, scan + probe the children.
                let table_bytes = (rows as u64).max(1) * CHAIN_ENTRY_BYTES;
                table_bytes_max = table_bytes_max.max(table_bytes);
                ops.push(OpEstimate {
                    kind: OpKind::HashBuild,
                    label: spec.steps[from].label(),
                    secs: rows * secs(e.m.hash_insert) + e.swap_cost(table_bytes, rows),
                });
                let scan = scan_step(&e, tf, stage.access, npreds);
                let scan_kind = match stage.access {
                    RootAccess::Index => OpKind::IndexRangeScan,
                    RootAccess::Scan => OpKind::SeqScan,
                };
                ops.push(OpEstimate {
                    kind: scan_kind,
                    label: spec.steps[t].label(),
                    secs: scan.gather,
                });
                let out_rows = rows * fanout * tf.selectivity;
                ops.push(OpEstimate {
                    kind: OpKind::HashProbe,
                    label: spec.steps[t].label(),
                    secs: scan.fetch
                        + e.attr(scan.out_rows) // back references
                        + scan.out_rows * secs(e.m.hash_probe)
                        + e.swap_cost(table_bytes, scan.out_rows)
                        + e.attr(out_rows * proj_slots(t)),
                });
                rows = out_rows;
            }
            StepAlgo::Hash => {
                // Scan + build the parents, probe with the bound rows.
                let scan = scan_step(&e, tf, stage.access, npreds);
                let inserts = scan.out_rows;
                let table_bytes = (inserts as u64).max(1) * CHAIN_ENTRY_BYTES;
                table_bytes_max = table_bytes_max.max(table_bytes);
                let scan_kind = match stage.access {
                    RootAccess::Index => OpKind::IndexRangeScan,
                    RootAccess::Scan => OpKind::SeqScan,
                };
                ops.push(OpEstimate {
                    kind: scan_kind,
                    label: spec.steps[t].label(),
                    secs: scan.gather,
                });
                ops.push(OpEstimate {
                    kind: OpKind::HashBuild,
                    label: spec.steps[t].label(),
                    secs: scan.fetch
                        + e.attr(inserts * proj_slots(t))
                        + inserts * secs(e.m.hash_insert)
                        + e.swap_cost(table_bytes, inserts),
                });
                let out_rows = rows * tf.selectivity;
                ops.push(OpEstimate {
                    kind: OpKind::HashProbe,
                    label: spec.steps[from].label(),
                    secs: refetch(rows)
                        + rows * secs(e.m.hash_probe)
                        + e.swap_cost(table_bytes, rows),
                });
                rows = out_rows;
            }
        }
    }

    let append = match spec.result_mode {
        ResultMode::Persistent => model.result_append_persistent,
        ResultMode::Transient => model.result_append_transient,
    };
    ops.push(OpEstimate {
        kind: OpKind::Emit,
        label: "result".into(),
        secs: rows * secs(append),
    });
    let total = ops.iter().map(|o| o.secs).sum();
    EstimateBreakdown {
        ops,
        estimate: CostEstimate {
            secs: total,
            table_bytes: table_bytes_max,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db1_class() -> PhysicalProfile {
        PhysicalProfile {
            parents_total: 2_000,
            children_total: 2_000_000,
            parent_scan_pages: 70,
            child_scan_pages: 33_000,
            parent_index_clustered: true,
            child_index_clustered: true,
            composition: false,
            mean_fanout: 1_000.0,
            overflow_pages_per_parent: 2.0,
            client_cache_pages: 8_192,
        }
    }

    fn db2_class() -> PhysicalProfile {
        PhysicalProfile {
            parents_total: 1_000_000,
            children_total: 3_000_000,
            parent_scan_pages: 33_000,
            child_scan_pages: 49_000,
            parent_index_clustered: true,
            child_index_clustered: true,
            composition: false,
            mean_fanout: 3.0,
            overflow_pages_per_parent: 0.0,
            client_cache_pages: 8_192,
        }
    }

    /// Composition: shared file, mrn index no longer clustered.
    fn comp(mut p: PhysicalProfile) -> PhysicalProfile {
        let shared = p.parent_scan_pages + p.child_scan_pages;
        p.parent_scan_pages = shared;
        p.child_scan_pages = shared;
        p.composition = true;
        p.child_index_clustered = false;
        p.overflow_pages_per_parent = 0.0;
        p
    }

    fn est(algo: JoinAlgo, p: &PhysicalProfile, sp: f64, sc: f64) -> f64 {
        estimate_join(algo, p, &CostModel::sparc20(), sp, sc).secs
    }

    #[test]
    fn class_1to1000_hash_wins_nl_dreadful() {
        // Paper Figure 11 at (pat 10, prov 90): PHJ/CHJ best, NL ~80x.
        let p = db1_class();
        let phj = est(JoinAlgo::Phj, &p, 0.9, 0.1);
        let nl = est(JoinAlgo::Nl, &p, 0.9, 0.1);
        let nojoin = est(JoinAlgo::Nojoin, &p, 0.9, 0.1);
        assert!(nojoin < 2.0 * phj, "NOJOIN stays comparable (paper: 1.24x)");
        assert!(nl > 20.0 * phj, "NL {nl:.0}s vs PHJ {phj:.0}s");
    }

    #[test]
    fn class_1to3_nojoin_dreadful_until_swap() {
        let p = db2_class();
        // (10, 10): hash joins beat navigation by a lot (Figure 12).
        assert!(est(JoinAlgo::Phj, &p, 0.1, 0.1) * 3.0 < est(JoinAlgo::Nojoin, &p, 0.1, 0.1));
        // (90, 90): tables outgrow memory; NOJOIN wins (Figure 12).
        let nojoin = est(JoinAlgo::Nojoin, &p, 0.9, 0.9);
        let phj = est(JoinAlgo::Phj, &p, 0.9, 0.9);
        let chj = est(JoinAlgo::Chj, &p, 0.9, 0.9);
        assert!(nojoin < phj, "NOJOIN {nojoin:.0}s vs PHJ {phj:.0}s");
        assert!(phj < chj, "PHJ swaps less than CHJ");
    }

    #[test]
    fn composition_makes_navigation_win() {
        // Paper Figures 13/14: NL wins every cell except DB2 (pat 10,
        // prov 90), where NOJOIN wins.
        for (sp, sc) in [(0.1, 0.1), (0.1, 0.9), (0.9, 0.9)] {
            for p in [comp(db1_class()), comp(db2_class())] {
                let nl = est(JoinAlgo::Nl, &p, sp, sc);
                let phj = est(JoinAlgo::Phj, &p, sp, sc);
                assert!(
                    nl < phj,
                    "composition ({sp},{sc}): NL {nl:.0}s must beat PHJ {phj:.0}s"
                );
            }
        }
        // The Figure 14 row-2 exception: 90% of providers, 10% of
        // patients — walking 90% of the file to navigate loses to the
        // child-side scan.
        let p = comp(db2_class());
        let nojoin = est(JoinAlgo::Nojoin, &p, 0.9, 0.1);
        let nl = est(JoinAlgo::Nl, &p, 0.9, 0.1);
        assert!(nojoin < nl, "NOJOIN {nojoin:.0}s vs NL {nl:.0}s");
    }

    #[test]
    fn result_cardinality_is_independent() {
        let p = db1_class();
        assert!((p.result_cardinality(0.1, 0.9) - 180_000.0).abs() < 1.0);
    }

    #[test]
    fn selection_sorted_index_beats_both_at_all_selectivities() {
        // Paper Figure 7.
        let m = CostModel::sparc20();
        for sel in [0.1, 0.3, 0.6, 0.9] {
            let sorted = estimate_selection(
                SelectPath::SortedIndexScan,
                2_000_000,
                33_000,
                8_192,
                &m,
                sel,
            );
            let seq = estimate_selection(SelectPath::SeqScan, 2_000_000, 33_000, 8_192, &m, sel);
            assert!(
                sorted < seq,
                "sel {sel}: sorted {sorted:.0}s vs scan {seq:.0}s"
            );
        }
        // And the naive index scan loses to the full scan at high
        // selectivity (Figure 6's threshold).
        let idx90 = estimate_selection(SelectPath::IndexScan, 2_000_000, 33_000, 8_192, &m, 0.9);
        let seq90 = estimate_selection(SelectPath::SeqScan, 2_000_000, 33_000, 8_192, &m, 0.9);
        assert!(idx90 > seq90);
        let idx001 = estimate_selection(SelectPath::IndexScan, 2_000_000, 33_000, 8_192, &m, 0.001);
        let seq001 = estimate_selection(SelectPath::SeqScan, 2_000_000, 33_000, 8_192, &m, 0.001);
        assert!(idx001 < seq001);
    }

    #[test]
    fn join_breakdown_rows_sum_to_the_estimate() {
        let m = CostModel::sparc20();
        for p in [
            db1_class(),
            db2_class(),
            comp(db1_class()),
            comp(db2_class()),
        ] {
            for algo in [JoinAlgo::Nl, JoinAlgo::Nojoin, JoinAlgo::Phj, JoinAlgo::Chj] {
                for (sp, sc) in [(0.1, 0.1), (0.1, 0.9), (0.9, 0.1), (0.9, 0.9)] {
                    let b = estimate_join_breakdown(algo, &p, &m, sp, sc);
                    // The aggregate IS the historical formula.
                    assert_eq!(b.estimate, estimate_join(algo, &p, &m, sp, sc));
                    // The rows re-express it up to fp re-association.
                    let total = b.ops_total();
                    assert!(
                        (total - b.estimate.secs).abs() <= 1e-9 * b.estimate.secs.max(1.0),
                        "{algo:?} ({sp},{sc}): rows {total} vs estimate {}",
                        b.estimate.secs
                    );
                }
            }
        }
    }

    #[test]
    fn join_breakdown_speaks_the_executor_vocabulary() {
        use crate::exec::join_pipeline;
        let m = CostModel::sparc20();
        let p = db1_class();
        let spec = crate::spec::TreeJoinSpec {
            parents: "parents".into(),
            children: "children".into(),
            parent_key: 0,
            parent_set: 0,
            child_key: 0,
            child_parent: 0,
            parent_project: 0,
            child_project: 0,
            parent_key_limit: 0,
            child_key_limit: 0,
            result_mode: crate::spec::ResultMode::Transient,
        };
        for algo in [JoinAlgo::Nl, JoinAlgo::Nojoin, JoinAlgo::Phj, JoinAlgo::Chj] {
            let b = estimate_join_breakdown(algo, &p, &m, 0.5, 0.5);
            let want = join_pipeline(algo, &spec);
            let got: Vec<(OpKind, String)> = b
                .ops
                .iter()
                .map(|o| (o.kind, o.label.to_string()))
                .collect();
            assert_eq!(got, want, "{algo:?} rows must mirror the executor pipeline");
        }
    }

    #[test]
    fn selection_breakdown_rows_sum_to_the_estimate() {
        let m = CostModel::sparc20();
        for path in [
            SelectPath::SeqScan,
            SelectPath::IndexScan,
            SelectPath::SortedIndexScan,
        ] {
            for sel in [0.001, 0.1, 0.9] {
                let b = estimate_selection_breakdown(path, 2_000_000, 33_000, 8_192, &m, sel);
                let agg = estimate_selection(path, 2_000_000, 33_000, 8_192, &m, sel);
                assert_eq!(b.estimate.secs, agg);
                let total = b.ops_total();
                assert!((total - agg).abs() <= 1e-9 * agg.max(1.0));
                assert_eq!(b.ops.last().unwrap().kind, OpKind::Emit);
            }
        }
    }

    #[test]
    fn random_org_slower_than_class_same_winner() {
        // Paper §5.2: storing objects randomly multiplies time by
        // 1.5-2x but favours the same algorithms.
        let class = db1_class();
        let mut random = db1_class();
        let shared = random.parent_scan_pages + random.child_scan_pages;
        random.parent_scan_pages = shared;
        random.child_scan_pages = shared;
        random.parent_index_clustered = false;
        random.child_index_clustered = false;
        let c = est(JoinAlgo::Phj, &class, 0.1, 0.1);
        let r = est(JoinAlgo::Phj, &random, 0.1, 0.1);
        assert!(r > 1.3 * c, "random {r:.0}s vs class {c:.0}s");
        assert!(r < 6.0 * c);
    }
}
