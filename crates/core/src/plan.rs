//! Logical plan IR for N-way binding chains.
//!
//! The paper's OQL fragment binds a chain of range variables — each
//! after the first drawn from a set attribute (`y in x.clients`) or an
//! object reference (`z in y.primary_care_provider`) of the previous
//! one. [`ChainSpec`] is the compiled, name-resolved form of such a
//! query: one [`ChainStep`] per binding, one [`ChainEdge`] per
//! consecutive pair, normalized so the edge always knows which side is
//! the 1 (parent) and which the N (child) regardless of which way the
//! binding traversed it.
//!
//! A [`LogicalPlan`] is one executable strategy over a chain: a root
//! step with its access path, then one [`JoinStage`] per remaining
//! step. Because the join graph is a path, a plan's bound set is always
//! a contiguous interval of steps, so every valid order starts
//! somewhere and repeatedly extends the interval left or right —
//! [`enumerate_orders`] lists exactly those orders, and
//! [`enumerate_plans`] crosses them with the legal algorithm and access
//! choices per stage.
//!
//! [`chain_pipeline`] is the shared vocabulary oracle: the exact
//! `(OpKind, label)` rows a plan's execution emits, used by the
//! executor, the estimator and the tests that pin them together.

use crate::exec::OpKind;
use crate::spec::{AttrPredicate, ResultMode};
use tq_objstore::{AttrId, ClassId};

/// One range binding: a variable over a collection, with the
/// conjunctive predicates that mention it.
#[derive(Clone, Debug, PartialEq)]
pub struct ChainStep {
    /// The range variable (`x`).
    pub var: String,
    /// The named collection the variable's class populates.
    pub collection: String,
    /// Resolved class.
    pub class: ClassId,
    /// Predicates on this step, in query order. The first one is the
    /// "primary" predicate — the one an index range scan can serve;
    /// the rest are residuals.
    pub preds: Vec<AttrPredicate>,
}

impl ChainStep {
    /// Trace label for this step: `var:Collection` (distinct even when
    /// the same collection is bound twice).
    pub fn label(&self) -> String {
        format!("{}:{}", self.var, self.collection)
    }
}

/// The 1-N relationship between steps `i` and `i+1`, normalized to
/// parent/child roles. At least one of the attributes is present (the
/// one the binding traversed); the complementary one is filled in when
/// the schema has it, which is what gives the planner freedom to run
/// the join in either direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChainEdge {
    /// Step index of the 1 side.
    pub parent: usize,
    /// Step index of the N side.
    pub child: usize,
    /// Parent's set attribute containing the children, if any.
    pub set_attr: Option<AttrId>,
    /// Child's back reference to its parent, if any.
    pub ref_attr: Option<AttrId>,
}

/// A compiled binding chain: what the query *means*, before any
/// ordering or algorithm decision.
#[derive(Clone, Debug, PartialEq)]
pub struct ChainSpec {
    /// One step per binding, in query order.
    pub steps: Vec<ChainStep>,
    /// `edges[i]` relates steps `i` and `i+1`.
    pub edges: Vec<ChainEdge>,
    /// Projected `(step, attr)` slots, in select-list order. Chain
    /// projections are integer attributes (the collected values).
    pub projection: Vec<(usize, AttrId)>,
    /// How result tuples are appended.
    pub result_mode: ResultMode,
}

impl ChainSpec {
    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True when the chain has no steps (never produced by compile).
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The edge between adjacent steps `a` and `b`.
    pub fn edge_between(&self, a: usize, b: usize) -> &ChainEdge {
        debug_assert!(a.abs_diff(b) == 1);
        &self.edges[a.min(b)]
    }
}

/// How a step's extent is reached when it is scanned (the root, or the
/// scan side of a hash stage).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RootAccess {
    /// Range scan of the index on the step's primary predicate.
    Index,
    /// Full sequential scan, all predicates tested per object.
    Scan,
}

impl RootAccess {
    /// Short label for plan rendering.
    pub fn label(&self) -> &'static str {
        match self {
            RootAccess::Index => "index",
            RootAccess::Scan => "scan",
        }
    }
}

/// Join algorithm for one stage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepAlgo {
    /// Navigate from each bound row: `SetNav` when the new step is the
    /// child side, `BackRefNav` when it is the parent side.
    Nav,
    /// Scan the new step's extent and hash-join it against the bound
    /// rows on the child's back reference.
    Hash,
}

impl StepAlgo {
    /// Short label for plan rendering.
    pub fn label(&self) -> &'static str {
        match self {
            StepAlgo::Nav => "nav",
            StepAlgo::Hash => "hash",
        }
    }
}

/// One join stage: bind `step` by joining it to the already-bound
/// neighbour `from`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JoinStage {
    /// The step this stage binds.
    pub step: usize,
    /// The adjacent, already-bound step it joins through.
    pub from: usize,
    /// Algorithm.
    pub algo: StepAlgo,
    /// How the new step's extent is scanned (hash stages only; Nav
    /// reaches objects through the edge attribute).
    pub access: RootAccess,
}

/// One executable strategy for a [`ChainSpec`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogicalPlan {
    /// The step bound first.
    pub root: usize,
    /// Its access path.
    pub root_access: RootAccess,
    /// The remaining steps, in bind order.
    pub stages: Vec<JoinStage>,
}

impl LogicalPlan {
    /// Step indices in bind order (root first).
    pub fn order(&self) -> Vec<usize> {
        let mut o = Vec::with_capacity(self.stages.len() + 1);
        o.push(self.root);
        o.extend(self.stages.iter().map(|s| s.step));
        o
    }

    /// One-line plan description:
    /// `x:Providers[index] -> SetNav y:Patients -> hash(z:Providers[scan])`.
    pub fn describe(&self, spec: &ChainSpec) -> String {
        let mut out = format!(
            "{}[{}]",
            spec.steps[self.root].label(),
            self.root_access.label()
        );
        for st in &self.stages {
            let label = spec.steps[st.step].label();
            match st.algo {
                StepAlgo::Nav => {
                    let kind = if nav_is_setnav(spec, st) {
                        "SetNav"
                    } else {
                        "BackRefNav"
                    };
                    out.push_str(&format!(" -> {kind} {label}"));
                }
                StepAlgo::Hash => {
                    out.push_str(&format!(" -> hash({label}[{}])", st.access.label()));
                }
            }
        }
        out
    }
}

/// True when stage `st` navigates parent→child through the set
/// attribute (the new step is the edge's child).
pub fn nav_is_setnav(spec: &ChainSpec, st: &JoinStage) -> bool {
    spec.edge_between(st.from, st.step).child == st.step
}

/// The trace rows executing `plan` over `spec` produces, in order —
/// the shared `(OpKind, label)` vocabulary between the executor, the
/// estimator and `explain`.
pub fn chain_pipeline(spec: &ChainSpec, plan: &LogicalPlan) -> Vec<(OpKind, String)> {
    let mut rows = Vec::new();
    let scan_kind = |access: RootAccess| match access {
        RootAccess::Index => OpKind::IndexRangeScan,
        RootAccess::Scan => OpKind::SeqScan,
    };
    rows.push((scan_kind(plan.root_access), spec.steps[plan.root].label()));
    for st in &plan.stages {
        let new = spec.steps[st.step].label();
        let from = spec.steps[st.from].label();
        let child_ward = spec.edge_between(st.from, st.step).child == st.step;
        match st.algo {
            StepAlgo::Nav => {
                let kind = if child_ward {
                    OpKind::SetNav
                } else {
                    OpKind::BackRefNav
                };
                rows.push((kind, new));
            }
            StepAlgo::Hash if child_ward => {
                // Build on the bound (parent) rows, scan and probe the
                // new child extent.
                rows.push((OpKind::HashBuild, from));
                rows.push((scan_kind(st.access), new.clone()));
                rows.push((OpKind::HashProbe, new));
            }
            StepAlgo::Hash => {
                // Scan and build the new parent extent, probe with the
                // bound child rows' back references.
                rows.push((scan_kind(st.access), new.clone()));
                rows.push((OpKind::HashBuild, new));
                rows.push((OpKind::HashProbe, from));
            }
        }
    }
    rows.push((OpKind::Emit, "result".into()));
    rows
}

/// All connected bind orders over an `n`-step path: pick a start, then
/// repeatedly extend the bound interval by one step on either end.
/// Returns each order as a step-index sequence; there are `2^(n-1)`
/// of them.
pub fn enumerate_orders(n: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    for start in 0..n {
        extend_order(&mut vec![start], start, start, n, &mut out);
    }
    out
}

fn extend_order(
    prefix: &mut Vec<usize>,
    lo: usize,
    hi: usize,
    n: usize,
    out: &mut Vec<Vec<usize>>,
) {
    if prefix.len() == n {
        out.push(prefix.clone());
        return;
    }
    if lo > 0 {
        prefix.push(lo - 1);
        extend_order(prefix, lo - 1, hi, n, out);
        prefix.pop();
    }
    if hi + 1 < n {
        prefix.push(hi + 1);
        extend_order(prefix, lo, hi + 1, n, out);
        prefix.pop();
    }
}

/// The legal `(algo, access)` choices for binding `step` from its
/// bound neighbour `from`: navigation needs the edge attribute in the
/// travel direction, hashing always needs the child's back reference,
/// and an index access needs an index on the step's primary predicate.
pub fn stage_options(
    spec: &ChainSpec,
    has_index: &[bool],
    from: usize,
    step: usize,
) -> Vec<(StepAlgo, RootAccess)> {
    let edge = spec.edge_between(from, step);
    let child_ward = edge.child == step;
    let mut opts = Vec::new();
    let nav_ok = if child_ward {
        edge.set_attr.is_some()
    } else {
        edge.ref_attr.is_some()
    };
    if nav_ok {
        // Access is meaningless for Nav; pin it so plan equality works.
        opts.push((StepAlgo::Nav, RootAccess::Scan));
    }
    if edge.ref_attr.is_some() {
        if has_index[step] && !spec.steps[step].preds.is_empty() {
            opts.push((StepAlgo::Hash, RootAccess::Index));
        }
        opts.push((StepAlgo::Hash, RootAccess::Scan));
    }
    opts
}

/// Root access choices for `step`.
pub fn root_options(spec: &ChainSpec, has_index: &[bool], step: usize) -> Vec<RootAccess> {
    let mut opts = Vec::new();
    if has_index[step] && !spec.steps[step].preds.is_empty() {
        opts.push(RootAccess::Index);
    }
    opts.push(RootAccess::Scan);
    opts
}

/// Every valid [`LogicalPlan`] for `spec`, given which steps have an
/// index on their primary predicate. Deterministic order (orders, then
/// root access, then per-stage choices, depth first).
pub fn enumerate_plans(spec: &ChainSpec, has_index: &[bool]) -> Vec<LogicalPlan> {
    let n = spec.len();
    let mut plans = Vec::new();
    for order in enumerate_orders(n) {
        let root = order[0];
        // Each later step joins through its unique bound neighbour.
        let stage_steps: Vec<(usize, usize)> = order[1..]
            .iter()
            .enumerate()
            .map(|(i, &step)| {
                let bound = &order[..=i];
                let from = if step > 0 && bound.contains(&(step - 1)) {
                    step - 1
                } else {
                    step + 1
                };
                (step, from)
            })
            .collect();
        for root_access in root_options(spec, has_index, root) {
            let mut partial = Vec::new();
            cross_stages(
                spec,
                has_index,
                &stage_steps,
                root,
                root_access,
                &mut partial,
                &mut plans,
            );
        }
    }
    plans
}

fn cross_stages(
    spec: &ChainSpec,
    has_index: &[bool],
    stage_steps: &[(usize, usize)],
    root: usize,
    root_access: RootAccess,
    partial: &mut Vec<JoinStage>,
    plans: &mut Vec<LogicalPlan>,
) {
    if partial.len() == stage_steps.len() {
        plans.push(LogicalPlan {
            root,
            root_access,
            stages: partial.clone(),
        });
        return;
    }
    let (step, from) = stage_steps[partial.len()];
    for (algo, access) in stage_options(spec, has_index, from, step) {
        partial.push(JoinStage {
            step,
            from,
            algo,
            access,
        });
        cross_stages(
            spec,
            has_index,
            stage_steps,
            root,
            root_access,
            partial,
            plans,
        );
        partial.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::CmpOp;

    fn pred(attr: AttrId) -> AttrPredicate {
        AttrPredicate {
            attr,
            cmp: CmpOp::Lt,
            key: 10,
        }
    }

    /// Providers(x) —1:N→ Patients(y) —N:1→ Providers(z).
    fn chain3() -> ChainSpec {
        ChainSpec {
            steps: vec![
                ChainStep {
                    var: "x".into(),
                    collection: "Providers".into(),
                    class: ClassId(0),
                    preds: vec![pred(1)],
                },
                ChainStep {
                    var: "y".into(),
                    collection: "Patients".into(),
                    class: ClassId(1),
                    preds: vec![pred(1)],
                },
                ChainStep {
                    var: "z".into(),
                    collection: "Providers".into(),
                    class: ClassId(0),
                    preds: vec![],
                },
            ],
            edges: vec![
                ChainEdge {
                    parent: 0,
                    child: 1,
                    set_attr: Some(5),
                    ref_attr: Some(6),
                },
                ChainEdge {
                    parent: 2,
                    child: 1,
                    set_attr: Some(5),
                    ref_attr: Some(6),
                },
            ],
            projection: vec![(2, 1)],
            result_mode: ResultMode::Transient,
        }
    }

    #[test]
    fn orders_are_contiguous_intervals() {
        let orders = enumerate_orders(3);
        assert_eq!(orders.len(), 4);
        for o in &orders {
            let mut seen = vec![o[0]];
            for w in o.windows(2) {
                let lo = *seen.iter().min().unwrap();
                let hi = *seen.iter().max().unwrap();
                assert!(
                    w[1] + 1 == lo || w[1] == hi + 1,
                    "{o:?} extends non-contiguously"
                );
                seen.push(w[1]);
            }
        }
        assert_eq!(enumerate_orders(1), vec![vec![0]]);
        assert_eq!(enumerate_orders(4).len(), 8);
    }

    #[test]
    fn pipeline_speaks_the_operator_vocabulary() {
        let spec = chain3();
        let plan = LogicalPlan {
            root: 0,
            root_access: RootAccess::Index,
            stages: vec![
                JoinStage {
                    step: 1,
                    from: 0,
                    algo: StepAlgo::Nav,
                    access: RootAccess::Scan,
                },
                JoinStage {
                    step: 2,
                    from: 1,
                    algo: StepAlgo::Nav,
                    access: RootAccess::Scan,
                },
            ],
        };
        let rows = chain_pipeline(&spec, &plan);
        assert_eq!(
            rows,
            vec![
                (OpKind::IndexRangeScan, "x:Providers".to_string()),
                (OpKind::SetNav, "y:Patients".to_string()),
                (OpKind::BackRefNav, "z:Providers".to_string()),
                (OpKind::Emit, "result".to_string()),
            ]
        );
        let hash_plan = LogicalPlan {
            root: 1,
            root_access: RootAccess::Index,
            stages: vec![
                JoinStage {
                    step: 0,
                    from: 1,
                    algo: StepAlgo::Hash,
                    access: RootAccess::Index,
                },
                JoinStage {
                    step: 2,
                    from: 1,
                    algo: StepAlgo::Hash,
                    access: RootAccess::Scan,
                },
            ],
        };
        let rows = chain_pipeline(&spec, &hash_plan);
        assert_eq!(
            rows,
            vec![
                (OpKind::IndexRangeScan, "y:Patients".to_string()),
                (OpKind::IndexRangeScan, "x:Providers".to_string()),
                (OpKind::HashBuild, "x:Providers".to_string()),
                (OpKind::HashProbe, "y:Patients".to_string()),
                (OpKind::SeqScan, "z:Providers".to_string()),
                (OpKind::HashBuild, "z:Providers".to_string()),
                (OpKind::HashProbe, "y:Patients".to_string()),
                (OpKind::Emit, "result".to_string()),
            ]
        );
    }

    #[test]
    fn enumeration_respects_attribute_availability() {
        let mut spec = chain3();
        // Drop the second edge's back reference: step 2 can only be
        // reached by BackRefNav... no — ref_attr is the back ref ON the
        // child (step 1). Without it, binding step 2 from step 1 can
        // neither hash nor BackRefNav; only SetNav from 2 to 1 works,
        // so every plan must bind 2 before 1 or reach 2... none can:
        // orders are connected, so 2 is bound from 1 or binds 1 from 2.
        spec.edges[1].ref_attr = None;
        let has_index = vec![true, true, false];
        let plans = enumerate_plans(&spec, &has_index);
        assert!(!plans.is_empty());
        for p in &plans {
            // Step 2 must appear before step 1 in the order, or... the
            // only legal transition binding 2 is none (no nav attr from
            // 1→2? SetNav 2→1 binds 1 FROM 2). So 2 is always a root
            // or bound via set_attr nav from... edge(1,2): parent=2,
            // child=1. Binding 2 from 1 = parent-ward: needs ref_attr
            // (hash) — gone — or BackRefNav — needs ref_attr — gone.
            // So 2 is always the root.
            assert_eq!(p.root, 2, "{p:?}");
        }
        // And without preds, step 2 roots as a scan only.
        assert!(plans.iter().all(|p| p.root_access == RootAccess::Scan));
    }

    #[test]
    fn describe_names_steps_and_algorithms() {
        let spec = chain3();
        let plans = enumerate_plans(&spec, &[true, true, false]);
        let all_nav = plans
            .iter()
            .find(|p| p.root == 0 && p.stages.iter().all(|s| s.algo == StepAlgo::Nav))
            .unwrap();
        let d = all_nav.describe(&spec);
        assert!(d.contains("x:Providers"), "{d}");
        assert!(d.contains("SetNav y:Patients"), "{d}");
        assert!(d.contains("BackRefNav z:Providers"), "{d}");
    }
}
