//! Operator-memory swap simulation.
//!
//! The paper (§5.1, Figure 10): "Recall that we have a RAM of 128MB,
//! 36MB of which are used by the O2 caches. ... one can see that
//! swapping will occur in the 1:3 case, when 90% of the providers are
//! selected." When an operator's private hash table exceeds the free
//! RAM, every touch may fault.
//!
//! [`SwapSim`] models the table as `ceil(bytes / 4K)` virtual pages and
//! the free RAM as an LRU resident set. Touches map to a page by key
//! hash. A miss on a page *never touched before* is a demand
//! allocation (free); a miss on a previously resident page is a real
//! fault, charged [`CpuEvent::SwapFault`](tq_pagestore::CpuEvent::SwapFault) (victim write-back + read) by
//! the caller. A table within budget therefore never faults.

use tq_fasthash::FxHashSet;
use tq_pagestore::{LruCache, PAGE_SIZE};

/// Swap simulator for one operator-private memory region.
#[derive(Debug, Clone)]
pub struct SwapSim {
    table_pages: u64,
    resident: LruCache<u64>,
    ever_touched: FxHashSet<u64>,
    faults: u64,
}

impl SwapSim {
    /// A region of `table_bytes` with `budget_bytes` of real memory.
    pub fn new(table_bytes: u64, budget_bytes: u64) -> Self {
        let table_pages = table_bytes.div_ceil(PAGE_SIZE as u64).max(1);
        let budget_pages = (budget_bytes / PAGE_SIZE as u64).max(1) as usize;
        Self {
            table_pages,
            resident: LruCache::new(budget_pages),
            ever_touched: FxHashSet::default(),
            faults: 0,
        }
    }

    /// True when the whole region fits in budget (no touch can fault).
    pub fn fits(&self) -> bool {
        self.table_pages as usize <= self.resident.capacity()
    }

    /// Grows the region (hash tables grow as they are built); never
    /// shrinks. Resident and touched state is preserved.
    pub fn grow_to(&mut self, table_bytes: u64) {
        let pages = table_bytes.div_ceil(PAGE_SIZE as u64).max(1);
        if pages > self.table_pages {
            self.table_pages = pages;
        }
    }

    /// Touches the page that `key_hash` falls on. Returns `true` when
    /// this touch faulted (the caller charges the clock).
    pub fn touch(&mut self, key_hash: u64) -> bool {
        if self.fits() {
            return false;
        }
        let page = key_hash % self.table_pages;
        if self.resident.touch(page) {
            return false;
        }
        self.resident.insert(page);
        if self.ever_touched.insert(page) {
            // Demand allocation, not a fault.
            false
        } else {
            self.faults += 1;
            true
        }
    }

    /// Faults so far.
    pub fn faults(&self) -> u64 {
        self.faults
    }

    /// Pages in the simulated region.
    pub fn table_pages(&self) -> u64 {
        self.table_pages
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn within_budget_never_faults() {
        let mut s = SwapSim::new(1 << 20, 32 << 20);
        assert!(s.fits());
        for i in 0..100_000u64 {
            assert!(!s.touch(i.wrapping_mul(0x9E3779B97F4A7C15)));
        }
        assert_eq!(s.faults(), 0);
    }

    #[test]
    fn oversized_region_faults_on_revisits() {
        // 100 pages of table, 10 pages of budget.
        let mut s = SwapSim::new(100 * PAGE_SIZE as u64, 10 * PAGE_SIZE as u64);
        assert!(!s.fits());
        // First pass over all pages: demand allocations only.
        for p in 0..100u64 {
            assert!(!s.touch(p * PAGE_SIZE as u64 / PAGE_SIZE as u64 + p * 100));
        }
        // Uniform revisits: most touches fault (resident 10/100).
        let mut x = 7u64;
        let mut faults = 0;
        for _ in 0..10_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            if s.touch(x) {
                faults += 1;
            }
        }
        let rate = faults as f64 / 10_000.0;
        assert!(
            (0.80..0.99).contains(&rate),
            "expected ~90% fault rate, got {rate}"
        );
        assert_eq!(s.faults(), faults);
    }

    #[test]
    fn fault_rate_tracks_excess() {
        // 40 pages over a 32-page budget: ~20% of touches fault.
        let mut s = SwapSim::new(40 * PAGE_SIZE as u64, 32 * PAGE_SIZE as u64);
        let mut x = 3u64;
        // Warm up (demand-allocate everything).
        for p in 0..40u64 {
            s.touch(p);
        }
        let before = s.faults();
        let mut faults = 0;
        for _ in 0..20_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            if s.touch(x) {
                faults += 1;
            }
        }
        let _ = before;
        let rate = faults as f64 / 20_000.0;
        assert!(
            (0.10..0.35).contains(&rate),
            "expected ~20% fault rate, got {rate}"
        );
    }

    #[test]
    fn zero_sized_table_is_fine() {
        let mut s = SwapSim::new(0, 1 << 20);
        assert!(s.fits());
        assert!(!s.touch(42));
    }
}
