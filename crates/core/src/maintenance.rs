//! Index maintenance on object updates — why O2 carries index
//! membership in every object header.
//!
//! The paper's §4.4 motivating scenario: "Suppose that we have a
//! collection containing all patients living in Paris, indexed by
//! their primary care provider attribute. Now, suppose that one
//! doctor retires and that we want to assign 'nil' to all his/her
//! patients (some of whom live in Paris). How will the system know
//! which index to update unless each patient carries that
//! information?"
//!
//! [`update_with_indexes`] is that mechanism: it reads the object's
//! header index list, re-keys exactly the listed indexes (charging
//! their page I/O and CPU through the shared stack), performs the
//! update — and when the record relocates, fixes every listed index's
//! rid too. Indexes *not* in the header are never touched, however
//! many exist in the system: the per-object information is what makes
//! maintenance O(own indexes) instead of O(all indexes).

use tq_index::BTreeIndex;
use tq_objstore::{AttrId, ObjectStore, Rid, Value};
use tq_pagestore::CpuEvent;

/// One maintainable index: the tree plus the attribute it keys on.
pub struct MaintainedIndex<'a> {
    /// The B+-tree (its `id` must match what object headers record).
    pub index: &'a mut BTreeIndex,
    /// The indexed attribute.
    pub key_attr: AttrId,
}

/// Report of one maintained update.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MaintenanceReport {
    /// The object's rid after the update (differs when relocated).
    pub rid: Rid,
    /// Indexes whose entries were re-keyed or re-addressed.
    pub indexes_updated: u32,
    /// Indexes present in the registry but skipped because the object's
    /// header does not list them.
    pub indexes_skipped: u32,
    /// Did the update relocate the record?
    pub relocated: bool,
}

/// Updates the object at `rid` to `new_values`, maintaining every
/// registered index the object's header lists.
///
/// Panics if a listed index's entry is missing (the header and the
/// tree disagree — an engine invariant, not a data condition).
pub fn update_with_indexes(
    store: &mut ObjectStore,
    indexes: &mut [MaintainedIndex<'_>],
    rid: Rid,
    new_values: &[Value],
) -> MaintenanceReport {
    // Pin the old object: we need its header's index list and the old
    // key values.
    let (old_rid, old_keys, skipped) = store.with_fetched(rid, |store, old| {
        let old_rid = old.rid();
        let mut old_keys: Vec<(usize, i64)> = Vec::new(); // (registry slot, old key)
        let mut skipped = 0u32;
        for (slot, m) in indexes.iter().enumerate() {
            if old.object().header.index_ids.contains(&m.index.id) {
                store.charge_attr_access(old.object().header.class, m.key_attr);
                let key = old.object().values[m.key_attr]
                    .as_int()
                    .expect("indexed attributes are Int") as i64;
                old_keys.push((slot, key));
            } else {
                skipped += 1;
            }
        }
        (old_rid, old_keys, skipped)
    });

    // The update itself (may relocate).
    let new_rid = store.update(old_rid, new_values);
    let relocated = new_rid != old_rid;

    // Re-key / re-address the listed indexes.
    let mut updated = 0u32;
    for (slot, old_key) in old_keys {
        let m = &mut indexes[slot];
        let new_key = new_values[m.key_attr]
            .as_int()
            .expect("indexed attributes are Int") as i64;
        if new_key != old_key || relocated {
            store.charge(CpuEvent::HashProbe, 1); // locate the entry
            let ok = m
                .index
                .reinsert(store.stack_mut(), old_key, old_rid, new_key, new_rid);
            assert!(
                ok,
                "index {} lists the object but has no entry ({old_key} @ {old_rid:?})",
                m.index.id
            );
            updated += 1;
        }
    }
    MaintenanceReport {
        rid: new_rid,
        indexes_updated: updated,
        indexes_skipped: skipped,
        relocated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tq_objstore::{AttrType, ClassId, Schema};
    use tq_pagestore::{CacheConfig, CostModel, StorageStack};

    const KEY_A: usize = 0;
    const KEY_B: usize = 1;

    /// A store with one class `Item { a: Int, b: Int }`, `n` objects,
    /// an index on `a` over everyone, and an index on `b` over the even
    /// `a`s only (the "Paris patients" sub-collection).
    fn setup(n: i64) -> (ObjectStore, Vec<Rid>, BTreeIndex, BTreeIndex) {
        let mut schema = Schema::new();
        let item = schema.add_class("Item", vec![("a", AttrType::Int), ("b", AttrType::Int)]);
        let stack = StorageStack::new(CostModel::free(), CacheConfig::default());
        let mut store = ObjectStore::new(schema, stack);
        let file = store.create_file("items");
        let rids: Vec<Rid> = (0..n)
            .map(|i| {
                store.insert(
                    file,
                    item,
                    &[Value::Int(i as i32), Value::Int((i * 10) as i32)],
                    true,
                )
            })
            .collect();
        store.create_collection("Items", item, &rids);
        let evens: Vec<Rid> = rids.iter().copied().step_by(2).collect();
        store.create_collection("EvenItems", item, &evens);
        let a_entries: Vec<(i64, Rid)> = rids
            .iter()
            .enumerate()
            .map(|(i, &r)| (i as i64, r))
            .collect();
        let idx_a = BTreeIndex::bulk_build(store.stack_mut(), 1, "idx.a", true, &a_entries);
        let b_entries: Vec<(i64, Rid)> = evens
            .iter()
            .enumerate()
            .map(|(i, &r)| ((i as i64) * 20, r))
            .collect();
        let idx_b = BTreeIndex::bulk_build(store.stack_mut(), 2, "idx.b", false, &b_entries);
        store.register_index_on_collection("Items", 1);
        store.register_index_on_collection("EvenItems", 2);
        let _ = (item, ClassId(0));
        (store, rids, idx_a, idx_b)
    }

    #[test]
    fn header_listed_indexes_are_maintained_others_skipped() {
        let (mut store, rids, mut idx_a, mut idx_b) = setup(20);
        // Item 3 (odd) is indexed by `a` only.
        let report = {
            let mut reg = [
                MaintainedIndex {
                    index: &mut idx_a,
                    key_attr: KEY_A,
                },
                MaintainedIndex {
                    index: &mut idx_b,
                    key_attr: KEY_B,
                },
            ];
            update_with_indexes(
                &mut store,
                &mut reg,
                rids[3],
                &[Value::Int(103), Value::Int(9999)],
            )
        };
        assert_eq!(report.indexes_updated, 1);
        assert_eq!(report.indexes_skipped, 1, "idx.b is not in item 3's header");
        assert!(!report.relocated);
        assert_eq!(idx_a.lookup(store.stack_mut(), 103), vec![rids[3]]);
        assert!(idx_a.lookup(store.stack_mut(), 3).is_empty());
        // idx.b untouched.
        assert_eq!(idx_b.entry_count(), 10);
    }

    #[test]
    fn even_items_maintain_both_indexes() {
        let (mut store, rids, mut idx_a, mut idx_b) = setup(20);
        // Item 4 (even): listed in both; its b key is 2*20 = 40.
        let report = {
            let mut reg = [
                MaintainedIndex {
                    index: &mut idx_a,
                    key_attr: KEY_A,
                },
                MaintainedIndex {
                    index: &mut idx_b,
                    key_attr: KEY_B,
                },
            ];
            update_with_indexes(
                &mut store,
                &mut reg,
                rids[4],
                &[Value::Int(204), Value::Int(777)],
            )
        };
        assert_eq!(report.indexes_updated, 2);
        assert_eq!(report.indexes_skipped, 0);
        assert_eq!(idx_a.lookup(store.stack_mut(), 204), vec![rids[4]]);
        assert_eq!(idx_b.lookup(store.stack_mut(), 777), vec![rids[4]]);
        assert!(idx_b.lookup(store.stack_mut(), 40).is_empty());
    }

    #[test]
    fn unchanged_keys_skip_index_work() {
        let (mut store, rids, mut idx_a, mut idx_b) = setup(20);
        let report = {
            let mut reg = [
                MaintainedIndex {
                    index: &mut idx_a,
                    key_attr: KEY_A,
                },
                MaintainedIndex {
                    index: &mut idx_b,
                    key_attr: KEY_B,
                },
            ];
            // Same keys, different nothing: no index work needed.
            update_with_indexes(
                &mut store,
                &mut reg,
                rids[6],
                &[Value::Int(6), Value::Int(60)],
            )
        };
        assert_eq!(report.indexes_updated, 0);
        assert!(!report.relocated);
    }

    #[test]
    fn relocation_fixes_index_rids() {
        let mut schema = Schema::new();
        let item = schema.add_class("Item", vec![("a", AttrType::Int), ("pad", AttrType::Str)]);
        let stack = StorageStack::new(CostModel::free(), CacheConfig::default());
        let mut store = ObjectStore::new(schema, stack);
        let file = store.create_file("items");
        // Fill a page tightly so growth relocates.
        let rids: Vec<Rid> = (0..80)
            .map(|i| {
                store.insert(
                    file,
                    item,
                    &[Value::Int(i), Value::Str("x".repeat(40))],
                    true,
                )
            })
            .collect();
        store.create_collection("Items", item, &rids);
        let entries: Vec<(i64, Rid)> = rids
            .iter()
            .enumerate()
            .map(|(i, &r)| (i as i64, r))
            .collect();
        let mut idx = BTreeIndex::bulk_build(store.stack_mut(), 1, "idx.a", true, &entries);
        store.register_index_on_collection("Items", 1);
        let report = {
            let mut reg = [MaintainedIndex {
                index: &mut idx,
                key_attr: 0,
            }];
            update_with_indexes(
                &mut store,
                &mut reg,
                rids[0],
                &[Value::Int(0), Value::Str("y".repeat(3000))],
            )
        };
        assert!(report.relocated, "a 3000-byte pad must not fit in place");
        assert_eq!(report.indexes_updated, 1, "same key, new address");
        // The index now points at the new location; a lookup-and-fetch
        // round trip works without a forwarder hop.
        let found = idx.lookup(store.stack_mut(), 0);
        assert_eq!(found, vec![report.rid]);
        let fetched_rid = store.with_fetched(found[0], |_store, g| g.rid());
        assert_eq!(fetched_rid, report.rid);
    }
}
