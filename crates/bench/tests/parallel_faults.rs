//! Fault paths of the morsel-parallel executor: a panicking worker
//! and a deadline that fires mid-query must both terminate promptly
//! with *typed* errors — never a hang, never a leaked object handle —
//! and the engine must be reusable afterwards.
//!
//! The panic hook (`inject_worker_panic`) is process-global, so every
//! scenario runs sequentially inside one `#[test]` — concurrent tests
//! in this binary would race on the injection window.

use std::panic::{catch_unwind, AssertUnwindSafe};

use tq_bench::harness::{build_db, run_join_cell, run_join_cell_parallel};
use tq_query::join::parallel::{clear_worker_panic, inject_worker_panic};
use tq_query::join::JoinOptions;
use tq_query::{CancelToken, Cancelled, JoinAlgo, MorselPanic};
use tq_server::{CacheMode, Client, QuerySpec, Response, Server, ServerConfig};
use tq_workload::{DbShape, Organization};

#[test]
fn worker_faults_are_typed_prompt_and_leak_free() {
    let master = build_db(DbShape::Db2, Organization::ClassClustered, 1000);
    let opts = JoinOptions::default();

    // --- A panicking morsel worker surfaces as `MorselPanic`. Worker
    // 0 exists whenever any morsel runs at all (a short driving side
    // can collapse to fewer spans than the degree). ---
    for algo in JoinAlgo::all() {
        let mut db = master.clone();
        inject_worker_panic(0);
        let err = run_join_cell_parallel(&mut db, algo, 10, 90, &opts, None, 4)
            .expect_err("injected panic must surface as an error");
        clear_worker_panic();
        assert_eq!(
            err,
            MorselPanic {
                worker: 0,
                message: "injected morsel failure (worker 0)".into(),
            },
            "{}",
            algo.label()
        );
        // The coordinator unwound nothing: every ObjGuard opened by the
        // prefix and the surviving workers was dropped on the way out.
        assert_eq!(
            db.store.live_handles(),
            0,
            "{}: a failed parallel run may not leak handles",
            algo.label()
        );
        // The engine is reusable: the same database answers the same
        // query correctly afterwards.
        let cell = run_join_cell_parallel(&mut db, algo, 10, 90, &opts, None, 4)
            .expect("engine must recover after a worker panic");
        let mut oracle = master.clone();
        let serial = run_join_cell(&mut oracle, algo, 10, 90, &opts);
        assert_eq!(cell.results, serial.results, "{}", algo.label());
    }

    // --- A deadline crossing mid-query propagates into the workers
    // and resumes as the session layer's typed `Cancelled` unwind.
    // A fifth of the serial budget at degree 2 is guaranteed to fire:
    // the run's simulated work splits across three windows (prefix +
    // suffix on the coordinator, half the driving side on each
    // worker), so some window must cross T/5 well before finishing. ---
    for algo in JoinAlgo::all() {
        let mut db = master.clone();
        let serial = run_join_cell(&mut db, algo, 10, 90, &opts);
        let budget = (serial.secs * 1e9) as u64 / 5;
        assert!(budget > 0);
        let mut db = master.clone();
        let payload = catch_unwind(AssertUnwindSafe(|| {
            run_join_cell_parallel(
                &mut db,
                algo,
                10,
                90,
                &opts,
                Some(CancelToken::with_deadline_nanos(budget)),
                2,
            )
        }))
        .expect_err("a fifth of the serial budget must cancel the query");
        let cancelled = payload
            .downcast_ref::<Cancelled>()
            .unwrap_or_else(|| panic!("{}: unwind payload must be Cancelled", algo.label()));
        assert!(
            cancelled.elapsed_nanos >= budget,
            "{}: cancellation fired before the deadline",
            algo.label()
        );
    }

    // --- The same two faults through the service edge, at degree 2:
    // a worker panic becomes a protocol `Error` (a failed query, not a
    // dead server), a deadline becomes `DeadlineExceeded`, and the
    // session keeps serving afterwards. ---
    let server = Server::start(
        master.clone(),
        ServerConfig {
            workers: 1,
            queue_depth: 4,
            parallel: 2,
        },
    );
    let mut client = Client::new(server.connect_in_proc());
    let session = client.open_session(CacheMode::Cold).expect("open session");
    let spec = |deadline_nanos: u64| QuerySpec {
        session,
        algo: JoinAlgo::Phj,
        pat_pct: 10,
        prov_pct: 90,
        deadline_nanos,
    };

    inject_worker_panic(0);
    let err = client
        .query(spec(0))
        .expect_err("a worker panic must answer Error, not hang");
    clear_worker_panic();
    assert!(
        err.to_string().contains("morsel worker 0"),
        "served error must carry the typed panic: {err}"
    );

    match client.query(spec(1)).expect("deadline reply") {
        Response::DeadlineExceeded { elapsed_nanos } => assert!(elapsed_nanos >= 1),
        other => panic!("1ns deadline answered {other:?}"),
    }

    match client.query(spec(0)).expect("recovery reply") {
        Response::QueryOk { results, .. } => {
            let mut oracle = master.clone();
            let serial = run_join_cell(&mut oracle, JoinAlgo::Phj, 10, 90, &opts);
            assert_eq!(results, serial.results, "post-fault serve must be correct");
        }
        other => panic!("post-fault query answered {other:?}"),
    }
    client.close_session(session).expect("close session");
    // The handler thread exits on client hang-up; shutdown joins it.
    drop(client);
    server.shutdown();
}
