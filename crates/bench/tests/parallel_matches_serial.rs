//! The parallel figure harness must be invisible in the numbers:
//! running the same figure serially and across workers yields
//! bit-identical `Stat` records (simulated seconds are `f64`-equal,
//! every I/O counter matches exactly).

use tq_bench::figures::{fig06, joins};
use tq_bench::{jobs_from_env, scale_from_env};
use tq_workload::{DbShape, Organization};

#[test]
fn join_figure_stats_identical_at_any_worker_count() {
    let db = tq_bench::build_db(DbShape::Db2, Organization::ClassClustered, 1000);
    let serial = joins::run_join_figure_on(&db, 1000, 1);
    let parallel = joins::run_join_figure_on(&db, 1000, 4);
    assert_eq!(serial.stats.len(), 16);
    // Bit-identical records: elapsed simulated time, page counts, miss
    // rates, numtest assignment — everything.
    assert_eq!(serial.stats.all(), parallel.stats.all());
    // And the printed table is byte-identical too.
    assert_eq!(
        joins::print_join_figure(&serial),
        joins::print_join_figure(&parallel)
    );
}

/// The same oracle at paper-relevant scale (DB2 at 1/10 = 100k
/// providers / 300k patients — large enough that copy-on-write
/// snapshots, cache sizing and swap simulation all engage). Too slow
/// for a debug-profile `cargo test`, so it is `#[ignore]`d there;
/// `scripts/verify.sh` runs it in `--release` on every verification,
/// which is what keeps CoW from ever silently perturbing counters.
#[test]
#[ignore = "paper-relevant scale: run via scripts/verify.sh (release)"]
fn join_figure_stats_identical_at_paper_relevant_scale() {
    let db = tq_bench::build_db(DbShape::Db2, Organization::ClassClustered, 10);
    let serial = joins::run_join_figure_on(&db, 10, 1);
    let parallel = joins::run_join_figure_on(&db, 10, 4);
    assert_eq!(serial.stats.len(), 16);
    assert_eq!(serial.stats.all(), parallel.stats.all());
    assert_eq!(
        joins::print_join_figure(&serial),
        joins::print_join_figure(&parallel)
    );
}

#[test]
fn fig06_rows_identical_at_any_worker_count() {
    let serial = fig06::run(2000, 1);
    let parallel = fig06::run(2000, 3);
    assert_eq!(serial.stats.all(), parallel.stats.all());
    assert_eq!(fig06::print(&serial), fig06::print(&parallel));
}

/// `TQ_SCALE`/`TQ_JOBS` parsing: defaults when unset, `Err` (not a
/// process exit) on garbage. One test owns both variables so no other
/// test in this binary races the environment.
#[test]
fn env_knobs_parse_or_error() {
    for var in ["TQ_SCALE", "TQ_JOBS"] {
        std::env::remove_var(var);
    }
    assert_eq!(scale_from_env(), Ok(1));
    assert!(jobs_from_env().unwrap() >= 1);

    std::env::set_var("TQ_SCALE", "250");
    assert_eq!(scale_from_env(), Ok(250));
    std::env::set_var("TQ_SCALE", "0");
    assert!(scale_from_env().unwrap_err().contains("TQ_SCALE"));
    std::env::set_var("TQ_SCALE", "lots");
    assert!(scale_from_env().unwrap_err().contains("positive integer"));

    std::env::set_var("TQ_JOBS", "8");
    assert_eq!(jobs_from_env(), Ok(8));
    std::env::set_var("TQ_JOBS", "-3");
    assert!(jobs_from_env().unwrap_err().contains("TQ_JOBS"));

    for var in ["TQ_SCALE", "TQ_JOBS"] {
        std::env::remove_var(var);
    }
}
