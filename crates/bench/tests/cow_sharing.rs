//! Copy-on-write at the `Database` level: cloning a built base is
//! O(files), and a cold read-only measurement cell copies no page
//! bytes at all — the property that lets the figure harness fan
//! paper-scale cells across workers without `TQ_JOBS × database`
//! memory.

use tq_bench::{build_db, run_join_cell};
use tq_query::{JoinAlgo, JoinOptions};
use tq_workload::{DbShape, Organization};

#[test]
fn database_clone_allocates_no_page_bytes() {
    let db = build_db(DbShape::Db2, Organization::ClassClustered, 1000);
    let disk = db.store.stack().disk();
    let total = disk.total_pages();
    assert!(total > 100, "sanity: the base has real pages");

    let clone = db.clone();
    let clone_disk = clone.store.stack().disk();
    assert_eq!(
        disk.shared_page_count(clone_disk),
        total,
        "every page of an unmutated clone must be shared"
    );
    assert_eq!(clone_disk.private_page_bytes(), 0);
}

#[test]
fn cold_transient_join_cell_copies_no_data_pages() {
    let master = build_db(DbShape::Db2, Organization::ClassClustered, 1000);
    let total = master.store.stack().disk().total_pages();

    // The harness's per-cell protocol: clone, run one cold measured
    // join (transient results — the paper's Figures 11–14 mode).
    for algo in [JoinAlgo::Phj, JoinAlgo::Chj] {
        let mut cell = master.clone();
        let out = run_join_cell(&mut cell, algo, 10, 90, &JoinOptions::default());
        assert!(out.results > 0);
        assert_eq!(
            master
                .store
                .stack()
                .disk()
                .shared_page_count(cell.store.stack().disk()),
            total,
            "{algo:?}: a read-only cell must not unshare any page"
        );
    }
}
