//! Short closed-loop serving run: the loadgen path end to end, checked
//! for forward progress, zero errors, zero leaked handles, and an exact
//! latency-CSV round trip.

use std::time::Duration;

use tq_bench::{build_db, ServeConfig};
use tq_query::JoinAlgo;
use tq_server::CacheMode;
use tq_statsdb::{parse_latency_csv, to_latency_csv};
use tq_workload::{DbShape, Organization};

#[test]
fn closed_loop_serve_smoke() {
    let base = build_db(DbShape::Db2, Organization::ClassClustered, 300);
    let cfg = ServeConfig {
        concurrency: 4,
        workers: 2,
        queue_depth: 4,
        shards: 1,
        duration: Duration::from_millis(300),
        // No warmup: with every sample measured, the client tally must
        // agree exactly with the server's own counters below.
        warmup: Duration::ZERO,
        mode: CacheMode::Warm,
        algo: JoinAlgo::Chj,
        pat_pct: 10,
        prov_pct: 90,
        deadline_nanos: 0,
        write_mix: 0,
        parallel: 1,
    };
    let outcome = tq_bench::run_serve(base, &cfg);

    assert!(outcome.stat.queries_ok > 0, "no queries completed");
    assert_eq!(
        outcome.stat.errors, 0,
        "serving errors: {:?}",
        outcome.server
    );
    assert_eq!(outcome.leaked_handles, 0, "sessions leaked handles");
    assert_eq!(outcome.server.queries_failed, 0);
    assert_eq!(
        outcome.server.sessions_opened,
        outcome.server.sessions_closed
    );
    assert_eq!(outcome.server.queries_ok, outcome.stat.queries_ok);

    // Latency percentiles are ordered and bracketed by min/max.
    let s = &outcome.stat;
    assert!(s.min_nanos <= s.p50_nanos);
    assert!(s.p50_nanos <= s.p95_nanos);
    assert!(s.p95_nanos <= s.p99_nanos);
    assert!(s.p99_nanos <= s.max_nanos);

    // The CSV export is exact: all-integer fields, lossless round trip.
    let csv = to_latency_csv(std::slice::from_ref(s));
    let back = parse_latency_csv(&csv).expect("latency CSV re-parses");
    assert_eq!(back, vec![s.clone()]);

    // A read-only run reports a well-formed, empty write column.
    assert_eq!(s.commits, 0);
    assert_eq!(s.aborts, 0);
    assert_eq!(s.abort_rate(), 0.0);
}

#[test]
fn mixed_read_write_serve_smoke() {
    let base = build_db(DbShape::Db2, Organization::ClassClustered, 300);
    let cfg = ServeConfig {
        concurrency: 4,
        workers: 2,
        queue_depth: 4,
        shards: 1,
        duration: Duration::from_millis(400),
        warmup: Duration::ZERO,
        mode: CacheMode::Warm,
        algo: JoinAlgo::Chj,
        pat_pct: 10,
        prov_pct: 90,
        deadline_nanos: 0,
        write_mix: 50,
        parallel: 1,
    };
    let outcome = tq_bench::run_serve(base, &cfg);
    let s = &outcome.stat;

    assert_eq!(s.errors, 0, "serving errors: {:?}", outcome.server);
    assert_eq!(outcome.leaked_handles, 0, "sessions leaked handles");
    assert!(s.commits > 0, "no write transaction ever committed");
    // Client-side commit/abort tallies agree with the server's (no
    // warmup, so every sample was measured).
    assert_eq!(s.commits, outcome.server.commits);
    assert_eq!(s.aborts, outcome.server.commit_aborts);
    // Every write that got through admission either committed or
    // aborted; the abort rate is a proper fraction of the attempts.
    assert!(s.abort_rate() >= 0.0 && s.abort_rate() < 1.0);
    // Reads kept flowing alongside the writes.
    assert!(s.queries_ok > 0, "mixed run starved its readers");
    // The label names the mix; the CSV still round-trips exactly.
    assert!(s.label.contains("write=50%"), "label: {:?}", s.label);
    let csv = to_latency_csv(std::slice::from_ref(s));
    let back = parse_latency_csv(&csv).expect("latency CSV re-parses");
    assert_eq!(back, vec![s.clone()]);
}

#[test]
fn sharded_serve_smoke() {
    let base = build_db(DbShape::Db2, Organization::ClassClustered, 300);
    let cfg = ServeConfig {
        concurrency: 4,
        workers: 2,
        queue_depth: 4,
        shards: 2,
        duration: Duration::from_millis(400),
        warmup: Duration::ZERO,
        mode: CacheMode::Warm,
        algo: JoinAlgo::Chj,
        pat_pct: 10,
        prov_pct: 90,
        deadline_nanos: 0,
        write_mix: 20,
        parallel: 1,
    };
    let outcome = tq_bench::run_serve(base, &cfg);
    let s = &outcome.stat;

    assert_eq!(s.errors, 0, "sharded serving errors: {:?}", outcome.server);
    assert_eq!(outcome.leaked_handles, 0, "sessions leaked handles");
    assert!(s.queries_ok > 0, "no queries completed through the router");
    assert!(s.label.contains("shards=2"), "label: {:?}", s.label);

    // The summed shard counters see one engine session per shard per
    // client session, and every one of them closed.
    assert_eq!(outcome.server.queries_failed, 0);
    assert_eq!(
        outcome.server.sessions_opened,
        outcome.server.sessions_closed
    );
    assert_eq!(
        outcome.server.sessions_opened,
        u64::from(cfg.concurrency) * 2
    );

    // The router saw the traffic, and router-edge sheds are a subset of
    // the total (admission also exists at each shard's queue).
    let router = outcome.router.expect("sharded run exposes router stats");
    assert!(router.routed >= s.queries_ok);
    assert_eq!(router.shed_router, s.shed_router);
    assert_eq!(router.shard_unavailable, 0);
    assert!(s.shed_router <= s.queries_shed);

    // The CSV round trip stays exact with the shard-shed column live.
    let csv = to_latency_csv(std::slice::from_ref(s));
    let back = parse_latency_csv(&csv).expect("latency CSV re-parses");
    assert_eq!(back, vec![s.clone()]);
}
