//! Short closed-loop serving run: the loadgen path end to end, checked
//! for forward progress, zero errors, zero leaked handles, and an exact
//! latency-CSV round trip.

use std::time::Duration;

use tq_bench::{build_db, ServeConfig};
use tq_query::JoinAlgo;
use tq_server::CacheMode;
use tq_statsdb::{parse_latency_csv, to_latency_csv};
use tq_workload::{DbShape, Organization};

#[test]
fn closed_loop_serve_smoke() {
    let base = build_db(DbShape::Db2, Organization::ClassClustered, 300);
    let cfg = ServeConfig {
        concurrency: 4,
        workers: 2,
        queue_depth: 4,
        duration: Duration::from_millis(300),
        mode: CacheMode::Warm,
        algo: JoinAlgo::Chj,
        pat_pct: 10,
        prov_pct: 90,
        deadline_nanos: 0,
    };
    let outcome = tq_bench::run_serve(base, &cfg);

    assert!(outcome.stat.queries_ok > 0, "no queries completed");
    assert_eq!(
        outcome.stat.errors, 0,
        "serving errors: {:?}",
        outcome.server
    );
    assert_eq!(outcome.leaked_handles, 0, "sessions leaked handles");
    assert_eq!(outcome.server.queries_failed, 0);
    assert_eq!(
        outcome.server.sessions_opened,
        outcome.server.sessions_closed
    );
    assert_eq!(outcome.server.queries_ok, outcome.stat.queries_ok);

    // Latency percentiles are ordered and bracketed by min/max.
    let s = &outcome.stat;
    assert!(s.min_nanos <= s.p50_nanos);
    assert!(s.p50_nanos <= s.p95_nanos);
    assert!(s.p95_nanos <= s.p99_nanos);
    assert!(s.p99_nanos <= s.max_nanos);

    // The CSV export is exact: all-integer fields, lossless round trip.
    let csv = to_latency_csv(std::slice::from_ref(s));
    let back = parse_latency_csv(&csv).expect("latency CSV re-parses");
    assert_eq!(back, vec![s.clone()]);
}
