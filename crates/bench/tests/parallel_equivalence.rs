//! Differential tests: the morsel-parallel executor against the serial
//! engine, at the raw-report, `Stat`, and served layers.
//!
//! What must be byte-identical, and why (mirroring the sharded
//! oracle's contract in `sharded_equivalence.rs`):
//!
//! * **Degree 1 is the serial path** — `run_join_parallel` at degree 1
//!   short-circuits to `run_join_with`, so the *whole* `Stat` must be
//!   byte-identical. There is no hidden fork to drift.
//! * **Results and pairs at any degree** — morsels are contiguous and
//!   their emits are flushed in morsel-index order, so the full pair
//!   list (not just the count) reproduces the serial emission order.
//! * **Trace shape at any degree** — the ordered merge reproduces the
//!   serial pre-order: same `(kind, label, depth)` row sequence.
//! * **Per-row `handle_gets` and the `Emit` rows at any degree** —
//!   object fetches partition exactly across morsels, and per-pair
//!   emit charges are cache-independent, so these sum back
//!   field-for-field.
//! * **The attribution invariant at any degree** — merged rows sum to
//!   the query-level totals (coordinator + worker windows), proving
//!   the merge lost nothing.
//!
//! Cache-sensitive counters (hit/miss splits, swap faults) are **not**
//! degree-invariant and are deliberately not pinned: each worker owns
//! a private store clone — the in-process analogue of the router's
//! per-shard caches — and the locality change is real simulated
//! physics, the same reason the sharded oracle lets them diverge.

use tq_bench::harness::{build_db, join_spec, run_join_cell, run_join_cell_parallel, stat_record};
use tq_query::join::parallel::run_join_parallel;
use tq_query::join::{JoinContext, JoinOptions};
use tq_query::{JoinAlgo, ParallelRun};
use tq_router::{Router, RouterConfig};
use tq_server::{CacheMode, Client, DuplexStream, QuerySpec, Response, Server, ServerConfig};
use tq_statsdb::Stat;
use tq_workload::{Database, DbShape, Organization};

const DEGREES: [usize; 2] = [2, 4];
const ORGS: [Organization; 3] = [
    Organization::ClassClustered,
    Organization::Randomized,
    Organization::Composition,
];

fn master(org: Organization) -> Database {
    build_db(DbShape::Db2, org, 500)
}

/// One cold engine-level run with pair collection, at a degree.
fn raw_run(db: &mut Database, algo: JoinAlgo, degree: usize) -> ParallelRun {
    let spec = join_spec(db, 10, 90);
    let parent_index = db.idx_provider_upin.clone();
    let child_index = db.idx_patient_mrn.clone();
    db.store.cold_restart();
    db.store.reset_metrics();
    let mut ctx = JoinContext {
        store: &mut db.store,
        parent_index: &parent_index,
        child_index: &child_index,
    };
    run_join_parallel(
        algo,
        &mut ctx,
        &spec,
        &JoinOptions::default(),
        true,
        None,
        degree,
    )
    .expect("no worker panics in a healthy run")
}

#[test]
fn parallel_reports_match_serial_at_every_degree() {
    for org in ORGS {
        let base = master(org);
        for algo in JoinAlgo::all() {
            let mut db = base.clone();
            let serial = raw_run(&mut db, algo, 1).report;
            assert!(serial.results > 0, "{org:?}/{}: empty cell", algo.label());
            for degree in DEGREES {
                let mut db = base.clone();
                let run = raw_run(&mut db, algo, degree);
                let ctx = format!("{org:?}/{} degree {degree}", algo.label());
                assert_eq!(run.report.results, serial.results, "{ctx}: results");
                // The full pair list, in the serial emission order —
                // morsel-order flushing is what makes this hold.
                assert_eq!(run.report.pairs, serial.pairs, "{ctx}: pairs");
                assert_eq!(
                    run.report.hash_table_bytes, serial.hash_table_bytes,
                    "{ctx}: table size"
                );
                // The merged trace has the serial row sequence...
                let shape = |r: &tq_query::JoinReport| -> Vec<(tq_query::OpKind, String, u32)> {
                    r.trace
                        .ops
                        .iter()
                        .map(|o| (o.kind, o.label.clone(), o.depth))
                        .collect()
                };
                assert_eq!(shape(&run.report), shape(&serial), "{ctx}: trace shape");
                // ...with exactly the serial record work per row, and
                // byte-identical result production.
                for (row, srow) in run.report.trace.ops.iter().zip(serial.trace.ops.iter()) {
                    assert_eq!(
                        row.counters.handle_gets(),
                        srow.counters.handle_gets(),
                        "{ctx}: handle_gets diverged in {:?}/{}",
                        row.kind,
                        row.label
                    );
                    if row.kind == tq_query::OpKind::Emit {
                        assert_eq!(row, srow, "{ctx}: Emit row diverged");
                    }
                }
                // The attribution invariant across both windows: the
                // merged rows — plus the workers' end-of-query drains,
                // which only gain a trace row at the measurement layer
                // — sum to coordinator + worker deltas.
                let mut total = run.report.trace.total();
                total.add(&run.workers_teardown);
                let mut io = db.store.stats();
                io.accumulate(&run.workers_io);
                assert_eq!(total.io, io, "{ctx}: I/O must sum across all windows");
                assert_eq!(
                    total.elapsed_nanos(),
                    db.store.clock().elapsed() + run.workers_nanos,
                    "{ctx}: simulated time must be fully attributed"
                );
            }
        }
    }
}

/// Measures one cold cell through the measurement layer and exports
/// its `Stat` record.
fn stat_at_degree(base: &Database, algo: JoinAlgo, degree: usize) -> (u64, Stat) {
    let mut db = base.clone();
    let cell = run_join_cell_parallel(&mut db, algo, 10, 90, &JoinOptions::default(), None, degree)
        .expect("no worker panics in a healthy run");
    let stat = stat_record(&db, &cell, 10, 90);
    (cell.results, stat)
}

#[test]
fn degree_one_stat_is_byte_identical_to_serial() {
    let base = master(Organization::ClassClustered);
    for algo in JoinAlgo::all() {
        let mut db = base.clone();
        let cell = run_join_cell(&mut db, algo, 10, 90, &JoinOptions::default());
        let serial = stat_record(&db, &cell, 10, 90);
        let (results, stat) = stat_at_degree(&base, algo, 1);
        assert_eq!(results, cell.results, "{}", algo.label());
        assert_eq!(
            stat,
            serial,
            "{}: degree 1 must be the serial path",
            algo.label()
        );
    }
}

#[test]
fn stats_match_serial_in_invariant_fields_at_higher_degrees() {
    for org in ORGS {
        let base = master(org);
        for algo in JoinAlgo::all() {
            let (oresults, ostat) = stat_at_degree(&base, algo, 1);
            for degree in DEGREES {
                let (results, stat) = stat_at_degree(&base, algo, degree);
                let ctx = format!("{org:?}/{} degree {degree}", algo.label());
                assert_eq!(results, oresults, "{ctx}: results");
                assert_eq!(stat.query, ostat.query, "{ctx}: query desc");
                assert_eq!(stat.database, ostat.database, "{ctx}: extents");
                assert_eq!(stat.cluster, ostat.cluster, "{ctx}");
                assert_eq!(stat.algo, ostat.algo, "{ctx}");
                assert_eq!(stat.system, ostat.system, "{ctx}");
                for orow in &ostat.operators {
                    let row = stat
                        .operators
                        .iter()
                        .find(|r| r.op == orow.op && r.label == orow.label && r.depth == orow.depth)
                        .unwrap_or_else(|| {
                            panic!("{ctx}: merged record lost row {}/{}", orow.op, orow.label)
                        });
                    assert_eq!(
                        row.handle_gets, orow.handle_gets,
                        "{ctx}: handle_gets diverged in {}/{}",
                        orow.op, orow.label
                    );
                    if orow.op == "Emit" {
                        assert_eq!(row, orow, "{ctx}: Emit row diverged");
                    }
                }
                let sum = |f: fn(&tq_statsdb::OperatorStat) -> u64| -> u64 {
                    stat.operators.iter().map(f).sum()
                };
                assert_eq!(sum(|r| r.client_misses), stat.cc_pagefaults, "{ctx}");
                assert_eq!(sum(|r| r.d2sc_read_pages), stat.d2sc_read_pages, "{ctx}");
                assert_eq!(sum(|r| r.sc2cc_read_pages), stat.sc2cc_read_pages, "{ctx}");
            }
        }
    }
}

fn open(conn: DuplexStream) -> (Client<DuplexStream>, u64) {
    let mut client = Client::new(conn);
    let session = client.open_session(CacheMode::Cold).expect("open session");
    (client, session)
}

fn served_cells(conn: DuplexStream) -> Vec<(u64, Stat)> {
    let (mut client, session) = open(conn);
    let cells = JoinAlgo::all()
        .into_iter()
        .map(|algo| {
            let spec = QuerySpec {
                session,
                algo,
                pat_pct: 10,
                prov_pct: 90,
                deadline_nanos: 0,
            };
            match client.query(spec).expect("query") {
                Response::QueryOk { results, stat } => (results, *stat),
                other => panic!("query answered {other:?}"),
            }
        })
        .collect();
    client.close_session(session).expect("close session");
    cells
}

/// Checks a parallel-served cell against its serial-served oracle on
/// the degree-invariant fields.
fn check_served(cells: &[(u64, Stat)], oracle: &[(u64, Stat)], what: &str) {
    for (algo, ((results, stat), (oresults, ostat))) in
        JoinAlgo::all().into_iter().zip(cells.iter().zip(oracle))
    {
        let ctx = format!("{what} {}", algo.label());
        assert_eq!(results, oresults, "{ctx}: results");
        assert_eq!(stat.query, ostat.query, "{ctx}: query desc");
        assert_eq!(stat.database, ostat.database, "{ctx}: extents");
        assert_eq!(stat.algo, ostat.algo, "{ctx}");
        for orow in &ostat.operators {
            let row = stat
                .operators
                .iter()
                .find(|r| r.op == orow.op && r.label == orow.label && r.depth == orow.depth)
                .unwrap_or_else(|| panic!("{ctx}: lost row {}/{}", orow.op, orow.label));
            assert_eq!(
                row.handle_gets, orow.handle_gets,
                "{ctx}: handle_gets diverged in {}/{}",
                orow.op, orow.label
            );
            if orow.op == "Emit" {
                assert_eq!(row, orow, "{ctx}: Emit row diverged");
            }
        }
    }
}

#[test]
fn served_stats_match_serial_service_at_degree_two() {
    let base = master(Organization::ClassClustered);
    let serial = Server::start(
        base.clone(),
        ServerConfig {
            workers: 2,
            queue_depth: 16,
            parallel: 1,
        },
    );
    let oracle = served_cells(serial.connect_in_proc());
    serial.shutdown();

    let parallel = Server::start(
        base,
        ServerConfig {
            workers: 2,
            queue_depth: 16,
            parallel: 2,
        },
    );
    let cells = served_cells(parallel.connect_in_proc());
    parallel.shutdown();
    check_served(&cells, &oracle, "served");
}

#[test]
fn sharded_service_composes_with_intra_query_parallelism() {
    // Both parallelism axes at once: 2 shards × degree 2. Each shard's
    // partial runs morsel-parallel; the merged record must still agree
    // with the serial sharded service on every topology-invariant
    // field — the two decompositions commute.
    let base = master(Organization::ClassClustered);
    let config = |parallel: usize| RouterConfig {
        workers_per_shard: 1,
        queue_depth: 16,
        max_inflight: 16,
        parallel,
    };
    let serial = Router::start_partitioned(&base, 2, config(1));
    let oracle = served_cells(serial.connect_in_proc());
    serial.shutdown();

    let parallel = Router::start_partitioned(&base, 2, config(2));
    let cells = served_cells(parallel.connect_in_proc());
    parallel.shutdown();
    check_served(&cells, &oracle, "sharded+parallel");
}
