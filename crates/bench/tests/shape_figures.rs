//! Shape tests: scaled-down regenerations of every figure, asserting
//! the paper's orderings and crossovers (DESIGN.md §4).
//!
//! Scales are chosen so each test runs in seconds while the
//! cache-to-database and memory-to-table ratios stay at paper values
//! (BuildConfig::scaled divides them together).

use tq_bench::figures::{fig06, fig07, joins};
use tq_bench::{physical_profile, run_join_cell};
use tq_query::planner::{choose_join, Strategy};
use tq_query::JoinAlgo;
use tq_workload::{DbShape, Organization};

/// Figure 6: the unclustered-index crossover sits at low selectivity.
#[test]
fn fig06_index_crossover_at_low_selectivity() {
    let fig = fig06::run(100, 1);
    // Below the crossover the index reads fewer pages; above, more.
    let crossover = fig06::crossover_permille(&fig)
        .expect("the index must start losing on pages at some selectivity");
    assert!(
        (2..=300).contains(&crossover),
        "crossover at {:.1}% (paper: between 1 and 5%)",
        crossover as f64 / 10.0
    );
    // At 90% the index scan reads strictly more pages than the scan.
    let last = fig.rows.last().unwrap();
    assert!(last.index_pages > last.scan_pages);
    // And the lowest selectivity reads strictly fewer.
    let first = fig.rows.first().unwrap();
    assert!(first.index_pages < first.scan_pages);
}

/// Figure 7: the *sorted* unclustered index beats the full scan at
/// every selectivity from 10% to 90%.
#[test]
fn fig07_sorted_index_always_wins() {
    let fig = fig07::run(100, 1);
    for row in &fig.rows {
        assert!(
            row.sorted_secs < row.scan_secs,
            "sel {}%: sorted {:.2}s vs scan {:.2}s",
            row.pct,
            row.sorted_secs,
            row.scan_secs
        );
        assert!(row.rids_sorted > 0);
    }
    // The advantage narrows as selectivity grows (paper: 0.25 -> 0.86).
    let first_ratio = fig.rows.first().unwrap().sorted_secs / fig.rows.first().unwrap().scan_secs;
    let last_ratio = fig.rows.last().unwrap().sorted_secs / fig.rows.last().unwrap().scan_secs;
    assert!(first_ratio < last_ratio);
}

/// Figure 11 shape: 1:1000, class clustering — hash joins and NOJOIN
/// comparable; NL dreadful.
#[test]
fn fig11_class_1to1000_shape() {
    let fig = joins::run_join_figure(DbShape::Db1, Organization::ClassClustered, 50, 1);
    for (pat, prov) in joins::CELLS {
        let ranked = fig.ranking(pat, prov);
        let best = ranked[0].1;
        let winner = ranked[0].0;
        assert!(
            matches!(winner, JoinAlgo::Phj | JoinAlgo::Chj),
            "({pat},{prov}): winner {winner:?}"
        );
        let nojoin = ranked
            .iter()
            .find(|(a, _)| *a == JoinAlgo::Nojoin)
            .unwrap()
            .1;
        assert!(
            nojoin < 2.5 * best,
            "({pat},{prov}): NOJOIN must stay comparable ({:.1}x)",
            nojoin / best
        );
        let nl = ranked.iter().find(|(a, _)| *a == JoinAlgo::Nl).unwrap().1;
        // The paper's NL margins per cell: 15.8x, 80x, 1.63x, 7x — the
        // (90,10) cell is the only close one.
        let nl_floor = if (pat, prov) == (90, 10) { 1.25 } else { 3.0 };
        assert!(
            nl > nl_floor * best,
            "({pat},{prov}): NL must trail clearly ({:.1}x)",
            nl / best
        );
    }
}

/// Figure 12 shape: 1:3, class clustering — hash joins win low
/// selectivities; at (90,90) the tables swap and NOJOIN wins.
#[test]
fn fig12_class_1to3_shape() {
    let fig = joins::run_join_figure(DbShape::Db2, Organization::ClassClustered, 100, 1);
    // (10,10): hash joins far ahead of navigation.
    let ranked = fig.ranking(10, 10);
    assert!(matches!(ranked[0].0, JoinAlgo::Phj | JoinAlgo::Chj));
    let best = ranked[0].1;
    for nav in [JoinAlgo::Nl, JoinAlgo::Nojoin] {
        let t = ranked.iter().find(|(a, _)| *a == nav).unwrap().1;
        assert!(t > 4.0 * best, "{nav:?} must be dreadful at (10,10)");
    }
    // (90,90): the swap inversion — NOJOIN beats both hash joins.
    let ranked = fig.ranking(90, 90);
    assert_eq!(ranked[0].0, JoinAlgo::Nojoin, "ranking: {ranked:?}");
    // And everything is within ~2x (the paper: 1.0 to 1.7).
    assert!(ranked[3].1 < 3.0 * ranked[0].1);
}

/// Figures 13/14 shape: composition clustering — NL wins nearly
/// everywhere; the Fig 14 (10,90) exception goes to NOJOIN.
#[test]
fn fig13_14_composition_shape() {
    let db1 = joins::run_join_figure(DbShape::Db1, Organization::Composition, 50, 1);
    for (pat, prov) in [(10, 10), (90, 10)] {
        assert_eq!(db1.winner(pat, prov).0, JoinAlgo::Nl, "db1 ({pat},{prov})");
    }
    let db2 = joins::run_join_figure(DbShape::Db2, Organization::Composition, 100, 1);
    for (pat, prov) in [(10, 10), (90, 10), (90, 90)] {
        assert_eq!(db2.winner(pat, prov).0, JoinAlgo::Nl, "db2 ({pat},{prov})");
    }
    // The paper's Figure 14 row 2: NOJOIN wins (pat 10, prov 90).
    assert_eq!(db2.winner(10, 90).0, JoinAlgo::Nojoin);
    // And PHJ swaps there (its table outgrows the budget).
    let ranked = db2.ranking(10, 90);
    let phj = ranked.iter().find(|(a, _)| *a == JoinAlgo::Phj).unwrap().1;
    assert!(
        phj > 3.0 * ranked[0].1,
        "PHJ must swap at (10,90): {ranked:?}"
    );
}

/// §5.2: the randomized organization is slower than class clustering
/// but crowns the same kind of winner.
#[test]
fn random_org_slower_same_winners() {
    let class = joins::run_join_figure(DbShape::Db2, Organization::ClassClustered, 200, 1);
    let random = joins::run_join_figure(DbShape::Db2, Organization::Randomized, 200, 1);
    let (cw, ct) = class.winner(10, 10);
    let (rw, rt) = random.winner(10, 10);
    assert!(matches!(cw, JoinAlgo::Phj | JoinAlgo::Chj));
    assert!(matches!(rw, JoinAlgo::Phj | JoinAlgo::Chj));
    assert!(
        rt > 1.2 * ct && rt < 8.0 * ct,
        "random {rt:.1}s vs class {ct:.1}s (paper: 1.5-2x)"
    );
}

/// The cost-based planner picks a plan whose *actual* cost is close to
/// the actual best, across organizations and selectivities.
#[test]
fn cost_based_planner_is_near_optimal() {
    for org in Organization::all() {
        let mut db = tq_bench::build_db(DbShape::Db2, org, 200);
        let profile = physical_profile(&db);
        let model = db.store.stack().model().clone();
        for (pat, prov) in [(10, 10), (90, 90)] {
            let choice = choose_join(
                Strategy::CostBased,
                &profile,
                &model,
                prov as f64 / 100.0,
                pat as f64 / 100.0,
            );
            let mut actual: Vec<(JoinAlgo, f64)> = JoinAlgo::all()
                .into_iter()
                .map(|a| {
                    let cell = run_join_cell(&mut db, a, pat, prov, &Default::default());
                    (a, cell.secs)
                })
                .collect();
            actual.sort_by(|a, b| a.1.total_cmp(&b.1));
            let chosen = actual.iter().find(|(a, _)| *a == choice.algo).unwrap().1;
            assert!(
                chosen <= 2.0 * actual[0].1,
                "{org:?} ({pat},{prov}): planner chose {:?} at {chosen:.1}s, best was {:?} at {:.1}s",
                choice.algo,
                actual[0].0,
                actual[0].1
            );
        }
    }
}
