//! The executor's attribution invariant, enforced end to end: for
//! every join algorithm × physical organization at smoke scale, the
//! per-operator counter rows of a measured run sum **exactly** — field
//! for field, no rounding — to the query-level totals the harness
//! stores in the Figure 3 `Stat` record.

use tq_bench::harness::{build_db, join_spec, run_join_cell, run_join_cell_parallel, stat_record};
use tq_bench::JoinCell;
use tq_query::join::{smj, JoinContext, JoinOptions};
use tq_query::plan::chain_pipeline;
use tq_query::{JoinAlgo, OpKind, PlannerPolicy};
use tq_server::measure::{
    chain_stat_record, compile_chain_spec, measure_update_current, run_chain_cell,
    update_stat_record,
};
use tq_server::UpdateTarget;
use tq_statsdb::Stat;
use tq_workload::{Database, DbShape, Organization};

/// Asserts a stored `Stat`'s operator rows reproduce its query-level
/// fields — the invariant that makes the per-operator CSV trustworthy.
fn check_stat_rows(stat: &Stat, what: &str) {
    assert!(!stat.operators.is_empty(), "{what}: breakdown must export");
    let d2sc: u64 = stat.operators.iter().map(|o| o.d2sc_read_pages).sum();
    let sc2cc: u64 = stat.operators.iter().map(|o| o.sc2cc_read_pages).sum();
    let misses: u64 = stat.operators.iter().map(|o| o.client_misses).sum();
    let nanos: u64 = stat
        .operators
        .iter()
        .map(|o| o.io_nanos + o.rpc_nanos + o.cpu_nanos + o.swap_nanos)
        .sum();
    assert_eq!(d2sc, stat.d2sc_read_pages, "{what}: d2sc_read_pages");
    assert_eq!(sc2cc, stat.sc2cc_read_pages, "{what}: sc2cc_read_pages");
    assert_eq!(sc2cc, stat.rpcs_number, "{what}: rpcs_number");
    assert_eq!(misses, stat.cc_pagefaults, "{what}: cc_pagefaults");
    assert_eq!(
        nanos as f64 / 1e9,
        stat.elapsed_time,
        "{what}: elapsed_time"
    );
}

/// Asserts one measured cell's trace sums to its run-wide counters and
/// that its `Stat` record's operator rows reproduce the query fields.
fn check_cell(db: &Database, cell: &JoinCell, pat: u32, prov: u32, what: &str) {
    let total = cell.report.trace.total();
    // Field-for-field against the run's I/O counters (all 8 fields,
    // including the cache hit/miss tallies the rates derive from).
    assert_eq!(total.io, cell.io, "{what}: I/O counters must sum exactly");
    // The simulated clock: the rows' nanoseconds are the elapsed time.
    assert_eq!(
        total.elapsed_secs(),
        cell.secs,
        "{what}: elapsed time must be fully attributed"
    );
    // Attribution is complete: nothing landed outside an operator.
    assert!(
        cell.report.trace.find(OpKind::Other).is_none(),
        "{what}: no counters may land outside operator scopes"
    );
    // And the same invariant on the stored record.
    check_stat_rows(&stat_record(db, cell, pat, prov), what);
}

#[test]
fn every_algo_and_clustering_sums_to_the_query_stat() {
    for (shape, scale) in [(DbShape::Db1, 200), (DbShape::Db2, 1000)] {
        for org in [
            Organization::ClassClustered,
            Organization::Randomized,
            Organization::Composition,
        ] {
            let master = build_db(shape, org, scale);
            for algo in JoinAlgo::all() {
                let mut db = master.clone();
                let cell = run_join_cell(&mut db, algo, 10, 90, &JoinOptions::default());
                let what = format!("{shape:?}/{org:?}/{}", algo.label());
                check_cell(&db, &cell, 10, 90, &what);
            }
        }
    }
}

#[test]
fn parallel_merged_traces_sum_to_the_query_stat() {
    // The morsel-parallel path under the same microscope: the merged
    // trace (coordinator prefix + every worker's partial + suffix)
    // must account for every counter in the run's combined window —
    // coordinator store *plus* worker store deltas — with nothing in
    // an `Other` row, at every degree, for every algorithm ×
    // clustering. Degree 1 short-circuits to the serial path, so it
    // doubles as the there-is-no-hidden-fork check.
    for org in [
        Organization::ClassClustered,
        Organization::Randomized,
        Organization::Composition,
    ] {
        let master = build_db(DbShape::Db2, org, 1000);
        for algo in JoinAlgo::all() {
            for degree in [1usize, 2, 4] {
                let mut db = master.clone();
                let cell = run_join_cell_parallel(
                    &mut db,
                    algo,
                    10,
                    90,
                    &JoinOptions::default(),
                    None,
                    degree,
                )
                .expect("no worker panics in a healthy run");
                let what = format!("{org:?}/{} degree {degree}", algo.label());
                check_cell(&db, &cell, 10, 90, &what);
            }
        }
    }
}

#[test]
fn swap_heavy_and_hybrid_cells_sum_to_the_query_stat() {
    // (90,90) on DB2/class drives the hash tables past the operator
    // budget: swap-fault nanoseconds must be attributed too.
    let master = build_db(DbShape::Db2, Organization::ClassClustered, 1000);
    for algo in [JoinAlgo::Phj, JoinAlgo::Chj] {
        for hybrid in [false, true] {
            let mut db = master.clone();
            let opts = JoinOptions {
                hybrid_hashing: hybrid,
                ..Default::default()
            };
            let cell = run_join_cell(&mut db, algo, 90, 90, &opts);
            let what = format!("{} hybrid={hybrid}", algo.label());
            check_cell(&db, &cell, 90, 90, &what);
        }
    }
}

#[test]
fn sort_merge_join_trace_sums_to_its_window() {
    // SMJ is not dispatched by `run_join`; measure it directly and
    // compare the trace against the whole post-reset window.
    let mut db = build_db(DbShape::Db2, Organization::ClassClustered, 1000);
    let spec = join_spec(&db, 90, 90);
    let parent_index = db.idx_provider_upin.clone();
    let child_index = db.idx_patient_mrn.clone();
    db.store.cold_restart();
    db.store.reset_metrics();
    let report = {
        let mut ctx = JoinContext {
            store: &mut db.store,
            parent_index: &parent_index,
            child_index: &child_index,
        };
        smj::run(&mut ctx, &spec, &JoinOptions::default(), false)
    };
    assert!(report.results > 0);
    let total = report.trace.total();
    assert_eq!(total.io, db.store.stats());
    assert_eq!(total.elapsed_secs(), db.store.clock().elapsed_secs());
    assert!(report.trace.find(OpKind::Sort).is_some());
    assert!(report.trace.find(OpKind::Merge).is_some());
    assert!(report.trace.find(OpKind::Other).is_none());
}

#[test]
fn multiway_chains_sum_to_the_query_stat_at_any_batch() {
    // The N-way pipeline under the same microscope: for every policy at
    // depths 3 and 4, each join step's trace rows — plus the Teardown
    // drain — sum exactly to the query-level Stat, and the whole Stat
    // is byte-identical between the scalar path (batch 1) and the
    // batched default.
    let master = build_db(DbShape::Db2, Organization::ClassClustered, 1000);
    let mut per_batch: Vec<Vec<Stat>> = Vec::new();
    for batch in [1usize, 1024] {
        tq_query::exec::set_default_batch_size(batch);
        let mut stats = Vec::new();
        for policy in PlannerPolicy::all() {
            for depth in [3u32, 4] {
                let mut db = master.clone();
                let cell = run_chain_cell(&mut db, depth, 30, 60, policy, None).unwrap();
                let what = format!("depth {depth} {policy:?} batch {batch}");
                assert!(cell.results > 0, "{what}: selected nothing");

                let total = cell.report.trace.total();
                assert_eq!(total.io, cell.io, "{what}: I/O counters must sum exactly");
                assert_eq!(
                    total.elapsed_secs(),
                    cell.secs,
                    "{what}: elapsed time must be fully attributed"
                );
                assert!(
                    cell.report.trace.find(OpKind::Other).is_none(),
                    "{what}: no counters may land outside operator scopes"
                );
                assert!(
                    cell.report.trace.find(OpKind::Teardown).is_some(),
                    "{what}: the end-of-query drain must have its own row"
                );

                // The trace rows are exactly the plan's pipeline — one
                // row per join step's operators — plus the teardown.
                // The executor merges a re-entered (kind, label) scope
                // into its first row (a parent-ward hash step re-probes
                // the step it extends), so the expectation keeps first
                // occurrences only.
                let spec = compile_chain_spec(&db, depth, 30, 60).unwrap();
                let mut want = chain_pipeline(&spec, &cell.choice.plan);
                let mut seen = std::collections::HashSet::new();
                want.retain(|row| seen.insert(row.clone()));
                let got: Vec<(OpKind, String)> = cell
                    .report
                    .trace
                    .ops
                    .iter()
                    .filter(|op| op.kind != OpKind::Teardown)
                    .map(|op| (op.kind, op.label.clone()))
                    .collect();
                assert_eq!(got, want, "{what}: trace rows are the plan's pipeline");

                let stat = chain_stat_record(&db, &cell, depth, 30, 60);
                assert!(stat.algo.starts_with("CHAIN-"), "{}", stat.algo);
                check_stat_rows(&stat, &what);
                stats.push(stat);
            }
        }
        per_batch.push(stats);
    }
    tq_query::exec::set_default_batch_size(tq_query::exec::DEFAULT_BATCH_SIZE);
    assert_eq!(
        per_batch[0], per_batch[1],
        "chain Stats must be byte-identical at batch 1 and 1024"
    );
}

#[test]
fn update_statements_sum_to_their_stat() {
    // The same attribution invariant for write statements: the update
    // executor's trace (IndexRangeScan feeding Update, plus the
    // teardown drain) must account for every counter in its window,
    // and the exported `Stat` (algo "UPDATE") must reproduce the sums.
    for org in [
        Organization::ClassClustered,
        Organization::Randomized,
        Organization::Composition,
    ] {
        let master = build_db(DbShape::Db2, org, 1000);
        for (target, sel, delta) in [
            (UpdateTarget::Patients, 10, 5),  // re-keys the num index
            (UpdateTarget::Patients, 100, 0), // touch-update, full range
            (UpdateTarget::Providers, 50, 0), // touch-update, other extent
        ] {
            let mut db = master.clone();
            let cell = measure_update_current(&mut db, target, sel, delta, None);
            let what = format!("{org:?}/{target:?} sel={sel} delta={delta}");
            assert!(cell.outcome.updated > 0, "{what}: matched no rows");
            assert_eq!(
                cell.outcome.updated, cell.outcome.scanned,
                "{what}: every scanned row is rewritten"
            );

            let total = cell.outcome.trace.total();
            assert_eq!(total.io, cell.io, "{what}: I/O counters must sum exactly");
            assert_eq!(
                total.elapsed_secs(),
                cell.secs,
                "{what}: elapsed time must be fully attributed"
            );
            assert!(
                cell.outcome.trace.find(OpKind::Other).is_none(),
                "{what}: no counters may land outside operator scopes"
            );
            assert!(
                cell.outcome.trace.find(OpKind::Update).is_some(),
                "{what}: the statement's own operator row must exist"
            );

            let stat = update_stat_record(&db, &cell, sel, delta, true);
            assert_eq!(stat.algo, "UPDATE");
            check_stat_rows(&stat, &what);
        }
    }
}
