//! Batching is an execution detail, not a cost-model change: this
//! differential property test runs a seeded query matrix once per
//! batch size (scalar `1`, an awkward odd `7`, and the default
//! `1024`) and asserts the captured `Stat` records, per-operator
//! trace rows, and raw counters are **byte-identical** — for every
//! join algorithm × physical organization, the hybrid-hashing spill
//! path, sort-merge, all three selection scans, and the update path.
//!
//! The capture is a `Debug`-formatted string per cell, so "identical"
//! means every field, every row, every bit of the simulated clock —
//! not a tolerance.

use tq_bench::harness::{build_db, join_spec, operator_rows, run_join_cell, stat_record};
use tq_query::exec::{set_default_batch_size, DEFAULT_BATCH_SIZE};
use tq_query::join::{smj, JoinContext, JoinOptions};
use tq_query::spec::{CmpOp, ResultMode, Selection};
use tq_query::{index_scan, seq_scan, sorted_index_scan, JoinAlgo};
use tq_server::measure::{measure_update_current, update_stat_record};
use tq_server::UpdateTarget;
use tq_simrng::SimRng;
use tq_workload::{patient_attr, Database, DbShape, Organization};

const PCTS: [u32; 4] = [10, 30, 60, 90];

fn draw_pct(rng: &mut SimRng) -> u32 {
    PCTS[rng.below(PCTS.len() as u64) as usize]
}

fn selection(db: &Database, pct: u32, residual: bool) -> Selection {
    Selection {
        collection: "Patients".into(),
        attr: patient_attr::NUM,
        cmp: CmpOp::Lt,
        residual: if residual {
            vec![tq_query::AttrPredicate {
                attr: patient_attr::AGE,
                cmp: CmpOp::Ge,
                key: 0,
            }]
        } else {
            vec![]
        },
        key: db.num_selectivity_key(pct),
        project: patient_attr::AGE,
        result_mode: ResultMode::Persistent,
    }
}

/// Runs the whole matrix under the process-default batch size and
/// returns one `Debug`-rendered fingerprint per cell. The `SimRng`
/// seed is fixed, so every batch size sees the *same* queries.
fn run_matrix() -> Vec<(String, String)> {
    let mut rng = SimRng::seed_from_u64(0x0b5e55ed);
    let mut out = Vec::new();

    for (shape, scale) in [(DbShape::Db1, 200), (DbShape::Db2, 1000)] {
        for org in [
            Organization::ClassClustered,
            Organization::Randomized,
            Organization::Composition,
        ] {
            let master = build_db(shape, org, scale);
            for algo in JoinAlgo::all() {
                let (pat, prov) = (draw_pct(&mut rng), draw_pct(&mut rng));
                let mut db = master.clone();
                let cell = run_join_cell(&mut db, algo, pat, prov, &JoinOptions::default());
                out.push((
                    format!("{shape:?}/{org:?}/{} ({pat},{prov})", algo.label()),
                    format!(
                        "{:?} {:?} {:?} {:?} {:?}",
                        cell.secs.to_bits(),
                        cell.results,
                        cell.io,
                        stat_record(&db, &cell, pat, prov),
                        operator_rows(&cell.report.trace),
                    ),
                ));
            }
        }
    }

    // The hybrid-hashing spill path, at the selectivities that drive
    // the hash tables past the operator budget.
    let master = build_db(DbShape::Db2, Organization::ClassClustered, 1000);
    for algo in [JoinAlgo::Phj, JoinAlgo::Chj] {
        let mut db = master.clone();
        let opts = JoinOptions {
            hybrid_hashing: true,
            ..Default::default()
        };
        let cell = run_join_cell(&mut db, algo, 90, 90, &opts);
        out.push((
            format!("hybrid/{}", algo.label()),
            format!(
                "{:?} {:?} {:?} {:?}",
                cell.secs.to_bits(),
                cell.results,
                cell.io,
                operator_rows(&cell.report.trace),
            ),
        ));
    }

    // Sort-merge is not dispatched by `run_join`; measure it directly.
    {
        let mut db = master.clone();
        let spec = join_spec(&db, 90, 90);
        let parent_index = db.idx_provider_upin.clone();
        let child_index = db.idx_patient_mrn.clone();
        db.store.cold_restart();
        db.store.reset_metrics();
        let report = {
            let mut ctx = JoinContext {
                store: &mut db.store,
                parent_index: &parent_index,
                child_index: &child_index,
            };
            smj::run(&mut ctx, &spec, &JoinOptions::default(), false)
        };
        out.push((
            "smj".into(),
            format!(
                "{:?} {:?} {:?} {:?}",
                report.results,
                db.store.stats(),
                db.store.clock().elapsed_secs().to_bits(),
                operator_rows(&report.trace),
            ),
        ));
    }

    // All three selection scans (with and without a residual).
    {
        let mut db = build_db(DbShape::Db1, Organization::ClassClustered, 200);
        let num_idx = db.idx_patient_num.clone();
        let capture = |name: &str,
                       residual: bool,
                       db: &mut Database,
                       report: tq_query::SelectReport,
                       secs: f64| {
            (
                format!("{name} residual={residual}"),
                format!("{:?} {:?} {:?}", report, db.store.stats(), secs.to_bits()),
            )
        };
        for residual in [false, true] {
            let sel = selection(&db, draw_pct(&mut rng), residual);
            let (r, s) = db.measure_cold(|db| seq_scan(&mut db.store, &sel, true));
            out.push(capture("seq_scan", residual, &mut db, r, s));
            let (r, s) = db.measure_cold(|db| index_scan(&mut db.store, &num_idx, &sel, true));
            out.push(capture("index_scan", residual, &mut db, r, s));
            let (r, s) =
                db.measure_cold(|db| sorted_index_scan(&mut db.store, &num_idx, &sel, true));
            out.push(capture("sorted_index_scan", residual, &mut db, r, s));
        }
    }

    // The update path: a re-keying update and a touch-update.
    for (target, sel, delta) in [
        (UpdateTarget::Patients, 10, 5),
        (UpdateTarget::Providers, 50, 0),
    ] {
        let mut db = master.clone();
        let cell = measure_update_current(&mut db, target, sel, delta, None);
        out.push((
            format!("update/{target:?} sel={sel} delta={delta}"),
            format!(
                "{:?} {:?} {:?} {:?} {:?} {:?}",
                cell.outcome.updated,
                cell.outcome.scanned,
                cell.io,
                cell.secs.to_bits(),
                update_stat_record(&db, &cell, sel, delta, true),
                operator_rows(&cell.outcome.trace),
            ),
        ));
    }

    out
}

#[test]
fn batched_and_scalar_paths_are_byte_identical() {
    // One process-global knob, one test: integration tests compile to
    // their own binary, so nothing else races the default.
    set_default_batch_size(1);
    let scalar = run_matrix();
    // 24 join cells + 2 hybrid + smj + 6 selections + 2 updates.
    assert_eq!(scalar.len(), 35, "the matrix must actually cover cells");
    for batch in [7, DEFAULT_BATCH_SIZE] {
        set_default_batch_size(batch);
        let batched = run_matrix();
        assert_eq!(scalar.len(), batched.len());
        for ((name_s, fp_s), (name_b, fp_b)) in scalar.iter().zip(&batched) {
            assert_eq!(name_s, name_b, "matrix order must be deterministic");
            assert_eq!(
                fp_s, fp_b,
                "{name_s}: TQ_BATCH={batch} must be byte-identical to scalar"
            );
        }
    }
    set_default_batch_size(DEFAULT_BATCH_SIZE);
}
