//! Shape tests for the extension experiments: hybrid hashing (§5.1's
//! untested fix) and the association-ordered organization (§5.3's
//! proposal).

use tq_bench::figures::{assoc, hybrid};

/// Hybrid hashing removes every swap fault and beats the plain variant
/// by a wide margin on the swap-bound cells.
#[test]
fn hybrid_hashing_rescues_the_swap_cells() {
    let fig = hybrid::run(100, 1);
    for row in &fig.rows {
        assert!(row.plain.1 > 0, "{}: the plain cell must swap", row.label);
        assert!(row.hybrid.1 > 1, "{}: hybrid must partition", row.label);
        assert!(
            row.hybrid.0 < row.plain.0 / 2.0,
            "{}: hybrid {:.1}s vs plain {:.1}s",
            row.label,
            row.hybrid.0,
            row.plain.0
        );
    }
    // In the class-clustered Figure 12 cell, hybrid hashing reclaims
    // the win from navigation (the paper's conjecture).
    let class_cells: Vec<_> = fig
        .rows
        .iter()
        .filter(|r| r.label.contains("class"))
        .collect();
    assert!(!class_cells.is_empty());
    for row in class_cells {
        assert!(
            row.hybrid.0 < row.best_navigation_secs,
            "{}: hybrid {:.1}s must beat navigation {:.1}s",
            row.label,
            row.hybrid.0,
            row.best_navigation_secs
        );
    }
}

/// The association-ordered organization behaves as the paper predicts:
/// selections like class clustering, navigation like composition.
#[test]
fn association_ordered_matches_the_papers_prediction() {
    let fig = assoc::run(100, 1);
    // Selections: like class (within 25%), far better than raw
    // composition would be without the shared-file discount.
    let sel_ratio = fig.assoc.selection_secs / fig.class.selection_secs;
    assert!(
        (0.8..1.25).contains(&sel_ratio),
        "selection must match class clustering ({sel_ratio:.2}x)"
    );
    // NL: like composition (and far better than class).
    assert!(
        fig.assoc.nl_secs < 2.0 * fig.composition.nl_secs,
        "NL assoc {:.1}s vs composition {:.1}s",
        fig.assoc.nl_secs,
        fig.composition.nl_secs
    );
    assert!(
        fig.assoc.nl_secs < fig.class.nl_secs / 3.0,
        "NL assoc {:.1}s vs class {:.1}s",
        fig.assoc.nl_secs,
        fig.class.nl_secs
    );
    // NOJOIN keeps most of the composition advantage over class.
    assert!(
        fig.assoc.nojoin_secs < fig.class.nojoin_secs,
        "NOJOIN assoc {:.1}s vs class {:.1}s",
        fig.assoc.nojoin_secs,
        fig.class.nojoin_secs
    );
    // Hash joins sit much nearer class clustering than NL-under-class
    // style penalties: no worse than half the composition overhead
    // beyond class.
    assert!(
        fig.assoc.phj_secs < fig.composition.phj_secs,
        "PHJ assoc {:.1}s vs composition {:.1}s",
        fig.assoc.phj_secs,
        fig.composition.phj_secs
    );
}
