//! Microbenchmarks: real wall-time of the engine primitives and of the
//! four join algorithms (simulated time is what the figures report;
//! these benches track the simulator's own speed).
//!
//! Criterion is unavailable in the offline build environment, so this
//! is a self-contained harness: each benchmark runs a short warmup,
//! then enough iterations to fill ~0.2 s, and reports mean wall time
//! per iteration. Run with `cargo bench -p tq-bench`.

use std::hint::black_box;
use std::time::{Duration, Instant};
use tq_bench::{build_db, run_join_cell};
use tq_index::BTreeIndex;
use tq_objstore::{record, AttrType, ObjectHeader, Rid, Schema, Value};
use tq_pagestore::{
    CacheConfig, CostModel, FileId, LruCache, PageId, SlottedPage, StorageStack, PAGE_SIZE,
};
use tq_query::{JoinAlgo, JoinOptions};
use tq_workload::{DbShape, Organization};

/// Times `f` adaptively and prints one result line.
fn bench(name: &str, mut f: impl FnMut()) {
    // Warmup + calibration: how many iterations fit 50 ms?
    let start = Instant::now();
    let mut calib = 0u64;
    while start.elapsed() < Duration::from_millis(50) {
        f();
        calib += 1;
    }
    let iters = calib.clamp(1, 1_000_000) * 4;
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let per_iter = start.elapsed().as_secs_f64() / iters as f64;
    let (value, unit) = if per_iter >= 1e-3 {
        (per_iter * 1e3, "ms")
    } else if per_iter >= 1e-6 {
        (per_iter * 1e6, "µs")
    } else {
        (per_iter * 1e9, "ns")
    };
    println!("{name:<40} {value:>10.3} {unit}/iter  ({iters} iters)");
}

fn bench_slotted_page() {
    let rec = [7u8; 40];
    bench("page/insert_40B_until_full", || {
        let mut page = SlottedPage::new();
        while page.insert(&rec, PAGE_SIZE).is_some() {}
        black_box(page.live_records());
    });
    let mut page = SlottedPage::new();
    let mut slots = Vec::new();
    while let Some(s) = page.insert(&[1u8; 40], PAGE_SIZE) {
        slots.push(s);
    }
    let mut i = 0;
    bench("page/read_slot", || {
        i = (i + 1) % slots.len();
        black_box(page.read(slots[i]));
    });
}

fn bench_lru() {
    let mut lru: LruCache<u64> = LruCache::new(8192);
    for k in 0..8192u64 {
        lru.insert(k);
    }
    let mut x = 0x9E3779B97F4A7C15u64;
    bench("lru/touch_insert_8k", || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let k = x % 16384;
        if !lru.touch(k) {
            lru.insert(k);
        }
    });
}

fn patient_schema() -> (Schema, Vec<Value>) {
    let mut schema = Schema::new();
    let provider = schema.add_class("Provider", vec![("name", AttrType::Str)]);
    schema.add_class(
        "Patient",
        vec![
            ("name", AttrType::Str),
            ("mrn", AttrType::Int),
            ("age", AttrType::Int),
            ("sex", AttrType::Char),
            ("random_integer", AttrType::Int),
            ("num", AttrType::Int),
            ("primary_care_provider", AttrType::Ref(provider)),
        ],
    );
    let values = vec![
        Value::Str("pat-123456......".into()),
        Value::Int(123_456),
        Value::Int(42),
        Value::Char(b'F'),
        Value::Int(777),
        Value::Int(999_999),
        Value::Ref(Rid::new(
            PageId {
                file: FileId(0),
                page_no: 17,
            },
            3,
        )),
    ];
    (schema, values)
}

fn bench_record_codec() {
    let (schema, values) = patient_schema();
    let class = schema.class_by_name("Patient").unwrap();
    let header = ObjectHeader::new(class, true);
    let bytes = record::encode(schema.class(class), &header, &values);
    bench("record/encode_patient", || {
        black_box(record::encode(schema.class(class), &header, &values));
    });
    bench("record/decode_patient", || {
        black_box(record::decode(schema.class(class), &bytes).unwrap());
    });
}

fn bench_btree() {
    let entries: Vec<(i64, Rid)> = (0..100_000i64)
        .map(|i| {
            (
                i,
                Rid::new(
                    PageId {
                        file: FileId(0),
                        page_no: (i / 50) as u32,
                    },
                    (i % 50) as u16,
                ),
            )
        })
        .collect();
    bench("btree/bulk_build_100k", || {
        let mut stack = StorageStack::new(CostModel::free(), CacheConfig::default());
        black_box(BTreeIndex::bulk_build(&mut stack, 1, "i", true, &entries));
    });
    let mut stack = StorageStack::new(CostModel::free(), CacheConfig::default());
    let tree = BTreeIndex::bulk_build(&mut stack, 1, "i", true, &entries);
    bench("btree/range_scan_10k_of_100k", || {
        let mut cursor = tree.range(&mut stack, 40_000, 49_999);
        let mut n = 0;
        while cursor.next(&mut stack).is_some() {
            n += 1;
        }
        black_box(n);
    });
}

fn bench_oql() {
    let text = "select [p.name, pa.age] from p in Providers, pa in p.clients \
                where pa.mrn < 200000 and p.upin < 200";
    bench("oql/parse_join_query", || {
        black_box(tq_query::oql::parse(text).unwrap());
    });
}

fn bench_swap_and_spill() {
    let mut sim = tq_query::SwapSim::new(64 << 20, 32 << 20);
    let mut x = 1u64;
    bench("swap/touch_oversized_region", || {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        black_box(sim.touch(x));
    });
    let pairs: Vec<(i64, Rid)> = (0..10_000i64)
        .map(|i| {
            (
                i,
                Rid::new(
                    PageId {
                        file: FileId(0),
                        page_no: i as u32,
                    },
                    0,
                ),
            )
        })
        .collect();
    bench("spill/write_read_10k_pairs", || {
        let mut stack = StorageStack::new(CostModel::free(), CacheConfig::default());
        let f = stack.create_file("spill");
        let mut w = tq_query::join::spill::SpillWriter::new(f);
        for &(k, r) in &pairs {
            w.push(&mut stack, k, r);
        }
        let run = w.finish(&mut stack);
        black_box(run.read_all(&mut stack).len());
    });
}

fn bench_batching() {
    use tq_objstore::ObjBatch;
    use tq_query::exec::{set_default_batch_size, DEFAULT_BATCH_SIZE};

    // The same rid stream through the scalar fetch/unref loop and
    // through the pooled batch arena — the per-call overhead the
    // batch protocol amortizes.
    let mut db = build_db(DbShape::Db2, Organization::ClassClustered, 2000);
    let rids: Vec<Rid> = {
        let mut cursor = db.store.collection_cursor("Patients");
        let mut out = Vec::new();
        while let Some(r) = cursor.next(db.store.stack_mut()) {
            out.push(r);
        }
        out
    };
    bench("batch/fetch_unref_scalar_loop", || {
        for &rid in &rids {
            let f = db.store.fetch(rid);
            black_box(f.object.header.is_deleted());
            db.store.unref(rid);
        }
    });
    let mut arena = ObjBatch::default();
    bench("batch/fetch_batch_1024", || {
        for chunk in rids.chunks(1024) {
            db.store.fetch_batch(chunk, &mut arena);
            black_box(arena.len());
            db.store.release_batch(&mut arena);
        }
    });

    // A full PHJ cell — build + probe + emit — on the scalar path vs
    // the batched pipeline (probe-side gather fetches and deferred
    // emits are where the time goes).
    for (name, b) in [("scalar", 1), ("batched", DEFAULT_BATCH_SIZE)] {
        set_default_batch_size(b);
        bench(&format!("batch/phj_hash_probe_cell_{name}"), || {
            black_box(run_join_cell(
                &mut db,
                JoinAlgo::Phj,
                50,
                50,
                &JoinOptions::default(),
            ));
        });
    }
    set_default_batch_size(DEFAULT_BATCH_SIZE);
}

fn bench_joins() {
    // Wall time of a full cold join on a 1/2000-scale 1:3 database.
    let mut db = build_db(DbShape::Db2, Organization::ClassClustered, 2000);
    for algo in JoinAlgo::all() {
        bench(
            &format!("join_wall_time_scale_1_2000/{}", algo.label()),
            || {
                black_box(run_join_cell(
                    &mut db,
                    algo,
                    50,
                    50,
                    &JoinOptions::default(),
                ));
            },
        );
    }
}

fn bench_database_build() {
    bench("build_wall_time/db2_scale_1_2000", || {
        black_box(build_db(DbShape::Db2, Organization::ClassClustered, 2000));
    });
}

fn main() {
    bench_slotted_page();
    bench_lru();
    bench_record_codec();
    bench_btree();
    bench_oql();
    bench_swap_and_spill();
    bench_batching();
    bench_joins();
    bench_database_build();
}
