//! Criterion microbenchmarks: real wall-time of the engine primitives
//! and of the four join algorithms (simulated time is what the figures
//! report; these benches track the simulator's own speed).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use tq_bench::{build_db, run_join_cell};
use tq_index::BTreeIndex;
use tq_objstore::{record, AttrType, ObjectHeader, Rid, Schema, Value};
use tq_pagestore::{
    CacheConfig, CostModel, FileId, LruCache, PageId, SlottedPage, StorageStack, PAGE_SIZE,
};
use tq_query::{JoinAlgo, JoinOptions};
use tq_workload::{DbShape, Organization};

fn bench_slotted_page(c: &mut Criterion) {
    c.bench_function("page/insert_40B_until_full", |b| {
        let rec = [7u8; 40];
        b.iter_batched(
            SlottedPage::new,
            |mut page| {
                while page.insert(&rec, PAGE_SIZE).is_some() {}
                black_box(page.live_records())
            },
            BatchSize::SmallInput,
        )
    });
    c.bench_function("page/read_slot", |b| {
        let mut page = SlottedPage::new();
        let mut slots = Vec::new();
        while let Some(s) = page.insert(&[1u8; 40], PAGE_SIZE) {
            slots.push(s);
        }
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % slots.len();
            black_box(page.read(slots[i]))
        })
    });
}

fn bench_lru(c: &mut Criterion) {
    c.bench_function("lru/touch_insert_8k", |b| {
        let mut lru: LruCache<u64> = LruCache::new(8192);
        for k in 0..8192u64 {
            lru.insert(k);
        }
        let mut x = 0x9E3779B97F4A7C15u64;
        b.iter(|| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let k = x % 16384;
            if !lru.touch(k) {
                lru.insert(k);
            }
        })
    });
}

fn patient_schema() -> (Schema, Vec<Value>) {
    let mut schema = Schema::new();
    let provider = schema.add_class("Provider", vec![("name", AttrType::Str)]);
    schema.add_class(
        "Patient",
        vec![
            ("name", AttrType::Str),
            ("mrn", AttrType::Int),
            ("age", AttrType::Int),
            ("sex", AttrType::Char),
            ("random_integer", AttrType::Int),
            ("num", AttrType::Int),
            ("primary_care_provider", AttrType::Ref(provider)),
        ],
    );
    let values = vec![
        Value::Str("pat-123456......".into()),
        Value::Int(123_456),
        Value::Int(42),
        Value::Char(b'F'),
        Value::Int(777),
        Value::Int(999_999),
        Value::Ref(Rid::new(
            PageId {
                file: FileId(0),
                page_no: 17,
            },
            3,
        )),
    ];
    (schema, values)
}

fn bench_record_codec(c: &mut Criterion) {
    let (schema, values) = patient_schema();
    let class = schema.class_by_name("Patient").unwrap();
    let header = ObjectHeader::new(class, true);
    let bytes = record::encode(schema.class(class), &header, &values);
    c.bench_function("record/encode_patient", |b| {
        b.iter(|| black_box(record::encode(schema.class(class), &header, &values)))
    });
    c.bench_function("record/decode_patient", |b| {
        b.iter(|| black_box(record::decode(schema.class(class), &bytes).unwrap()))
    });
}

fn bench_btree(c: &mut Criterion) {
    let entries: Vec<(i64, Rid)> = (0..100_000i64)
        .map(|i| {
            (
                i,
                Rid::new(
                    PageId {
                        file: FileId(0),
                        page_no: (i / 50) as u32,
                    },
                    (i % 50) as u16,
                ),
            )
        })
        .collect();
    c.bench_function("btree/bulk_build_100k", |b| {
        b.iter_batched(
            || StorageStack::new(CostModel::free(), CacheConfig::default()),
            |mut stack| black_box(BTreeIndex::bulk_build(&mut stack, 1, "i", true, &entries)),
            BatchSize::LargeInput,
        )
    });
    c.bench_function("btree/range_scan_10k_of_100k", |b| {
        let mut stack = StorageStack::new(CostModel::free(), CacheConfig::default());
        let tree = BTreeIndex::bulk_build(&mut stack, 1, "i", true, &entries);
        b.iter(|| {
            let mut cursor = tree.range(&mut stack, 40_000, 49_999);
            let mut n = 0;
            while cursor.next(&mut stack).is_some() {
                n += 1;
            }
            black_box(n)
        })
    });
}

fn bench_oql(c: &mut Criterion) {
    let text = "select [p.name, pa.age] from p in Providers, pa in p.clients \
                where pa.mrn < 200000 and p.upin < 200";
    c.bench_function("oql/parse_join_query", |b| {
        b.iter(|| black_box(tq_query::oql::parse(text).unwrap()))
    });
}

fn bench_swap_and_spill(c: &mut Criterion) {
    c.bench_function("swap/touch_oversized_region", |b| {
        let mut sim = tq_query::SwapSim::new(64 << 20, 32 << 20);
        let mut x = 1u64;
        b.iter(|| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            black_box(sim.touch(x))
        })
    });
    c.bench_function("spill/write_read_10k_pairs", |b| {
        let pairs: Vec<(i64, Rid)> = (0..10_000i64)
            .map(|i| {
                (
                    i,
                    Rid::new(
                        PageId {
                            file: FileId(0),
                            page_no: i as u32,
                        },
                        0,
                    ),
                )
            })
            .collect();
        b.iter_batched(
            || {
                let mut stack = StorageStack::new(CostModel::free(), CacheConfig::default());
                let f = stack.create_file("spill");
                (stack, f)
            },
            |(mut stack, f)| {
                let mut w = tq_query::join::spill::SpillWriter::new(f);
                for &(k, r) in &pairs {
                    w.push(&mut stack, k, r);
                }
                let run = w.finish(&mut stack);
                black_box(run.read_all(&mut stack).len())
            },
            BatchSize::LargeInput,
        )
    });
}

fn bench_joins(c: &mut Criterion) {
    // Wall time of a full cold join on a 1/2000-scale 1:3 database.
    let mut db = build_db(DbShape::Db2, Organization::ClassClustered, 2000);
    let mut group = c.benchmark_group("join_wall_time_scale_1_2000");
    group.sample_size(20);
    for algo in JoinAlgo::all() {
        group.bench_function(algo.label(), |b| {
            b.iter(|| {
                black_box(run_join_cell(
                    &mut db,
                    algo,
                    50,
                    50,
                    &JoinOptions::default(),
                ))
            })
        });
    }
    group.finish();
}

fn bench_database_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("build_wall_time");
    group.sample_size(10);
    group.bench_function("db2_scale_1_2000", |b| {
        b.iter(|| black_box(build_db(DbShape::Db2, Organization::ClassClustered, 2000)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_slotted_page,
    bench_lru,
    bench_record_codec,
    bench_btree,
    bench_oql,
    bench_swap_and_spill,
    bench_joins,
    bench_database_build
);
criterion_main!(benches);
