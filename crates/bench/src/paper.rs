//! The paper's published numbers, transcribed.
//!
//! Every figure binary prints our measured values next to these, and
//! the shape tests assert the orderings/crossovers they encode. Times
//! are seconds on the authors' Sparc 20; we reproduce *shape*, not
//! absolute values.

use tq_query::JoinAlgo;
use tq_workload::{DbShape, Organization};

/// Figure 7 — sorted unclustered index vs. no index, DB1 Patients.
/// `(selectivity %, sorted index scan secs, no-index scan secs)`.
pub const FIG7_SORTED_VS_NOINDEX: [(u32, f64, f64); 4] = [
    (10, 343.49, 1352.99),
    (30, 591.49, 1467.75),
    (60, 1015.52, 1641.24),
    (90, 1648.62, 1908.24),
];

/// Figure 10 — hash-table size approximations.
/// `(algo, providers, fanout, pat sel %, prov sel %, MB)`.
pub const FIG10_HASH_SIZES: [(JoinAlgo, u64, u32, u32, u32, f64); 8] = [
    (JoinAlgo::Phj, 2_000, 1_000, 10, 10, 0.0128),
    (JoinAlgo::Phj, 2_000, 1_000, 90, 90, 0.1152),
    (JoinAlgo::Phj, 1_000_000, 3, 10, 10, 6.4),
    (JoinAlgo::Phj, 1_000_000, 3, 90, 90, 57.6),
    (JoinAlgo::Chj, 2_000, 1_000, 10, 10, 1.72),
    (JoinAlgo::Chj, 2_000, 1_000, 90, 90, 14.52),
    (JoinAlgo::Chj, 1_000_000, 3, 10, 10, 62.4),
    (JoinAlgo::Chj, 1_000_000, 3, 90, 90, 81.6),
];

/// One join-figure cell: selectivities and the paper's ranked results.
#[derive(Clone, Copy, Debug)]
pub struct PaperCell {
    /// Selectivity on patients, percent.
    pub pat: u32,
    /// Selectivity on providers, percent.
    pub prov: u32,
    /// `(algorithm, seconds)` — ranked fastest first, as printed in the
    /// paper.
    pub ranked: [(JoinAlgo, f64); 4],
}

use JoinAlgo::{Chj, Nl, Nojoin, Phj};

/// Figure 11 — one file per class, 2×10³ providers, 2×10⁶ patients.
pub const FIG11_CLASS_DB1: [PaperCell; 4] = [
    PaperCell {
        pat: 10,
        prov: 10,
        ranked: [(Phj, 89.83), (Chj, 101.05), (Nojoin, 125.90), (Nl, 1418.56)],
    },
    PaperCell {
        pat: 10,
        prov: 90,
        ranked: [
            (Chj, 154.09),
            (Phj, 154.57),
            (Nojoin, 191.51),
            (Nl, 12331.96),
        ],
    },
    PaperCell {
        pat: 90,
        prov: 10,
        ranked: [
            (Phj, 925.07),
            (Nojoin, 1266.31),
            (Chj, 1320.69),
            (Nl, 1509.19),
        ],
    },
    PaperCell {
        pat: 90,
        prov: 90,
        ranked: [
            (Phj, 1913.80),
            (Chj, 1956.35),
            (Nojoin, 2315.62),
            (Nl, 13423.38),
        ],
    },
];

/// Figure 12 — one file per class, 10⁶ providers, 3×10⁶ patients.
pub const FIG12_CLASS_DB2: [PaperCell; 4] = [
    PaperCell {
        pat: 10,
        prov: 10,
        ranked: [
            (Phj, 365.72),
            (Chj, 402.38),
            (Nojoin, 3550.62),
            (Nl, 4566.06),
        ],
    },
    PaperCell {
        pat: 10,
        prov: 90,
        ranked: [
            (Chj, 1286.18),
            (Nojoin, 3777.10),
            (Phj, 5723.28),
            (Nl, 41119.29),
        ],
    },
    PaperCell {
        pat: 90,
        prov: 10,
        ranked: [
            (Phj, 2676.37),
            (Nl, 4738.09),
            (Chj, 9457.91),
            (Nojoin, 31318.05),
        ],
    },
    PaperCell {
        pat: 90,
        prov: 90,
        ranked: [
            (Nojoin, 34708.13),
            (Nl, 43850.03),
            (Phj, 44188.33),
            (Chj, 58963.71),
        ],
    },
];

/// Figure 13 — composition cluster, 2×10³ providers, 2×10⁶ patients.
pub const FIG13_COMP_DB1: [PaperCell; 4] = [
    PaperCell {
        pat: 10,
        prov: 10,
        ranked: [(Nl, 92.78), (Nojoin, 961.88), (Chj, 971.84), (Phj, 980.42)],
    },
    PaperCell {
        pat: 10,
        prov: 90,
        ranked: [
            (Nl, 923.84),
            (Phj, 1042.16),
            (Chj, 1078.47),
            (Nojoin, 1090.98),
        ],
    },
    PaperCell {
        pat: 90,
        prov: 10,
        ranked: [
            (Nl, 155.17),
            (Phj, 1164.97),
            (Chj, 1221.29),
            (Nojoin, 1303.90),
        ],
    },
    PaperCell {
        pat: 90,
        prov: 90,
        ranked: [
            (Nl, 1665.51),
            (Phj, 1898.97),
            (Chj, 1993.88),
            (Nojoin, 2006.76),
        ],
    },
];

/// Figure 14 — composition cluster, 10⁶ providers, 3×10⁶ patients.
pub const FIG14_COMP_DB2: [PaperCell; 4] = [
    PaperCell {
        pat: 10,
        prov: 10,
        ranked: [
            (Nl, 165.97),
            (Nojoin, 1465.20),
            (Phj, 1566.68),
            (Chj, 1634.72),
        ],
    },
    PaperCell {
        pat: 10,
        prov: 90,
        ranked: [
            (Nojoin, 1572.40),
            (Nl, 1749.50),
            (Chj, 3181.43),
            (Phj, 8090.45),
        ],
    },
    PaperCell {
        pat: 90,
        prov: 10,
        ranked: [
            (Nl, 280.53),
            (Phj, 1932.78),
            (Nojoin, 1988.82),
            (Chj, 4993.11),
        ],
    },
    PaperCell {
        pat: 90,
        prov: 90,
        ranked: [
            (Nl, 2709.16),
            (Nojoin, 3332.08),
            (Phj, 10251.0),
            (Chj, 10761.14),
        ],
    },
];

/// The paper cells for a `(shape, organization)` pair, when published.
pub fn join_figure(shape: DbShape, org: Organization) -> Option<&'static [PaperCell; 4]> {
    match (shape, org) {
        (DbShape::Db1, Organization::ClassClustered) => Some(&FIG11_CLASS_DB1),
        (DbShape::Db2, Organization::ClassClustered) => Some(&FIG12_CLASS_DB2),
        (DbShape::Db1, Organization::Composition) => Some(&FIG13_COMP_DB1),
        (DbShape::Db2, Organization::Composition) => Some(&FIG14_COMP_DB2),
        // Randomized is only summarized in Fig 15; association-ordered
        // is our §5.3 extension — the paper never measured it.
        (_, Organization::Randomized) | (_, Organization::AssociationOrdered) => None,
    }
}

/// One Figure 15 row: winning algorithm and time per organization.
#[derive(Clone, Copy, Debug)]
pub struct Fig15Row {
    /// 1:1000 (`DbShape::Db1`) or 1:3 (`DbShape::Db2`).
    pub shape: DbShape,
    /// Selectivity on patients, percent.
    pub pat: u32,
    /// Selectivity on providers, percent.
    pub prov: u32,
    /// Winner and seconds under the randomized organization.
    pub random: (JoinAlgo, f64),
    /// Winner and seconds under class clustering.
    pub class: (JoinAlgo, f64),
    /// Winner and seconds under composition clustering.
    pub composition: (JoinAlgo, f64),
}

/// Figure 15 — summarizing results: winning algorithms.
pub const FIG15_WINNERS: [Fig15Row; 8] = [
    Fig15Row {
        shape: DbShape::Db1,
        pat: 10,
        prov: 10,
        random: (Phj, 158.67),
        class: (Phj, 89.83),
        composition: (Nl, 92.78),
    },
    Fig15Row {
        shape: DbShape::Db1,
        pat: 10,
        prov: 90,
        random: (Chj, 279.88),
        class: (Chj, 154.09),
        composition: (Nl, 923.84),
    },
    Fig15Row {
        shape: DbShape::Db1,
        pat: 90,
        prov: 10,
        random: (Phj, 1419.87),
        class: (Phj, 925.07),
        composition: (Nl, 155.17),
    },
    Fig15Row {
        shape: DbShape::Db1,
        pat: 90,
        prov: 90,
        random: (Chj, 2617.10),
        class: (Phj, 1913.80),
        composition: (Nl, 1665.51),
    },
    Fig15Row {
        shape: DbShape::Db2,
        pat: 10,
        prov: 10,
        random: (Phj, 277.24),
        class: (Phj, 365.72),
        composition: (Nl, 165.97),
    },
    Fig15Row {
        shape: DbShape::Db2,
        pat: 10,
        prov: 90,
        random: (Chj, 1884.61),
        class: (Chj, 1286.18),
        composition: (Nojoin, 1572.40),
    },
    Fig15Row {
        shape: DbShape::Db2,
        pat: 90,
        prov: 10,
        random: (Phj, 2216.87),
        class: (Phj, 2676.37),
        composition: (Nl, 280.53),
    },
    Fig15Row {
        shape: DbShape::Db2,
        pat: 90,
        prov: 90,
        random: (Nl, 41954.19),
        class: (Nojoin, 34708.13),
        composition: (Nl, 2709.16),
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cells_are_ranked() {
        for fig in [
            &FIG11_CLASS_DB1,
            &FIG12_CLASS_DB2,
            &FIG13_COMP_DB1,
            &FIG14_COMP_DB2,
        ] {
            for cell in fig.iter() {
                for w in cell.ranked.windows(2) {
                    assert!(w[0].1 <= w[1].1, "cell ({}, {})", cell.pat, cell.prov);
                }
            }
        }
    }

    #[test]
    fn fig15_matches_the_detailed_figures() {
        // The class-cluster winners in Fig 15 must be the fastest rows
        // of Figs 11/12, and composition of Figs 13/14.
        for row in &FIG15_WINNERS {
            let detailed = join_figure(row.shape, Organization::ClassClustered).unwrap();
            let cell = detailed
                .iter()
                .find(|c| c.pat == row.pat && c.prov == row.prov)
                .unwrap();
            assert_eq!(cell.ranked[0].0, row.class.0);
            assert!((cell.ranked[0].1 - row.class.1).abs() < 0.01);
            let comp = join_figure(row.shape, Organization::Composition).unwrap();
            let cell = comp
                .iter()
                .find(|c| c.pat == row.pat && c.prov == row.prov)
                .unwrap();
            assert_eq!(cell.ranked[0].0, row.composition.0);
            assert!((cell.ranked[0].1 - row.composition.1).abs() < 0.01);
        }
    }

    #[test]
    fn fig10_matches_the_formula() {
        for (algo, providers, fanout, pat, _prov, mb) in FIG10_HASH_SIZES {
            let children = providers * fanout as u64;
            let (sp, sc) = (providers * _prov as u64 / 100, children * pat as u64 / 100);
            let got = tq_query::hash_table_bytes(algo, providers, sp, sc) as f64 / 1e6;
            assert!((got - mb).abs() < 0.01, "{algo:?}: {got} vs {mb}");
        }
    }
}
