//! # tq-bench — figure and table regeneration
//!
//! One module (and one binary) per table/figure of the paper's
//! evaluation; see `DESIGN.md` for the experiment index. Each figure
//! runs the real engine under the paper's measurement protocol (cold
//! caches, Figure 3 counters), stores every run in a
//! [`StatsDb`](tq_statsdb::StatsDb), and prints its table by *querying
//! the stats database* — the §3.3 methodology, practiced.
//!
//! Set `TQ_SCALE=n` to divide object counts (and cache sizes, keeping
//! ratios) by `n`; the default is paper scale.

pub mod analysis;
pub mod figures;
pub mod harness;
pub mod paper;

pub use harness::{build_db, join_spec, physical_profile, run_join_cell, scale_from_env, JoinCell};
