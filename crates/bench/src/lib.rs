//! # tq-bench — figure and table regeneration
//!
//! One module (and one binary) per table/figure of the paper's
//! evaluation; see `DESIGN.md` for the experiment index. Each figure
//! runs the real engine under the paper's measurement protocol (cold
//! caches, Figure 3 counters), stores every run in a
//! [`StatsDb`](tq_statsdb::StatsDb), and prints its table by *querying
//! the stats database* — the §3.3 methodology, practiced.
//!
//! Set `TQ_SCALE=n` to divide object counts (and cache sizes, keeping
//! ratios) by `n`; the default is paper scale.

pub mod analysis;
pub mod env;
pub mod figures;
pub mod harness;
pub mod paper;
pub mod parallel;
pub mod serve;

pub use env::{jobs_from_env, scale_from_env};
pub use harness::{build_db, join_spec, physical_profile, run_join_cell, JoinCell};
pub use parallel::run_cells;
pub use serve::{run_serve, ServeConfig, ServeOutcome};

/// Reads `TQ_SCALE`, `TQ_JOBS`, `TQ_BATCH`, and `TQ_PARALLEL`,
/// exiting with status 2 on a bad value — the standard prologue of
/// every figure binary. The batch size and the morsel-parallel degree
/// are installed process-wide
/// ([`tq_query::exec::set_default_batch_size`] /
/// [`tq_query::exec::set_default_parallel_degree`]) so every
/// measurement the run makes — including ones on worker threads —
/// picks them up.
pub fn env_config_or_exit() -> (u32, usize) {
    let scale = scale_from_env().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let jobs = jobs_from_env().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let batch = env::batch_from_env().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    tq_query::exec::set_default_batch_size(batch);
    let parallel = env::parallel_from_env().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    tq_query::exec::set_default_parallel_degree(parallel);
    (scale, jobs)
}

/// CPU time (user + system) this process has consumed so far, in
/// milliseconds — the perf-gate's currency: wall clock on a shared
/// 1-core CI host measures the neighbours, CPU time measures us.
/// Linux-only (`/proc/self/stat` utime+stime, in clock ticks of 10ms —
/// `sysconf(_SC_CLK_TCK)` is 100 on every Linux the gate runs on);
/// `None` elsewhere, and callers fall back to wall clock.
pub fn process_cpu_ms() -> Option<u64> {
    if !cfg!(target_os = "linux") {
        return None;
    }
    let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
    // Field 2 (comm) may contain spaces; fields after the closing
    // paren are whitespace-split, with utime and stime at (0-indexed)
    // positions 11 and 12.
    let after = &stat[stat.rfind(')')? + 1..];
    let fields: Vec<&str> = after.split_whitespace().collect();
    let utime: u64 = fields.get(11)?.parse().ok()?;
    let stime: u64 = fields.get(12)?.parse().ok()?;
    Some((utime + stime) * 1000 / 100)
}
