//! # tq-bench — figure and table regeneration
//!
//! One module (and one binary) per table/figure of the paper's
//! evaluation; see `DESIGN.md` for the experiment index. Each figure
//! runs the real engine under the paper's measurement protocol (cold
//! caches, Figure 3 counters), stores every run in a
//! [`StatsDb`](tq_statsdb::StatsDb), and prints its table by *querying
//! the stats database* — the §3.3 methodology, practiced.
//!
//! Set `TQ_SCALE=n` to divide object counts (and cache sizes, keeping
//! ratios) by `n`; the default is paper scale.

pub mod analysis;
pub mod env;
pub mod figures;
pub mod harness;
pub mod paper;
pub mod parallel;
pub mod serve;

pub use env::{jobs_from_env, scale_from_env};
pub use harness::{build_db, join_spec, physical_profile, run_join_cell, JoinCell};
pub use parallel::run_cells;
pub use serve::{run_serve, ServeConfig, ServeOutcome};

/// Reads `TQ_SCALE`, `TQ_JOBS`, and `TQ_BATCH`, exiting with status 2
/// on a bad value — the standard prologue of every figure binary. The
/// batch size is installed process-wide
/// ([`tq_query::exec::set_default_batch_size`]) so every
/// `ExecContext` the run creates — including ones on worker threads —
/// picks it up.
pub fn env_config_or_exit() -> (u32, usize) {
    let scale = scale_from_env().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let jobs = jobs_from_env().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let batch = env::batch_from_env().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    tq_query::exec::set_default_batch_size(batch);
    (scale, jobs)
}
