//! The section 4.4 ablation: the paper's proposed handle improvements,
//! measured.

use tq_bench::env;

fn main() {
    env::maybe_print_help(
        "The paper's §4.4 ablation: its proposed handle-machinery \
         improvements, measured one by one.",
        "fig_handle_ablation",
        &[
            env::ENV_SCALE,
            env::ENV_JOBS,
            env::ENV_BATCH,
            env::ENV_PARALLEL,
        ],
    );
    let (scale, jobs) = tq_bench::env_config_or_exit();
    let a = tq_bench::figures::handles::run_ablation(scale, jobs);
    println!("{}", tq_bench::figures::handles::print_ablation(&a));
}
