//! The section 4.4 ablation: the paper's proposed handle improvements,
//! measured.

fn main() {
    let scale = tq_bench::scale_from_env();
    let a = tq_bench::figures::handles::run_ablation(scale);
    println!("{}", tq_bench::figures::handles::print_ablation(&a));
}
