//! The section 4.4 ablation: the paper's proposed handle improvements,
//! measured.

fn main() {
    let (scale, jobs) = tq_bench::env_config_or_exit();
    let a = tq_bench::figures::handles::run_ablation(scale, jobs);
    println!("{}", tq_bench::figures::handles::print_ablation(&a));
}
