//! Regenerates the paper's Figure 10 (hash-table sizes). Pass
//! `--measure` to also run the joins and report executor table sizes.

fn main() {
    let scale = tq_bench::scale_from_env();
    let measure = std::env::args().any(|a| a == "--measure");
    let fig = tq_bench::figures::fig10::run(scale, measure);
    println!("{}", tq_bench::figures::fig10::print(&fig));
}
