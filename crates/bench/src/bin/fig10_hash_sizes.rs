//! Regenerates the paper's Figure 10 (hash-table sizes). Pass
//! `--measure` to also run the joins and report executor table sizes.

use tq_bench::env;

fn main() {
    env::maybe_print_help(
        "Regenerates the paper's Figure 10 (hash-table sizes).",
        "fig10_hash_sizes [--measure]   (--measure also runs the joins and \
         reports executor table sizes)",
        &[
            env::ENV_SCALE,
            env::ENV_JOBS,
            env::ENV_BATCH,
            env::ENV_PARALLEL,
        ],
    );
    let (scale, jobs) = tq_bench::env_config_or_exit();
    let measure = std::env::args().any(|a| a == "--measure");
    let fig = tq_bench::figures::fig10::run(scale, measure, jobs);
    println!("{}", tq_bench::figures::fig10::print(&fig));
}
