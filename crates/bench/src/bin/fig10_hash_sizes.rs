//! Regenerates the paper's Figure 10 (hash-table sizes). Pass
//! `--measure` to also run the joins and report executor table sizes.

fn main() {
    let (scale, jobs) = tq_bench::env_config_or_exit();
    let measure = std::env::args().any(|a| a == "--measure");
    let fig = tq_bench::figures::fig10::run(scale, measure, jobs);
    println!("{}", tq_bench::figures::fig10::print(&fig));
}
