//! Regenerates the paper's Figure 6 (selection I/O, index vs scan).
//!
//! `TQ_SCALE=n` divides the database size (default: paper scale).

fn main() {
    let (scale, jobs) = tq_bench::env_config_or_exit();
    let fig = tq_bench::figures::fig06::run(scale, jobs);
    println!("{}", tq_bench::figures::fig06::print(&fig));
    println!("{}", tq_statsdb::export::to_csv(fig.stats.all()));
}
