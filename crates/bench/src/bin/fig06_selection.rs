//! Regenerates the paper's Figure 6 (selection I/O, index vs scan).
//!
//! `TQ_SCALE=n` divides the database size (default: paper scale).

use tq_bench::env;

fn main() {
    env::maybe_print_help(
        "Regenerates the paper's Figure 6 (selection I/O, index vs scan).",
        "fig06_selection",
        &[
            env::ENV_SCALE,
            env::ENV_JOBS,
            env::ENV_BATCH,
            env::ENV_PARALLEL,
        ],
    );
    let (scale, jobs) = tq_bench::env_config_or_exit();
    let fig = tq_bench::figures::fig06::run(scale, jobs);
    println!("{}", tq_bench::figures::fig06::print(&fig));
    println!("{}", tq_statsdb::export::to_csv(fig.stats.all()));
}
