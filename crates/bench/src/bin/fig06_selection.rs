//! Regenerates the paper's Figure 6 (selection I/O, index vs scan).
//!
//! `TQ_SCALE=n` divides the database size (default: paper scale).

fn main() {
    let scale = tq_bench::scale_from_env();
    let fig = tq_bench::figures::fig06::run(scale);
    println!("{}", tq_bench::figures::fig06::print(&fig));
    println!("{}", tq_statsdb::export::to_csv(fig.stats.all()));
}
