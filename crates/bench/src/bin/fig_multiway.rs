//! Plan-quality figure: the three N-way chain ordering policies
//! (estimate | simpli | syntactic) measured side by side.
//!
//! Usage: fig_multiway [--db db1|db2] [--org class|random|comp|assoc]

use tq_bench::env;
use tq_workload::{DbShape, Organization};

fn main() {
    env::maybe_print_help(
        "Plan-quality figure: the estimator-driven, Simpli-Squared \
         (size-only), and syntactic chain-ordering policies measured \
         side by side on depth-3 and depth-4 binding chains.",
        "fig_multiway [--db db1|db2] [--org class|random|comp|assoc]",
        &[
            env::ENV_SCALE,
            env::ENV_JOBS,
            env::ENV_BATCH,
            env::ENV_PARALLEL,
            env::ENV_PLANNER,
            env::ENV_EXPLAIN,
        ],
    );
    let args: Vec<String> = std::env::args().collect();
    let arg = |name: &str, default: &str| -> String {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
            .unwrap_or_else(|| default.to_string())
    };
    let shape = match arg("--db", "db2").as_str() {
        "db1" => DbShape::Db1,
        "db2" => DbShape::Db2,
        other => {
            eprintln!("unknown --db {other:?} (use db1|db2)");
            std::process::exit(2);
        }
    };
    let org = match arg("--org", "class").as_str() {
        "class" => Organization::ClassClustered,
        "random" => Organization::Randomized,
        "comp" | "composition" => Organization::Composition,
        "assoc" | "assoc-ordered" => Organization::AssociationOrdered,
        other => {
            eprintln!("unknown --org {other:?} (use class|random|comp|assoc)");
            std::process::exit(2);
        }
    };
    let policy = env::planner_from_env().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let (scale, jobs) = tq_bench::env_config_or_exit();
    let fig = tq_bench::figures::multiway::run(shape, org, scale, jobs, policy);
    println!("{}", tq_bench::figures::multiway::print(&fig));
    println!("{}", tq_statsdb::export::to_csv(fig.stats.all()));
    // Opt-in per-operator view, same gate as every figure binary.
    if std::env::var_os("TQ_EXPLAIN").is_some() {
        println!("{}", tq_bench::figures::joins::explain_tables(&fig.stats));
        println!("{}", tq_statsdb::export::to_operator_csv(fig.stats.all()));
    }
}
