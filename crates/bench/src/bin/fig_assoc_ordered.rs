//! Extension experiment: the §5.3 association-ordered organization —
//! the paper's prediction, tested.

fn main() {
    let scale = tq_bench::scale_from_env().max(10);
    let fig = tq_bench::figures::assoc::run(scale);
    println!("{}", tq_bench::figures::assoc::print(&fig));
}
