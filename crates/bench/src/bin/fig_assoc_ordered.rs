//! Extension experiment: the §5.3 association-ordered organization —
//! the paper's prediction, tested.

fn main() {
    let (scale, jobs) = tq_bench::env_config_or_exit();
    let fig = tq_bench::figures::assoc::run(scale.max(10), jobs);
    println!("{}", tq_bench::figures::assoc::print(&fig));
}
