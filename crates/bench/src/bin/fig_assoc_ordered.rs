//! Extension experiment: the §5.3 association-ordered organization —
//! the paper's prediction, tested.

use tq_bench::env;

fn main() {
    env::maybe_print_help(
        "Extension experiment: the paper's §5.3 association-ordered \
         organization, tested. Runs at 1/10 scale or smaller.",
        "fig_assoc_ordered",
        &[
            env::ENV_SCALE,
            env::ENV_JOBS,
            env::ENV_BATCH,
            env::ENV_PARALLEL,
        ],
    );
    let (scale, jobs) = tq_bench::env_config_or_exit();
    let fig = tq_bench::figures::assoc::run(scale.max(10), jobs);
    println!("{}", tq_bench::figures::assoc::print(&fig));
}
