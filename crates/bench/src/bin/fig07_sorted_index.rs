//! Regenerates the paper's Figure 7 (sorted unclustered index vs no
//! index) and the Figure 9 cost decomposition.

use tq_bench::env;

fn main() {
    env::maybe_print_help(
        "Regenerates the paper's Figure 7 (sorted unclustered index vs no \
         index) and the Figure 9 cost decomposition.",
        "fig07_sorted_index",
        &[
            env::ENV_SCALE,
            env::ENV_JOBS,
            env::ENV_BATCH,
            env::ENV_PARALLEL,
        ],
    );
    let (scale, jobs) = tq_bench::env_config_or_exit();
    let fig = tq_bench::figures::fig07::run(scale, jobs);
    println!("{}", tq_bench::figures::fig07::print(&fig));
}
