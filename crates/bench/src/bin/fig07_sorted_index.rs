//! Regenerates the paper's Figure 7 (sorted unclustered index vs no
//! index) and the Figure 9 cost decomposition.

fn main() {
    let (scale, jobs) = tq_bench::env_config_or_exit();
    let fig = tq_bench::figures::fig07::run(scale, jobs);
    println!("{}", tq_bench::figures::fig07::print(&fig));
}
