//! Regenerates the paper's Figure 7 (sorted unclustered index vs no
//! index) and the Figure 9 cost decomposition.

fn main() {
    let scale = tq_bench::scale_from_env();
    let fig = tq_bench::figures::fig07::run(scale);
    println!("{}", tq_bench::figures::fig07::print(&fig));
}
