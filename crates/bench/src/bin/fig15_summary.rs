//! Regenerates the paper's Figure 15 (winning algorithms) — runs all
//! six underlying join figures (3 organizations x 2 databases).

use tq_bench::env;

fn main() {
    env::maybe_print_help(
        "Regenerates the paper's Figure 15 (winning algorithms) by running \
         all six underlying join figures (3 organizations x 2 databases).",
        "fig15_summary",
        &[
            env::ENV_SCALE,
            env::ENV_JOBS,
            env::ENV_BATCH,
            env::ENV_PARALLEL,
        ],
    );
    let (scale, jobs) = tq_bench::env_config_or_exit();
    let fig = tq_bench::figures::fig15::run(scale, jobs);
    for f in &fig.figures {
        println!("{}", tq_bench::figures::joins::print_join_figure(f));
    }
    println!("{}", tq_bench::figures::fig15::print(&fig));
}
