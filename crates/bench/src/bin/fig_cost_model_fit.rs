//! The paper's original goal, realized: elicit the cost model from
//! benchmark runs by regression (§2's plan with Yves Lechevallier).

fn main() {
    let (scale, _jobs) = tq_bench::env_config_or_exit();
    let scale = scale.max(50);
    let fit = tq_bench::analysis::run(scale);
    println!("{}", tq_bench::analysis::print(&fit));
}
