//! The paper's original goal, realized: elicit the cost model from
//! benchmark runs by regression (§2's plan with Yves Lechevallier).

fn main() {
    let scale = tq_bench::scale_from_env().max(50);
    let fit = tq_bench::analysis::run(scale);
    println!("{}", tq_bench::analysis::print(&fit));
}
