//! The paper's original goal, realized: elicit the cost model from
//! benchmark runs by regression (§2's plan with Yves Lechevallier).

use tq_bench::env;

fn main() {
    env::maybe_print_help(
        "Elicits the simulator's cost model back from benchmark runs by \
         regression (the paper's §2 plan, realized). Runs at 1/50 scale or \
         smaller.",
        "fig_cost_model_fit",
        &[env::ENV_SCALE, env::ENV_BATCH, env::ENV_PARALLEL],
    );
    let (scale, _jobs) = tq_bench::env_config_or_exit();
    let scale = scale.max(50);
    let fit = tq_bench::analysis::run(scale);
    println!("{}", tq_bench::analysis::print(&fit));
}
