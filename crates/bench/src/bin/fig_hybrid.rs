//! Extension experiment: hybrid hashing on the paper's swap-bound
//! cells (the untested fix the paper calls for in §5.1/§6).

use tq_bench::env;

fn main() {
    env::maybe_print_help(
        "Extension experiment: hybrid hashing on the paper's swap-bound \
         cells (the untested fix §5.1/§6 call for). Runs at 1/10 scale or \
         smaller.",
        "fig_hybrid",
        &[
            env::ENV_SCALE,
            env::ENV_JOBS,
            env::ENV_BATCH,
            env::ENV_PARALLEL,
        ],
    );
    let (scale, jobs) = tq_bench::env_config_or_exit();
    let fig = tq_bench::figures::hybrid::run(scale.max(10), jobs);
    println!("{}", tq_bench::figures::hybrid::print(&fig));
}
