//! Extension experiment: hybrid hashing on the paper's swap-bound
//! cells (the untested fix the paper calls for in §5.1/§6).

fn main() {
    let scale = tq_bench::scale_from_env().max(10);
    let fig = tq_bench::figures::hybrid::run(scale);
    println!("{}", tq_bench::figures::hybrid::print(&fig));
}
