//! Extension experiment: hybrid hashing on the paper's swap-bound
//! cells (the untested fix the paper calls for in §5.1/§6).

fn main() {
    let (scale, jobs) = tq_bench::env_config_or_exit();
    let fig = tq_bench::figures::hybrid::run(scale.max(10), jobs);
    println!("{}", tq_bench::figures::hybrid::print(&fig));
}
